// Fig 10 / §6.2 reproduction: 10-fold cross-validated confusion matrices
// for the five representative performance models (SELLPACK, Sell-c-σ,
// Sell-c-R, LAV-1Seg, LAV with c=8), plus the per-model accuracy and
// distance-1 statistics the paper quotes.

#include <cstdio>

#include "bench_common.hpp"
#include "features/extractor.hpp"
#include "ml/validation.hpp"
#include "wise/speedup_class.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Fig 10: per-model confusion matrices (10-fold CV) ==\n");
  std::printf("(paper accuracies: SELLPACK 87%%, Sell-c-s 92%%, Sell-c-R 87%%,\n");
  std::printf(" LAV-1Seg 84%%, LAV 83%%; >=89%% of misses at distance 1)\n");

  const auto records = load_records(full_corpus());
  const auto configs = all_method_configs();

  const std::vector<std::string> representative = {
      "SELLPACK/c8/StCont", "Sell-c-s/c8/s4096/StCont", "Sell-c-R/c8",
      "LAV-1Seg/c8", "LAV/c8/T0.8"};

  for (const auto& name : representative) {
    // Locate the configuration index.
    std::size_t target = configs.size();
    for (std::size_t c = 0; c < configs.size(); ++c) {
      if (configs[c].name() == name) target = c;
    }
    if (target == configs.size()) {
      std::fprintf(stderr, "unknown config %s\n", name.c_str());
      return 1;
    }

    // Labels for this model.
    std::vector<int> labels(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      labels[i] = classify_relative_time(records[i].rel_time(target));
    }

    const auto folds = stratified_kfold(labels, 10, 0xCF);
    ConfusionMatrix cm(kNumSpeedupClasses);
    for (const auto& test_fold : folds) {
      std::vector<bool> in_test(records.size(), false);
      for (std::size_t idx : test_fold) in_test[idx] = true;

      Dataset train(feature_names(), kNumSpeedupClasses);
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (!in_test[i]) train.add(records[i].features, labels[i]);
      }
      DecisionTree tree;
      tree.fit(train, {.max_depth = 15, .ccp_alpha = 0.005});
      for (std::size_t idx : test_fold) {
        cm.add(labels[idx], tree.predict(records[idx].features));
      }
    }

    std::printf("\n--- model %s ---\n", name.c_str());
    std::fputs(cm.render().c_str(), stdout);
    std::printf("accuracy: %.1f%%   misclassified within distance 1: %.1f%%\n",
                100.0 * cm.accuracy(),
                100.0 * cm.misclassified_within(1));
  }
  return 0;
}
