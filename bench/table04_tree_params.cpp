// Table 4 reproduction: mean WISE speedup over MKL for a grid of decision-
// tree maximum depths (D) and pruning thresholds (ccp_alpha), each point a
// full cross-validated evaluation. The paper finds ccp must stay below 0.05
// and D at 10 or higher, settling on D=15, ccp=0.005.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/env.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Table 4: WISE speedup vs tree depth and pruning ==\n");
  const auto records = load_records(full_corpus());

  const std::vector<int> depths = {5, 10, 15, 20};
  const std::vector<double> ccps = {0, 0.001, 0.005, 0.01, 0.05, 0.1};
  // Fewer folds than the paper's 10 keep the 24-point grid tractable; the
  // trend (not the third decimal) is the result. Override via WISE_FOLDS.
  const int folds = static_cast<int>(env_int("WISE_FOLDS", 5));

  std::vector<std::string> col_labels, row_labels;
  for (double ccp : ccps) col_labels.push_back("ccp=" + fmt(ccp, 3));
  std::vector<std::vector<std::string>> cells;

  for (int depth : depths) {
    row_labels.push_back("D=" + std::to_string(depth));
    std::vector<std::string> row;
    for (double ccp : ccps) {
      const TreeParams params{.max_depth = depth, .ccp_alpha = ccp};
      const auto outcomes = wise_cross_validation(records, params, folds);
      std::vector<double> speedups;
      for (const auto& out : outcomes) {
        speedups.push_back(out.speedup_over_mkl);
      }
      row.push_back(fmt(mean(speedups), 2));
      std::fprintf(stderr, "[table4] D=%d ccp=%g -> %.2fx\n", depth, ccp,
                   mean(speedups));
    }
    cells.push_back(std::move(row));
  }

  std::printf("\nMean WISE speedup over MKL (paper: ~2.4 for ccp<0.05, D>=10,\n");
  std::printf("degrading at ccp>=0.05):\n\n");
  std::fputs(render_table(col_labels, row_labels, cells, "").c_str(), stdout);
  return 0;
}
