// Microbenchmarks for WISE's decision costs: feature extraction, tiling
// analysis, tree inference, and the full choose() path. These are the
// components of the preprocessing overhead the paper reports in Fig 13c.

#include <benchmark/benchmark.h>

#include <omp.h>

#include "features/extractor.hpp"
#include "features/tiling.hpp"
#include "gen/generators.hpp"
#include "ml/decision_tree.hpp"
#include "util/prng.hpp"

namespace {

using namespace wise;

const CsrMatrix& fixture_matrix() {
  static const CsrMatrix m = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kMedSkew, 16384, 16), 7));
  return m;
}

/// Paper-scale fixture: 2^20 rows, avg degree 8 (~8.4M nonzeros). Built once
/// on first use so the small benchmarks stay cheap to run in isolation.
const CsrMatrix& large_fixture_matrix() {
  static const CsrMatrix m = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kMedSkew, index_t{1} << 20, 8), 11));
  return m;
}

void report_threads(benchmark::State& state) {
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(omp_get_max_threads()));
}

void BM_ExtractFeatures(benchmark::State& state) {
  const CsrMatrix& m = fixture_matrix();
  for (auto _ : state) {
    const FeatureVector fv = extract_features(m);
    benchmark::DoNotOptimize(fv.values.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
  report_threads(state);
}
BENCHMARK(BM_ExtractFeatures)->Unit(benchmark::kMillisecond);

void BM_ExtractFeaturesSerialRef(benchmark::State& state) {
  // The pre-parallelization baseline (serial sweeps + explicit transpose);
  // the ratio to BM_ExtractFeatures is the decision-cost speedup gate.
  const CsrMatrix& m = fixture_matrix();
  for (auto _ : state) {
    const FeatureVector fv = extract_features_reference(m);
    benchmark::DoNotOptimize(fv.values.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
  report_threads(state);
}
BENCHMARK(BM_ExtractFeaturesSerialRef)->Unit(benchmark::kMillisecond);

void BM_ExtractFeaturesLarge(benchmark::State& state) {
  const CsrMatrix& m = large_fixture_matrix();
  for (auto _ : state) {
    const FeatureVector fv = extract_features(m);
    benchmark::DoNotOptimize(fv.values.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
  report_threads(state);
}
BENCHMARK(BM_ExtractFeaturesLarge)->Unit(benchmark::kMillisecond);

void BM_ExtractFeaturesLargeSerialRef(benchmark::State& state) {
  const CsrMatrix& m = large_fixture_matrix();
  for (auto _ : state) {
    const FeatureVector fv = extract_features_reference(m);
    benchmark::DoNotOptimize(fv.values.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
  report_threads(state);
}
BENCHMARK(BM_ExtractFeaturesLargeSerialRef)->Unit(benchmark::kMillisecond);

void BM_AnalyzeTiling(benchmark::State& state) {
  const CsrMatrix& m = fixture_matrix();
  for (auto _ : state) {
    const TilingResult t = analyze_tiling(m);
    benchmark::DoNotOptimize(t.tile_counts.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
  report_threads(state);
}
BENCHMARK(BM_AnalyzeTiling)->Unit(benchmark::kMillisecond);

void BM_AnalyzeTilingSerialRef(benchmark::State& state) {
  const CsrMatrix& m = fixture_matrix();
  for (auto _ : state) {
    const TilingResult t = analyze_tiling_reference(m);
    benchmark::DoNotOptimize(t.tile_counts.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
  report_threads(state);
}
BENCHMARK(BM_AnalyzeTilingSerialRef)->Unit(benchmark::kMillisecond);

void BM_RowColStats(benchmark::State& state) {
  const CsrMatrix& m = fixture_matrix();
  for (auto _ : state) {
    const DistStats r = row_dist_stats(m);
    const DistStats c = col_dist_stats(m);
    benchmark::DoNotOptimize(r.gini + c.gini);
  }
}
BENCHMARK(BM_RowColStats)->Unit(benchmark::kMillisecond);

void BM_TreeInference(benchmark::State& state) {
  // A fitted tree of realistic size; inference must be microseconds.
  Dataset ds(feature_names(), 7);
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> f(feature_count());
    for (auto& v : f) v = rng.next_double();
    ds.add(std::move(f), static_cast<int>(rng.next_below(7)));
  }
  DecisionTree tree;
  tree.fit(ds, {.max_depth = 15, .ccp_alpha = 0.0});

  std::vector<double> probe(feature_count());
  for (auto& v : probe) v = rng.next_double();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(probe));
  }
}
BENCHMARK(BM_TreeInference);

void BM_TreeTraining(benchmark::State& state) {
  Dataset ds(feature_names(), 7);
  Xoshiro256 rng(4);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    std::vector<double> f(feature_count());
    for (auto& v : f) v = rng.next_double();
    ds.add(std::move(f), static_cast<int>(rng.next_below(7)));
  }
  for (auto _ : state) {
    DecisionTree tree;
    tree.fit(ds, {.max_depth = 15, .ccp_alpha = 0.005});
    benchmark::DoNotOptimize(tree.num_nodes());
  }
}
BENCHMARK(BM_TreeTraining)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
