// Extension ablation: the paper's key framework claim is that WISE's
// models predict speedup per configuration independently, so "we can add
// new methods without changing already existing models" (§7). This bench
// adds the BSR extension to the method space, measures it on a corpus
// slice, trains *only the two new BSR trees*, and reports (a) the new
// models' cross-validated accuracy and (b) how often and where the
// extended selection beats the paper-space selection.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "features/extractor.hpp"
#include "ml/validation.hpp"
#include "spmv/bsr.hpp"
#include "spmv/executor.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"
#include "wise/speedup_class.hpp"

using namespace wise;
using namespace wise::bench;

namespace {

/// Measures the BSR configurations on one already-measured matrix spec.
std::vector<double> measure_bsr_seconds(const MatrixSpec& spec,
                                        const std::vector<MethodConfig>& cfgs) {
  const CsrMatrix m = spec.materialize();
  aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
  aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  Xoshiro256 rng(0xb52);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());

  std::vector<double> seconds;
  for (const auto& cfg : cfgs) {
    PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
    seconds.push_back(time_spmv(pm, x, y, 10, 2));
  }
  return seconds;
}

}  // namespace

int main() {
  std::printf("== Ablation: extending WISE with BSR ==\n");

  // Corpus slice: block-structured and scattered matrices, where BSR's
  // trade-off is sharpest. Keep it small — BSR is measured live here.
  std::vector<MatrixSpec> specs;
  for (const auto& s : sci_corpus()) {
    if (s.kind == MatrixSpec::Kind::kBlockDiag ||
        s.kind == MatrixSpec::Kind::kStencil2d ||
        s.kind == MatrixSpec::Kind::kBanded) {
      specs.push_back(s);
    }
  }
  const auto records = load_records(specs);

  std::vector<MethodConfig> bsr_cfgs;
  for (const auto& cfg : extended_method_configs()) {
    if (cfg.kind == MethodKind::kBsr) bsr_cfgs.push_back(cfg);
  }

  std::fprintf(stderr, "[ext] measuring BSR on %zu matrices...\n",
               specs.size());
  std::vector<std::vector<double>> bsr_seconds(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    bsr_seconds[i] = measure_bsr_seconds(specs[i], bsr_cfgs);
  }

  // (a) Train the two new BSR models with 5-fold CV; existing 29 models
  // are untouched by construction.
  for (std::size_t bc = 0; bc < bsr_cfgs.size(); ++bc) {
    std::vector<int> labels(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      labels[i] = classify_relative_time(bsr_seconds[i][bc] /
                                         records[i].best_csr_seconds());
    }
    const auto folds = stratified_kfold(labels, 5, 0xE7);
    ConfusionMatrix cm(kNumSpeedupClasses);
    for (const auto& test_fold : folds) {
      std::vector<bool> in_test(records.size(), false);
      for (std::size_t idx : test_fold) in_test[idx] = true;
      Dataset train(feature_names(), kNumSpeedupClasses);
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (!in_test[i]) train.add(records[i].features, labels[i]);
      }
      DecisionTree tree;
      tree.fit(train, {.max_depth = 15, .ccp_alpha = 0.005});
      for (std::size_t idx : test_fold) {
        cm.add(labels[idx], tree.predict(records[idx].features));
      }
    }
    std::printf("\nnew model %s: CV accuracy %.1f%%, distance-1 %.1f%%\n",
                bsr_cfgs[bc].name().c_str(), 100.0 * cm.accuracy(),
                100.0 * cm.misclassified_within(1));
  }

  // (b) Oracle comparison: how often does BSR actually win, and by how
  // much, once added to the space?
  int bsr_wins = 0;
  std::vector<double> win_gains;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const double best_paper =
        records[i].config_seconds[records[i].best_config_index()];
    const double best_bsr =
        *std::min_element(bsr_seconds[i].begin(), bsr_seconds[i].end());
    if (best_bsr < best_paper) {
      ++bsr_wins;
      win_gains.push_back(best_paper / best_bsr);
    }
  }
  std::printf("\nBSR beats the best paper-space method on %d of %zu "
              "block-structured/banded matrices",
              bsr_wins, records.size());
  if (!win_gains.empty()) {
    std::printf(" (mean gain %.2fx)", mean(win_gains));
  }
  std::printf("\n(The 29 existing models were not retrained — the framework\n"
              " extension cost is exactly two new trees.)\n");
  return 0;
}
