// Fig 3 reproduction: speedup (always <= 1) of CSR with each scheduling
// policy, and of the MKL stand-in, over the best CSR scheduling per matrix
// — plus the paper's count of which policy wins how many matrices.

#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Fig 3: CSR scheduling policies vs best CSR (sci corpus) ==\n");
  const auto records = load_records(sci_corpus());
  const auto configs = all_method_configs();

  // Locate the three CSR configurations.
  std::map<Schedule, std::size_t> csr_index;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (configs[c].kind == MethodKind::kCsr) csr_index[configs[c].sched] = c;
  }

  std::printf("%-22s %8s %8s %8s %8s %8s\n", "matrix", "Dyn", "St", "StCont",
              "MKL", "best");
  std::map<Schedule, int> wins;
  double worst_slowdown = 1.0;
  for (const auto& rec : records) {
    const double best = rec.best_csr_seconds();
    Schedule best_sched = Schedule::kDyn;
    double best_seconds = rec.config_seconds[csr_index[Schedule::kDyn]];
    std::printf("%-22s", rec.id.c_str());
    for (Schedule s : {Schedule::kDyn, Schedule::kSt, Schedule::kStCont}) {
      const double secs = rec.config_seconds[csr_index[s]];
      std::printf(" %8.3f", best / secs);
      worst_slowdown = std::min(worst_slowdown, best / secs);
      if (secs < best_seconds) {
        best_seconds = secs;
        best_sched = s;
      }
    }
    std::printf(" %8.3f %8s\n", best / rec.mkl_seconds,
                schedule_name(best_sched));
    ++wins[best_sched];
  }

  std::printf("\nBest-schedule counts (paper: Dyn 28, St 16, StCont 92):\n");
  for (Schedule s : {Schedule::kDyn, Schedule::kSt, Schedule::kStCont}) {
    std::printf("  %-8s %d\n", schedule_name(s), wins[s]);
  }
  std::printf("Worst scheduling slowdown observed: %.3fx of best CSR\n",
              worst_slowdown);
  return 0;
}
