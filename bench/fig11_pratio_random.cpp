// Fig 11 reproduction: distribution of the row-nonzero p-ratio over the
// RMAT/RGG random corpus, broken down by generator class. The random set
// must cover the P_R range SuiteSparse misses (paper: HS~0.1, MS~0.2,
// LS~0.3, locality classes and RGG ~0.4-0.5).

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Fig 11: P_R histogram, random corpus ==\n\n");
  const auto records = load_records(random_corpus());

  Histogram hist(0.0, 0.5, 10);
  std::map<std::string, std::vector<double>> by_family;
  for (const auto& rec : records) {
    const double pr = record_feature(rec, "pratio_R");
    hist.add(pr);
    by_family[rec.family].push_back(pr);
  }
  std::fputs(hist.render().c_str(), stdout);

  std::printf("\nMean P_R per class (paper: HS~0.1 MS~0.2 LS~0.3, LL/ML/HL/rgg"
              " ~0.4-0.5):\n");
  for (const char* fam : {"HS", "MS", "LS", "LL", "ML", "HL", "rgg"}) {
    std::printf("  %-4s %.3f\n", fam, mean(by_family[fam]));
  }
  return 0;
}
