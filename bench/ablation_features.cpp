// Ablation (DESIGN.md §8): value of the WISE feature groups. Runs the full
// cross-validated pipeline with (a) size features only, (b) size + skew,
// (c) the complete 67-feature set. Features outside the active group are
// zeroed, which makes them constant and therefore unusable for splits.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "features/extractor.hpp"

using namespace wise;
using namespace wise::bench;

namespace {

bool is_size_feature(const std::string& name) {
  return name == "n_rows" || name == "n_cols" || name == "n_nnz";
}

bool is_skew_feature(const std::string& name) {
  return name.ends_with("_R") || name.ends_with("_C");
}

std::vector<MatrixRecord> mask_features(std::vector<MatrixRecord> records,
                                        bool keep_skew, bool keep_locality) {
  const auto& names = feature_names();
  for (auto& rec : records) {
    for (std::size_t f = 0; f < names.size(); ++f) {
      const bool keep = is_size_feature(names[f]) ||
                        (keep_skew && is_skew_feature(names[f])) ||
                        keep_locality;
      if (!keep) rec.features[f] = 0.0;
    }
  }
  return records;
}

double eval(const std::vector<MatrixRecord>& records) {
  const auto outcomes = wise_cross_validation(records);
  std::vector<double> speedups;
  for (const auto& out : outcomes) speedups.push_back(out.speedup_over_mkl);
  return mean(speedups);
}

}  // namespace

int main() {
  std::printf("== Ablation: feature groups ==\n");
  const auto records = load_records(full_corpus());

  const double size_only = eval(mask_features(records, false, false));
  const double size_skew = eval(mask_features(records, true, false));
  const double full = eval(records);

  std::printf("\nMean WISE speedup over MKL by feature set:\n");
  std::printf("  size only (3 features):        %.2fx\n", size_only);
  std::printf("  size + skew (19 features):     %.2fx\n", size_skew);
  std::printf("  full WISE set (67 features):   %.2fx\n", full);
  std::printf("\n(The paper's claim: simple auto-tuner features — rows/cols/\n");
  std::printf(" nnz — are not enough; skew and locality features close the\n");
  std::printf(" gap to the oracle.)\n");
  return 0;
}
