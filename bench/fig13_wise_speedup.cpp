// Fig 13 / §6.3 reproduction: (a) distribution of WISE's speedup over the
// MKL stand-in across the full corpus under 10-fold cross-validation,
// (b) the same for the oracle, and (c) the distribution of WISE's
// preprocessing overhead expressed in MKL SpMV iterations.

#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Fig 13: WISE vs oracle speedup over MKL ==\n");
  std::printf("(paper: WISE mean 2.4x, oracle mean 2.5x, overhead mean 8.33\n");
  std::printf(" MKL iterations)\n");

  const auto records = load_records(full_corpus());
  const auto outcomes = wise_cross_validation(records);

  std::vector<double> wise_speedups, oracle_speedups, overheads;
  int wise_slower_than_mkl = 0;
  for (const auto& out : outcomes) {
    wise_speedups.push_back(out.speedup_over_mkl);
    oracle_speedups.push_back(out.oracle_speedup_over_mkl);
    overheads.push_back(out.overhead_mkl_iters);
    if (out.speedup_over_mkl < 1.0) ++wise_slower_than_mkl;
  }

  Histogram wise_hist(0.0, 8.0, 16), oracle_hist(0.0, 8.0, 16),
      over_hist(0.0, 50.0, 10);
  wise_hist.add_all(wise_speedups);
  oracle_hist.add_all(oracle_speedups);
  over_hist.add_all(overheads);

  std::printf("\n--- (a) WISE speedup over MKL ---\n");
  std::fputs(wise_hist.render().c_str(), stdout);
  std::printf("\n--- (b) Oracle speedup over MKL ---\n");
  std::fputs(oracle_hist.render().c_str(), stdout);
  std::printf("\n--- (c) WISE preprocessing overhead (MKL iterations) ---\n");
  std::fputs(over_hist.render().c_str(), stdout);

  std::printf("\nWISE mean speedup over MKL:   %.2fx (paper: 2.4x)\n",
              mean(wise_speedups));
  std::printf("Oracle mean speedup over MKL: %.2fx (paper: 2.5x)\n",
              mean(oracle_speedups));
  std::printf("WISE / oracle efficiency:     %.1f%%\n",
              100.0 * mean(wise_speedups) / mean(oracle_speedups));
  std::printf("Mean preprocessing overhead:  %.2f MKL iterations "
              "(paper: 8.33)\n",
              mean(overheads));
  std::printf("Matrices where WISE is slower than MKL: %d of %zu\n",
              wise_slower_than_mkl, outcomes.size());
  return 0;
}
