// §6.4 reproduction: WISE vs the MKL inspector-executor stand-in.
//
// The IE stand-in explores one representative configuration per method
// family and keeps the winner; its preprocessing overhead is the full
// exploration cost (conversions + probe iterations), computed from the
// same per-config measurements the cache already holds. The paper reports
// IE speedup 2.11x vs WISE 2.4x (WISE 1.14x faster) with WISE at <50% of
// IE's preprocessing overhead (8.33 vs 17.43 MKL iterations).

#include <cstdio>
#include <limits>

#include "bench_common.hpp"
#include "wise/baselines.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Sec 6.4: WISE vs MKL inspector-executor stand-in ==\n");
  const auto records = load_records(full_corpus());
  const auto outcomes = wise_cross_validation(records);
  const auto configs = all_method_configs();

  // Indices of the IE candidate subset within the measured config space.
  std::vector<std::size_t> candidate_idx;
  for (const auto& cand : inspector_executor_candidates()) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      if (configs[c] == cand) candidate_idx.push_back(c);
    }
  }
  constexpr int kProbeIters = 2;

  std::vector<double> ie_speedups, ie_overheads, wise_speedups,
      wise_overheads;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    // IE picks the fastest candidate; exploration cost covers every
    // candidate's conversion plus probe runs.
    double best_seconds = std::numeric_limits<double>::infinity();
    double explore_seconds = 0;
    for (std::size_t c : candidate_idx) {
      best_seconds = std::min(best_seconds, rec.config_seconds[c]);
      explore_seconds +=
          rec.config_prep_seconds[c] + kProbeIters * rec.config_seconds[c];
    }
    ie_speedups.push_back(rec.mkl_seconds / best_seconds);
    ie_overheads.push_back(explore_seconds / rec.mkl_seconds);
    wise_speedups.push_back(outcomes[i].speedup_over_mkl);
    wise_overheads.push_back(outcomes[i].overhead_mkl_iters);
  }

  const double wise_mean = mean(wise_speedups);
  const double ie_mean = mean(ie_speedups);
  std::printf("\nIE stand-in mean speedup over MKL: %.2fx (paper: 2.11x)\n",
              ie_mean);
  std::printf("WISE mean speedup over MKL:        %.2fx (paper: 2.4x)\n",
              wise_mean);
  std::printf("WISE vs IE:                        %.2fx (paper: 1.14x)\n",
              wise_mean / ie_mean);
  std::printf("IE mean preprocessing overhead:    %.2f MKL iterations "
              "(paper: 17.43)\n",
              mean(ie_overheads));
  std::printf("WISE mean preprocessing overhead:  %.2f MKL iterations "
              "(paper: 8.33)\n",
              mean(wise_overheads));
  std::printf("WISE overhead as %% of IE:          %.0f%% (paper: <50%%)\n",
              100.0 * mean(wise_overheads) / mean(ie_overheads));
  return 0;
}
