// Fig 7 reproduction: histogram of the row-nonzero p-ratio (P_R) over the
// scientific corpus. The paper uses this to show SuiteSparse's bias toward
// balanced matrices (most P_R > 0.4); our stand-in corpus must show the
// same shape for the substitution to be valid.

#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Fig 7: P_R histogram, sci corpus ==\n");
  std::printf("(paper: most SuiteSparse matrices have P_R > 0.4)\n\n");
  const auto records = load_records(sci_corpus());

  Histogram hist(0.0, 0.5, 10);
  int above_04 = 0;
  for (const auto& rec : records) {
    const double pr = record_feature(rec, "pratio_R");
    hist.add(pr);
    if (pr > 0.4) ++above_04;
  }
  std::fputs(hist.render().c_str(), stdout);
  std::printf("\nMatrices with P_R > 0.4: %d of %zu (%.0f%%)\n", above_04,
              records.size(),
              100.0 * above_04 / static_cast<double>(records.size()));
  return 0;
}
