// Ablation (DESIGN.md §8): decision tree (the paper's model) vs a
// random-forest ensemble vs a majority-class baseline, on the five
// representative per-config models. Quantifies how much the paper's
// single-tree choice leaves on the table.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "ml/forest.hpp"
#include "features/extractor.hpp"
#include "ml/validation.hpp"
#include "wise/speedup_class.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Ablation: tree vs forest vs majority-class ==\n");
  const auto records = load_records(full_corpus());
  const auto configs = all_method_configs();

  const std::vector<std::string> representative = {
      "SELLPACK/c8/StCont", "Sell-c-s/c8/s4096/StCont", "Sell-c-R/c8",
      "LAV-1Seg/c8", "LAV/c8/T0.8"};

  std::printf("%-26s %10s %10s %10s\n", "model", "tree", "forest", "majority");
  for (const auto& name : representative) {
    std::size_t target = configs.size();
    for (std::size_t c = 0; c < configs.size(); ++c) {
      if (configs[c].name() == name) target = c;
    }
    std::vector<int> labels(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      labels[i] = classify_relative_time(records[i].rel_time(target));
    }

    const auto folds = stratified_kfold(labels, 10, 0xAB);
    int tree_hits = 0, forest_hits = 0, majority_hits = 0, total = 0;
    for (const auto& test_fold : folds) {
      std::vector<bool> in_test(records.size(), false);
      for (std::size_t idx : test_fold) in_test[idx] = true;

      Dataset train(feature_names(), kNumSpeedupClasses);
      std::vector<int> class_counts(kNumSpeedupClasses, 0);
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (in_test[i]) continue;
        train.add(records[i].features, labels[i]);
        ++class_counts[static_cast<std::size_t>(labels[i])];
      }
      const int majority = static_cast<int>(
          std::max_element(class_counts.begin(), class_counts.end()) -
          class_counts.begin());

      DecisionTree tree;
      tree.fit(train, {.max_depth = 15, .ccp_alpha = 0.005});
      RandomForest forest;
      forest.fit(train, {.num_trees = 15,
                         .tree = {.max_depth = 15, .ccp_alpha = 0.005},
                         .row_subsample = 0.8});

      for (std::size_t idx : test_fold) {
        tree_hits += tree.predict(records[idx].features) == labels[idx];
        forest_hits += forest.predict(records[idx].features) == labels[idx];
        majority_hits += majority == labels[idx];
        ++total;
      }
    }
    std::printf("%-26s %9.1f%% %9.1f%% %9.1f%%\n", name.c_str(),
                100.0 * tree_hits / total, 100.0 * forest_hits / total,
                100.0 * majority_hits / total);
  }
  std::printf("\n(The tree must clear the majority baseline decisively; the\n");
  std::printf(" forest shows whether ensembling would add accuracy.)\n");
  return 0;
}
