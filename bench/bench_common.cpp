#include "bench_common.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "features/extractor.hpp"
#include "ml/validation.hpp"
#include "wise/model_bank.hpp"
#include "wise/selector.hpp"
#include "wise/speedup_class.hpp"

namespace wise::bench {

std::vector<MatrixRecord> load_records(const std::vector<MatrixSpec>& specs) {
  MeasurementCache cache;
  return cache.get_or_measure(specs);
}

MethodKind family_of(std::size_t config_index) {
  return all_method_configs().at(config_index).kind;
}

std::size_t best_config_in_family(const MatrixRecord& rec, MethodKind kind) {
  const auto configs = all_method_configs();
  std::size_t best = configs.size();
  double best_seconds = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (configs[c].kind == kind && rec.config_seconds[c] < best_seconds) {
      best_seconds = rec.config_seconds[c];
      best = c;
    }
  }
  if (best == configs.size()) {
    throw std::logic_error("best_config_in_family: family absent");
  }
  return best;
}

MethodKind winning_family(const MatrixRecord& rec) {
  return family_of(rec.best_config_index());
}

char family_glyph(MethodKind kind) {
  switch (kind) {
    case MethodKind::kCsr: return 'o';
    case MethodKind::kSellpack: return 'A';
    case MethodKind::kSellCSigma: return '*';
    case MethodKind::kSellCR: return 'x';
    case MethodKind::kLav1Seg: return '+';
    case MethodKind::kLav: return 'v';
    case MethodKind::kBsr: return 'B';
    case MethodKind::kEll: return 'E';
    case MethodKind::kHyb: return 'H';
    case MethodKind::kDia: return 'D';
  }
  return '?';
}

std::vector<WiseOutcome> wise_cross_validation(
    const std::vector<MatrixRecord>& records, const TreeParams& params,
    int folds, std::uint64_t seed) {
  if (records.size() < static_cast<std::size_t>(folds)) {
    throw std::invalid_argument("wise_cross_validation: too few records");
  }
  const auto configs = all_method_configs();

  // Stratify folds by the winning method family so every fold sees every
  // behavior class.
  std::vector<int> strata(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    strata[i] = static_cast<int>(winning_family(records[i]));
  }
  const auto fold_indices = stratified_kfold(strata, folds, seed);

  std::vector<WiseOutcome> outcomes(records.size());
  for (const auto& test_fold : fold_indices) {
    // Assemble the training split: everything outside this fold.
    std::vector<bool> in_test(records.size(), false);
    for (std::size_t idx : test_fold) in_test[idx] = true;

    std::vector<std::vector<double>> features;
    std::vector<std::vector<double>> rel_times;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (in_test[i]) continue;
      features.push_back(records[i].features);
      std::vector<double> rel(configs.size());
      for (std::size_t c = 0; c < configs.size(); ++c) {
        rel[c] = records[i].rel_time(c);
      }
      rel_times.push_back(std::move(rel));
    }
    ModelBank bank;
    bank.train(configs, features, rel_times, params);

    for (std::size_t idx : test_fold) {
      const MatrixRecord& rec = records[idx];
      const auto classes = bank.predict_classes(rec.features);
      const std::size_t sel = select_best_config(configs, classes);

      WiseOutcome& out = outcomes[idx];
      out.id = rec.id;
      out.selected_config = sel;
      out.predicted_class = classes[sel];
      out.wise_seconds = rec.config_seconds[sel];
      out.speedup_over_mkl = rec.mkl_seconds / out.wise_seconds;
      out.oracle_speedup_over_mkl =
          rec.mkl_seconds / rec.config_seconds[rec.best_config_index()];
      out.overhead_mkl_iters =
          (rec.feature_seconds + rec.config_prep_seconds[sel]) /
          rec.mkl_seconds;
    }
  }
  return outcomes;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double record_feature(const MatrixRecord& rec, const std::string& name) {
  const auto& names = feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return rec.features[i];
  }
  throw std::out_of_range("record_feature: unknown feature " + name);
}

}  // namespace wise::bench
