#pragma once
// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench loads (or lazily builds) the shared measurement cache, so the
// first binary run pays the corpus measurement cost and the rest start
// instantly. All analysis helpers consume MatrixRecords.

#include <string>
#include <vector>

#include "exp/cache.hpp"
#include "exp/corpus.hpp"
#include "ml/decision_tree.hpp"
#include "spmv/method.hpp"

namespace wise::bench {

/// Measures (or loads) the given specs through the shared cache.
std::vector<MatrixRecord> load_records(const std::vector<MatrixSpec>& specs);

/// Method family of a configuration index (into all_method_configs()).
MethodKind family_of(std::size_t config_index);

/// Best (fastest) configuration index restricted to one family.
std::size_t best_config_in_family(const MatrixRecord& rec, MethodKind kind);

/// Family of the overall fastest configuration.
MethodKind winning_family(const MatrixRecord& rec);

/// Single-character glyph per family for the Fig 5/6 grids:
/// CSR 'o', SELLPACK 'A', Sell-c-σ '*', Sell-c-R 'x', LAV-1Seg '+',
/// LAV 'v' (mirroring the paper's legend).
char family_glyph(MethodKind kind);

/// Per-matrix outcome of a cross-validated WISE evaluation.
struct WiseOutcome {
  std::string id;
  std::size_t selected_config = 0;   ///< index into all_method_configs()
  int predicted_class = 0;
  double wise_seconds = 0;           ///< measured time of the selected config
  double speedup_over_mkl = 0;       ///< mkl_seconds / wise_seconds
  double oracle_speedup_over_mkl = 0;
  double overhead_mkl_iters = 0;     ///< (features + conversion) / mkl time
};

/// Trains per-config models with k-fold cross-validation and evaluates the
/// full WISE pipeline on each held-out matrix (paper §6.3). Every matrix is
/// scored exactly once, by a model bank that never saw it.
std::vector<WiseOutcome> wise_cross_validation(
    const std::vector<MatrixRecord>& records, const TreeParams& params = {},
    int folds = 10, std::uint64_t seed = 0xf01d5);

/// Arithmetic mean of a vector (0 for empty).
double mean(const std::vector<double>& values);

/// Feature-vector column by name (throws on unknown names).
double record_feature(const MatrixRecord& rec, const std::string& name);

}  // namespace wise::bench
