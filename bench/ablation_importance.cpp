// Feature-importance report: which of the 67 features each representative
// model actually splits on. This grounds the paper's Table 2 "What They
// Determine" column in measurements — e.g. the CSR-scheduling model should
// lean on row-skew features, the LAV models on column-skew and size.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "features/extractor.hpp"
#include "wise/speedup_class.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Feature importances per representative model ==\n");
  const auto records = load_records(full_corpus());
  const auto configs = all_method_configs();
  const auto& names = feature_names();

  const std::vector<std::string> representative = {
      "CSR/Dyn",
      "SELLPACK/c8/StCont",
      "Sell-c-s/c8/s4096/StCont",
      "Sell-c-R/c8",
      "LAV-1Seg/c8",
      "LAV/c8/T0.8",
  };

  for (const auto& name : representative) {
    std::size_t target = configs.size();
    for (std::size_t c = 0; c < configs.size(); ++c) {
      if (configs[c].name() == name) target = c;
    }
    Dataset ds(names, kNumSpeedupClasses);
    for (const auto& rec : records) {
      ds.add(rec.features, classify_relative_time(rec.rel_time(target)));
    }
    DecisionTree tree;
    tree.fit(ds, {.max_depth = 15, .ccp_alpha = 0.005});
    const auto imp = tree.feature_importances(names.size());

    std::vector<std::size_t> order(names.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&imp](std::size_t a, std::size_t b) {
      return imp[a] > imp[b];
    });

    std::printf("\n--- %s (%d nodes, depth %d) ---\n", name.c_str(),
                tree.num_nodes(), tree.depth());
    for (int k = 0; k < 8 && imp[order[static_cast<std::size_t>(k)]] > 0;
         ++k) {
      const std::size_t f = order[static_cast<std::size_t>(k)];
      std::printf("  %-20s %5.1f%%\n", names[f].c_str(), 100.0 * imp[f]);
    }
  }
  std::printf("\n(Expected per Table 2: scheduling/padding models lean on\n");
  std::printf(" R-distribution skew; LAV-family models on C-distribution\n");
  std::printf(" skew and matrix size.)\n");
  return 0;
}
