// Amortization ablation (extension of §4.4): the paper treats
// preprocessing cost as a tie-break because its workloads iterate SpMV
// many times. This bench quantifies what happens for *short* runs: for
// expected iteration counts N ∈ {1, 5, 20, 100, 1000}, compare the total
// cost (selection's prep + N SpMV iterations, in units of MKL iterations)
// achieved by (a) the paper's heuristic and (b) the amortization-aware
// dual-model selector, both cross-validated.

#include <cstdio>

#include "bench_common.hpp"
#include "ml/validation.hpp"
#include "util/ascii_plot.hpp"
#include "wise/amortized.hpp"
#include "wise/model_bank.hpp"
#include "wise/selector.hpp"

using namespace wise;
using namespace wise::bench;

namespace {

/// Mean end-to-end cost ratio vs MKL over the corpus, for a fixed N:
/// (prep_selected + N * t_selected) / (N * t_mkl). Below 1 = wins.
struct CostRow {
  double paper = 0;
  double amortized = 0;
};

}  // namespace

int main() {
  std::printf("== Ablation: amortization-aware selection ==\n");
  const auto records = load_records(full_corpus());
  const auto configs = all_method_configs();

  const std::vector<double> iteration_counts = {1, 5, 20, 100, 1000};

  std::vector<int> strata(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    strata[i] = static_cast<int>(winning_family(records[i]));
  }
  const auto folds = stratified_kfold(strata, 10, 0xA3);

  std::vector<CostRow> totals(iteration_counts.size());
  for (const auto& test_fold : folds) {
    std::vector<bool> in_test(records.size(), false);
    for (std::size_t idx : test_fold) in_test[idx] = true;

    std::vector<std::vector<double>> features, rel_times, prep_iters;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (in_test[i]) continue;
      features.push_back(records[i].features);
      const double best_csr = records[i].best_csr_seconds();
      std::vector<double> rel(configs.size()), prep(configs.size());
      for (std::size_t c = 0; c < configs.size(); ++c) {
        rel[c] = records[i].rel_time(c);
        prep[c] = records[i].config_prep_seconds[c] / best_csr;
      }
      rel_times.push_back(std::move(rel));
      prep_iters.push_back(std::move(prep));
    }

    ModelBank paper_bank;
    paper_bank.train(configs, features, rel_times);
    AmortizedWise amortized;
    amortized.train(configs, features, rel_times, prep_iters);

    for (std::size_t idx : test_fold) {
      const auto& rec = records[idx];
      const auto classes = paper_bank.predict_classes(rec.features);
      const std::size_t paper_sel = select_best_config(configs, classes);
      for (std::size_t ni = 0; ni < iteration_counts.size(); ++ni) {
        const double n = iteration_counts[ni];
        auto total_cost = [&](std::size_t sel) {
          return (rec.config_prep_seconds[sel] +
                  n * rec.config_seconds[sel]) /
                 (n * rec.mkl_seconds);
        };
        totals[ni].paper += total_cost(paper_sel);

        const AmortizedChoice am = amortized.choose(rec.features, n);
        std::size_t am_sel = configs.size();
        for (std::size_t c = 0; c < configs.size(); ++c) {
          if (configs[c] == am.config) am_sel = c;
        }
        totals[ni].amortized += total_cost(am_sel);
      }
    }
  }

  std::printf("\nMean end-to-end cost relative to N MKL iterations\n");
  std::printf("(lower is better; < 1 beats MKL including conversion):\n\n");
  std::printf("%8s %14s %14s\n", "N iters", "paper-heur", "amortized");
  const auto count = static_cast<double>(records.size());
  for (std::size_t ni = 0; ni < iteration_counts.size(); ++ni) {
    std::printf("%8.0f %14.3f %14.3f\n", iteration_counts[ni],
                totals[ni].paper / count, totals[ni].amortized / count);
  }
  std::printf("\n(The amortized selector should win at small N by choosing\n");
  std::printf(" cheap formats, and converge to the paper's heuristic as N\n");
  std::printf(" grows.)\n");
  return 0;
}
