// Fig 2 reproduction: per-matrix speedup of each vectorized SpMV method
// (and the MKL stand-in) over the best CSR implementation, on the
// scientific corpus, grouped by the winning method.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Fig 2: method speedups over best CSR (sci corpus) ==\n");
  const auto records = load_records(sci_corpus());

  const std::vector<MethodKind> families = {
      MethodKind::kSellpack, MethodKind::kSellCSigma, MethodKind::kSellCR,
      MethodKind::kLav1Seg, MethodKind::kLav};

  // Group matrices by winning family, like the paper's x-axis grouping.
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return static_cast<int>(winning_family(records[a])) <
           static_cast<int>(winning_family(records[b]));
  });

  std::printf("%-22s %8s %8s %8s %8s %8s %8s %10s\n", "matrix", "SELLP",
              "Sell-c-s", "Sell-c-R", "LAV-1Seg", "LAV", "MKL", "winner");
  for (std::size_t idx : order) {
    const auto& rec = records[idx];
    const double best_csr = rec.best_csr_seconds();
    std::printf("%-22s", rec.id.c_str());
    for (MethodKind f : families) {
      const double speedup =
          best_csr / rec.config_seconds[best_config_in_family(rec, f)];
      std::printf(" %8.3f", speedup);
    }
    std::printf(" %8.3f", best_csr / rec.mkl_seconds);
    std::printf(" %10s\n", method_kind_name(winning_family(rec)));
  }

  // Per-family summary over the matrices that family wins (paper text:
  // SELLPACK 1.05-1.31x over 25 matrices, Sell-c-σ 1.00-1.76x over 66...).
  std::printf("\nSummary over matrices won by each family:\n");
  std::printf("%-10s %6s %8s %8s %8s\n", "family", "#wins", "min", "mean",
              "max");
  std::map<MethodKind, std::vector<double>> wins;
  for (const auto& rec : records) {
    const std::size_t best = rec.best_config_index();
    wins[family_of(best)].push_back(rec.best_csr_seconds() /
                                    rec.config_seconds[best]);
  }
  for (const auto& [family, speedups] : wins) {
    const auto [mn, mx] = std::minmax_element(speedups.begin(), speedups.end());
    std::printf("%-10s %6zu %8.3f %8.3f %8.3f\n", method_kind_name(family),
                speedups.size(), *mn, mean(speedups), *mx);
  }
  return 0;
}
