// Fig 6 reproduction: fastest method and best speedup across a
// (rows x avg-degree) grid of LowLoc and HighLoc RMAT matrices.

#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

using namespace wise;
using namespace wise::bench;

namespace {

void run_class(RmatClass cls) {
  const auto records = load_records(sweep_grid(cls));
  const auto rows = sweep_rows();
  const auto degrees = sweep_degrees();

  std::vector<std::string> x_labels, y_labels;
  for (auto r : rows) x_labels.push_back(std::to_string(r));
  for (std::size_t d = degrees.size(); d-- > 0;) {
    y_labels.push_back(fmt(degrees[d], 0));
  }

  std::vector<std::vector<char>> glyphs;
  std::vector<std::vector<std::string>> speedups;
  for (std::size_t d = degrees.size(); d-- > 0;) {
    std::vector<char> grow;
    std::vector<std::string> srow;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const auto& rec = records[r * degrees.size() + d];
      grow.push_back(family_glyph(winning_family(rec)));
      srow.push_back(fmt(rec.best_csr_seconds() /
                             rec.config_seconds[rec.best_config_index()],
                         2));
    }
    glyphs.push_back(std::move(grow));
    speedups.push_back(std::move(srow));
  }

  std::printf("\n--- %s: fastest method ---\n", rmat_class_name(cls));
  std::printf("legend: o=CSR A=SELLPACK *=Sell-c-s x=Sell-c-R +=LAV-1Seg v=LAV\n");
  std::fputs(
      render_glyph_grid(x_labels, y_labels, glyphs, "#rows", "nnz/row").c_str(),
      stdout);
  std::printf("\n--- %s: best speedup over best CSR ---\n",
              rmat_class_name(cls));
  std::fputs(render_table(x_labels, y_labels, speedups, "nnz/row\\rows").c_str(),
             stdout);
}

}  // namespace

int main() {
  std::printf("== Fig 6: locality sweep (LowLoc vs HighLoc RMAT) ==\n");
  std::printf("(paper: Sell-c-s dominates HighLoc everywhere; for LowLoc\n");
  std::printf(" LAV takes over at high average degree)\n");
  run_class(RmatClass::kLowLoc);
  run_class(RmatClass::kHighLoc);
  return 0;
}
