// Kernel microbenchmarks (google-benchmark): SpMV throughput of every
// method family on fixed representative matrices, plus conversion cost.

#include <benchmark/benchmark.h>

#include "exp/spec.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/executor.hpp"
#include "util/prng.hpp"

namespace {

using namespace wise;

/// Fixture matrices: a low-skew scientific-like matrix and a power-law one.
const CsrMatrix& scientific_matrix() {
  static const CsrMatrix m =
      CsrMatrix::from_coo(generate_banded(16384, 16, 0.5, 42));
  return m;
}

const CsrMatrix& powerlaw_matrix() {
  static const CsrMatrix m = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kHighSkew, 16384, 16), 42));
  return m;
}

const CsrMatrix& pick(int which) {
  return which == 0 ? scientific_matrix() : powerlaw_matrix();
}

void run_config(benchmark::State& state, const MethodConfig& cfg) {
  const CsrMatrix& m = pick(static_cast<int>(state.range(0)));
  PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
  aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
  aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  Xoshiro256 rng(1);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());

  for (auto _ : state) {
    pm.run(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
  state.counters["nnz"] = static_cast<double>(m.nnz());
  state.counters["prep_ms"] = pm.prep_seconds() * 1e3;
}

void BM_CsrDyn(benchmark::State& s) {
  run_config(s, {.kind = MethodKind::kCsr, .sched = Schedule::kDyn});
}
void BM_CsrStCont(benchmark::State& s) {
  run_config(s, {.kind = MethodKind::kCsr, .sched = Schedule::kStCont});
}
void BM_Sellpack(benchmark::State& s) {
  run_config(s,
             {.kind = MethodKind::kSellpack, .sched = Schedule::kStCont, .c = 8});
}
void BM_SellCSigma(benchmark::State& s) {
  run_config(s, {.kind = MethodKind::kSellCSigma,
                 .sched = Schedule::kStCont,
                 .c = 8,
                 .sigma = 4096});
}
void BM_SellCR(benchmark::State& s) {
  run_config(s, {.kind = MethodKind::kSellCR,
                 .sched = Schedule::kDyn,
                 .c = 8,
                 .sigma = kSigmaAll});
}
void BM_Lav1Seg(benchmark::State& s) {
  run_config(s, {.kind = MethodKind::kLav1Seg,
                 .sched = Schedule::kDyn,
                 .c = 8,
                 .sigma = kSigmaAll});
}
void BM_Lav(benchmark::State& s) {
  run_config(s, {.kind = MethodKind::kLav,
                 .sched = Schedule::kDyn,
                 .c = 8,
                 .sigma = kSigmaAll,
                 .T = 0.8});
}

void BM_MklLike(benchmark::State& state) {
  const CsrMatrix& m = pick(static_cast<int>(state.range(0)));
  aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
  aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  Xoshiro256 rng(1);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());
  for (auto _ : state) {
    spmv_csr_mkl_like(m, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}

void BM_Convert(benchmark::State& state) {
  // Conversion (preprocessing) cost of the most expensive format, LAV.
  const CsrMatrix& m = pick(static_cast<int>(state.range(0)));
  const MethodConfig cfg{.kind = MethodKind::kLav,
                         .sched = Schedule::kDyn,
                         .c = 8,
                         .sigma = kSigmaAll,
                         .T = 0.8};
  for (auto _ : state) {
    PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
    benchmark::DoNotOptimize(pm.memory_bytes());
  }
}

// Arg 0 = scientific/banded, 1 = power-law.
#define WISE_BENCH(fn) BENCHMARK(fn)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond)
WISE_BENCH(BM_CsrDyn);
WISE_BENCH(BM_CsrStCont);
WISE_BENCH(BM_Sellpack);
WISE_BENCH(BM_SellCSigma);
WISE_BENCH(BM_SellCR);
WISE_BENCH(BM_Lav1Seg);
WISE_BENCH(BM_Lav);
WISE_BENCH(BM_MklLike);
BENCHMARK(BM_Convert)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
