// Ablation (DESIGN.md §8): speedup-class granularity. The paper uses seven
// relative-time classes (C0-C6); this ablation retrains the pipeline with a
// coarse 3-class scheme (slower / parity / faster) and compares the
// end-to-end speedup WISE achieves. Coarser classes blur the ranking among
// winning configurations and should cost real speedup.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "features/extractor.hpp"
#include "ml/validation.hpp"
#include "wise/selector.hpp"
#include "wise/speedup_class.hpp"

using namespace wise;
using namespace wise::bench;

namespace {

/// Generic CV evaluation with a custom rel-time → class mapping.
double eval_with_classes(const std::vector<MatrixRecord>& records,
                         int num_classes, int (*classify)(double)) {
  const auto configs = all_method_configs();
  std::vector<int> strata(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    strata[i] = static_cast<int>(winning_family(records[i]));
  }
  const auto folds = stratified_kfold(strata, 10, 0xC1A55);

  std::vector<double> speedups(records.size());
  for (const auto& test_fold : folds) {
    std::vector<bool> in_test(records.size(), false);
    for (std::size_t idx : test_fold) in_test[idx] = true;

    // One tree per configuration on the coarse labels.
    std::vector<DecisionTree> trees(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      Dataset train(feature_names(), num_classes);
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (in_test[i]) continue;
        train.add(records[i].features, classify(records[i].rel_time(c)));
      }
      trees[c].fit(train, {.max_depth = 15, .ccp_alpha = 0.005});
    }
    for (std::size_t idx : test_fold) {
      std::vector<int> classes(configs.size());
      for (std::size_t c = 0; c < configs.size(); ++c) {
        classes[c] = trees[c].predict(records[idx].features);
      }
      const std::size_t sel = select_best_config(configs, classes);
      speedups[idx] =
          records[idx].mkl_seconds / records[idx].config_seconds[sel];
    }
  }
  return mean(speedups);
}

int classify7(double rel) { return classify_relative_time(rel); }

int classify3(double rel) {
  if (rel > 1.05) return 0;  // slower
  if (rel > 0.85) return 1;  // parity-ish
  return 2;                  // clearly faster
}

// 9 classes: the paper's C0..C5 plus C6 split into three bands. On this
// substrate speedups beyond 2x are common, so the paper's open-ended C6
// saturates and the tie-break (not the model) ranks the contenders; extra
// granularity below 0.55 restores ranking power.
int classify9(double rel) {
  const int base = classify_relative_time(rel);
  if (base < 6) return base;
  if (rel > 0.45) return 6;
  if (rel > 0.35) return 7;
  return 8;
}

}  // namespace

int main() {
  std::printf("== Ablation: speedup-class granularity (3 vs 7 vs 9) ==\n");
  const auto records = load_records(full_corpus());

  const double seven = eval_with_classes(records, kNumSpeedupClasses,
                                         classify7);
  const double three = eval_with_classes(records, 3, classify3);
  const double nine = eval_with_classes(records, 9, classify9);

  std::printf("\nMean WISE speedup over MKL:\n");
  std::printf("  3 classes (coarse):             %.2fx\n", three);
  std::printf("  7 classes (paper's C0-C6):      %.2fx\n", seven);
  std::printf("  9 classes (C6 split, see note): %.2fx\n", nine);
  std::printf("\n(On this substrate speedups beyond 2x are common, so the\n");
  std::printf(" paper's open-ended C6 saturates; the 9-class arm shows how\n");
  std::printf(" much ranking power finer fast-end classes restore.)\n");
  return 0;
}
