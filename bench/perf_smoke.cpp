// perf_smoke — fixed deterministic benchmark suite emitting BENCH_<sha>.json.
//
// Runs in a couple of seconds and covers the three costs WISE's value
// proposition hangs on (paper Figs 2-13): feature-extraction time, the
// per-configuration SpMV kernels of the 29-config registry, and the full
// choose→prepare pipeline including model inference. Timings are recorded
// twice: as explicit min/mean/max benchmark rows, and as the embedded
// wise-metrics snapshot collected by the library's own instrumentation —
// so the report also proves the observability layer sees every stage.
//
//   perf_smoke [--quick] [--out-dir DIR]
//
//   --quick     shrink matrix sizes/iterations (used by the ctest
//               bench-smoke label so `ctest` stays fast)
//   --out-dir   directory for BENCH_<sha>.json (default ".")
//
// The git sha in the file name comes from WISE_GIT_SHA, then GITHUB_SHA,
// then "local". The process exits nonzero if the written report fails to
// re-parse or is missing benchmarks/metrics — the CI perf-smoke job relies
// on that self-check plus its own validation pass. Timings themselves are
// informational (runner noise must not fail CI); only report *shape* gates.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <omp.h>

#include "exp/measure.hpp"
#include "exp/spec.hpp"
#include "exp/train.hpp"
#include "features/extractor.hpp"
#include "gen/generators.hpp"
#include "hw/probe.hpp"
#include "obs/metrics.hpp"
#include "sparse/dia.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "serve/server.hpp"
#include "spmm/spmm.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/executor.hpp"
#include "spmv/method.hpp"
#include "spmv/plan.hpp"
#include "util/aligned.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"
#include "wise/amortized.hpp"
#include "wise/pipeline.hpp"

using namespace wise;

namespace {

struct SuiteMatrix {
  std::string name;
  CsrMatrix m;
};

obs::JsonValue matrix_params(const CsrMatrix& m) {
  obs::JsonValue p = obs::JsonValue::object();
  p.set("nrows", static_cast<std::int64_t>(m.nrows()));
  p.set("ncols", static_cast<std::int64_t>(m.ncols()));
  p.set("nnz", static_cast<std::int64_t>(m.nnz()));
  return p;
}

/// The fixed suite: two RMAT classes spanning the skew axis plus one RGG
/// for the locality axis. Seeds are pinned so every run and every machine
/// benches byte-identical matrices.
std::vector<SuiteMatrix> build_suite(bool quick) {
  const index_t n = quick ? 2048 : 8192;
  const double deg = 8.0;
  std::vector<SuiteMatrix> suite;
  suite.push_back({"rmat-hs", CsrMatrix::from_coo(generate_rmat(
                                  rmat_class_params(RmatClass::kHighSkew, n, deg), 42))});
  suite.push_back({"rmat-ls", CsrMatrix::from_coo(generate_rmat(
                                  rmat_class_params(RmatClass::kLowSkew, n, deg), 42))});
  suite.push_back({"rgg", CsrMatrix::from_coo(generate_rgg(n, deg, 42))});
  return suite;
}

/// Tiny training corpus for the pipeline stage: distinct from the suite
/// matrices (different n, seeds) so choose() predicts on unseen inputs.
std::vector<MatrixSpec> training_corpus(bool quick) {
  const index_t n = quick ? 512 : 1024;
  std::vector<MatrixSpec> specs;
  std::uint64_t seed = 7000;
  const auto classes =
      quick ? std::vector<RmatClass>{RmatClass::kHighSkew, RmatClass::kLowLoc}
            : std::vector<RmatClass>{RmatClass::kHighSkew, RmatClass::kMedSkew,
                                     RmatClass::kLowSkew, RmatClass::kLowLoc,
                                     RmatClass::kMedLoc, RmatClass::kHighLoc};
  for (const RmatClass cls : classes) {
    auto s = rmat_spec(cls, n, 8.0, seed++);
    s.id = "smoke-" + s.id;
    specs.push_back(std::move(s));
  }
  for (int i = 0; i < 2; ++i) {
    auto s = rgg_spec(n, 8.0, seed++);
    s.id = "smoke-" + s.id;
    specs.push_back(std::move(s));
  }
  return specs;
}

/// Times `passes` invocations of `fn`, returning per-pass seconds / iters.
template <typename Fn>
obs::TimingSummary time_passes(int passes, int iters, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(passes));
  for (int p = 0; p < passes; ++p) {
    Timer t;
    for (int i = 0; i < iters; ++i) fn();
    samples.push_back(t.seconds() / iters);
  }
  return obs::TimingSummary::from_samples(samples, iters);
}

/// Times two competing kernels with alternating passes (A,B,A,B,...) so a
/// transient load burst on a shared runner degrades both sides' windows
/// instead of silently skewing whichever ran second. The perf-gate reads
/// the A/B ratio of the returned min estimates, so this symmetry matters
/// more than it would for a standalone timing.
template <typename FnA, typename FnB>
std::pair<obs::TimingSummary, obs::TimingSummary> time_passes_interleaved(
    int passes, int iters, FnA&& a, FnB&& b) {
  std::vector<double> sa, sb;
  sa.reserve(static_cast<std::size_t>(passes));
  sb.reserve(static_cast<std::size_t>(passes));
  for (int p = 0; p < passes; ++p) {
    {
      Timer t;
      for (int i = 0; i < iters; ++i) a();
      sa.push_back(t.seconds() / iters);
    }
    {
      Timer t;
      for (int i = 0; i < iters; ++i) b();
      sb.push_back(t.seconds() / iters);
    }
  }
  return {obs::TimingSummary::from_samples(sa, iters),
          obs::TimingSummary::from_samples(sb, iters)};
}

int usage() {
  std::fprintf(stderr,
               "usage: perf_smoke [--quick] [--out-dir DIR] [--passes N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_dir = ".";
  int passes_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
      passes_override = std::atoi(argv[++i]);
      if (passes_override < 1) return usage();
    } else {
      return usage();
    }
  }

  // The suite's purpose is producing metrics, so the registry is enabled
  // unconditionally; WISE_METRICS only picks an *additional* output sink.
  auto& metrics = obs::MetricsRegistry::global();
  metrics.set_enabled(true);
  metrics.reset();

  obs::BenchReport report("perf_smoke", obs::bench_git_sha());
  // --passes raises every stage's repetition count (the nightly workflow
  // runs --passes 9 for tighter minima); the kernel stages never drop
  // below their 3-pass floor.
  const int passes = passes_override > 0 ? passes_override : (quick ? 3 : 5);
  const int kernel_passes = std::max(3, passes);

  // --- Stage 1: feature extraction over the seeded suite ------------------
  std::printf("[perf_smoke] feature extraction (%s mode)...\n",
              quick ? "quick" : "full");
  std::vector<SuiteMatrix> suite = build_suite(quick);
  for (const auto& s : suite) {
    const auto timing = time_passes(passes, 1, [&] {
      FeatureVector fv = extract_features(s.m);
      do_not_optimize(fv.values.data());
    });
    report.add("features", "extract/" + s.name, timing, matrix_params(s.m));
  }

  // --- Stage 2: the 29-configuration SpMV registry ------------------------
  std::printf("[perf_smoke] spmv registry (29 configurations)...\n");
  {
    const CsrMatrix& m = suite[1].m;  // rmat-ls: no config degenerates
    aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
    aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
    Xoshiro256 rng(0x5eedf00d);
    for (auto& v : x) v = static_cast<value_t>(rng.next_double());

    const int iters = quick ? 10 : 50;
    for (const MethodConfig& cfg : all_method_configs()) {
      PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
      pm.run(x, y);  // warm-up
      const auto timing = time_passes(kernel_passes, iters, [&] { pm.run(x, y); });
      obs::JsonValue params = matrix_params(m);
      params.set("prep_seconds", pm.prep_seconds());
      report.add("spmv", "run/" + cfg.name(), timing, std::move(params));
    }
  }

  // --- Stage 3: execution plan vs plain schedule(static) ------------------
  // The nnz-balanced plan (spmv/plan.hpp) exists for skewed matrices, where
  // schedule(static)'s equal *row* split leaves one thread holding the hub
  // rows. rmat-hs is exactly that shape; the CI validate step gates
  // plan_vs_static_speedup >= 1.15 at OMP_NUM_THREADS=2 (timings stay
  // informational locally — see the header comment).
  std::printf("[perf_smoke] execution plan vs schedule(static) (rmat-hs)...\n");
  {
    const CsrMatrix& m = suite[0].m;  // rmat-hs: the skew plans exist for
    aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
    aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
    Xoshiro256 rng(0x9a7b11);
    for (auto& v : x) v = static_cast<value_t>(rng.next_double());

    const int iters = quick ? 10 : 50;
    const int threads = omp_get_max_threads();
    const SpmvPlan plan = build_csr_plan(m, Schedule::kStCont, threads);
    const double gflop = 2.0 * static_cast<double>(m.nnz()) / 1e9;

    spmv_csr(m, x, y, Schedule::kStCont);  // warm-up
    const auto legacy = time_passes(kernel_passes, iters, [&] {
      spmv_csr(m, x, y, Schedule::kStCont);
      do_not_optimize(y.data());
    });
    spmv_csr(m, x, y, Schedule::kStCont, plan);  // warm-up
    const auto planned = time_passes(kernel_passes, iters, [&] {
      spmv_csr(m, x, y, Schedule::kStCont, plan);
      do_not_optimize(y.data());
    });

    obs::JsonValue params = matrix_params(m);
    params.set("threads", static_cast<std::int64_t>(threads));
    params.set("plan_blocks", static_cast<std::int64_t>(plan.num_blocks()));
    params.set("plan_bytes", static_cast<std::int64_t>(plan.memory_bytes()));
    params.set("gflops_static", gflop / legacy.min_seconds);
    params.set("gflops_plan", gflop / planned.min_seconds);
    params.set("plan_vs_static_speedup",
               legacy.min_seconds / planned.min_seconds);
    report.add("plan", "csr_static/rmat-hs", legacy, params);
    report.add("plan", "csr_plan/rmat-hs", planned, std::move(params));
    std::printf("[perf_smoke] plan: %d blocks, plan vs static %.2fx\n",
                static_cast<int>(plan.num_blocks()),
                legacy.min_seconds / planned.min_seconds);
  }

  // --- Stage 4: specialized kernel variants vs generic plan ---------------
  // Plan-time specialization (WISE_PLAN_SPECIALIZE, spmv/plan.hpp)
  // classifies each block's row shape and dispatches uniform/wide/merge
  // loops. The skewed RMAT fixture is the headline case (tiny-row scalar
  // fast path); the uniform banded fixture exercises the hoisted-length
  // unroll. The perf-gate CI job gates specialize_vs_generic_speedup >=
  // 1.2 on rmat-hs; both sides are also self-checked bit-identical here,
  // so a miscompiled variant fails the run before CI ever reads a ratio.
  std::printf("[perf_smoke] specialized variants vs generic plan...\n");
  {
    const index_t n = quick ? 2048 : 8192;
    const CsrMatrix banded =
        CsrMatrix::from_coo(generate_banded(n, 8, 1.0, 42));
    const std::vector<std::pair<std::string, const CsrMatrix*>> fixtures = {
        {"rmat-hs", &suite[0].m}, {"banded-u", &banded}};
    // The perf-gate reads this stage's ratio, so the min estimate gets
    // more iterations than the informational stages to shrink its noise.
    const int iters = quick ? 20 : 100;
    const int threads = omp_get_max_threads();

    for (const auto& [name, mp] : fixtures) {
      const CsrMatrix& m = *mp;
      aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
      aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
      Xoshiro256 rng(0xc1a55f1);
      for (auto& v : x) v = static_cast<value_t>(rng.next_double());

      const SpmvPlan generic =
          build_csr_plan(m, Schedule::kStCont, threads, /*specialize=*/false);
      const SpmvPlan spec =
          build_csr_plan(m, Schedule::kStCont, threads, /*specialize=*/true);

      // Self-check: specialization must never change the bits.
      std::vector<value_t> y_generic(y.size()), y_spec(y.size());
      spmv_csr(m, x, y_generic, Schedule::kStCont, generic);
      spmv_csr(m, x, y_spec, Schedule::kStCont, spec);
      if (y_generic != y_spec) {
        std::fprintf(stderr,
                     "[perf_smoke] FAIL: specialized plan not bit-identical "
                     "on %s\n",
                     name.c_str());
        return 1;
      }

      spmv_csr(m, x, y, Schedule::kStCont, generic);  // warm-up
      spmv_csr(m, x, y, Schedule::kStCont, spec);     // warm-up
      const auto [gen_t, spec_t] = time_passes_interleaved(
          kernel_passes, iters,
          [&] {
            spmv_csr(m, x, y, Schedule::kStCont, generic);
            do_not_optimize(y.data());
          },
          [&] {
            spmv_csr(m, x, y, Schedule::kStCont, spec);
            do_not_optimize(y.data());
          });

      const auto hist = spec.variant_histogram();
      obs::JsonValue params = matrix_params(m);
      params.set("threads", static_cast<std::int64_t>(threads));
      params.set("plan_blocks",
                 static_cast<std::int64_t>(spec.num_blocks()));
      params.set("plan_bytes",
                 static_cast<std::int64_t>(spec.memory_bytes()));
      for (std::size_t v = 0; v < kNumKernelVariants; ++v) {
        params.set(std::string("blocks_") +
                       kernel_variant_name(static_cast<KernelVariant>(v)),
                   static_cast<std::int64_t>(hist[v]));
      }
      params.set("specialize_vs_generic_speedup",
                 gen_t.min_seconds / spec_t.min_seconds);
      report.add("specialize", "csr_generic/" + name, gen_t, params);
      report.add("specialize", "csr_special/" + name, spec_t,
                 std::move(params));
      std::printf(
          "[perf_smoke] specialize %s: %d blocks "
          "(g/u/w/m %u/%u/%u/%u), specialized vs generic %.2fx\n",
          name.c_str(), static_cast<int>(spec.num_blocks()), hist[0],
          hist[1], hist[2], hist[3], gen_t.min_seconds / spec_t.min_seconds);
    }

    // SRVPack side of the menu (informational): chunk-level variants on
    // the skewed fixture at the packed format's native lane width.
    {
      const CsrMatrix& m = suite[0].m;
      const SrvPackMatrix p = SrvPackMatrix::build(m, {.c = 8, .sigma = 64});
      aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
      std::vector<value_t> y_generic(static_cast<std::size_t>(m.nrows()));
      std::vector<value_t> y_spec(y_generic.size());
      Xoshiro256 rng(0xc1a55f2);
      for (auto& v : x) v = static_cast<value_t>(rng.next_double());
      const SrvPlan generic =
          build_srv_plan(p, Schedule::kStCont, threads, /*specialize=*/false);
      const SrvPlan spec =
          build_srv_plan(p, Schedule::kStCont, threads, /*specialize=*/true);
      SrvWorkspace ws;
      spmv_srvpack(p, x, y_generic, Schedule::kStCont, ws, &generic);
      spmv_srvpack(p, x, y_spec, Schedule::kStCont, ws, &spec);
      if (y_generic != y_spec) {
        std::fprintf(stderr,
                     "[perf_smoke] FAIL: specialized SRVPack plan not "
                     "bit-identical on rmat-hs\n");
        return 1;
      }
      const auto [gen_t, spec_t] = time_passes_interleaved(
          kernel_passes, iters,
          [&] {
            spmv_srvpack(p, x, y_generic, Schedule::kStCont, ws, &generic);
            do_not_optimize(y_generic.data());
          },
          [&] {
            spmv_srvpack(p, x, y_spec, Schedule::kStCont, ws, &spec);
            do_not_optimize(y_spec.data());
          });
      obs::JsonValue params = matrix_params(m);
      params.set("threads", static_cast<std::int64_t>(threads));
      params.set("specialize_vs_generic_speedup",
                 gen_t.min_seconds / spec_t.min_seconds);
      report.add("specialize", "srv_generic/rmat-hs", gen_t, params);
      report.add("specialize", "srv_special/rmat-hs", spec_t,
                 std::move(params));
      std::printf("[perf_smoke] specialize srvpack: %.2fx\n",
                  gen_t.min_seconds / spec_t.min_seconds);
    }
  }

  // --- Stage 4b: extension formats vs best CSR on the banded fixture ------
  // DIA exists for exactly this shape: a fully banded matrix is a handful
  // of dense diagonals, so its kernel runs pure unit-stride triad loops
  // with no column-index loads at all. The CI perf-gate reads
  // dia_vs_best_csr_speedup >= 1.3; ELL and HYB are recorded
  // informationally on the same fixture (docs/FORMATS.md's when-wins
  // table cites these rows). Every format result is self-checked
  // bit-identical to the serial CSR reference before anything is timed.
  std::printf("[perf_smoke] extension formats vs best CSR (banded)...\n");
  {
    const index_t n = quick ? 2048 : 8192;
    const CsrMatrix banded =
        CsrMatrix::from_coo(generate_banded(n, 8, 1.0, 42));
    aligned_vector<value_t> x(static_cast<std::size_t>(banded.ncols()));
    aligned_vector<value_t> y(static_cast<std::size_t>(banded.nrows()));
    Xoshiro256 rng(0xd1a60);
    for (auto& v : x) v = static_cast<value_t>(rng.next_double());
    std::vector<value_t> y_ref(static_cast<std::size_t>(banded.nrows()));
    spmv_reference(banded, x, y_ref);

    const int iters = quick ? 20 : 100;

    // Best CSR arm: the fastest of the three CSR scheduling variants on
    // this fixture, picked by a short calibration pass.
    std::vector<PreparedMatrix> csr_pms;
    std::size_t best_csr = 0;
    double best_csr_seconds = 0.0;
    std::string best_csr_name;
    for (const MethodConfig& cfg : all_method_configs()) {
      if (cfg.kind != MethodKind::kCsr) continue;
      PreparedMatrix pm = PreparedMatrix::prepare(banded, cfg);
      pm.run(x, y);  // warm-up
      const auto t = time_passes(3, iters / 2, [&] { pm.run(x, y); });
      if (csr_pms.empty() || t.min_seconds < best_csr_seconds) {
        best_csr = csr_pms.size();
        best_csr_seconds = t.min_seconds;
        best_csr_name = cfg.name();
      }
      csr_pms.push_back(std::move(pm));
    }
    PreparedMatrix& csr_pm = csr_pms[best_csr];

    // Bit-identity self-check, then one timed interleaved A/B per format.
    const double gflop = 2.0 * static_cast<double>(banded.nnz()) / 1e9;
    const DiaAnalysis dia_info = DiaMatrix::analyze(banded);
    double dia_speedup = 0.0;
    for (const char* fmt_name : {"ELL", "HYB/k8", "DIA"}) {
      const MethodConfig cfg = parse_method_config(fmt_name);
      PreparedMatrix pm = PreparedMatrix::prepare(banded, cfg);
      std::fill(y.begin(), y.end(), static_cast<value_t>(0));
      pm.run(x, y);
      if (!std::equal(y_ref.begin(), y_ref.end(), y.begin())) {
        std::fprintf(stderr,
                     "[perf_smoke] FAIL: %s not bit-identical to the serial "
                     "CSR reference on banded\n",
                     fmt_name);
        return 1;
      }
      const auto [csr_t, fmt_t] = time_passes_interleaved(
          kernel_passes, iters,
          [&] {
            csr_pm.run(x, y);
            do_not_optimize(y.data());
          },
          [&] {
            pm.run(x, y);
            do_not_optimize(y.data());
          });
      const double speedup = csr_t.min_seconds / fmt_t.min_seconds;
      obs::JsonValue params = matrix_params(banded);
      params.set("best_csr", best_csr_name);
      params.set("prep_seconds", pm.prep_seconds());
      params.set("gflops_csr", gflop / csr_t.min_seconds);
      params.set("gflops_format", gflop / fmt_t.min_seconds);
      if (cfg.kind == MethodKind::kDia) {
        dia_speedup = speedup;
        params.set("ndiags", static_cast<std::int64_t>(dia_info.ndiags));
        params.set("diag_fill", dia_info.fill);
        params.set("dia_vs_best_csr_speedup", speedup);
      } else {
        params.set("format_vs_best_csr_speedup", speedup);
      }
      std::string row = cfg.name();
      for (auto& ch : row) {
        if (ch == '/') ch = '_';
      }
      report.add("formats", row + "/banded", fmt_t, std::move(params));
    }
    {
      obs::JsonValue params = matrix_params(banded);
      params.set("config", best_csr_name);
      report.add("formats", "csr_best/banded",
                 time_passes(kernel_passes, iters,
                             [&] {
                               csr_pm.run(x, y);
                               do_not_optimize(y.data());
                             }),
                 std::move(params));
    }
    std::printf("[perf_smoke] formats: DIA vs %s %.2fx (%d diagonals)\n",
                best_csr_name.c_str(), dia_speedup,
                static_cast<int>(dia_info.ndiags));
  }

  // --- Stage 4c: the machine probe ----------------------------------------
  // Hardware-conditioned banks (ModelBank v3, docs/FEATURES.md) append
  // these five columns at choose() time; the row records what this runner
  // looks like and how long one full probe costs (the process-wide probe
  // itself is resolved once and cached). WISE_HW_PROBE=off zeroes the
  // numbers but the row still appears — report shape is machine-invariant.
  {
    Timer t;
    const hw::MachineProbe fresh = hw::run_probe();
    const double probe_seconds = t.seconds();
    obs::JsonValue params = obs::JsonValue::object();
    params.set("threads", static_cast<std::int64_t>(fresh.hardware_threads));
    params.set("l1d_kib", static_cast<std::int64_t>(fresh.l1d_bytes / 1024));
    params.set("l2_kib", static_cast<std::int64_t>(fresh.l2_bytes / 1024));
    params.set("llc_kib", static_cast<std::int64_t>(fresh.llc_bytes / 1024));
    params.set("stream_gbs", fresh.stream_triad_gbs);
    report.add("hw", "probe",
               obs::TimingSummary::from_samples({probe_seconds}, 1),
               std::move(params));
    std::printf("[perf_smoke] hw probe: %d threads, %.1f GB/s triad "
                "(%.1f ms)\n",
                fresh.hardware_threads, fresh.stream_triad_gbs,
                probe_seconds * 1e3);
  }

  // --- Stage 5: full pipeline choose/prepare ------------------------------
  std::printf("[perf_smoke] pipeline choose (training smoke bank)...\n");
  std::shared_ptr<const Wise> predictor;
  // Kept past this stage: the SOLVE session stage trains the amortized
  // dual-model selector from the same measurement records.
  std::vector<MatrixRecord> records;
  {
    for (const MatrixSpec& spec : training_corpus(quick)) {
      records.push_back(measure_matrix(spec, {.iters = 2, .repeats = 1}));
    }
    predictor = std::make_shared<const Wise>(train_model_bank(records));
    for (const auto& s : suite) {
      const auto timing = time_passes(passes, 1, [&] {
        WiseChoice c = predictor->choose(s.m);
        do_not_optimize(c.predicted_class);
      });
      WiseChoice choice;
      PreparedMatrix pm = predictor->prepare(s.m, choice);
      obs::JsonValue params = matrix_params(s.m);
      params.set("selected", choice.config.name());
      params.set("fell_back", choice.fell_back());
      params.set("prep_seconds", pm.prep_seconds());
      report.add("pipeline", "choose/" + s.name, timing, std::move(params));
    }
  }

  // --- Stage 6: flattened vs recursive tree inference ---------------------
  // The model bank serves predictions from the flattened packed-node
  // ensemble (ml/flat_tree.hpp). Time it against the per-tree recursive
  // walk it replaced, over feature vectors the bank has not seen. The bank
  // is trained here at paper scale (29 configs, max_depth 15, hundreds of
  // samples -> trees ~600 nodes deep enough to traverse) rather than
  // reusing the tiny 8-record pipeline smoke bank, whose depth-1 trees
  // would measure loop overhead instead of traversal. The CI validate step
  // gates flat_vs_recursive_speedup >= 2.0.
  std::printf("[perf_smoke] tree inference: flat packed vs recursive...\n");
  {
    const std::vector<MethodConfig> configs = all_method_configs();
    const std::size_t nc = configs.size();
    Xoshiro256 rng(0x7eef);
    std::vector<std::vector<double>> train_x;
    std::vector<std::vector<double>> train_rel;
    const int samples = quick ? 120 : 250;
    for (int i = 0; i < samples; ++i) {
      std::vector<double> f(feature_count());
      for (auto& v : f) v = rng.next_double() * 100.0;
      std::vector<double> rel(nc);
      for (std::size_t c = 0; c < nc; ++c) {
        // Each config keys off its own feature pair so the 29 trees are
        // non-trivial and mutually distinct.
        const double a = f[c % f.size()];
        const double b = f[(3 * c + 1) % f.size()];
        rel[c] = (a > b) ? 0.4 + 0.01 * static_cast<double>(c % 5) : 1.3;
      }
      train_x.push_back(std::move(f));
      train_rel.push_back(std::move(rel));
    }
    ModelBank bank;
    bank.train(configs, train_x, train_rel,
               {.max_depth = 15, .ccp_alpha = 0.0});
    // Enough distinct probes that the branch predictor cannot memorize the
    // recursive walks' outcome sequence — serving sees fresh matrices, so a
    // small cyclic probe set would flatter the branchy baseline's real cost.
    std::vector<std::vector<double>> probes(1024);
    for (auto& p : probes) {
      p.resize(feature_count());
      for (auto& v : p) v = rng.next_double() * 100.0;
    }
    std::vector<int> out(nc);
    const int iters = quick ? 200 : 1000;
    std::size_t which = 0;

    const auto recursive = time_passes(kernel_passes, iters, [&] {
      const auto& x = probes[which++ % probes.size()];
      for (std::size_t c = 0; c < nc; ++c) out[c] = bank.trees()[c].predict(x);
      do_not_optimize(out.data());
    });
    which = 0;
    const auto flat = time_passes(kernel_passes, iters, [&] {
      bank.predict_classes_into(probes[which++ % probes.size()], out);
      do_not_optimize(out.data());
    });

    obs::JsonValue params = obs::JsonValue::object();
    params.set("trees", static_cast<std::int64_t>(nc));
    params.set("flat_nodes",
               static_cast<std::int64_t>(bank.flat().num_nodes()));
    params.set("flat_bytes",
               static_cast<std::int64_t>(bank.flat().memory_bytes()));
    params.set("predictions_per_sec",
               static_cast<double>(nc) / flat.min_seconds);
    params.set("flat_vs_recursive_speedup",
               recursive.min_seconds / flat.min_seconds);
    report.add("inference", "bank_recursive", recursive, params);
    report.add("inference", "bank_flat", flat, std::move(params));
    std::printf("[perf_smoke] inference: flat vs recursive %.2fx\n",
                recursive.min_seconds / flat.min_seconds);
  }

  // --- Stage 7: blocked SpMM vs k independent plan-SpMVs ------------------
  // The multi-vector kernels (spmm/spmm.hpp) stream A once per register
  // block of RHS columns instead of once per column. Both arms share the
  // same nnz-balanced plan on the skewed fixture, so the ratio isolates
  // the blocking; the blocked result is self-checked bit-identical to the
  // serial reference before anything is timed. The CI perf-gate reads
  // spmm_vs_repeated_spmv_speedup >= 1.3 at k = 8.
  std::printf("[perf_smoke] blocked SpMM vs repeated SpMV (k=8, rmat-hs)...\n");
  {
    const CsrMatrix& m = suite[0].m;  // rmat-hs
    const index_t k = 8;
    const int threads = omp_get_max_threads();
    const SpmvPlan plan = build_csr_plan(m, Schedule::kDyn, threads);
    const spmm::SpmmConfig blocked_cfg = spmm::parse_spmm_config("SpMM/b8/Dyn");

    const std::size_t nc = static_cast<std::size_t>(m.ncols());
    const std::size_t nr = static_cast<std::size_t>(m.nrows());
    const std::size_t ku = static_cast<std::size_t>(k);
    aligned_vector<value_t> xb(nc * ku);
    aligned_vector<value_t> yb(nr * ku);
    Xoshiro256 rng(0x5b0cced);
    for (auto& v : xb) v = static_cast<value_t>(rng.next_double());

    // The repeated-SpMV client holds one contiguous vector per column.
    std::vector<aligned_vector<value_t>> xcols(ku), ycols(ku);
    for (std::size_t j = 0; j < ku; ++j) {
      xcols[j].resize(nc);
      for (std::size_t i = 0; i < nc; ++i) xcols[j][i] = xb[i * ku + j];
      ycols[j].resize(nr);
    }

    // Self-check: blocking must never change the bits.
    std::vector<value_t> y_ref(nr * ku);
    spmm::spmm_reference(m, xb, y_ref, k);
    spmm::spmm_csr(m, xb, yb, k, blocked_cfg, plan);
    if (!std::equal(y_ref.begin(), y_ref.end(), yb.begin())) {
      std::fprintf(stderr,
                   "[perf_smoke] FAIL: blocked SpMM not bit-identical on "
                   "rmat-hs\n");
      return 1;
    }

    const int iters = quick ? 10 : 30;
    const auto [repeated_t, blocked_t] = time_passes_interleaved(
        kernel_passes, iters,
        [&] {
          for (std::size_t j = 0; j < ku; ++j) {
            spmv_csr(m, xcols[j], ycols[j], Schedule::kDyn, plan);
          }
          do_not_optimize(ycols[0].data());
        },
        [&] {
          spmm::spmm_csr(m, xb, yb, k, blocked_cfg, plan);
          do_not_optimize(yb.data());
        });

    const double gflop = 2.0 * static_cast<double>(m.nnz()) *
                         static_cast<double>(k) / 1e9;
    obs::JsonValue params = matrix_params(m);
    params.set("k", static_cast<std::int64_t>(k));
    params.set("kb", static_cast<std::int64_t>(blocked_cfg.kb));
    params.set("threads", static_cast<std::int64_t>(threads));
    params.set("gflops_repeated", gflop / repeated_t.min_seconds);
    params.set("gflops_blocked", gflop / blocked_t.min_seconds);
    params.set("spmm_vs_repeated_spmv_speedup",
               repeated_t.min_seconds / blocked_t.min_seconds);
    report.add("spmm", "repeated_spmv/rmat-hs", repeated_t, params);
    report.add("spmm", "blocked/rmat-hs", blocked_t, std::move(params));
    std::printf("[perf_smoke] spmm: blocked vs %d repeated SpMVs %.2fx\n",
                static_cast<int>(k),
                repeated_t.min_seconds / blocked_t.min_seconds);
  }

  // --- Stage 8: SOLVE session amortization --------------------------------
  // A SOLVE session pays choose + layout conversion once, then every
  // solver iteration reuses the prepared layout out of the sharded cache.
  // The baseline is the sessionless client: choose + prepare + one SpMV
  // per iteration. The cold request routes through the amortized
  // dual-model selector trained from the pipeline stage's measurement
  // records; warm requests must hit the prepared cache. The CI perf-gate
  // reads session_vs_per_iter_speedup >= 2.0.
  std::printf("[perf_smoke] SOLVE session amortization (cg, stencil)...\n");
  {
    // Large enough that a CG iteration is real work (SpMV + vector ops)
    // rather than OpenMP region overhead; CG's iteration count is set by
    // the shifted stencil's condition number, not the grid side, so the
    // stage stays fast.
    const index_t side = quick ? 64 : 128;
    CooMatrix coo = generate_stencil2d(side, side, 5);
    for (auto& e : coo.entries()) {  // diagonal shift: SPD, so CG converges
      if (e.row == e.col) e.val += 0.1;
    }
    coo.canonicalize();
    auto spd = std::make_shared<const CsrMatrix>(CsrMatrix::from_coo(coo));
    const serve::Fingerprint fp = serve::fingerprint_matrix(*spd);

    // Baseline arm: what each iteration costs without a session.
    aligned_vector<value_t> x(static_cast<std::size_t>(spd->ncols()));
    aligned_vector<value_t> y(static_cast<std::size_t>(spd->nrows()));
    Xoshiro256 rng(0x501feed);
    for (auto& v : x) v = static_cast<value_t>(rng.next_double());
    const auto per_iter = time_passes(kernel_passes, 1, [&] {
      WiseChoice c;
      PreparedMatrix pm = predictor->prepare(*spd, c);
      pm.run(x, y);
      do_not_optimize(y.data());
    });

    serve::ServerOptions opts;
    opts.workers = 2;
    opts.queue_capacity = 0;
    opts.shards = 4;
    serve::Server server(predictor, opts);
    server.set_amortized(
        std::make_shared<const AmortizedWise>(train_amortized(records)));

    serve::Request req;
    req.kind = serve::RequestKind::kSolve;
    req.matrix = spd;
    req.fingerprint = fp;
    req.id = "solve-session";
    req.solver = "cg";
    req.iters = 500;

    const serve::Response cold = server.call(req);
    if (!cold.ok || cold.solve_iterations <= 0) {
      std::fprintf(stderr, "[perf_smoke] FAIL: cold SOLVE session: %s\n",
                   cold.error.c_str());
      return 1;
    }
    const double n_iters = static_cast<double>(cold.solve_iterations);
    std::vector<double> warm_samples;  // per solver iteration
    for (int p = 0; p < kernel_passes; ++p) {
      const serve::Response w = server.call(req);
      if (!w.ok || !w.prepared_cache_hit) {
        std::fprintf(stderr,
                     "[perf_smoke] FAIL: warm SOLVE missed the prepared "
                     "cache\n");
        return 1;
      }
      warm_samples.push_back(w.service_seconds / n_iters);
    }
    const auto warm_t =
        obs::TimingSummary::from_samples(warm_samples, cold.solve_iterations);
    const double speedup = per_iter.min_seconds / warm_t.min_seconds;

    const serve::ServerStats st = server.stats();
    obs::JsonValue params = matrix_params(*spd);
    params.set("solver", std::string("cg"));
    params.set("solve_iterations",
               static_cast<std::int64_t>(cold.solve_iterations));
    params.set("converged", cold.converged);
    params.set("sessions_completed",
               static_cast<std::int64_t>(st.sessions_completed));
    params.set("session_iters", static_cast<std::int64_t>(st.session_iters));
    params.set("session_vs_per_iter_speedup", speedup);
    report.add("solve", "per_iter/cg-stencil", per_iter, params);
    report.add("solve", "session_warm/cg-stencil", warm_t, std::move(params));
    std::printf(
        "[perf_smoke] solve session: %d iters, warm vs per-iteration "
        "choose+prepare %.1fx\n",
        cold.solve_iterations, speedup);
  }

  // --- Stage 9: serving layer (serve.throughput scenario) -----------------
  std::printf("[perf_smoke] serve throughput (repeated-matrix workload)...\n");
  {
    serve::ServerOptions opts;
    opts.workers = 4;
    opts.queue_capacity = 0;
    opts.shards = 4;  // pinned: identical cache partitioning on every runner
    serve::Server server(predictor, opts);

    std::vector<std::shared_ptr<const CsrMatrix>> shared;
    std::vector<serve::Fingerprint> fingerprints;
    shared.reserve(suite.size());
    for (auto& s : suite) {  // final suite stage: the suite can be consumed
      shared.push_back(std::make_shared<const CsrMatrix>(std::move(s.m)));
      // Steady-state clients fingerprint at load time, once per matrix.
      fingerprints.push_back(serve::fingerprint_matrix(*shared.back()));
    }
    const auto make_req = [&](std::size_t i) {
      serve::Request req;
      req.kind = serve::RequestKind::kRun;
      req.matrix = shared[i];
      req.fingerprint = fingerprints[i];
      req.id = suite[i].name;
      req.iters = 1;
      return req;
    };

    // Cold pass: the first request per matrix pays fingerprint + choose +
    // layout conversion. Everything after hits the prepared cache and pays
    // only fingerprint + one locked SpMV — the gap is the serving layer's
    // whole value proposition, so both sides go into the report.
    std::vector<double> cold_samples;
    for (std::size_t i = 0; i < shared.size(); ++i) {
      const serve::Response rsp = server.call(make_req(i));
      if (!rsp.ok) {
        std::fprintf(stderr, "[perf_smoke] FAIL: cold serve request: %s\n",
                     rsp.error.c_str());
        return 1;
      }
      cold_samples.push_back(rsp.service_seconds);
    }

    const int clients = 4;
    const int requests_per_client = quick ? 25 : 100;
    std::vector<std::vector<double>> warm_per_client(
        static_cast<std::size_t>(clients));
    Timer wall;
    {
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          auto& samples = warm_per_client[static_cast<std::size_t>(c)];
          samples.reserve(static_cast<std::size_t>(requests_per_client));
          for (int r = 0; r < requests_per_client; ++r) {
            const std::size_t i =
                static_cast<std::size_t>(c + r) % shared.size();
            const serve::Response rsp = server.call(make_req(i));
            if (rsp.ok) samples.push_back(rsp.service_seconds);
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const double wall_seconds = wall.seconds();

    std::vector<double> warm_samples;
    for (const auto& per_client : warm_per_client) {
      warm_samples.insert(warm_samples.end(), per_client.begin(),
                          per_client.end());
    }
    const std::size_t total = warm_samples.size();
    if (total != static_cast<std::size_t>(clients * requests_per_client)) {
      std::fprintf(stderr, "[perf_smoke] FAIL: %zu of %d warm requests ok\n",
                   total, clients * requests_per_client);
      return 1;
    }
    double cold_mean = 0, warm_mean = 0;
    for (const double s : cold_samples) cold_mean += s;
    cold_mean /= static_cast<double>(cold_samples.size());
    for (const double s : warm_samples) warm_mean += s;
    warm_mean /= static_cast<double>(total);

    const serve::CacheStats cs = server.cache_stats();
    const double hit_ratio =
        static_cast<double>(cs.prepared_hits) /
        static_cast<double>(cs.prepared_hits + cs.prepared_misses);
    const serve::ServerStats st = server.stats();

    obs::JsonValue params = obs::JsonValue::object();
    params.set("clients", static_cast<std::int64_t>(clients));
    params.set("shards", static_cast<std::int64_t>(server.shard_count()));
    params.set("requests", static_cast<std::int64_t>(st.completed));
    params.set("requests_per_sec",
               static_cast<double>(total) / wall_seconds);
    params.set("cache_hit_ratio", hit_ratio);
    params.set("warm_vs_cold_speedup", cold_mean / warm_mean);
    report.add("serve", "throughput/warm",
               obs::TimingSummary::from_samples(warm_samples, 1), params);
    report.add("serve", "throughput/cold",
               obs::TimingSummary::from_samples(cold_samples, 1),
               std::move(params));
    std::printf(
        "[perf_smoke] serve: %.0f req/s, hit ratio %.3f, warm vs cold %.1fx\n",
        static_cast<double>(total) / wall_seconds, hit_ratio,
        cold_mean / warm_mean);
  }

  // --- Stage 10: shard scaling sweep (serve.shard_sweep scenario) ----------
  // Isolates the dispatch + warm-cache path the sharding refactor targets:
  // warm kPrepare requests are pure fingerprint-route + lock-free cache hits
  // (no OpenMP inner loop), so throughput here measures the serving core,
  // not the SpMV kernels. Eight pipelined clients hammer 1/2/4-shard
  // servers over the same 12-matrix working set; the CI validate step gates
  // speedup_vs_1shard >= 1.5 at 4 shards when the recorded hw_concurrency
  // is >= 4 (single-core runners record the sweep but skip the gate).
  std::printf("[perf_smoke] serve shard scaling sweep (1/2/4 shards)...\n");
  {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::shared_ptr<const CsrMatrix>> mats;
    std::vector<serve::Fingerprint> fps;
    for (int i = 0; i < 12; ++i) {  // small: prepare cost is irrelevant here
      const auto coo = generate_rmat(
          rmat_class_params(RmatClass::kLowSkew, 256, 4.0),
          9000 + static_cast<std::uint64_t>(i));
      mats.push_back(std::make_shared<const CsrMatrix>(CsrMatrix::from_coo(coo)));
      fps.push_back(serve::fingerprint_matrix(*mats.back()));
    }
    const int clients = 8;
    const int per_client = quick ? 100 : 400;
    const int sweep_passes = 3;
    double base_rps = 0.0;

    for (const int shards : {1, 2, 4}) {
      serve::ServerOptions opts;
      opts.workers = 2 * shards;  // two workers per shard at every point
      opts.queue_capacity = 0;
      opts.shards = shards;
      serve::Server server(predictor, opts);

      for (std::size_t i = 0; i < mats.size(); ++i) {  // warm every entry
        serve::Request req;
        req.kind = serve::RequestKind::kPrepare;
        req.matrix = mats[i];
        req.fingerprint = fps[i];
        req.id = "warm";
        const serve::Response rsp = server.call(req);
        if (!rsp.ok) {
          std::fprintf(stderr, "[perf_smoke] FAIL: sweep warm-up: %s\n",
                       rsp.error.c_str());
          return 1;
        }
      }

      std::vector<double> per_request_samples;
      double best_rps = 0.0;
      const double total_requests =
          static_cast<double>(clients) * static_cast<double>(per_client);
      for (int pass = 0; pass < sweep_passes; ++pass) {
        std::atomic<int> failures{0};
        Timer wall;
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c) {
          threads.emplace_back([&, c] {
            // Pipelined: enqueue the full batch, then drain, so clients
            // measure server throughput rather than request round-trips.
            std::vector<std::future<serve::Response>> futs;
            futs.reserve(static_cast<std::size_t>(per_client));
            for (int r = 0; r < per_client; ++r) {
              const std::size_t i =
                  static_cast<std::size_t>(c + r) % mats.size();
              serve::Request req;
              req.kind = serve::RequestKind::kPrepare;
              req.matrix = mats[i];
              req.fingerprint = fps[i];
              req.id = "sweep";
              futs.push_back(server.submit(std::move(req)));
            }
            for (auto& f : futs) {
              if (!f.get().ok) failures.fetch_add(1);
            }
          });
        }
        for (auto& t : threads) t.join();
        const double secs = wall.seconds();
        if (failures.load() != 0) {
          std::fprintf(stderr, "[perf_smoke] FAIL: %d sweep requests failed\n",
                       failures.load());
          return 1;
        }
        per_request_samples.push_back(secs / total_requests);
        best_rps = std::max(best_rps, total_requests / secs);
      }
      if (shards == 1) base_rps = best_rps;

      obs::JsonValue params = obs::JsonValue::object();
      params.set("shards", static_cast<std::int64_t>(server.shard_count()));
      params.set("workers", static_cast<std::int64_t>(opts.workers));
      params.set("clients", static_cast<std::int64_t>(clients));
      params.set("requests",
                 static_cast<std::int64_t>(clients * per_client));
      params.set("hw_concurrency", static_cast<std::int64_t>(hw));
      params.set("requests_per_sec", best_rps);
      params.set("speedup_vs_1shard",
                 base_rps > 0.0 ? best_rps / base_rps : 1.0);
      report.add("serve", "shard_sweep/shards" + std::to_string(shards),
                 obs::TimingSummary::from_samples(per_request_samples,
                                                  clients * per_client),
                 std::move(params));
      std::printf("[perf_smoke] shard sweep: %d shard(s) %.0f req/s (%.2fx)\n",
                  shards, best_rps,
                  base_rps > 0.0 ? best_rps / base_rps : 1.0);
    }
  }

  // --- Stage 11: warm-hit throughput across live bank hot-swaps ------------
  // The online-learning loop (learn/online.hpp) republishes the model bank
  // mid-traffic through serve::Server::publish_bank: the old bank retires
  // through the epoch domain and both cache tiers clear, so the cost to
  // in-flight warm traffic is bounded re-preparation, never a stall. Two
  // identical warm kPrepare passes — one quiescent, one with forced
  // mid-run swaps — quantify that. The CI validate step gates
  // swap_vs_noswap_ratio >= 0.9 when the recorded hw_concurrency is >= 2
  // (on a single core the swapper and the workers fight for the same CPU,
  // so the ratio is recorded but not gated).
  std::printf("[perf_smoke] serve hot-swap throughput (forced mid-run swaps)...\n");
  {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::shared_ptr<const CsrMatrix>> mats;
    std::vector<serve::Fingerprint> fps;
    for (int i = 0; i < 12; ++i) {  // tiny: re-prepare after a swap is cheap
      const auto coo = generate_rmat(
          rmat_class_params(RmatClass::kLowSkew, 256, 4.0),
          9100 + static_cast<std::uint64_t>(i));
      mats.push_back(std::make_shared<const CsrMatrix>(CsrMatrix::from_coo(coo)));
      fps.push_back(serve::fingerprint_matrix(*mats.back()));
    }
    const int clients = 4;
    // Long enough passes that the fixed number of forced swaps amortizes:
    // each swap costs ~12 re-preparations (the cleared working set), and
    // the ratio is requests / (requests + swap cost), so short passes
    // would measure the working-set size instead of the swap path.
    const int per_client = quick ? 2000 : 5000;
    const int hot_passes = 3;
    const int swaps_per_pass = 4;
    const double total_requests =
        static_cast<double>(clients) * static_cast<double>(per_client);

    // Runs one measured pass and returns its wall seconds (< 0 on request
    // failure). When `swap_spacing` > 0 a swapper thread republishes a
    // cloned bank that many seconds apart while the clients run.
    const auto run_pass = [&](serve::Server& server, double swap_spacing,
                              std::int64_t* swaps_done) -> double {
      std::atomic<bool> done{false};
      std::thread swapper;
      if (swap_spacing > 0.0) {
        swapper = std::thread([&] {
          const auto spacing = std::chrono::duration<double>(swap_spacing);
          for (int k = 0; k < swaps_per_pass && !done.load(); ++k) {
            std::this_thread::sleep_for(spacing);
            server.publish_bank(std::make_shared<const Wise>(
                ModelBank(server.predictor()->bank())));
            if (swaps_done != nullptr) ++*swaps_done;
          }
        });
      }
      std::atomic<int> failures{0};
      Timer wall;
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          std::vector<std::future<serve::Response>> futs;
          futs.reserve(static_cast<std::size_t>(per_client));
          for (int r = 0; r < per_client; ++r) {
            const std::size_t i =
                static_cast<std::size_t>(c + r) % mats.size();
            serve::Request req;
            req.kind = serve::RequestKind::kPrepare;
            req.matrix = mats[i];
            req.fingerprint = fps[i];
            req.id = "hotswap";
            futs.push_back(server.submit(std::move(req)));
          }
          for (auto& f : futs) {
            if (!f.get().ok) failures.fetch_add(1);
          }
        });
      }
      for (auto& t : threads) t.join();
      const double secs = wall.seconds();
      done.store(true);
      if (swapper.joinable()) swapper.join();
      return failures.load() == 0 ? secs : -1.0;
    };

    serve::ServerOptions opts;
    opts.workers = 4;
    opts.queue_capacity = 0;
    opts.shards = 4;
    serve::Server server(predictor, opts);
    for (std::size_t i = 0; i < mats.size(); ++i) {  // warm every entry
      serve::Request req;
      req.kind = serve::RequestKind::kPrepare;
      req.matrix = mats[i];
      req.fingerprint = fps[i];
      req.id = "warm";
      if (!server.call(req).ok) {
        std::fprintf(stderr, "[perf_smoke] FAIL: hotswap warm-up\n");
        return 1;
      }
    }

    std::vector<double> noswap_samples;
    std::vector<double> swap_samples;
    double best_noswap = 0.0;
    double best_swap = 0.0;
    std::int64_t swaps_done = 0;
    for (int pass = 0; pass < hot_passes; ++pass) {
      const double secs = run_pass(server, 0.0, nullptr);
      if (secs < 0.0) {
        std::fprintf(stderr, "[perf_smoke] FAIL: hotswap no-swap pass\n");
        return 1;
      }
      noswap_samples.push_back(secs / total_requests);
      best_noswap = std::max(best_noswap, total_requests / secs);
    }
    // Space the forced swaps evenly across the measured run so every pass
    // really swaps mid-traffic instead of before/after it.
    const double spacing =
        (total_requests / best_noswap) / (swaps_per_pass + 1);
    for (int pass = 0; pass < hot_passes; ++pass) {
      const double secs = run_pass(server, spacing, &swaps_done);
      if (secs < 0.0) {
        std::fprintf(stderr, "[perf_smoke] FAIL: hotswap swap pass\n");
        return 1;
      }
      swap_samples.push_back(secs / total_requests);
      best_swap = std::max(best_swap, total_requests / secs);
    }
    if (swaps_done == 0) {
      std::fprintf(stderr, "[perf_smoke] FAIL: hotswap passes never swapped\n");
      return 1;
    }
    const double ratio = best_noswap > 0.0 ? best_swap / best_noswap : 0.0;

    obs::JsonValue params = obs::JsonValue::object();
    params.set("clients", static_cast<std::int64_t>(clients));
    params.set("requests",
               static_cast<std::int64_t>(clients * per_client));
    params.set("hw_concurrency", static_cast<std::int64_t>(hw));
    params.set("swaps", swaps_done);
    params.set("bank_version",
               static_cast<std::int64_t>(server.bank_version()));
    params.set("requests_per_sec_noswap", best_noswap);
    params.set("requests_per_sec", best_swap);
    params.set("swap_vs_noswap_ratio", ratio);
    report.add("serve", "hotswap/noswap",
               obs::TimingSummary::from_samples(noswap_samples,
                                                clients * per_client),
               params);
    report.add("serve", "hotswap/swap",
               obs::TimingSummary::from_samples(swap_samples,
                                                clients * per_client),
               std::move(params));
    std::printf(
        "[perf_smoke] hotswap: %.0f req/s quiescent, %.0f req/s across %d "
        "swaps (%.2fx)\n",
        best_noswap, best_swap, static_cast<int>(swaps_done), ratio);
  }

  // --- Emit ----------------------------------------------------------------
  const obs::MetricsSnapshot snap = metrics.snapshot();
  report.set_metrics(snap);
  const std::string path = report.write(out_dir);
  std::printf("[perf_smoke] wrote %s (%zu benchmarks, %zu timers)\n",
              path.c_str(), report.size(), snap.timers.size());
  std::printf("%s", obs::render_metrics_table(snap).c_str());
  obs::emit_metrics_from_env();

  // Self-check: the artifact must re-parse and be non-empty, else CI has
  // nothing to gate on.
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = obs::JsonValue::parse(buf.str());
  if (!doc.has_value()) {
    std::fprintf(stderr, "[perf_smoke] FAIL: %s is not valid JSON\n",
                 path.c_str());
    return 1;
  }
  const obs::JsonValue* benches = doc->find("benchmarks");
  const obs::JsonValue* mt = doc->find("metrics");
  const obs::JsonValue* timers = mt != nullptr ? mt->find("timers") : nullptr;
  if (benches == nullptr || benches->size() == 0 || timers == nullptr ||
      timers->size() == 0) {
    std::fprintf(stderr,
                 "[perf_smoke] FAIL: report is missing benchmarks or metrics\n");
    return 1;
  }
  std::printf("[perf_smoke] OK\n");
  return 0;
}
