// Fig 4 reproduction: distribution of the fastest SpMV method across the
// scientific corpus (the paper's SuiteSparse set; our stand-in).

#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace wise;
using namespace wise::bench;

int main() {
  std::printf("== Fig 4: fastest method per matrix (sci corpus) ==\n");
  const auto records = load_records(sci_corpus());

  std::map<MethodKind, int> counts;
  for (const auto& rec : records) ++counts[winning_family(rec)];

  std::printf("(paper: CSR 34, Sell-c-s 66, the rest split among\n");
  std::printf(" SELLPACK/Sell-c-R/LAV-1Seg/LAV; MKL never fastest)\n\n");
  for (MethodKind f :
       {MethodKind::kCsr, MethodKind::kSellpack, MethodKind::kSellCSigma,
        MethodKind::kSellCR, MethodKind::kLav1Seg, MethodKind::kLav}) {
    const int n = counts.contains(f) ? counts[f] : 0;
    std::printf("%-10s %4d %s\n", method_kind_name(f), n,
                std::string(static_cast<std::size_t>(n), '#').c_str());
  }

  // MKL never wins by construction here (it is not in the method space);
  // verify it also never beats the overall best measured configuration.
  int mkl_would_win = 0;
  for (const auto& rec : records) {
    if (rec.mkl_seconds < rec.config_seconds[rec.best_config_index()]) {
      ++mkl_would_win;
    }
  }
  std::printf("\nMatrices where MKL beats the best method: %d (paper: 0)\n",
              mkl_would_win);
  return 0;
}
