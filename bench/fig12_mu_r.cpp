// Fig 12 reproduction: histograms of the average nonzeros per row (μ_R)
// for the random corpus vs the scientific corpus. The random set must
// cover a wider μ_R range (the paper's argument for augmenting SuiteSparse).

#include <cstdio>

#include "bench_common.hpp"
#include "util/ascii_plot.hpp"

using namespace wise;
using namespace wise::bench;

namespace {

void histogram_for(const char* title, const std::vector<MatrixRecord>& recs) {
  Histogram hist(0.0, 130.0, 13);
  double max_mu = 0;
  for (const auto& rec : recs) {
    const double mu = record_feature(rec, "mean_R");
    hist.add(mu);
    max_mu = std::max(max_mu, mu);
  }
  std::printf("\n--- %s (max mu_R = %.1f) ---\n", title, max_mu);
  std::fputs(hist.render().c_str(), stdout);
}

}  // namespace

int main() {
  std::printf("== Fig 12: mu_R distributions, random vs sci ==\n");
  std::printf("(paper: random matrices cover a much wider mu_R range)\n");
  histogram_for("random corpus", load_records(random_corpus()));
  histogram_for("sci corpus", load_records(sci_corpus()));
  return 0;
}
