#!/usr/bin/env python3
"""Documentation link checker.

Walks README.md and docs/*.md and verifies that references into the
repository actually resolve, so docs cannot silently rot as code moves:

* markdown links ``[text](target)`` — http(s)/mailto and pure-anchor
  targets are skipped; everything else is resolved relative to the file
  containing the link (with any ``#anchor`` suffix stripped) and must
  exist.
* backticked code references like ``src/spmv/plan.hpp`` or
  ``tests/plan_test.cpp:42`` — checked only when they point into a
  known code tree (src/, docs/, tests/, bench/, examples/, tools/,
  .github/) or name a top-level ``*.md`` file, since short forms like
  ``serve/server.hpp`` are legitimate prose shorthand. Placeholders
  containing ``<`` or ``*`` (e.g. ``BENCH_<sha>.json``) are skipped.
  A trailing ``:LINE`` must not exceed the file's line count.
* environment-knob references — every ``WISE_*`` token mentioned in the
  docs must appear somewhere in the non-markdown source tree (src/,
  tests/, bench/, examples/, tools/, .github/, CMake files), so prose
  cannot keep advertising a knob after the code stops reading it.

Exits 1 listing every dangling reference. Run from anywhere:
the repository root is derived from this script's location (or pass it
as the single argument).
"""

import re
import sys
from pathlib import Path

CHECKED_PREFIXES = (
    "src/", "docs/", "tests/", "bench/", "examples/", "tools/", ".github/",
)

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_REF = re.compile(r"`([A-Za-z0-9_.<>/*-]+?)(?::(\d+))?`")
ENV_KNOB = re.compile(r"\bWISE_[A-Z0-9]+(?:_[A-Z0-9]+)*\b")


def source_knob_inventory(root: Path):
    """Every WISE_* token in the non-markdown source tree (grep-backed)."""
    tokens = set()
    files = [root / "CMakeLists.txt"]
    for tree in ("src", "tests", "bench", "examples", "tools", ".github"):
        base = root / tree
        if base.is_dir():
            files.extend(p for p in base.rglob("*") if p.is_file())
    for path in files:
        if path.suffix == ".md" or not path.is_file():
            continue
        try:
            tokens.update(ENV_KNOB.findall(path.read_text(errors="replace")))
        except OSError:
            continue
    return tokens


def doc_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").glob("*.md"))


def check_md_link(doc: Path, target: str, root: Path):
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return None
    path = target.split("#", 1)[0]
    if not path:
        return None
    resolved = (doc.parent / path).resolve()
    if not resolved.exists():
        return f"markdown link -> {target}"
    return None


def check_code_ref(ref: str, line: str, root: Path):
    if "<" in ref or "*" in ref:
        return None  # placeholder, not a path
    is_checked = ref.startswith(CHECKED_PREFIXES) or (
        "/" not in ref and ref.endswith(".md")
    )
    if not is_checked:
        return None
    if ref.endswith("/"):
        if not (root / ref).is_dir():
            return f"directory ref -> {ref}"
        return None
    # Only treat it as a file claim when it names an extension; bare refs
    # like `bench/ablation_extension` are binary targets, not files.
    if "." not in ref.rsplit("/", 1)[-1]:
        return None
    path = root / ref
    if not path.is_file():
        return f"file ref -> {ref}"
    if line is not None:
        n_lines = len(path.read_text(errors="replace").splitlines())
        if int(line) > n_lines:
            return f"line ref -> {ref}:{line} (file has {n_lines} lines)"
    return None


def main():
    root = (
        Path(sys.argv[1]).resolve()
        if len(sys.argv) > 1
        else Path(__file__).resolve().parent.parent
    )
    problems = []
    n_links = n_refs = n_knobs = 0
    known_knobs = source_knob_inventory(root)
    for doc in doc_files(root):
        if not doc.is_file():
            problems.append(f"{doc.relative_to(root)}: file missing")
            continue
        for lineno, text in enumerate(
            doc.read_text(errors="replace").splitlines(), start=1
        ):
            for m in MD_LINK.finditer(text):
                n_links += 1
                err = check_md_link(doc, m.group(1), root)
                if err:
                    problems.append(
                        f"{doc.relative_to(root)}:{lineno}: {err}"
                    )
            for m in CODE_REF.finditer(text):
                n_refs += 1
                err = check_code_ref(m.group(1), m.group(2), root)
                if err:
                    problems.append(
                        f"{doc.relative_to(root)}:{lineno}: {err}"
                    )
            for knob in ENV_KNOB.findall(text):
                n_knobs += 1
                if knob not in known_knobs:
                    problems.append(
                        f"{doc.relative_to(root)}:{lineno}: "
                        f"env knob -> {knob} (not found in source tree)"
                    )
    if problems:
        print(f"{len(problems)} dangling documentation reference(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(
        f"doc links OK: {n_links} markdown links, "
        f"{n_refs} code refs, {n_knobs} env-knob mentions scanned"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
