#!/usr/bin/env python3
"""Diff two perf_smoke BENCH_<sha>.json reports benchmark-by-benchmark.

Usage:
    bench_compare.py BASELINE CURRENT [--fail-below RATIO] [--key min|mean]

BASELINE and CURRENT are wise-bench-report JSON files (see obs/report.hpp),
or directories — a directory is searched for BENCH_*.json and the most
recently modified one is used. Benchmarks are matched by (group, name);
for each pair the tool prints the baseline/current timing and the speedup
(baseline seconds / current seconds, so >1.0 means the current run is
faster). Benchmarks present on only one side are listed but never fail
the comparison — reports are expected to grow new stages over time.

By default the exit code is 0 no matter what the numbers say: timing
ratios across different machines (or noisy CI runners) are informational.
Pass --fail-below 0.8 to exit 1 when any matched benchmark's speedup
drops under 0.8x, for use on dedicated hardware where ratios mean
something. A missing or unreadable baseline is also informational: the
tool says so and exits 0, so the first run of a new repo (no committed
snapshot yet) does not fail.
"""

import argparse
import glob
import json
import os
import signal
import sys

# Dying quietly when piped into `head` beats a BrokenPipeError traceback.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def resolve_report(path):
    """Return the report file behind `path` (a file, or newest in a dir)."""
    if os.path.isdir(path):
        candidates = glob.glob(os.path.join(path, "BENCH_*.json"))
        if not candidates:
            return None
        return max(candidates, key=os.path.getmtime)
    return path if os.path.isfile(path) else None


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "wise-bench-report":
        raise ValueError(f"{path}: not a wise-bench-report")
    return doc


def index_benchmarks(doc):
    return {(b["group"], b["name"]): b for b in doc.get("benchmarks", [])}


# Params worth echoing in the diff when they change between runs —
# throughput/speedup numbers the CI gates read, not matrix dimensions.
INTERESTING_PARAMS = (
    "requests_per_sec",
    "warm_vs_cold_speedup",
    "cache_hit_ratio",
    "speedup_vs_1shard",
    "swap_vs_noswap_ratio",
    "plan_vs_static_speedup",
    "flat_vs_recursive_speedup",
    "shards",
)


def param_notes(base, cur):
    notes = []
    bp, cp = base.get("params", {}), cur.get("params", {})
    for key in INTERESTING_PARAMS:
        if key in bp or key in cp:
            bv, cv = bp.get(key), cp.get(key)
            if isinstance(bv, float):
                bv = f"{bv:.3g}"
            if isinstance(cv, float):
                cv = f"{cv:.3g}"
            notes.append(f"{key} {bv}->{cv}" if bv != cv else f"{key} {cv}")
    return "  [" + ", ".join(notes) + "]" if notes else ""


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline report file or directory")
    ap.add_argument("current", help="current report file or directory")
    ap.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 1 if any matched benchmark's speedup falls below RATIO",
    )
    ap.add_argument(
        "--key",
        choices=("min", "mean"),
        default="min",
        help="which timing statistic to compare (default: min)",
    )
    args = ap.parse_args()

    base_path = resolve_report(args.baseline)
    if base_path is None:
        print(f"bench_compare: no baseline report at {args.baseline!r}; "
              "nothing to compare (ok)")
        return 0
    cur_path = resolve_report(args.current)
    if cur_path is None:
        sys.exit(f"bench_compare: no current report at {args.current!r}")

    try:
        base = load_report(base_path)
        cur = load_report(cur_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: unreadable report ({e}); skipping (ok)")
        return 0

    print(f"baseline: {base_path} (sha {base.get('git_sha', '?')}, "
          f"omp {base.get('omp_max_threads', '?')})")
    print(f"current:  {cur_path} (sha {cur.get('git_sha', '?')}, "
          f"omp {cur.get('omp_max_threads', '?')})")

    base_ix = index_benchmarks(base)
    cur_ix = index_benchmarks(cur)
    matched = sorted(base_ix.keys() & cur_ix.keys())
    regressions = []

    for key in matched:
        b, c = base_ix[key], cur_ix[key]
        bs = b["seconds"][args.key]
        cs = c["seconds"][args.key]
        speedup = bs / cs if cs > 0 else float("inf")
        flag = ""
        if args.fail_below is not None and speedup < args.fail_below:
            regressions.append((key, speedup))
            flag = "  <-- REGRESSION"
        print(f"  {key[0]}/{key[1]}: {bs:.3e}s -> {cs:.3e}s "
              f"({speedup:.2f}x){param_notes(b, c)}{flag}")

    for key in sorted(base_ix.keys() - cur_ix.keys()):
        print(f"  {key[0]}/{key[1]}: removed (baseline only)")
    for key in sorted(cur_ix.keys() - base_ix.keys()):
        print(f"  {key[0]}/{key[1]}: new (no baseline)")

    print(f"{len(matched)} matched, {len(base_ix) - len(matched)} removed, "
          f"{len(cur_ix) - len(matched)} new")
    if regressions:
        worst = min(regressions, key=lambda r: r[1])
        sys.exit(f"bench_compare: {len(regressions)} benchmark(s) below "
                 f"{args.fail_below}x (worst: {worst[0][0]}/{worst[0][1]} "
                 f"at {worst[1]:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
