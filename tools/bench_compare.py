#!/usr/bin/env python3
"""Diff two perf_smoke BENCH_<sha>.json reports benchmark-by-benchmark.

Usage:
    bench_compare.py BASELINE CURRENT [--fail-below [GROUP=]RATIO ...]
                     [--gate-param GATE ...] [--min-hw N]
                     [--summary PATH] [--key min|mean]

BASELINE and CURRENT are wise-bench-report JSON files (see obs/report.hpp),
or directories — a directory is searched for BENCH_*.json and the most
recently modified one is used. Benchmarks are matched by (group, name);
for each pair the tool prints the baseline/current timing and the speedup
(baseline seconds / current seconds, so >1.0 means the current run is
faster). Benchmarks present on only one side are listed but never fail
the comparison — reports are expected to grow new stages over time.

By default the exit code is 0 no matter what the numbers say: timing
ratios across different machines (or noisy CI runners) are informational.
Two kinds of gates turn the diff into a CI check that actually fails:

  --fail-below 0.8         exit 1 when any matched benchmark's speedup
                           drops under 0.8x
  --fail-below plan=0.5    same, but only for benchmarks in group `plan`
                           (repeatable; a per-group ratio overrides the
                           plain global one for that group)

  --gate-param "specialize/csr_special/rmat-hs:specialize_vs_generic_speedup>=1.2"
                           exit 1 unless the CURRENT report has that
                           benchmark, that param, and the value is >= the
                           bound. Param gates are within-run ratios, so
                           they hold on any machine — they are the strong
                           gates. Append @hw>=N to skip the gate (loudly)
                           when the stage saw fewer than N cores — the
                           benchmark's recorded hw_concurrency param when
                           present, else the report's OpenMP width:
                           "...speedup_vs_1shard>=1.5@hw>=4" only means
                           something with 4 cores to shard across.

  --min-hw N               skip every cross-run --fail-below gate (loudly,
                           listing each skip) when the current report ran
                           with fewer than N OpenMP threads. Param gates
                           keep their own @hw conditions. Under-provisioned
                           runners produce garbage timing ratios; skipping
                           silently would look like a passing gate, so
                           every skip is echoed both to stdout and to the
                           --summary file.

  --summary PATH           append one markdown line per gate outcome
                           (pass/fail/skip + reason) — aimed at
                           $GITHUB_STEP_SUMMARY so the job page says which
                           gates actually ran without reading the log.

A gate referencing a benchmark or param missing from the current report
FAILS — a renamed stage must not silently turn its gate into a no-op. A
missing or unreadable baseline is informational for the timing diff (the
tool says so and continues), but param gates still run: they only need
the current report.
"""

import argparse
import glob
import json
import os
import re
import signal
import sys

# Dying quietly when piped into `head` beats a BrokenPipeError traceback.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def resolve_report(path):
    """Return the report file behind `path` (a file, or newest in a dir)."""
    if os.path.isdir(path):
        candidates = glob.glob(os.path.join(path, "BENCH_*.json"))
        if not candidates:
            return None
        return max(candidates, key=os.path.getmtime)
    return path if os.path.isfile(path) else None


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "wise-bench-report":
        raise ValueError(f"{path}: not a wise-bench-report")
    return doc


def index_benchmarks(doc):
    return {(b["group"], b["name"]): b for b in doc.get("benchmarks", [])}


# Params worth echoing in the diff when they change between runs —
# throughput/speedup numbers the CI gates read, not matrix dimensions.
INTERESTING_PARAMS = (
    "requests_per_sec",
    "warm_vs_cold_speedup",
    "cache_hit_ratio",
    "speedup_vs_1shard",
    "swap_vs_noswap_ratio",
    "plan_vs_static_speedup",
    "flat_vs_recursive_speedup",
    "specialize_vs_generic_speedup",
    "spmm_vs_repeated_spmv_speedup",
    "session_vs_per_iter_speedup",
    "dia_vs_best_csr_speedup",
    "format_vs_best_csr_speedup",
    "stream_gbs",
    "shards",
)


def param_notes(base, cur):
    notes = []
    bp, cp = base.get("params", {}), cur.get("params", {})
    for key in INTERESTING_PARAMS:
        if key in bp or key in cp:
            bv, cv = bp.get(key), cp.get(key)
            if isinstance(bv, float):
                bv = f"{bv:.3g}"
            if isinstance(cv, float):
                cv = f"{cv:.3g}"
            notes.append(f"{key} {bv}->{cv}" if bv != cv else f"{key} {cv}")
    return "  [" + ", ".join(notes) + "]" if notes else ""


def parse_fail_below(values):
    """Split repeated --fail-below args into (global_ratio, {group: ratio})."""
    global_ratio, per_group = None, {}
    for v in values or ():
        if "=" in v:
            group, _, ratio = v.partition("=")
            per_group[group] = float(ratio)
        else:
            global_ratio = float(v)
    return global_ratio, per_group


GATE_RE = re.compile(
    r"^(?P<group>[^/:]+)/(?P<name>[^:]+):(?P<param>[\w.]+)"
    r">=(?P<min>-?[\d.]+)(?:@hw>=(?P<hw>\d+))?$"
)


def parse_gate(spec):
    m = GATE_RE.match(spec)
    if not m:
        sys.exit(
            f"bench_compare: bad --gate-param {spec!r} "
            "(want group/name:param>=MIN[@hw>=N])"
        )
    return {
        "key": (m.group("group"), m.group("name")),
        "param": m.group("param"),
        "min": float(m.group("min")),
        "hw": int(m.group("hw")) if m.group("hw") else 0,
        "spec": spec,
    }


class Summary:
    """Collects gate outcomes; optionally appended to a markdown file."""

    def __init__(self, path):
        self.path = path
        self.lines = []

    def add(self, icon, text):
        print(f"  {icon} {text}")
        self.lines.append(f"- {icon} {text}")

    def flush(self, header):
        if not self.path or not self.lines:
            return
        with open(self.path, "a") as f:
            f.write(f"### {header}\n")
            f.write("\n".join(self.lines) + "\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline report file or directory")
    ap.add_argument("current", help="current report file or directory")
    ap.add_argument(
        "--fail-below",
        action="append",
        default=None,
        metavar="[GROUP=]RATIO",
        help="exit 1 if a matched benchmark's speedup falls below RATIO; "
        "GROUP=RATIO scopes (and overrides the global ratio for) one group; "
        "repeatable",
    )
    ap.add_argument(
        "--gate-param",
        action="append",
        default=None,
        metavar="GROUP/NAME:PARAM>=MIN[@hw>=N]",
        help="exit 1 unless the current report's benchmark param meets the "
        "bound; @hw>=N skips the gate below N OpenMP threads; repeatable",
    )
    ap.add_argument(
        "--min-hw",
        type=int,
        default=0,
        metavar="N",
        help="skip cross-run --fail-below gates (loudly) when the current "
        "report ran with fewer than N OpenMP threads",
    )
    ap.add_argument(
        "--summary",
        default=None,
        metavar="PATH",
        help="append markdown gate outcomes to PATH "
        "(e.g. $GITHUB_STEP_SUMMARY)",
    )
    ap.add_argument(
        "--key",
        choices=("min", "mean"),
        default="min",
        help="which timing statistic to compare (default: min)",
    )
    args = ap.parse_args()

    global_ratio, group_ratios = parse_fail_below(args.fail_below)
    gates = [parse_gate(s) for s in args.gate_param or ()]
    summary = Summary(args.summary)
    failures = []

    cur_path = resolve_report(args.current)
    if cur_path is None:
        sys.exit(f"bench_compare: no current report at {args.current!r}")
    try:
        cur = load_report(cur_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: unreadable current report ({e})")
    cur_ix = index_benchmarks(cur)
    cur_hw = int(cur.get("omp_max_threads") or 0)
    print(f"current:  {cur_path} (sha {cur.get('git_sha', '?')}, "
          f"omp {cur_hw})")

    # --- cross-run timing diff (needs a baseline) --------------------------
    base_path = resolve_report(args.baseline)
    base = None
    if base_path is None:
        print(f"bench_compare: no baseline report at {args.baseline!r}; "
              "timing diff skipped (ok)")
    else:
        try:
            base = load_report(base_path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_compare: unreadable baseline ({e}); "
                  "timing diff skipped (ok)")

    timing_gated = global_ratio is not None or bool(group_ratios)
    timing_skip = None
    if timing_gated and args.min_hw and cur_hw < args.min_hw:
        timing_skip = (f"runner has {cur_hw} OpenMP thread(s) < --min-hw "
                       f"{args.min_hw}")

    if base is not None:
        print(f"baseline: {base_path} (sha {base.get('git_sha', '?')}, "
              f"omp {base.get('omp_max_threads', '?')})")
        base_ix = index_benchmarks(base)
        matched = sorted(base_ix.keys() & cur_ix.keys())
        regressions = []
        for key in matched:
            b, c = base_ix[key], cur_ix[key]
            bs = b["seconds"][args.key]
            cs = c["seconds"][args.key]
            speedup = bs / cs if cs > 0 else float("inf")
            threshold = group_ratios.get(key[0], global_ratio)
            flag = ""
            if (threshold is not None and speedup < threshold
                    and timing_skip is None):
                regressions.append((key, speedup, threshold))
                flag = "  <-- REGRESSION"
            print(f"  {key[0]}/{key[1]}: {bs:.3e}s -> {cs:.3e}s "
                  f"({speedup:.2f}x){param_notes(b, c)}{flag}")
        for key in sorted(base_ix.keys() - cur_ix.keys()):
            print(f"  {key[0]}/{key[1]}: removed (baseline only)")
        for key in sorted(cur_ix.keys() - base_ix.keys()):
            print(f"  {key[0]}/{key[1]}: new (no baseline)")
        print(f"{len(matched)} matched, "
              f"{len(base_ix) - len(matched)} removed, "
              f"{len(cur_ix) - len(matched)} new")

        if timing_gated:
            if timing_skip is not None:
                summary.add("⏭️", f"timing gates SKIPPED: {timing_skip}")
            elif regressions:
                for key, speedup, threshold in regressions:
                    summary.add(
                        "❌",
                        f"timing gate {key[0]}/{key[1]}: {speedup:.2f}x "
                        f"< {threshold}x vs baseline",
                    )
                failures.extend(regressions)
            else:
                summary.add(
                    "✅",
                    f"timing gates: {len(matched)} matched benchmark(s) "
                    "above threshold",
                )
    elif timing_gated:
        summary.add("⏭️", "timing gates SKIPPED: no readable baseline")

    # --- within-run param gates (current report only) ----------------------
    for g in gates:
        label = f"{g['key'][0]}/{g['key'][1]}:{g['param']}"
        bench = cur_ix.get(g["key"])
        if bench is None:
            summary.add(
                "❌",
                f"param gate {label} FAILED: benchmark missing from "
                "current report (renamed stage?)",
            )
            failures.append(g)
            continue
        # @hw>=N compares against the cores the stage itself saw: the
        # benchmark's hw_concurrency param when recorded (shard sweep,
        # hotswap — stages that need real parallel hardware, not a wide
        # OMP_NUM_THREADS), else the report's OpenMP width.
        hw_avail = bench.get("params", {}).get("hw_concurrency", cur_hw)
        if g["hw"] and hw_avail < g["hw"]:
            summary.add(
                "⏭️",
                f"param gate {label} SKIPPED: stage saw {hw_avail} "
                f"core(s) < required {g['hw']}",
            )
            continue
        value = bench.get("params", {}).get(g["param"])
        if not isinstance(value, (int, float)):
            summary.add(
                "❌",
                f"param gate {label} FAILED: param missing from benchmark",
            )
            failures.append(g)
            continue
        if value < g["min"]:
            summary.add(
                "❌",
                f"param gate {label} FAILED: {value:.3g} < {g['min']}",
            )
            failures.append(g)
        else:
            summary.add("✅", f"param gate {label}: {value:.3g} >= {g['min']}")

    summary.flush(f"bench_compare gates (omp {cur_hw})")
    if failures:
        sys.exit(f"bench_compare: {len(failures)} gate(s) failed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
