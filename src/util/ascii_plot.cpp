#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace wise {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || bins <= 0) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double value) {
  const int n = bins();
  double t = (value - lo_) / (hi_ - lo_) * n;
  int idx = static_cast<int>(std::floor(t));
  idx = std::clamp(idx, 0, n - 1);
  ++counts_[static_cast<std::size_t>(idx)];
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

std::int64_t Histogram::total() const {
  std::int64_t s = 0;
  for (auto c : counts_) s += c;
  return s;
}

double Histogram::bucket_lo(int i) const {
  return lo_ + (hi_ - lo_) * i / bins();
}

double Histogram::bucket_hi(int i) const {
  return lo_ + (hi_ - lo_) * (i + 1) / bins();
}

std::string Histogram::render(int max_bar_width) const {
  std::int64_t maxc = 1;
  for (auto c : counts_) maxc = std::max(maxc, c);

  std::ostringstream out;
  for (int i = 0; i < bins(); ++i) {
    std::ostringstream label;
    label << '[' << fmt(bucket_lo(i), 2) << ',' << fmt(bucket_hi(i), 2) << ')';
    const auto c = count(i);
    const int bar =
        static_cast<int>(static_cast<double>(c) * max_bar_width / maxc);
    out << std::setw(14) << label.str() << ' ' << std::setw(7) << c << ' '
        << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  return out.str();
}

std::string fmt(double v, int prec) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(prec) << v;
  std::string s = out.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string render_table(const std::vector<std::string>& col_labels,
                         const std::vector<std::string>& row_labels,
                         const std::vector<std::vector<std::string>>& cells,
                         const std::string& corner) {
  if (cells.size() != row_labels.size()) {
    throw std::invalid_argument("render_table: row count mismatch");
  }
  const std::size_t ncols = col_labels.size();
  std::vector<std::size_t> width(ncols + 1);
  width[0] = corner.size();
  for (const auto& r : row_labels) width[0] = std::max(width[0], r.size());
  for (std::size_t j = 0; j < ncols; ++j) width[j + 1] = col_labels[j].size();
  for (const auto& row : cells) {
    if (row.size() != ncols) {
      throw std::invalid_argument("render_table: column count mismatch");
    }
    for (std::size_t j = 0; j < ncols; ++j) {
      width[j + 1] = std::max(width[j + 1], row[j].size());
    }
  }

  std::ostringstream out;
  auto emit = [&](const std::string& s, std::size_t w, bool last) {
    out << std::setw(static_cast<int>(w)) << s << (last ? "\n" : "  ");
  };
  emit(corner, width[0], ncols == 0);
  for (std::size_t j = 0; j < ncols; ++j) {
    emit(col_labels[j], width[j + 1], j + 1 == ncols);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    emit(row_labels[i], width[0], ncols == 0);
    for (std::size_t j = 0; j < ncols; ++j) {
      emit(cells[i][j], width[j + 1], j + 1 == ncols);
    }
  }
  return out.str();
}

std::string render_glyph_grid(const std::vector<std::string>& x_labels,
                              const std::vector<std::string>& y_labels,
                              const std::vector<std::vector<char>>& glyphs,
                              const std::string& x_title,
                              const std::string& y_title) {
  if (glyphs.size() != y_labels.size()) {
    throw std::invalid_argument("render_glyph_grid: row count mismatch");
  }
  std::size_t ylw = y_title.size();
  for (const auto& l : y_labels) ylw = std::max(ylw, l.size());

  std::ostringstream out;
  out << y_title << " \\ " << x_title << '\n';
  // Rows are printed top-down in the order given (callers put the largest
  // y value first to match the paper's plots).
  for (std::size_t i = 0; i < glyphs.size(); ++i) {
    if (glyphs[i].size() != x_labels.size()) {
      throw std::invalid_argument("render_glyph_grid: column count mismatch");
    }
    out << std::setw(static_cast<int>(ylw)) << y_labels[i] << " |";
    for (char g : glyphs[i]) out << ' ' << g;
    out << '\n';
  }
  out << std::string(ylw + 1, ' ') << '+'
      << std::string(2 * x_labels.size(), '-') << '\n';
  // Column labels printed vertically to fit.
  std::size_t maxxl = 0;
  for (const auto& l : x_labels) maxxl = std::max(maxxl, l.size());
  for (std::size_t r = 0; r < maxxl; ++r) {
    out << std::string(ylw + 2, ' ');
    for (const auto& l : x_labels) {
      out << ' ' << (r < l.size() ? l[r] : ' ');
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace wise
