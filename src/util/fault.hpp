#pragma once
// Deterministic fault injection for exercising every degradation path.
//
// The WISE pipeline promises to degrade to the CSR baseline rather than die
// when any stage fails. Those failure paths are only trustworthy if tests
// actually run them, so the library threads a FaultInjector through each
// named stage: a call to maybe_throw(stage, category) throws a typed
// wise::Error when that stage is armed. Decisions are driven by the
// repository's splitmix64 PRNG, so a {seed, rate} pair reproduces the exact
// same fault sequence on every run.
//
// The process-wide injector is configured from the environment:
//
//   WISE_FAULT_STAGES  comma-separated stages, each optionally with a rate:
//                      "conversion" (always fail), "parse:0.25,feature"
//   WISE_FAULT_SEED    integer seed for the fault PRNG (default 0)
//
// With WISE_FAULT_STAGES unset the injector is disarmed and every
// should_fail() check is a single map lookup on an empty map.
//
// Thread-safe: every member serializes on an internal mutex, so the serve
// layer's worker threads can consult the global injector concurrently (and
// tests can arm/disarm around multi-threaded sections). The deterministic
// per-stage streams are preserved, but when several threads draw from one
// stage concurrently the *assignment* of draws to threads follows the
// scheduler — tests that need exact fault placement keep the armed section
// single-threaded or use rate 1.0.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace wise {

/// Canonical pipeline stage names used by the library's injection points.
namespace stage {
inline constexpr const char* kParse = "parse";
inline constexpr const char* kFeature = "feature";
inline constexpr const char* kInference = "inference";
inline constexpr const char* kConversion = "conversion";
inline constexpr const char* kModelBank = "model_bank";
inline constexpr const char* kServe = "serve";
// Online-learning stages (src/learn/): every one degrades to continued
// serving on the current bank — a WAL write error, a retrain exception, or
// a failed publish is counted in LearnStats, never fatal.
inline constexpr const char* kSampleLog = "sample_log";
inline constexpr const char* kRetrain = "retrain";
inline constexpr const char* kSwap = "swap";
}  // namespace stage

class FaultInjector {
 public:
  /// Disarmed injector; should_fail() is always false.
  FaultInjector() = default;
  explicit FaultInjector(std::uint64_t seed) : seed_(seed) {}

  /// Movable (fresh mutex) so from_env() can build-and-return; moving an
  /// injector other threads are using is a caller bug.
  FaultInjector(FaultInjector&& other) noexcept
      : seed_(other.seed_), stages_(std::move(other.stages_)) {}
  FaultInjector& operator=(FaultInjector&& other) noexcept {
    seed_ = other.seed_;
    stages_ = std::move(other.stages_);
    return *this;
  }

  /// Parses WISE_FAULT_STAGES / WISE_FAULT_SEED. Unknown syntax in the
  /// stage list throws wise::Error (kValidation).
  static FaultInjector from_env();

  /// The process-wide injector the library's injection points consult,
  /// initialized from the environment on first use.
  static FaultInjector& global();

  /// Arms `stg` so each should_fail(stg) trips with probability `rate`
  /// (clamped to [0, 1]; 1 = every call). Re-arming resets the stage's
  /// deterministic PRNG stream.
  void arm(std::string_view stg, double rate = 1.0);
  void disarm(std::string_view stg);
  void disarm_all();

  /// True when at least one stage is armed with a positive rate.
  bool armed() const;

  /// Draws the stage's next deterministic decision. False for unarmed
  /// stages. Each call advances the stage's PRNG stream.
  bool should_fail(std::string_view stg);

  /// should_fail + throw: raises Error(category) describing the injected
  /// fault, with the stage recorded in the error context.
  void maybe_throw(std::string_view stg, ErrorCategory category);

  /// Number of faults this injector has fired for `stg`.
  std::uint64_t trip_count(std::string_view stg) const;

 private:
  struct StageState {
    double rate = 0.0;
    SplitMix64 rng{0};
    std::uint64_t trips = 0;
  };

  /// Draws the next decision for `stg` under the lock; returns the trip
  /// number when the fault fires, 0 otherwise.
  std::uint64_t next_trip(std::string_view stg);

  mutable std::mutex mutex_;
  std::uint64_t seed_ = 0;
  std::map<std::string, StageState, std::less<>> stages_;
};

}  // namespace wise
