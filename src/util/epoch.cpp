#include "util/epoch.hpp"

#include <cstddef>

namespace wise {

// Why a pinned reader at epoch >= E is safe (the invariant retire_epoch()
// and Pin build): the writer publishes the post-unlink state with a
// seq_cst store, then fetch_adds the global epoch (seq_cst) producing E.
// A reader pins by loading the global epoch (seq_cst) and stamping its
// slot (seq_cst) *before* its first load of the shared pointer. If the
// reader's stamp is >= E, its epoch load was ordered after the writer's
// fetch_add in the single total order of seq_cst operations, so its later
// pointer load is ordered after the writer's publish and must observe the
// new state — it can never reach the retired object. Conversely a reader
// that could hold the old pointer pinned at < E, and min_active() < E
// keeps the object alive. The remaining race — reader claims a slot,
// stalls, writer scans and sees the slot still idle — is also safe: the
// writer's scan load preceding the reader's stamp in seq_cst order means
// the reader's subsequent pointer load follows the publish too.

namespace {

/// Per-thread probe offset into the slot array. A plain trivially-
/// destructible thread_local (no domain pointer, no exit-time hook), so a
/// thread outliving a domain — or vice versa — leaves nothing dangling.
/// The odd stride spreads threads across the 128 slots so each repeat
/// pinner finds its previous slot free at probe position zero.
std::size_t probe_start() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t start =
      next.fetch_add(1, std::memory_order_relaxed) * 17;
  return start;
}

}  // namespace

EpochDomain& EpochDomain::global() {
  static EpochDomain domain;
  return domain;
}

EpochDomain::Slot* EpochDomain::claim_slot() {
  const std::size_t start = probe_start();
  for (std::size_t i = 0; i < kSlots; ++i) {
    Slot& s = slots_[(start + i) % kSlots];
    bool expected = false;
    if (!s.claimed.load(std::memory_order_relaxed) &&
        s.claimed.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      return &s;
    }
  }
  return nullptr;
}

EpochDomain::Pin::Pin(EpochDomain& domain)
    : domain_(domain), slot_(domain.claim_slot()) {
  if (slot_ != nullptr) {
    slot_->epoch.store(domain.global_epoch_.load(std::memory_order_seq_cst),
                       std::memory_order_seq_cst);
    return;
  }
  // Slot array exhausted (kSlots simultaneous pins): pin through the
  // overflow counter, which stalls (never unsafely allows) reclamation.
  domain.overflow_pins_.fetch_add(1, std::memory_order_seq_cst);
}

EpochDomain::Pin::~Pin() {
  if (slot_ == nullptr) {
    domain_.overflow_pins_.fetch_sub(1, std::memory_order_seq_cst);
    return;
  }
  slot_->epoch.store(kIdle, std::memory_order_release);
  slot_->claimed.store(false, std::memory_order_release);
}

std::uint64_t EpochDomain::retire_epoch() {
  return global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

std::uint64_t EpochDomain::min_active() const {
  if (overflow_pins_.load(std::memory_order_seq_cst) > 0) return 0;
  std::uint64_t min = kIdle;
  for (const Slot& s : slots_) {
    const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e < min) min = e;
  }
  return min;
}

}  // namespace wise
