#pragma once
// Deterministic pseudo-random number generation.
//
// All randomized components of the library (matrix generators, ML data
// shuffling, test fixtures) draw from these generators so that every
// experiment is reproducible from a single 64-bit seed. We implement
// splitmix64 (for seeding) and xoshiro256** (for bulk generation) rather
// than using std::mt19937 because their output is specified exactly —
// results are bit-identical across standard libraries — and they are
// measurably faster in generator-bound workloads such as RMAT edge
// placement.

#include <array>
#include <cstdint>
#include <limits>

namespace wise {

/// splitmix64: tiny, high-quality 64-bit generator used to expand one seed
/// into the state of larger generators. Passes BigCrush when used directly.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's workhorse generator.
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions when convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Fork an independent child stream; used to give each parallel worker or
  /// generated matrix its own deterministic stream.
  Xoshiro256 fork() noexcept { return Xoshiro256(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace wise
