#include "util/error.hpp"

namespace wise {

namespace {

std::string render(ErrorCategory category, const std::string& message,
                   const ErrorContext& ctx) {
  std::string out = "[";
  out += error_category_name(category);
  out += "] ";
  if (!ctx.file.empty()) {
    out += ctx.file;
    if (ctx.line > 0) out += ":" + std::to_string(ctx.line);
    out += ": ";
  } else if (ctx.line > 0) {
    out += "line " + std::to_string(ctx.line) + ": ";
  }
  out += message;
  if (ctx.offset > 0) out += " (at byte offset " + std::to_string(ctx.offset) + ")";
  if (!ctx.stage.empty()) out += " [stage: " + ctx.stage + "]";
  return out;
}

}  // namespace

const char* error_category_name(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kParse: return "parse";
    case ErrorCategory::kValidation: return "validation";
    case ErrorCategory::kModelBank: return "model-bank";
    case ErrorCategory::kConversion: return "conversion";
    case ErrorCategory::kResource: return "resource";
  }
  return "unknown";
}

int error_exit_code(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kParse: return 3;
    case ErrorCategory::kValidation: return 4;
    case ErrorCategory::kModelBank: return 5;
    case ErrorCategory::kConversion: return 6;
    case ErrorCategory::kResource: return 7;
  }
  return 1;
}

Error::Error(ErrorCategory category, const std::string& message,
             ErrorContext context)
    : std::runtime_error(render(category, message, context)),
      category_(category),
      context_(std::move(context)),
      message_(message) {}

}  // namespace wise
