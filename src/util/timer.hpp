#pragma once
// Wall-clock timing helpers used by the measurement harness and benches.

#include <chrono>
#include <cstdint>

namespace wise {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }
  double microseconds() const noexcept { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Prevents the compiler from optimizing away a computed value.
/// Equivalent in spirit to benchmark::DoNotOptimize but usable without
/// linking google-benchmark into the library.
template <typename T>
inline void do_not_optimize(T const& value) noexcept {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace wise
