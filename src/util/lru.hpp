#pragma once
// Cost-budgeted LRU map — the replacement policy behind the serving layer's
// caches (serve/cache.hpp).
//
// A classic list + hash-index LRU: entries live in a doubly-linked list in
// recency order (front = most recent) and the index maps keys to list
// iterators, so get/put/erase are O(1). Each entry carries a caller-chosen
// cost (bytes, or 1 for count-bounded caches); put() evicts from the tail
// until total cost fits the budget, returning the evicted values so the
// caller can observe (and count) exactly what was dropped. Eviction order
// is strictly least-recently-used, making it deterministic for tests.
//
// Not thread-safe: callers wrap it in their own lock (the serve caches
// hold one mutex around a whole LruMap).

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wise {

/// Splits a total cost budget across `parts` consumers so the shares sum
/// to `total` *exactly*: every share gets total/parts and the remainder is
/// distributed round-robin, one unit each, to the leading shares. Used by
/// the sharded serving caches (serve/server.cpp) so N per-shard byte
/// budgets add up to the configured WISE_SERVE_CACHE_BYTES with no bytes
/// lost to integer division. A `total` of 0 yields all-zero shares (the
/// caches treat 0 as unbounded).
inline std::vector<std::size_t> split_budget(std::size_t total,
                                             std::size_t parts) {
  std::vector<std::size_t> shares(parts == 0 ? 1 : parts, 0);
  if (total == 0) return shares;
  const std::size_t base = total / shares.size();
  std::size_t remainder = total % shares.size();
  for (std::size_t i = 0; i < shares.size(); ++i) {
    shares[i] = base + (i < remainder ? 1 : 0);
  }
  return shares;
}

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruMap {
 public:
  /// `budget` caps the sum of entry costs; 0 means unbounded.
  explicit LruMap(std::size_t budget = 0) : budget_(budget) {}

  /// Value for `key`, moved to most-recently-used; nullptr when absent. The
  /// pointer stays valid until the entry is evicted or erased.
  Value* get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  /// Like get() but without touching recency.
  const Value* peek(const Key& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->value;
  }

  /// Inserts (or replaces) `key`, marks it most-recently-used, then evicts
  /// least-recently-used entries until the budget holds. Returns the
  /// evicted values (never the just-inserted one: an entry whose cost alone
  /// exceeds the budget stays resident until the next insertion displaces
  /// it, so a put() is never a silent no-op).
  std::vector<Value> put(const Key& key, Value value, std::size_t cost) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      total_cost_ -= it->second->cost;
      order_.erase(it->second);
      index_.erase(it);
    }
    order_.push_front(Entry{key, std::move(value), cost});
    index_.emplace(key, order_.begin());
    total_cost_ += cost;

    std::vector<Value> evicted;
    while (budget_ > 0 && total_cost_ > budget_ && order_.size() > 1) {
      Entry& tail = order_.back();
      total_cost_ -= tail.cost;
      index_.erase(tail.key);
      evicted.push_back(std::move(tail.value));
      order_.pop_back();
    }
    return evicted;
  }

  bool erase(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    total_cost_ -= it->second->cost;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() {
    order_.clear();
    index_.clear();
    total_cost_ = 0;
  }

  std::size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }
  std::size_t total_cost() const { return total_cost_; }
  std::size_t budget() const { return budget_; }

  /// Keys in recency order (most recent first); for tests and STATS dumps.
  std::vector<Key> keys_by_recency() const {
    std::vector<Key> keys;
    keys.reserve(order_.size());
    for (const Entry& e : order_) keys.push_back(e.key);
    return keys;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t cost;
  };

  std::size_t budget_;
  std::size_t total_cost_ = 0;
  std::list<Entry> order_;
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
};

}  // namespace wise
