#include "util/fault.hpp"

#include <cstdio>
#include <cstdlib>
#include <set>

#include "util/env.hpp"

namespace wise {

namespace {

/// FNV-1a over the stage name: gives each stage an independent PRNG stream
/// derived from one seed.
std::uint64_t stage_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

FaultInjector FaultInjector::from_env() {
  FaultInjector inj(static_cast<std::uint64_t>(env_int("WISE_FAULT_SEED", 0)));
  const std::string spec = env_string("WISE_FAULT_STAGES", "");
  std::set<std::string, std::less<>> seen;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    double rate = 1.0;
    const std::size_t colon = item.find(':');
    if (colon != std::string::npos) {
      const std::string rate_s = item.substr(colon + 1);
      char* parse_end = nullptr;
      rate = std::strtod(rate_s.c_str(), &parse_end);
      if (parse_end == rate_s.c_str() || *parse_end != '\0') {
        throw Error(ErrorCategory::kValidation,
                    "WISE_FAULT_STAGES: bad rate in '" + item + "'");
      }
      item.resize(colon);
    }
    if (item.empty()) {
      throw Error(ErrorCategory::kValidation,
                  "WISE_FAULT_STAGES: empty stage name in '" + spec + "'");
    }
    // A repeated stage name is almost always a typo'd rate edit. arm() is
    // insert_or_assign (last wins), which would silently drop the earlier
    // rate — keep the FIRST armed rate and warn instead.
    if (!seen.insert(item).second) {
      std::fprintf(stderr,
                   "FaultInjector: WISE_FAULT_STAGES names stage '%s' more "
                   "than once; keeping the first rate\n",
                   item.c_str());
      continue;
    }
    inj.arm(item, rate);
  }
  return inj;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector instance = from_env();
  return instance;
}

void FaultInjector::arm(std::string_view stg, double rate) {
  rate = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
  StageState state;
  state.rate = rate;
  state.rng = SplitMix64(seed_ ^ stage_hash(stg));
  std::lock_guard<std::mutex> lock(mutex_);
  stages_.insert_or_assign(std::string(stg), state);
}

void FaultInjector::disarm(std::string_view stg) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stages_.find(stg);
  if (it != stages_.end()) stages_.erase(it);
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_.clear();
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, state] : stages_) {
    if (state.rate > 0.0) return true;
  }
  return false;
}

std::uint64_t FaultInjector::next_trip(std::string_view stg) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stages_.find(stg);
  if (it == stages_.end()) return 0;
  StageState& state = it->second;
  if (state.rate <= 0.0) return 0;
  // Draw even when rate == 1 so lowering the rate later continues the same
  // deterministic stream.
  const double u =
      static_cast<double>(state.rng.next() >> 11) * 0x1.0p-53;
  const bool fail = state.rate >= 1.0 || u < state.rate;
  if (!fail) return 0;
  return ++state.trips;
}

bool FaultInjector::should_fail(std::string_view stg) {
  return next_trip(stg) != 0;
}

void FaultInjector::maybe_throw(std::string_view stg, ErrorCategory category) {
  const std::uint64_t trip = next_trip(stg);
  if (trip == 0) return;
  ErrorContext ctx;
  ctx.stage = std::string(stg);
  throw Error(category, "injected fault (trip #" + std::to_string(trip) + ")",
              std::move(ctx));
}

std::uint64_t FaultInjector::trip_count(std::string_view stg) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stages_.find(stg);
  return it == stages_.end() ? 0 : it->second.trips;
}

}  // namespace wise
