#pragma once
// Minimal CSV reading/writing for the on-disk measurement cache.
//
// The format is deliberately restricted: comma separator, no quoting, no
// embedded commas/newlines in fields. Every producer in this repository
// writes identifiers and numbers only, so full RFC-4180 handling would be
// dead weight. Readers validate column counts and fail loudly.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace wise {

/// One parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws std::out_of_range when absent.
  std::size_t col(const std::string& name) const;
};

/// Parses a whole CSV file. Throws std::runtime_error on I/O failure or on
/// rows whose field count differs from the header's.
CsvTable read_csv(const std::string& path);

/// Streaming CSV writer. Creates parent directories as needed.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& fields);
  void flush();

 private:
  std::ofstream out_;
  std::size_t width_;
};

/// Splits `line` on commas. Exposed for tests.
std::vector<std::string> split_csv_line(const std::string& line);

/// Creates `dir` (and parents) if missing.
void ensure_dir(const std::string& dir);

}  // namespace wise
