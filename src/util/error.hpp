#pragma once
// Typed error hierarchy for the WISE pipeline.
//
// Every data-driven failure in the library — malformed input files, matrix
// invariant violations, corrupt model banks, failed layout conversions, and
// exhausted resources — throws a wise::Error carrying a category and
// structured context (file, line/offset, pipeline stage). Callers can react
// per category: the pipeline demotes to the CSR baseline (see
// wise/pipeline.hpp), and the CLI front ends map categories to distinct
// process exit codes. Programmer errors (API misuse such as shape
// mismatches on in-memory calls) remain std::invalid_argument /
// std::logic_error as before.
//
// Error derives from std::runtime_error, so existing `catch
// (const std::runtime_error&)` sites keep working.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace wise {

/// Failure taxonomy. docs/ROBUSTNESS.md documents when each applies.
enum class ErrorCategory {
  kParse,       ///< syntactically malformed input (file/stream structure)
  kValidation,  ///< well-formed input violating a semantic invariant
  kModelBank,   ///< missing, corrupt, or version-mismatched model bank
  kConversion,  ///< layout conversion (CSR → SRVPack/BSR) failed
  kResource,    ///< allocation failure, memory budget, unwritable output
};

/// Stable lowercase name ("parse", "validation", ...), used in messages and
/// by the malformed-input corpus tests.
const char* error_category_name(ErrorCategory category);

/// Process exit code a CLI should return for this category. Distinct,
/// nonzero, and disjoint from the conventional 1 (generic) and 2 (usage):
/// parse=3, validation=4, model-bank=5, conversion=6, resource=7.
int error_exit_code(ErrorCategory category);

/// Structured origin of an error. All fields optional; empty/zero = unknown.
struct ErrorContext {
  std::string file;        ///< path of the offending file, if any
  std::size_t line = 0;    ///< 1-based text line number (0 = n/a)
  std::size_t offset = 0;  ///< byte offset for binary formats (0 = n/a)
  std::string stage;       ///< pipeline stage name (see util/fault.hpp)
};

/// The library's typed exception. what() renders category + context +
/// message, e.g. "[parse] bad.mtx:17: malformed entry".
class Error : public std::runtime_error {
 public:
  Error(ErrorCategory category, const std::string& message,
        ErrorContext context = {});

  ErrorCategory category() const noexcept { return category_; }
  const ErrorContext& context() const noexcept { return context_; }
  /// The bare message without the rendered category/context prefix.
  const std::string& message() const noexcept { return message_; }

 private:
  ErrorCategory category_;
  ErrorContext context_;
  std::string message_;
};

}  // namespace wise
