#pragma once
// Environment-variable configuration knobs.
//
// The benchmark harness scales experiment sizes through a handful of
// WISE_* environment variables so the full suite can run both on a laptop
// (defaults) and on a larger machine (raised values) without recompiling.

#include <cstdint>
#include <string>

namespace wise {

/// Returns the value of environment variable `name`, or `fallback` when it
/// is unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);
bool env_flag(const char* name, bool fallback);

/// Global size multiplier for experiments (WISE_SCALE, default 1.0).
/// Row counts in the experiment corpus are multiplied by this value.
double experiment_scale();

/// Directory where the measurement cache and trained models are stored
/// (WISE_DATA_DIR, default "data" relative to the current directory).
std::string data_dir();

}  // namespace wise
