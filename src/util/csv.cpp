#include "util/csv.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace wise {

std::size_t CsvTable::col(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CSV column not found: " + name);
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error(ErrorCategory::kResource, "cannot open CSV file: " + path,
                {.file = path});
  }

  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) {
    throw Error(ErrorCategory::kParse, "empty CSV file", {.file = path});
  }
  table.header = split_csv_line(line);

  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto fields = split_csv_line(line);
    if (fields.size() != table.header.size()) {
      std::ostringstream msg;
      msg << "expected " << table.header.size() << " fields, got "
          << fields.size();
      throw Error(ErrorCategory::kParse, msg.str(),
                  {.file = path, .line = lineno});
    }
    table.rows.push_back(std::move(fields));
  }
  return table;
}

void ensure_dir(const std::string& dir) {
  if (!dir.empty()) std::filesystem::create_directories(dir);
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : width_(header.size()) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  out_.open(path);
  if (!out_) {
    throw Error(ErrorCategory::kResource, "cannot create CSV file: " + path,
                {.file = path});
  }
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (fields.size() != width_) {
    throw std::invalid_argument("CSV row width mismatch");
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace wise
