#pragma once
// Fixed-size worker pool with a bounded task queue — the execution engine
// behind the serving layer (serve/server.hpp).
//
// Design: N std::threads drain one FIFO of std::function<void()> tasks. The
// queue is optionally bounded; when full, callers choose their backpressure
// at the call site: try_submit() rejects immediately (returns false) while
// submit() blocks until a slot frees. Shutdown is always *draining*: after
// drain_and_stop() no new task is accepted, every queued task still runs,
// and the workers are joined. Callers that need to abandon queued work do
// so cooperatively (a cancelled flag the task itself checks) — the pool
// never drops a task it accepted, so a task's completion promise is always
// fulfilled exactly once.
//
// Threading contract: all public member functions are safe to call from any
// thread, including from inside a running task (except drain_and_stop,
// which would self-join).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wise {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). `queue_capacity` bounds the
  /// number of tasks waiting to run (0 = unbounded); running tasks do not
  /// count against it.
  explicit ThreadPool(int threads, std::size_t queue_capacity = 0);

  /// Drains and joins (see drain_and_stop).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` unless the queue is at capacity or the pool is
  /// stopping; returns whether the task was accepted.
  bool try_submit(std::function<void()> task);

  /// Enqueues `task`, blocking while the queue is at capacity. Returns
  /// false (without running the task) only when the pool is stopping.
  bool submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, and joins the
  /// workers. Idempotent. Must not be called from a worker thread.
  void drain_and_stop();

  /// Tasks queued but not yet picked up by a worker.
  std::size_t queue_depth() const;

  int thread_count() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_capacity() const { return capacity_; }

 private:
  void worker_loop();

  const std::size_t capacity_;  ///< 0 = unbounded
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  /// Workers parked in not_empty_.wait(); maintained under mutex_. Lets
  /// submitters skip the notify syscall entirely while every worker is
  /// busy — the common state under load, where a notify would only burn a
  /// futex wake on threads that will find the queue themselves.
  int idle_workers_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace wise
