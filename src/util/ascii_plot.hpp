#pragma once
// Text renderings of the paper's plot types.
//
// The bench binaries print their results both as machine-readable tables and
// as quick-look ASCII charts: histograms (paper Figs 7, 11, 12, 13) and
// labeled 2-D grids (paper Figs 5, 6 heatmaps, Fig 10 confusion matrices).

#include <cstdint>
#include <string>
#include <vector>

namespace wise {

/// Fixed-width histogram over [lo, hi) with `bins` equal-width buckets.
/// Values outside the range are clamped into the first/last bucket.
struct Histogram {
  Histogram(double lo, double hi, int bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  /// Count in bucket `i`.
  std::int64_t count(int i) const { return counts_[static_cast<std::size_t>(i)]; }
  int bins() const { return static_cast<int>(counts_.size()); }
  std::int64_t total() const;
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

  /// Renders as rows of `#` bars with bucket labels, e.g.
  ///   [0.00,0.10)  37 #########
  std::string render(int max_bar_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::int64_t> counts_;
};

/// Renders a matrix of doubles as an aligned text table with row/column
/// labels; used for confusion matrices and parameter-sweep tables.
std::string render_table(const std::vector<std::string>& col_labels,
                         const std::vector<std::string>& row_labels,
                         const std::vector<std::vector<std::string>>& cells,
                         const std::string& corner = "");

/// Renders a 2-D grid of single-character glyphs with axis labels; used for
/// the "fastest method" grids of Figs 5a/5c/6a/6c.
std::string render_glyph_grid(const std::vector<std::string>& x_labels,
                              const std::vector<std::string>& y_labels,
                              const std::vector<std::vector<char>>& glyphs,
                              const std::string& x_title,
                              const std::string& y_title);

/// Formats a double with `prec` significant decimals, trimming zeros.
std::string fmt(double v, int prec = 3);

}  // namespace wise
