#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace wise {

ThreadPool::ThreadPool(int threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  threads = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { drain_and_stop(); }

bool ThreadPool::try_submit(std::function<void()> task) {
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return false;
    if (capacity_ > 0 && queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
    wake = idle_workers_ > 0;
  }
  if (wake) not_empty_.notify_one();
  return true;
}

bool ThreadPool::submit(std::function<void()> task) {
  bool wake;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return stopping_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    wake = idle_workers_ > 0;
  }
  if (wake) not_empty_.notify_one();
  return true;
}

void ThreadPool::drain_and_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // The idle counter brackets only the actual wait: a worker that finds
      // work on re-lock never counts as idle, so submitters see idle > 0
      // exactly when a notify can shorten someone's sleep.
      if (!stopping_ && queue_.empty()) {
        ++idle_workers_;
        not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        --idle_workers_;
      }
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
  }
}

}  // namespace wise
