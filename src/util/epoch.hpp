#pragma once
// Epoch-based reclamation — the memory-safety protocol behind the serving
// layer's lock-free cache reads (serve/cache.hpp, via util/epoch_lru.hpp).
//
// The problem: a reader wants to follow a pointer published through an
// atomic without taking any lock, while a writer concurrently unlinks and
// eventually frees the object behind it. Epochs solve it with a grace
// period. Readers *pin* before touching shared pointers: they stamp the
// current global epoch into a slot of the domain. Writers never free an
// unlinked object immediately; they *retire* it, advancing the global
// epoch, and only free it once every pinned reader's stamp has reached the
// retirement epoch — at which point no reader can still hold the old
// pointer (a reader pinned at epoch >= E provably loads the post-unlink
// state; see the ordering note in epoch.cpp).
//
// Slots are claimed per *pin*, not per thread: a Pin CASes a free slot on
// entry and releases it on exit, probing from a per-thread start offset so
// a thread that pins repeatedly reuses the same otherwise-untouched slot —
// the claim is an uncontended RMW on a cache line effectively private to
// the thread. No per-thread state references the domain, so domains can be
// stack-local and die freely (they must only outlive their own Pins, which
// RAII already guarantees). If all kSlots slots are briefly taken, the
// extra pins fall back to a shared overflow counter that simply stalls
// reclamation while nonzero — always safe, never freeing early, just
// deferring.
//
// Costs: pinning is one CAS + one seq_cst load + one seq_cst store, no
// lock, no syscall. Unpinning is two release stores. Writers pay the scan
// over the (fixed, small) slot array, which is fine because writers
// already serialize on their own mutex and run on cache *misses* — the
// slow path by definition.

#include <atomic>
#include <cstdint>

namespace wise {

class EpochDomain {
 public:
  /// Sentinel slot value: the thread is not inside a read-side section.
  static constexpr std::uint64_t kIdle = ~0ull;
  static constexpr int kSlots = 128;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
    std::atomic<bool> claimed{false};
  };

 public:
  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// The process-wide domain the serving caches share.
  static EpochDomain& global();

  /// RAII read-side critical section. While a Pin lives, any object
  /// retired at an epoch the pin precedes stays allocated. Nestable
  /// (an inner pin claims its own slot). The domain must outlive the Pin.
  class Pin {
   public:
    explicit Pin(EpochDomain& domain);
    ~Pin();
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    EpochDomain& domain_;
    Slot* slot_;  ///< nullptr: pinned through the overflow counter
  };

  /// Writer side, called *after* unlinking an object from the shared
  /// structure: advances the global epoch and returns the retirement
  /// epoch E. The object may be freed once min_active() >= E.
  std::uint64_t retire_epoch();

  /// Smallest epoch any pinned reader may still be inside; kIdle when no
  /// reader is pinned. Returns 0 (blocking all reclamation) while any
  /// overflow pin is active.
  std::uint64_t min_active() const;

  /// Current global epoch (tests/diagnostics).
  std::uint64_t current() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

 private:
  Slot* claim_slot();

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::uint64_t> overflow_pins_{0};
  Slot slots_[kSlots];
};

}  // namespace wise
