#pragma once
// Read-lock-free, cost-budgeted LRU map over epoch-based reclamation
// (util/epoch.hpp) — the data structure behind the serving layer's sharded
// caches (serve/cache.hpp).
//
// Reads (the warm-hit path) take ZERO locks: a reader pins the epoch
// domain, follows one seq_cst pointer load to an immutable open-addressed
// table, probes it, bumps the entry's recency tick with a relaxed store,
// copies the value out, and unpins. Writers (cache misses — already the
// slow path, a prepare costs milliseconds) serialize on an internal mutex
// and rebuild the table copy-on-write: the old table is retired to the
// epoch domain and freed only after every pinned reader has moved past
// its retirement epoch, so a reader mid-probe can never touch freed
// memory.
//
// Recency is a per-entry 64-bit tick from a shared relaxed counter instead
// of a linked list (readers cannot splice a list locklessly). Under
// single-threaded access the tick order IS strict LRU order, so eviction
// stays deterministic for tests and replayed traces; under concurrency it
// is LRU up to the interleaving of the racing reads themselves. Eviction
// on put() drops lowest-tick entries until the budget holds and never
// drops the entry just inserted (same contract as util/lru.hpp).
//
// Destruction is not epoch-protected: callers must guarantee no reader is
// pinned when the map dies (the serve layer destroys caches only after
// its worker pools are joined).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "util/epoch.hpp"

namespace wise {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class EpochLruMap {
 public:
  /// `budget` caps the sum of entry costs; 0 means unbounded.
  explicit EpochLruMap(std::size_t budget = 0,
                       EpochDomain* domain = &EpochDomain::global())
      : budget_(budget), domain_(domain), table_(new Table()) {}

  ~EpochLruMap() {
    delete table_.load(std::memory_order_relaxed);
    for (Retired& r : retired_) delete r.table;
  }

  EpochLruMap(const EpochLruMap&) = delete;
  EpochLruMap& operator=(const EpochLruMap&) = delete;

  /// Lock-free lookup. On a hit copies the value into `out`, marks the
  /// entry most-recently-used, and returns true.
  bool get(const Key& key, Value& out) {
    EpochDomain::Pin pin(*domain_);
    const Table* t = table_.load(std::memory_order_seq_cst);
    const Node* node = t->find(key);
    if (node == nullptr) return false;
    node->tick.store(tick_.fetch_add(1, std::memory_order_relaxed),
                     std::memory_order_relaxed);
    out = node->value;  // copied while pinned: the table cannot be freed
    return true;
  }

  /// Inserts (or replaces) `key` as most-recently-used, then evicts
  /// lowest-tick entries until the budget holds — never the entry just
  /// inserted, so an over-budget entry stays resident until the next
  /// insertion displaces it. Returns the number of entries evicted.
  /// Serialized against other writers; safe against concurrent get().
  std::size_t put(const Key& key, Value value, std::size_t cost) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    Table* old = table_.load(std::memory_order_relaxed);

    std::vector<Item> items;
    items.reserve(old->count + 1);
    std::size_t total = 0;
    for (const Node& n : old->slots) {
      if (!n.used || n.key == key) continue;  // replacement drops the old copy
      items.push_back({n.key, n.value, n.cost,
                       n.tick.load(std::memory_order_relaxed)});
      total += n.cost;
    }
    items.push_back({key, std::move(value), cost,
                     tick_.fetch_add(1, std::memory_order_relaxed)});
    total += cost;

    // The just-inserted entry holds the highest tick, so while size > 1 the
    // minimum is always an older entry.
    std::size_t evicted = 0;
    while (budget_ > 0 && total > budget_ && items.size() > 1) {
      std::size_t victim = 0;
      for (std::size_t i = 1; i < items.size(); ++i) {
        if (items[i].tick < items[victim].tick) victim = i;
      }
      total -= items[victim].cost;
      items.erase(items.begin() + static_cast<std::ptrdiff_t>(victim));
      ++evicted;
    }

    Table* next = build_table(items);
    next->cost = total;
    table_.store(next, std::memory_order_seq_cst);
    size_.store(next->count, std::memory_order_relaxed);
    cost_.store(total, std::memory_order_relaxed);
    retired_.push_back({old, domain_->retire_epoch()});
    reclaim_locked();
    return evicted;
  }

  /// Drops every entry by publishing an empty table; the old table is
  /// retired to the epoch domain like any other write, so concurrent get()
  /// calls stay safe (they see either the old table or the empty one).
  /// Used by the serving layer to invalidate a shard's caches when a new
  /// model bank is published — cached choices embed the old bank's configs.
  void clear() {
    std::lock_guard<std::mutex> lock(write_mutex_);
    Table* old = table_.load(std::memory_order_relaxed);
    std::vector<Item> none;
    Table* next = build_table(none);
    table_.store(next, std::memory_order_seq_cst);
    size_.store(0, std::memory_order_relaxed);
    cost_.store(0, std::memory_order_relaxed);
    retired_.push_back({old, domain_->retire_epoch()});
    reclaim_locked();
  }

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::size_t total_cost() const {
    return cost_.load(std::memory_order_relaxed);
  }
  std::size_t budget() const { return budget_; }

  /// Tables retired but not yet reclaimed (tests/diagnostics).
  std::size_t retired_count() const {
    std::lock_guard<std::mutex> lock(write_mutex_);
    return retired_.size();
  }

 private:
  struct Node {
    Key key{};
    Value value{};
    std::size_t cost = 0;
    bool used = false;
    mutable std::atomic<std::uint64_t> tick{0};
  };

  struct Item {
    Key key;
    Value value;
    std::size_t cost;
    std::uint64_t tick;
  };

  /// Immutable after publication (only the recency ticks mutate, and they
  /// are atomics). Linear probing at <= 50% load.
  struct Table {
    std::vector<Node> slots;
    std::size_t count = 0;
    std::size_t cost = 0;

    const Node* find(const Key& key) const {
      if (slots.empty()) return nullptr;
      const std::size_t mask = slots.size() - 1;
      std::size_t i = Hash{}(key) & mask;
      while (slots[i].used) {
        if (slots[i].key == key) return &slots[i];
        i = (i + 1) & mask;
      }
      return nullptr;
    }
  };

  struct Retired {
    Table* table;
    std::uint64_t epoch;
  };

  static Table* build_table(std::vector<Item>& items) {
    Table* t = new Table();
    std::size_t cap = 4;
    while (cap < items.size() * 2) cap *= 2;
    t->slots = std::vector<Node>(cap);
    const std::size_t mask = cap - 1;
    for (Item& item : items) {
      std::size_t i = Hash{}(item.key) & mask;
      while (t->slots[i].used) i = (i + 1) & mask;
      Node& n = t->slots[i];
      n.key = std::move(item.key);
      n.value = std::move(item.value);
      n.cost = item.cost;
      n.used = true;
      n.tick.store(item.tick, std::memory_order_relaxed);
    }
    t->count = items.size();
    return t;
  }

  /// Caller holds write_mutex_. Frees every retired table whose grace
  /// period has elapsed.
  void reclaim_locked() {
    const std::uint64_t min = domain_->min_active();
    std::size_t keep = 0;
    for (Retired& r : retired_) {
      if (min >= r.epoch) {
        delete r.table;
      } else {
        retired_[keep++] = r;
      }
    }
    retired_.resize(keep);
  }

  const std::size_t budget_;
  EpochDomain* domain_;
  std::atomic<Table*> table_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> cost_{0};
  mutable std::mutex write_mutex_;
  std::vector<Retired> retired_;  ///< guarded by write_mutex_
};

}  // namespace wise
