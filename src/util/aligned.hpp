#pragma once
// Cache-line / vector-register aligned storage.
//
// The SRVPack value and column-id planes are read with vector loads; aligning
// them to 64 bytes keeps every c-wide lane group within a single cache line
// (c=8 doubles == exactly one line) and enables aligned AVX-512 loads.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace wise {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal C++17 aligned allocator for std::vector.
template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  /// Explicit rebind: allocator_traits cannot synthesize one because the
  /// second template parameter is a non-type (the alignment).
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  static_assert(Alignment >= alignof(T), "alignment weaker than alignof(T)");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(Alignment, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }

 private:
  static constexpr std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Vector whose data pointer is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace wise
