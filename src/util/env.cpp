#include "util/env.hpp"

#include <cstdlib>
#include <stdexcept>

namespace wise {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::string s(v);
  return !(s == "0" || s == "false" || s == "off" || s == "no");
}

double experiment_scale() { return env_double("WISE_SCALE", 1.0); }

std::string data_dir() { return env_string("WISE_DATA_DIR", "data"); }

}  // namespace wise
