#pragma once
// Core scalar type aliases shared across the WISE library.
//
// Matrices in the evaluated corpus have at most a few hundred million rows,
// so 32-bit row/column indices are sufficient and halve the memory-bandwidth
// cost of the index streams — the dominant cost in SpMV. Nonzero *counts*
// and CSR row pointers use 64-bit integers so matrices with more than 2^31
// nonzeros remain representable.

#include <cstdint>

namespace wise {

/// Row/column index of a sparse matrix.
using index_t = std::int32_t;

/// Nonzero count / offset into the nonzero arrays.
using nnz_t = std::int64_t;

/// Numeric value type of matrix elements and vectors.
using value_t = double;

}  // namespace wise
