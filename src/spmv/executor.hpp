#pragma once
// Preparing a matrix for a chosen configuration and running SpMV with it —
// the "transform matrix layout" + "run SpMV" steps of the WISE pipeline
// (paper Fig 8, steps 4-5).

#include <memory>
#include <optional>
#include <span>

#include "obs/metrics.hpp"
#include "sparse/csr.hpp"
#include "sparse/srvpack.hpp"
#include "spmv/bsr_fwd.hpp"
#include "spmv/method.hpp"
#include "spmv/plan.hpp"
#include "spmv/srvpack_kernels.hpp"

namespace wise {

class EllMatrix;
class HybMatrix;
class DiaMatrix;

/// A matrix converted to the layout a MethodConfig needs, plus the measured
/// conversion (preprocessing) time.
///
/// Lifetime: for CSR configurations no conversion happens and the prepared
/// matrix *references* the source CsrMatrix, which must outlive it. For all
/// other configurations the SRVPack copy is owned.
class PreparedMatrix {
 public:
  /// Converts `m` (timing the conversion) and, unless WISE_PLAN=0, builds
  /// the nnz-balanced execution plan the kernels run over (spmv/plan.hpp).
  /// Never null-returns; throws on invalid configs.
  static PreparedMatrix prepare(const CsrMatrix& m, const MethodConfig& cfg);

  /// y = A*x with the prepared layout and the config's scheduling policy.
  /// Not safe for concurrent calls on the same object (the member scratch
  /// buffer is reused across calls); concurrent callers use the overload
  /// below with their own workspace.
  void run(std::span<const value_t> x, std::span<value_t> y);

  /// Const-thread-safe run: identical to run(x, y) but gathers through the
  /// caller-provided scratch workspace, so N threads may run one prepared
  /// object concurrently as long as each brings its own `ws` (and its own
  /// y). Everything else a run touches — layout, plan, config, metric id —
  /// is immutable after prepare(). The serving layer's warm RUN path
  /// (serve/server.cpp) relies on this to execute cached entries with no
  /// per-entry lock.
  void run(std::span<const value_t> x, std::span<value_t> y,
           SrvWorkspace& ws) const;

  const MethodConfig& config() const { return cfg_; }

  /// Wall-clock seconds the layout conversion took (0 for CSR).
  double prep_seconds() const { return prep_seconds_; }

  /// Bytes of the prepared representation (layout only; plans are reported
  /// separately by plan_bytes so existing footprint comparisons hold).
  std::size_t memory_bytes() const;

  /// Bytes of the precomputed execution plan, 0 when plans are disabled or
  /// the config has none (BSR). serve::prepared_entry_bytes charges this
  /// into the prepared-cache byte budget on top of memory_bytes().
  std::size_t plan_bytes() const;

  /// True when run() executes over a precomputed plan.
  bool has_plan() const {
    return csr_plan_.has_value() || srv_plan_.has_value() ||
           fmt_plan_.has_value();
  }

  index_t nrows() const { return csr_->nrows(); }
  index_t ncols() const { return csr_->ncols(); }

 private:
  MethodConfig cfg_;
  const CsrMatrix* csr_ = nullptr;  ///< always set; the SpMV source for kCsr
  std::optional<SrvPackMatrix> packed_;
  std::shared_ptr<const BsrMatrix> bsr_;  ///< set for the BSR extension
  std::shared_ptr<const EllMatrix> ell_;  ///< set for the ELL extension
  std::shared_ptr<const HybMatrix> hyb_;  ///< set for the HYB extension
  std::shared_ptr<const DiaMatrix> dia_;  ///< set for the DIA extension
  std::optional<SpmvPlan> csr_plan_;  ///< row plan, kCsr only
  std::optional<SrvPlan> srv_plan_;   ///< per-segment chunk plans, SRVPack
  std::optional<SpmvPlan> fmt_plan_;  ///< row plan, ELL/HYB/DIA
  SrvWorkspace ws_;
  double prep_seconds_ = 0.0;
  /// Per-configuration kernel timer ("spmv.run.<config name>"), interned
  /// once at prepare() when metrics are enabled so run() never touches a
  /// string. Stays kInvalidMetric — and run() stays untimed — when metrics
  /// were disabled at prepare() time.
  obs::MetricId run_timer_ = obs::kInvalidMetric;
};

/// Times `iters` SpMV runs of a prepared matrix and returns the average
/// seconds per iteration (minimum of `repeats` timing passes to suppress
/// scheduling noise).
double time_spmv(PreparedMatrix& pm, std::span<const value_t> x,
                 std::span<value_t> y, int iters, int repeats = 3);

}  // namespace wise
