#pragma once
// Parallel SpMV kernels for the extension formats ELL, HYB, and DIA.
//
// All three kernels parallelize over disjoint row blocks — either the
// blocks of a precomputed nnz-balanced SpmvPlan (built over the *source*
// CSR row_ptr at prepare() time, see executor.cpp) or, when no plan is
// given, one even row range per thread. Every row is computed by exactly
// one block and each row's accumulation replays the source CSR entry
// order, so the result is bit-identical to the serial spmv_reference
// oracle at any thread count, with or without a plan (pinned by
// tests/formats_test.cpp at OMP_NUM_THREADS in {1, 2, 8}):
//
//   ELL  slot-outer over the block's rows, a per-row length guard skips
//        padding cells entirely; slot order == column order.
//   HYB  the ELL loop for the capped part, then a row-compressed tail
//        pass — first-k-then-rest is exactly the CSR entry order.
//   DIA  diagonal-outer; ascending offsets == ascending columns. Dense
//        lanes (no fill) run an unguarded unit-stride triad loop — the
//        pure streaming form that beats CSR on banded matrices — while
//        lanes with fill take a guarded loop that skips 0.0 cells
//        exactly like the reference never saw them.

#include <span>

#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hyb.hpp"
#include "spmv/plan.hpp"
#include "util/types.hpp"

namespace wise {

/// y = A*x; y is fully overwritten. `plan` may be null (even row split per
/// thread); a non-null plan must cover the matrix's rows. Throws
/// std::invalid_argument on dimension mismatch or a non-covering plan.
void spmv_ell(const EllMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, const SpmvPlan* plan = nullptr);
void spmv_hyb(const HybMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, const SpmvPlan* plan = nullptr);
void spmv_dia(const DiaMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, const SpmvPlan* plan = nullptr);

}  // namespace wise
