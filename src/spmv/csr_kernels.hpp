#pragma once
// Parallel CSR SpMV kernels (paper §2.1) and the MKL stand-in baseline.

#include <span>

#include "sparse/csr.hpp"
#include "spmv/plan.hpp"
#include "spmv/schedule.hpp"

namespace wise {

/// y = A*x with the given scheduling policy. y is fully overwritten.
/// Throws std::invalid_argument on dimension mismatch.
void spmv_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, Schedule sched);

/// y = A*x over a precomputed nnz-balanced plan (see spmv/plan.hpp). Blocks
/// run one per thread for the static policies and work-stolen for Dyn.
/// A specialized plan dispatches each block to its recorded KernelVariant
/// (uniform / wide / merge loops); an unspecialized plan runs every block
/// through the generic loop. Bit-identical to the legacy loop above at any
/// thread count and any variant table. Throws std::invalid_argument on
/// dimension mismatch or a plan that does not cover the matrix's rows.
void spmv_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, Schedule sched, const SpmvPlan& plan);

/// MKL baseline stand-in: CSR SpMV with a static row partition balanced by
/// nonzero count per thread (what a well-tuned vendor CSR kernel does).
/// The paper's MKL baseline also operates on CSR (§3, Fig 3).
void spmv_csr_mkl_like(const CsrMatrix& a, std::span<const value_t> x,
                       std::span<value_t> y);

}  // namespace wise
