#pragma once
// Parallel CSR SpMV kernels (paper §2.1) and the MKL stand-in baseline.

#include <span>

#include "sparse/csr.hpp"
#include "spmv/schedule.hpp"

namespace wise {

/// y = A*x with the given scheduling policy. y is fully overwritten.
/// Throws std::invalid_argument on dimension mismatch.
void spmv_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, Schedule sched);

/// MKL baseline stand-in: CSR SpMV with a static row partition balanced by
/// nonzero count per thread (what a well-tuned vendor CSR kernel does).
/// The paper's MKL baseline also operates on CSR (§3, Fig 3).
void spmv_csr_mkl_like(const CsrMatrix& a, std::span<const value_t> x,
                       std::span<value_t> y);

}  // namespace wise
