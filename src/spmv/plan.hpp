#pragma once
// Precomputed nnz-balanced execution plans for the SpMV kernels.
//
// The plain OpenMP row loops in csr_kernels.cpp divide *rows* evenly across
// threads. On skewed matrices (power-law degree distributions — the exact
// regime WISE targets) row counts are a terrible proxy for work: one thread
// can own a handful of dense hub rows holding most of the nonzeros while
// the rest idle. Dynamic scheduling papers over the imbalance but pays a
// shared-queue dequeue per grain on every single multiplication.
//
// An SpmvPlan moves that balancing decision to prepare() time: a prefix-sum
// over row_ptr (CSR) or chunk_offset (SRVPack) is binary-searched for
// split points so each block covers ~nnz/B of the work, and runs of short
// rows are merged into one block (split points falling inside the same row
// collapse, so a single dense row never splits and never duplicates).
// Steady-state SpMV then executes block-by-block with no runtime balancing
// cost — the plan is built once and cached alongside the prepared layout
// (serve::PreparedCache charges its bytes into the cache budget).
//
// Specialized plans go one step further (AlphaSparse direction, ROADMAP
// item 1): the balanced partition is subdivided into finer blocks, each
// block's row-length distribution is classified once at build time, and a
// per-block kernel variant id is recorded. Execute time dispatches each
// block to a shape-specialized loop (see csr_kernels.cpp and
// srvpack_kernels.cpp):
//
//   kGeneric  the baseline loop — one simd-reduced dot per item
//   kUniform  every item has the same length: hoisted trip count and
//             arithmetic offsets, 4-way unrolled over items
//   kWide     long/dense items: multi-accumulator interleave so several
//             independent reduction chains are in flight per thread
//   kMerge    pathological skew / mostly-tiny items: items with <= 2
//             stored entries take a scalar fast path (at most one FP
//             addition, so reassociation cannot change the bits), longer
//             items fall back to the exact generic inner loop
//
// Correctness is schedule- and variant-independent: every row (CSR) or
// chunk (SRVPack segment) is computed by exactly one block, and every
// specialized loop reuses the generic simd-reduced inner loop for any item
// with 3+ stored entries, so plan execution is bit-identical to the legacy
// loops at any thread count (pinned by tests/plan_test.cpp and
// tests/plan_specialize_test.cpp).
//
// Env knobs (read once per build call, documented in docs/PERFORMANCE.md):
//   WISE_PLAN=0                 disable plans (legacy OpenMP loops)
//   WISE_PLAN_BLOCK_FACTOR=N    blocks per thread for Dyn plans (default 4)
//   WISE_PLAN_SPECIALIZE=0      balanced blocks only, no variant table

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/srvpack.hpp"
#include "spmv/schedule.hpp"
#include "util/types.hpp"

namespace wise {

/// Per-block kernel shape chosen at plan-build time. Values are stable —
/// they are stored in SpmvPlan::variants and surfaced through metrics.
enum class KernelVariant : std::uint8_t {
  kGeneric = 0,
  kUniform = 1,
  kWide = 2,
  kMerge = 3,
};

inline constexpr std::size_t kNumKernelVariants = 4;

/// Short stable name ("generic", "uniform", "wide", "merge") used for the
/// spmv.plan.variant.<name> metrics and the daemon STATS histogram.
const char* kernel_variant_name(KernelVariant v);

/// Classifier thresholds (see classify_block). Exposed so tests can pin
/// the boundaries instead of reverse-engineering them.
inline constexpr nnz_t kTinyItemLen = 2;     // scalar-safe item length
inline constexpr double kWideMeanLen = 64.0; // mean length that picks kWide
inline constexpr double kMergeTinyFrac = 0.1; // tiny fraction for kMerge
inline constexpr index_t kSpecializeSubdivide = 8; // finer blocks per base
inline constexpr nnz_t kSpecializeTargetNnz = 1024; // ~nnz per fine block

/// A partition of the items [0, n) — CSR rows or SRVPack chunks — into
/// contiguous, non-empty, nnz-balanced blocks. bounds has num_blocks()+1
/// ascending entries with bounds.front() == 0 and bounds.back() == n;
/// block b covers [bounds[b], bounds[b+1]). When `variants` is non-empty
/// it has num_blocks() entries and variants[b] is the KernelVariant the
/// kernels dispatch block b to; empty means every block runs generic.
struct SpmvPlan {
  std::vector<index_t> bounds;
  std::vector<std::uint8_t> variants;

  index_t num_blocks() const {
    return bounds.empty() ? 0 : static_cast<index_t>(bounds.size()) - 1;
  }
  index_t num_items() const { return bounds.empty() ? 0 : bounds.back(); }
  bool specialized() const { return !variants.empty(); }
  KernelVariant variant(index_t b) const {
    return variants.empty() ? KernelVariant::kGeneric
                            : static_cast<KernelVariant>(
                                  variants[static_cast<std::size_t>(b)]);
  }
  std::size_t memory_bytes() const {
    return bounds.capacity() * sizeof(index_t) +
           variants.capacity() * sizeof(std::uint8_t);
  }

  /// Block count per variant (indexed by KernelVariant value); an
  /// unspecialized plan reports all blocks as kGeneric.
  std::array<std::uint32_t, kNumKernelVariants> variant_histogram() const;

  /// True when the blocks tile [0, n) exactly once: first bound 0, last
  /// bound n, strictly ascending in between (a zero-item plan is the
  /// single empty block {0, 0}), and the variant table, if present,
  /// matches the block count.
  bool covers(index_t n) const;
};

/// Partitions [0, offsets.size()-1) into at most `max_blocks` blocks of
/// ~equal prefix-sum weight. `offsets` is a non-decreasing prefix sum with
/// offsets[0] == 0 (a CSR row_ptr or SRVPack chunk_offset). Split points
/// landing inside one heavy item collapse, so the result can have fewer
/// blocks than requested but every block is non-empty.
SpmvPlan build_balanced_plan(std::span<const nnz_t> offsets,
                             index_t max_blocks);

/// Classifies the item range [lo, hi) of a prefix sum by its length
/// distribution. Decision order (first match wins):
///   1. max length <= kTinyItemLen            -> kMerge (all scalar-safe;
///      covers all-empty blocks)
///   2. min == max                            -> kUniform
///   3. tiny fraction >= kMergeTinyFrac       -> kMerge (a tiny tail
///      dominates even when hub items pull the mean up)
///   4. mean length >= kWideMeanLen           -> kWide
///   5. otherwise                             -> kGeneric
KernelVariant classify_block(std::span<const nnz_t> offsets, index_t lo,
                             index_t hi);

/// build_balanced_plan with a finer block budget — the larger of
/// kSpecializeSubdivide x max_blocks and total_nnz / kSpecializeTargetNnz
/// — plus a classified variant table. Shape clusters (hub runs, tiny
/// tails) are much smaller than a thread's share, so homogeneity needs
/// nnz-sized blocks, not thread-sized ones; the static schedules still
/// hand each thread one contiguous run of blocks, so the finer partition
/// costs nothing at steady state. Bit-identical to the generic plan at
/// execute time by the invariants above.
SpmvPlan build_specialized_plan(std::span<const nnz_t> offsets,
                                index_t max_blocks);

/// How many blocks a schedule wants for `threads` threads: one per thread
/// for the static policies, threads x WISE_PLAN_BLOCK_FACTOR for Dyn so
/// work stealing still has spare blocks to rebalance with.
index_t plan_blocks_for(Schedule sched, int threads);

/// Row plan for the CSR kernels (binary search over row_ptr). The 3-arg
/// form specializes iff WISE_PLAN_SPECIALIZE allows it; the 4-arg form
/// pins the choice (used by tests and the perf_smoke specialize stage).
SpmvPlan build_csr_plan(const CsrMatrix& m, Schedule sched, int threads);
SpmvPlan build_csr_plan(const CsrMatrix& m, Schedule sched, int threads,
                        bool specialize);

/// Chunk plans for the SRVPack kernel: one partition per segment, balanced
/// by stored slots (chunk_offset), since segments execute back-to-back.
struct SrvPlan {
  std::vector<SpmvPlan> segments;
  std::size_t memory_bytes() const;
  /// Sum of the per-segment histograms.
  std::array<std::uint32_t, kNumKernelVariants> variant_histogram() const;
};

SrvPlan build_srv_plan(const SrvPackMatrix& m, Schedule sched, int threads);
SrvPlan build_srv_plan(const SrvPackMatrix& m, Schedule sched, int threads,
                       bool specialize);

/// WISE_PLAN environment switch (default on). When off, PreparedMatrix
/// skips plan construction and run() uses the legacy OpenMP loops.
bool plans_enabled();

/// WISE_PLAN_SPECIALIZE environment switch (default on). When off, plans
/// are built without variant tables and every block executes the generic
/// loop — exactly the pre-specialization behavior.
bool plan_specialization_enabled();

/// WISE_SRV_MERGE environment switch (default OFF). The SRVPack merge
/// variant's tiny-chunk unroll measured ~0.95x of the generic chunk loop
/// on the perf-smoke suite, so merge-classified blocks execute the generic
/// loop unless this opts back in. Classification is unaffected either way:
/// blocks are still labeled kMerge and variant_histogram() keeps its
/// merge bucket populated, so plan telemetry stays shape-stable. The CSR
/// (non-SRVPack) merge kernel is not gated. Read once and cached.
bool srv_merge_enabled();

}  // namespace wise
