#pragma once
// Precomputed nnz-balanced execution plans for the SpMV kernels.
//
// The plain OpenMP row loops in csr_kernels.cpp divide *rows* evenly across
// threads. On skewed matrices (power-law degree distributions — the exact
// regime WISE targets) row counts are a terrible proxy for work: one thread
// can own a handful of dense hub rows holding most of the nonzeros while
// the rest idle. Dynamic scheduling papers over the imbalance but pays a
// shared-queue dequeue per grain on every single multiplication.
//
// An SpmvPlan moves that balancing decision to prepare() time: a prefix-sum
// over row_ptr (CSR) or chunk_offset (SRVPack) is binary-searched for
// split points so each block covers ~nnz/B of the work, and runs of short
// rows are merged into one block (split points falling inside the same row
// collapse, so a single dense row never splits and never duplicates).
// Steady-state SpMV then executes block-by-block with no runtime balancing
// cost — the plan is built once and cached alongside the prepared layout
// (serve::PreparedCache charges its bytes into the cache budget).
//
// Correctness is schedule-independent: every row (CSR) or chunk (SRVPack
// segment) is computed by exactly one block with the same serial inner
// loop, so plan execution is bit-identical to the legacy loops at any
// thread count (pinned by tests/plan_test.cpp).
//
// Env knobs (read once per build call, documented in docs/PERFORMANCE.md):
//   WISE_PLAN=0                 disable plans (legacy OpenMP loops)
//   WISE_PLAN_BLOCK_FACTOR=N    blocks per thread for Dyn plans (default 4)

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/srvpack.hpp"
#include "spmv/schedule.hpp"
#include "util/types.hpp"

namespace wise {

/// A partition of the items [0, n) — CSR rows or SRVPack chunks — into
/// contiguous, non-empty, nnz-balanced blocks. bounds has num_blocks()+1
/// ascending entries with bounds.front() == 0 and bounds.back() == n;
/// block b covers [bounds[b], bounds[b+1]).
struct SpmvPlan {
  std::vector<index_t> bounds;

  index_t num_blocks() const {
    return bounds.empty() ? 0 : static_cast<index_t>(bounds.size()) - 1;
  }
  index_t num_items() const { return bounds.empty() ? 0 : bounds.back(); }
  std::size_t memory_bytes() const {
    return bounds.capacity() * sizeof(index_t);
  }

  /// True when the blocks tile [0, n) exactly once: first bound 0, last
  /// bound n, strictly ascending in between (a zero-item plan is the
  /// single empty block {0, 0}).
  bool covers(index_t n) const;
};

/// Partitions [0, offsets.size()-1) into at most `max_blocks` blocks of
/// ~equal prefix-sum weight. `offsets` is a non-decreasing prefix sum with
/// offsets[0] == 0 (a CSR row_ptr or SRVPack chunk_offset). Split points
/// landing inside one heavy item collapse, so the result can have fewer
/// blocks than requested but every block is non-empty.
SpmvPlan build_balanced_plan(std::span<const nnz_t> offsets,
                             index_t max_blocks);

/// How many blocks a schedule wants for `threads` threads: one per thread
/// for the static policies, threads x WISE_PLAN_BLOCK_FACTOR for Dyn so
/// work stealing still has spare blocks to rebalance with.
index_t plan_blocks_for(Schedule sched, int threads);

/// Row plan for the CSR kernels (binary search over row_ptr).
SpmvPlan build_csr_plan(const CsrMatrix& m, Schedule sched, int threads);

/// Chunk plans for the SRVPack kernel: one partition per segment, balanced
/// by stored slots (chunk_offset), since segments execute back-to-back.
struct SrvPlan {
  std::vector<SpmvPlan> segments;
  std::size_t memory_bytes() const;
};

SrvPlan build_srv_plan(const SrvPackMatrix& m, Schedule sched, int threads);

/// WISE_PLAN environment switch (default on). When off, PreparedMatrix
/// skips plan construction and run() uses the legacy OpenMP loops.
bool plans_enabled();

}  // namespace wise
