#include "spmv/executor.hpp"

#include <algorithm>
#include <limits>

#include <omp.h>

#include "spmv/bsr.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/format_kernels.hpp"
#include "util/timer.hpp"

namespace wise {

namespace {

bool is_format_kind(MethodKind k) {
  return k == MethodKind::kEll || k == MethodKind::kHyb ||
         k == MethodKind::kDia;
}

}  // namespace

PreparedMatrix PreparedMatrix::prepare(const CsrMatrix& m,
                                       const MethodConfig& cfg) {
  auto& metrics = obs::MetricsRegistry::global();
  PreparedMatrix pm;
  pm.cfg_ = cfg;
  pm.csr_ = &m;
  if (cfg.kind == MethodKind::kBsr) {
    obs::ScopedTimer span("spmv.prepare.bsr");
    Timer t;
    pm.bsr_ = std::make_shared<const BsrMatrix>(
        BsrMatrix::from_csr(m, cfg.c));
    pm.prep_seconds_ = t.seconds();
  } else if (cfg.kind == MethodKind::kEll) {
    obs::ScopedTimer span("spmv.prepare.ell");
    Timer t;
    pm.ell_ = std::make_shared<const EllMatrix>(EllMatrix::from_csr(m));
    pm.prep_seconds_ = t.seconds();
    pm.ell_->validate();
  } else if (cfg.kind == MethodKind::kHyb) {
    obs::ScopedTimer span("spmv.prepare.hyb");
    Timer t;
    pm.hyb_ = std::make_shared<const HybMatrix>(HybMatrix::from_csr(m, cfg.c));
    pm.prep_seconds_ = t.seconds();
    pm.hyb_->validate();
  } else if (cfg.kind == MethodKind::kDia) {
    obs::ScopedTimer span("spmv.prepare.dia");
    Timer t;
    pm.dia_ = std::make_shared<const DiaMatrix>(DiaMatrix::from_csr(m));
    pm.prep_seconds_ = t.seconds();
    pm.dia_->validate();
  } else if (cfg.kind != MethodKind::kCsr) {
    obs::ScopedTimer span("spmv.prepare.srvpack");
    Timer t;
    pm.packed_ = SrvPackMatrix::build(m, cfg.srv_options());
    pm.prep_seconds_ = t.seconds();
    // Outside the timed region: conversion timings stay comparable across
    // configurations, but a conversion that produced a broken layout is
    // caught here (wise::Error, kValidation) instead of inside the kernel.
    pm.packed_->validate();
  }
  if (plans_enabled()) {
    // Balancing happens once here; steady-state run() calls pay zero
    // repartitioning cost. The block count is pinned to the thread count
    // at prepare time — running with fewer threads later stays correct
    // (blocks are just shared out), it only rebalances more coarsely.
    obs::ScopedTimer span("spmv.prepare.plan");
    const int threads = omp_get_max_threads();
    if (cfg.kind == MethodKind::kCsr) {
      pm.csr_plan_ = build_csr_plan(m, cfg.sched, threads);
    } else if (is_format_kind(cfg.kind)) {
      // The balanced partition comes from the *source* CSR row_ptr: the
      // format layouts keep CSR's row order, so its nnz prefix sum is the
      // right work weight for all three.
      pm.fmt_plan_ =
          build_balanced_plan(m.row_ptr(), plan_blocks_for(cfg.sched, threads));
    } else if (cfg.kind != MethodKind::kBsr) {
      pm.srv_plan_ = build_srv_plan(*pm.packed_, cfg.sched, threads);
    }
  }
  if (metrics.enabled()) {
    pm.run_timer_ = metrics.timer_id("spmv.run." + cfg.name());
    metrics.add("spmv.prepare.count");
    if (pm.has_plan()) {
      metrics.add("spmv.prepare.plan.count");
      // Variant histogram: how many plan blocks will dispatch to each
      // specialized loop. Surfaced through STATS so operators can see
      // whether the classifier is actually firing on live traffic.
      const auto hist =
          pm.csr_plan_.has_value()
              ? pm.csr_plan_->variant_histogram()
              : pm.srv_plan_.has_value()
                    ? pm.srv_plan_->variant_histogram()
                    : pm.fmt_plan_.has_value()
                          ? pm.fmt_plan_->variant_histogram()
                          : std::array<std::uint32_t, kNumKernelVariants>{};
      for (std::size_t v = 0; v < kNumKernelVariants; ++v) {
        if (hist[v] == 0) continue;
        metrics.add(std::string("spmv.plan.variant.") +
                        kernel_variant_name(static_cast<KernelVariant>(v)),
                    hist[v]);
      }
    }
    metrics.set_gauge("spmv.prepare.memory_bytes",
                      static_cast<double>(pm.memory_bytes()));
  }
  return pm;
}

void PreparedMatrix::run(std::span<const value_t> x, std::span<value_t> y) {
  run(x, y, ws_);
}

void PreparedMatrix::run(std::span<const value_t> x, std::span<value_t> y,
                         SrvWorkspace& ws) const {
  obs::ScopedTimer span(run_timer_, obs::MetricsRegistry::global());
  if (cfg_.kind == MethodKind::kCsr) {
    if (csr_plan_.has_value()) {
      spmv_csr(*csr_, x, y, cfg_.sched, *csr_plan_);
    } else {
      spmv_csr(*csr_, x, y, cfg_.sched);
    }
  } else if (cfg_.kind == MethodKind::kBsr) {
    bsr_->spmv(x, y);
  } else if (cfg_.kind == MethodKind::kEll) {
    spmv_ell(*ell_, x, y, fmt_plan_.has_value() ? &*fmt_plan_ : nullptr);
  } else if (cfg_.kind == MethodKind::kHyb) {
    spmv_hyb(*hyb_, x, y, fmt_plan_.has_value() ? &*fmt_plan_ : nullptr);
  } else if (cfg_.kind == MethodKind::kDia) {
    spmv_dia(*dia_, x, y, fmt_plan_.has_value() ? &*fmt_plan_ : nullptr);
  } else {
    spmv_srvpack(*packed_, x, y, cfg_.sched, ws,
                 srv_plan_.has_value() ? &*srv_plan_ : nullptr);
  }
}

std::size_t PreparedMatrix::memory_bytes() const {
  if (bsr_) return bsr_->memory_bytes();
  if (ell_) return ell_->memory_bytes();
  if (hyb_) return hyb_->memory_bytes();
  if (dia_) return dia_->memory_bytes();
  return packed_.has_value() ? packed_->memory_bytes() : csr_->memory_bytes();
}

std::size_t PreparedMatrix::plan_bytes() const {
  if (csr_plan_.has_value()) return csr_plan_->memory_bytes();
  if (srv_plan_.has_value()) return srv_plan_->memory_bytes();
  if (fmt_plan_.has_value()) return fmt_plan_->memory_bytes();
  return 0;
}

double time_spmv(PreparedMatrix& pm, std::span<const value_t> x,
                 std::span<value_t> y, int iters, int repeats) {
  iters = std::max(1, iters);
  repeats = std::max(1, repeats);
  // Warm-up: faults in the prepared arrays and fills caches comparably
  // across configurations.
  pm.run(x, y);

  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    for (int i = 0; i < iters; ++i) pm.run(x, y);
    best = std::min(best, t.seconds() / iters);
  }
  return best;
}

}  // namespace wise
