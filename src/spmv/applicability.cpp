#include "spmv/applicability.hpp"

#include <optional>

#include "sparse/dia.hpp"
#include "sparse/ell.hpp"

namespace wise {

bool config_applicable(const MethodConfig& cfg, const CsrMatrix& m) {
  switch (cfg.kind) {
    case MethodKind::kEll:
      return EllMatrix::accepts(m);
    case MethodKind::kDia:
      return DiaMatrix::accepts(m);
    default:
      return true;
  }
}

std::vector<char> applicability_mask(std::span<const MethodConfig> configs,
                                     const CsrMatrix& m) {
  std::vector<char> mask(configs.size(), 1);
  std::optional<bool> ell_ok;
  std::optional<bool> dia_ok;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    switch (configs[i].kind) {
      case MethodKind::kEll:
        if (!ell_ok) ell_ok = EllMatrix::accepts(m);
        mask[i] = *ell_ok ? 1 : 0;
        break;
      case MethodKind::kDia:
        if (!dia_ok) dia_ok = DiaMatrix::accepts(m);
        mask[i] = *dia_ok ? 1 : 0;
        break;
      default:
        break;
    }
  }
  return mask;
}

}  // namespace wise
