#include "spmv/bsr.hpp"

#include <map>
#include <stdexcept>

namespace wise {

BsrMatrix BsrMatrix::from_csr(const CsrMatrix& m, int block_size) {
  if (block_size < 1 || block_size > 16) {
    throw std::invalid_argument("BsrMatrix: block size must be in [1, 16]");
  }
  BsrMatrix out;
  out.nrows_ = m.nrows();
  out.ncols_ = m.ncols();
  out.nnz_ = m.nnz();
  out.block_ = block_size;
  out.nblock_rows_ = (m.nrows() + block_size - 1) / block_size;

  const int b = block_size;
  out.block_row_ptr_.assign(static_cast<std::size_t>(out.nblock_rows_) + 1, 0);

  // Pass 1: discover the distinct block columns of each block row.
  // Pass 2: fill values. A per-block-row ordered map keeps this simple and
  // deterministic; block rows are tiny, so the map cost is negligible.
  for (index_t br = 0; br < out.nblock_rows_; ++br) {
    std::map<index_t, std::size_t> block_of;  // block col -> slot in row
    const index_t row_lo = br * b;
    const index_t row_hi = std::min<index_t>(row_lo + b, m.nrows());
    for (index_t i = row_lo; i < row_hi; ++i) {
      for (index_t j : m.row_cols(i)) {
        block_of.emplace(j / b, 0);
      }
    }
    std::size_t slot = out.block_col_idx_.size();
    for (auto& [bc, s] : block_of) {
      out.block_col_idx_.push_back(bc);
      s = slot++;
    }
    out.block_row_ptr_[static_cast<std::size_t>(br) + 1] =
        static_cast<nnz_t>(out.block_col_idx_.size());

    out.vals_.resize(out.block_col_idx_.size() *
                         static_cast<std::size_t>(b) * b,
                     value_t{0});
    for (index_t i = row_lo; i < row_hi; ++i) {
      const auto cols = m.row_cols(i);
      const auto vals = m.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const std::size_t slot_idx = block_of[cols[k] / b];
        const int r = static_cast<int>(i - row_lo);
        const int c = static_cast<int>(cols[k] - (cols[k] / b) * b);
        // Blocks are stored column-major so the SIMD loop over rows in
        // spmv() reads contiguous lanes.
        out.vals_[slot_idx * b * b + static_cast<std::size_t>(c) * b +
                  static_cast<std::size_t>(r)] = vals[k];
      }
    }
  }
  return out;
}

std::size_t BsrMatrix::memory_bytes() const {
  return block_row_ptr_.size() * sizeof(nnz_t) +
         block_col_idx_.size() * sizeof(index_t) +
         vals_.size() * sizeof(value_t);
}

void BsrMatrix::spmv(std::span<const value_t> x,
                     std::span<value_t> y) const {
  if (x.size() != static_cast<std::size_t>(ncols_) ||
      y.size() != static_cast<std::size_t>(nrows_)) {
    throw std::invalid_argument("BsrMatrix::spmv: dimension mismatch");
  }
  const int b = block_;
  const value_t* xp = x.data();
  value_t* yp = y.data();

#pragma omp parallel for schedule(static)
  for (index_t br = 0; br < nblock_rows_; ++br) {
    const index_t row_lo = br * b;
    const int rows_here =
        static_cast<int>(std::min<index_t>(b, nrows_ - row_lo));
    value_t acc[16] = {};
    for (nnz_t k = block_row_ptr_[static_cast<std::size_t>(br)];
         k < block_row_ptr_[static_cast<std::size_t>(br) + 1]; ++k) {
      const index_t col_lo = block_col_idx_[static_cast<std::size_t>(k)] * b;
      const int cols_here =
          static_cast<int>(std::min<index_t>(b, ncols_ - col_lo));
      const value_t* blk =
          vals_.data() + static_cast<std::size_t>(k) * b * b;
      for (int c = 0; c < cols_here; ++c) {
        const value_t xv = xp[col_lo + c];
#pragma omp simd
        for (int r = 0; r < rows_here; ++r) {
          acc[r] += blk[c * b + r] * xv;
        }
      }
    }
    for (int r = 0; r < rows_here; ++r) {
      yp[row_lo + r] = acc[r];
    }
  }
}

CooMatrix BsrMatrix::to_coo() const {
  CooMatrix coo(nrows_, ncols_);
  coo.entries().reserve(static_cast<std::size_t>(nnz_));
  const int b = block_;
  for (index_t br = 0; br < nblock_rows_; ++br) {
    for (nnz_t k = block_row_ptr_[static_cast<std::size_t>(br)];
         k < block_row_ptr_[static_cast<std::size_t>(br) + 1]; ++k) {
      const index_t col_lo = block_col_idx_[static_cast<std::size_t>(k)] * b;
      const value_t* blk = vals_.data() + static_cast<std::size_t>(k) * b * b;
      for (int r = 0; r < b; ++r) {
        const index_t row = br * b + r;
        if (row >= nrows_) break;
        for (int c = 0; c < b; ++c) {
          const index_t col = col_lo + c;
          if (col >= ncols_) break;
          const value_t v = blk[c * b + r];
          if (v != value_t{0}) coo.add(row, col, v);
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

std::vector<MethodConfig> extended_method_configs() {
  std::vector<MethodConfig> out = all_method_configs();
  for (int b : {4, 8}) {
    out.push_back(
        {.kind = MethodKind::kBsr, .sched = Schedule::kStCont, .c = b});
  }
  // The storage-format extensions of sparse/{ell,hyb,dia}.hpp. All run
  // nnz-balanced plan blocks with a static contiguous partition; ELL and
  // DIA are parameterless, HYB's cutoff k is the split between its padded
  // ELL part and its overflow tail. ELL and DIA are additionally guarded
  // by selection-time applicability predicates (spmv/applicability.hpp),
  // so choose() never picks DIA for a scattered (e.g. RMAT) matrix that
  // its conversion would reject.
  out.push_back({.kind = MethodKind::kEll, .sched = Schedule::kStCont});
  for (int k : hyb_cutoff_values()) {
    out.push_back(
        {.kind = MethodKind::kHyb, .sched = Schedule::kStCont, .c = k});
  }
  out.push_back({.kind = MethodKind::kDia, .sched = Schedule::kStCont});
  return out;
}

std::vector<int> hyb_cutoff_values() { return {8, 32}; }

}  // namespace wise
