#include "spmv/srvpack_kernels.hpp"

#include <algorithm>
#include <stdexcept>

namespace wise {

namespace {

/// Runs `chunk` over every chunk index, either with the legacy OpenMP
/// schedules (plan == nullptr) or block-by-block over a precomputed
/// nnz-balanced partition. Every chunk executes exactly once either way,
/// so the two paths are bit-identical.
template <typename ChunkFn>
void dispatch_chunks(index_t nchunks, Schedule sched, int grain,
                     const SpmvPlan* plan, ChunkFn&& chunk) {
  if (plan != nullptr) {
    const index_t nb = plan->num_blocks();
    const index_t* bd = plan->bounds.data();
    if (sched == Schedule::kDyn) {
#pragma omp parallel for schedule(dynamic, 1)
      for (index_t b = 0; b < nb; ++b) {
        for (index_t k = bd[b]; k < bd[b + 1]; ++k) chunk(k);
      }
    } else {
#pragma omp parallel for schedule(static)
      for (index_t b = 0; b < nb; ++b) {
        for (index_t k = bd[b]; k < bd[b + 1]; ++k) chunk(k);
      }
    }
    return;
  }
  switch (sched) {
    case Schedule::kDyn:
#pragma omp parallel for schedule(dynamic, grain)
      for (index_t k = 0; k < nchunks; ++k) chunk(k);
      break;
    case Schedule::kSt:
#pragma omp parallel for schedule(static, grain)
      for (index_t k = 0; k < nchunks; ++k) chunk(k);
      break;
    case Schedule::kStCont:
#pragma omp parallel for schedule(static)
      for (index_t k = 0; k < nchunks; ++k) chunk(k);
      break;
  }
}

/// Processes the chunks of one segment. C is a compile-time SIMD width so
/// the inner lane loop fully vectorizes; runtime widths fall back to
/// run_chunks_generic below.
template <int C>
void run_chunks(const SrvSegment& seg, const value_t* x, value_t* y,
                Schedule sched, const SpmvPlan* plan) {
  const index_t nchunks = seg.num_chunks();
  const index_t nrows_seg = seg.num_rows();
  const nnz_t* off = seg.chunk_offset.data();
  const value_t* vals = seg.vals.data();
  const index_t* cols = seg.col_ids.data();
  const index_t* order = seg.row_order.data();
  const int grain = std::max(1, kScheduleGrainRows / C);

  auto chunk = [=](index_t k) {
    const nnz_t lo = off[k];
    const nnz_t len = off[k + 1] - lo;
    value_t acc[C] = {};
    const value_t* v = vals + lo * C;
    const index_t* ci = cols + lo * C;
    for (nnz_t j = 0; j < len; ++j) {
#pragma omp simd
      for (int l = 0; l < C; ++l) {
        acc[l] += v[j * C + l] * x[ci[j * C + l]];
      }
    }
    const index_t base = k * C;
    const int lanes = static_cast<int>(
        std::min<index_t>(C, nrows_seg - base));
    for (int l = 0; l < lanes; ++l) {
      y[order[base + l]] += acc[l];
    }
  };

  dispatch_chunks(nchunks, sched, grain, plan, chunk);
}

/// Runtime-width fallback for c values other than the instantiated 4/8.
void run_chunks_generic(const SrvSegment& seg, int c, const value_t* x,
                        value_t* y, Schedule sched, const SpmvPlan* plan) {
  constexpr int kMaxC = 64;
  const index_t nchunks = seg.num_chunks();
  const index_t nrows_seg = seg.num_rows();
  const nnz_t* off = seg.chunk_offset.data();
  const value_t* vals = seg.vals.data();
  const index_t* cols = seg.col_ids.data();
  const index_t* order = seg.row_order.data();
  const int grain = std::max(1, kScheduleGrainRows / c);

  auto chunk = [=](index_t k) {
    const nnz_t lo = off[k];
    const nnz_t len = off[k + 1] - lo;
    value_t acc[kMaxC] = {};
    const value_t* v = vals + lo * c;
    const index_t* ci = cols + lo * c;
    for (nnz_t j = 0; j < len; ++j) {
      for (int l = 0; l < c; ++l) {
        acc[l] += v[j * c + l] * x[ci[j * c + l]];
      }
    }
    const index_t base = k * static_cast<index_t>(c);
    const int lanes = static_cast<int>(
        std::min<index_t>(c, nrows_seg - base));
    for (int l = 0; l < lanes; ++l) {
      y[order[base + l]] += acc[l];
    }
  };

  dispatch_chunks(nchunks, sched, grain, plan, chunk);
}

}  // namespace

void spmv_srvpack(const SrvPackMatrix& a, std::span<const value_t> x,
                  std::span<value_t> y, Schedule sched, SrvWorkspace& ws,
                  const SrvPlan* plan) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument("spmv_srvpack: dimension mismatch");
  }
  if (plan != nullptr && plan->segments.size() != a.segments().size()) {
    throw std::invalid_argument("spmv_srvpack: plan/segment count mismatch");
  }

  // With CFS the stored column ids live in permuted space; gather x into
  // that space once per multiplication.
  const value_t* xp = x.data();
  if (a.has_cfs()) {
    const auto& perm = a.col_order();
    ws.permuted_x.resize(perm.size());
#pragma omp parallel for schedule(static)
    for (index_t p = 0; p < static_cast<index_t>(perm.size()); ++p) {
      ws.permuted_x[static_cast<std::size_t>(p)] =
          x[static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])];
    }
    xp = ws.permuted_x.data();
  }

  value_t* yp = y.data();
  const index_t n = a.nrows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) yp[i] = 0;

  // Segments run back-to-back: each keeps its slice of the input vector hot
  // in the LLC before the next begins (the point of LAV segmentation).
  for (std::size_t s = 0; s < a.segments().size(); ++s) {
    const auto& seg = a.segments()[s];
    const SpmvPlan* seg_plan = plan != nullptr ? &plan->segments[s] : nullptr;
    switch (a.c()) {
      case 4: run_chunks<4>(seg, xp, yp, sched, seg_plan); break;
      case 8: run_chunks<8>(seg, xp, yp, sched, seg_plan); break;
      default:
        run_chunks_generic(seg, a.c(), xp, yp, sched, seg_plan);
        break;
    }
  }
}

}  // namespace wise
