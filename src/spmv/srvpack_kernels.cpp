#include "spmv/srvpack_kernels.hpp"

#include <algorithm>
#include <stdexcept>

namespace wise {

namespace {

/// Runs the segment either with the legacy OpenMP schedules over single
/// chunks (plan == nullptr, `chunk(k)` per chunk) or block-by-block over a
/// precomputed nnz-balanced partition (`run_block(lo, hi, variant)` per
/// block, which dispatches to the block's specialized loop). Every chunk
/// executes exactly once either way, and every specialized loop reuses the
/// generic slot reduction for chunks with 3+ slots, so all paths are
/// bit-identical.
template <typename ChunkFn, typename BlockFn>
void dispatch_chunks(index_t nchunks, Schedule sched, int grain,
                     const SpmvPlan* plan, ChunkFn&& chunk,
                     BlockFn&& run_block) {
  if (plan != nullptr) {
    const index_t nb = plan->num_blocks();
    const index_t* bd = plan->bounds.data();
    const std::uint8_t* vt =
        plan->variants.empty() ? nullptr : plan->variants.data();
    auto body = [&](index_t b) {
      const KernelVariant v = vt == nullptr
                                  ? KernelVariant::kGeneric
                                  : static_cast<KernelVariant>(vt[b]);
      run_block(bd[b], bd[b + 1], v);
    };
    if (sched == Schedule::kDyn) {
#pragma omp parallel for schedule(dynamic, 1)
      for (index_t b = 0; b < nb; ++b) body(b);
    } else {
#pragma omp parallel for schedule(static)
      for (index_t b = 0; b < nb; ++b) body(b);
    }
    return;
  }
  switch (sched) {
    case Schedule::kDyn:
#pragma omp parallel for schedule(dynamic, grain)
      for (index_t k = 0; k < nchunks; ++k) chunk(k);
      break;
    case Schedule::kSt:
#pragma omp parallel for schedule(static, grain)
      for (index_t k = 0; k < nchunks; ++k) chunk(k);
      break;
    case Schedule::kStCont:
#pragma omp parallel for schedule(static)
      for (index_t k = 0; k < nchunks; ++k) chunk(k);
      break;
  }
}

/// Processes the chunks of one segment. C is a compile-time SIMD width so
/// the inner lane loop fully vectorizes; runtime widths fall back to
/// run_chunks_generic below.
template <int C>
void run_chunks(const SrvSegment& seg, const value_t* x, value_t* y,
                Schedule sched, const SpmvPlan* plan) {
  const index_t nchunks = seg.num_chunks();
  const index_t nrows_seg = seg.num_rows();
  const nnz_t* off = seg.chunk_offset.data();
  const value_t* vals = seg.vals.data();
  const index_t* cols = seg.col_ids.data();
  const index_t* order = seg.row_order.data();
  const int grain = std::max(1, kScheduleGrainRows / C);

  auto scatter = [=](index_t k, const value_t* acc) {
    const index_t base = k * C;
    const int lanes = static_cast<int>(
        std::min<index_t>(C, nrows_seg - base));
    for (int l = 0; l < lanes; ++l) {
      y[order[base + l]] += acc[l];
    }
  };

  // The generic chunk body: every specialized block loop below either
  // reuses this exact slot reduction (3+ slots) or hand-unrolls <= 2 slot
  // iterations of the same += chain, so all variants stay bit-identical.
  auto chunk = [=](index_t k) {
    const nnz_t lo = off[k];
    const nnz_t len = off[k + 1] - lo;
    value_t acc[C] = {};
    const value_t* v = vals + lo * C;
    const index_t* ci = cols + lo * C;
    for (nnz_t j = 0; j < len; ++j) {
#pragma omp simd
      for (int l = 0; l < C; ++l) {
        acc[l] += v[j * C + l] * x[ci[j * C + l]];
      }
    }
    scatter(k, acc);
  };

  // kMerge fast path: chunks holding <= 2 slots skip the slot loop and run
  // the unrolled iterations directly — at most one FP addition per lane,
  // where every association order is the same order.
  auto tiny_chunk = [=](index_t k) {
    const nnz_t lo = off[k];
    const nnz_t len = off[k + 1] - lo;
    if (len > 2) {
      chunk(k);
      return;
    }
    value_t acc[C] = {};
    const value_t* v = vals + lo * C;
    const index_t* ci = cols + lo * C;
    if (len >= 1) {
#pragma omp simd
      for (int l = 0; l < C; ++l) acc[l] += v[l] * x[ci[l]];
    }
    if (len == 2) {
#pragma omp simd
      for (int l = 0; l < C; ++l) acc[l] += v[C + l] * x[ci[C + l]];
    }
    scatter(k, acc);
  };

  auto run_block = [=](index_t blo, index_t bhi, KernelVariant var) {
    switch (var) {
      case KernelVariant::kUniform: {
        // Every chunk in the block has the same slot count: hoist it and
        // derive chunk starts arithmetically instead of loading offsets.
        const nnz_t len = off[blo + 1] - off[blo];
        nnz_t lo = off[blo];
        for (index_t k = blo; k < bhi; ++k, lo += len) {
          value_t acc[C] = {};
          const value_t* v = vals + lo * C;
          const index_t* ci = cols + lo * C;
          for (nnz_t j = 0; j < len; ++j) {
#pragma omp simd
            for (int l = 0; l < C; ++l) {
              acc[l] += v[j * C + l] * x[ci[j * C + l]];
            }
          }
          scatter(k, acc);
        }
        break;
      }
      case KernelVariant::kWide:
        // Long chunks: two chunks in flight so two C-lane accumulator sets
        // overlap their gather latencies.
        {
          index_t k = blo;
          for (; k + 2 <= bhi; k += 2) {
            chunk(k);
            chunk(k + 1);
          }
          if (k < bhi) chunk(k);
        }
        break;
      case KernelVariant::kMerge:
        // Gated off by default (WISE_SRV_MERGE): the tiny-chunk unroll
        // measured ~0.95x of the generic loop here. The block keeps its
        // kMerge label (histogram shape-stable); only execution demotes.
        if (srv_merge_enabled()) {
          for (index_t k = blo; k < bhi; ++k) tiny_chunk(k);
        } else {
          for (index_t k = blo; k < bhi; ++k) chunk(k);
        }
        break;
      case KernelVariant::kGeneric:
      default:
        for (index_t k = blo; k < bhi; ++k) chunk(k);
        break;
    }
  };

  dispatch_chunks(nchunks, sched, grain, plan, chunk, run_block);
}

/// Runtime-width fallback for c values other than the instantiated 4/8.
void run_chunks_generic(const SrvSegment& seg, int c, const value_t* x,
                        value_t* y, Schedule sched, const SpmvPlan* plan) {
  constexpr int kMaxC = 64;
  const index_t nchunks = seg.num_chunks();
  const index_t nrows_seg = seg.num_rows();
  const nnz_t* off = seg.chunk_offset.data();
  const value_t* vals = seg.vals.data();
  const index_t* cols = seg.col_ids.data();
  const index_t* order = seg.row_order.data();
  const int grain = std::max(1, kScheduleGrainRows / c);

  auto chunk = [=](index_t k) {
    const nnz_t lo = off[k];
    const nnz_t len = off[k + 1] - lo;
    value_t acc[kMaxC] = {};
    const value_t* v = vals + lo * c;
    const index_t* ci = cols + lo * c;
    for (nnz_t j = 0; j < len; ++j) {
      for (int l = 0; l < c; ++l) {
        acc[l] += v[j * c + l] * x[ci[j * c + l]];
      }
    }
    const index_t base = k * static_cast<index_t>(c);
    const int lanes = static_cast<int>(
        std::min<index_t>(c, nrows_seg - base));
    for (int l = 0; l < lanes; ++l) {
      y[order[base + l]] += acc[l];
    }
  };

  // The runtime-width path ignores the variant table: every block runs the
  // generic chunk body (still bit-identical — variants only change loop
  // structure, never the math).
  auto run_block = [=](index_t blo, index_t bhi, KernelVariant) {
    for (index_t k = blo; k < bhi; ++k) chunk(k);
  };

  dispatch_chunks(nchunks, sched, grain, plan, chunk, run_block);
}

}  // namespace

void spmv_srvpack(const SrvPackMatrix& a, std::span<const value_t> x,
                  std::span<value_t> y, Schedule sched, SrvWorkspace& ws,
                  const SrvPlan* plan) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument("spmv_srvpack: dimension mismatch");
  }
  if (plan != nullptr && plan->segments.size() != a.segments().size()) {
    throw std::invalid_argument("spmv_srvpack: plan/segment count mismatch");
  }

  // With CFS the stored column ids live in permuted space; gather x into
  // that space once per multiplication.
  const value_t* xp = x.data();
  if (a.has_cfs()) {
    const auto& perm = a.col_order();
    ws.permuted_x.resize(perm.size());
#pragma omp parallel for schedule(static)
    for (index_t p = 0; p < static_cast<index_t>(perm.size()); ++p) {
      ws.permuted_x[static_cast<std::size_t>(p)] =
          x[static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])];
    }
    xp = ws.permuted_x.data();
  }

  value_t* yp = y.data();
  const index_t n = a.nrows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) yp[i] = 0;

  // Segments run back-to-back: each keeps its slice of the input vector hot
  // in the LLC before the next begins (the point of LAV segmentation).
  for (std::size_t s = 0; s < a.segments().size(); ++s) {
    const auto& seg = a.segments()[s];
    const SpmvPlan* seg_plan = plan != nullptr ? &plan->segments[s] : nullptr;
    switch (a.c()) {
      case 4: run_chunks<4>(seg, xp, yp, sched, seg_plan); break;
      case 8: run_chunks<8>(seg, xp, yp, sched, seg_plan); break;
      default:
        run_chunks_generic(seg, a.c(), xp, yp, sched, seg_plan);
        break;
    }
  }
}

}  // namespace wise
