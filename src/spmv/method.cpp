#include "spmv/method.hpp"

#include <sstream>
#include <stdexcept>

#include "util/ascii_plot.hpp"

namespace wise {

const char* method_kind_name(MethodKind k) {
  switch (k) {
    case MethodKind::kCsr: return "CSR";
    case MethodKind::kSellpack: return "SELLPACK";
    case MethodKind::kSellCSigma: return "Sell-c-s";
    case MethodKind::kSellCR: return "Sell-c-R";
    case MethodKind::kLav1Seg: return "LAV-1Seg";
    case MethodKind::kLav: return "LAV";
    case MethodKind::kBsr: return "BSR";
    case MethodKind::kEll: return "ELL";
    case MethodKind::kHyb: return "HYB";
    case MethodKind::kDia: return "DIA";
  }
  return "?";
}

std::string MethodConfig::name() const {
  std::ostringstream out;
  out << method_kind_name(kind);
  switch (kind) {
    case MethodKind::kCsr:
      out << '/' << schedule_name(sched);
      break;
    case MethodKind::kSellpack:
      out << "/c" << c << '/' << schedule_name(sched);
      break;
    case MethodKind::kSellCSigma:
      out << "/c" << c << "/s" << sigma << '/' << schedule_name(sched);
      break;
    case MethodKind::kSellCR:
    case MethodKind::kLav1Seg:
      out << "/c" << c;
      break;
    case MethodKind::kLav:
      out << "/c" << c << "/T" << fmt(T, 2);
      break;
    case MethodKind::kBsr:
      out << "/b" << c;  // c doubles as the block size for BSR
      break;
    case MethodKind::kEll:
    case MethodKind::kDia:
      break;  // parameterless: the layout is fully determined by the matrix
    case MethodKind::kHyb:
      out << "/k" << c;  // c doubles as the row-length cutoff for HYB
      break;
  }
  return out.str();
}

SrvBuildOptions MethodConfig::srv_options() const {
  SrvBuildOptions opts;
  opts.c = c;
  switch (kind) {
    case MethodKind::kCsr:
      throw std::logic_error("srv_options: CSR does not use SRVPack");
    case MethodKind::kSellpack:
      opts.sigma = 1;
      break;
    case MethodKind::kSellCSigma:
      opts.sigma = sigma;
      break;
    case MethodKind::kSellCR:
      opts.sigma = kSigmaAll;
      break;
    case MethodKind::kLav1Seg:
      opts.sigma = kSigmaAll;
      opts.cfs = true;
      break;
    case MethodKind::kLav:
      opts.sigma = kSigmaAll;
      opts.cfs = true;
      opts.segment_fractions = {T};
      break;
    case MethodKind::kBsr:
      throw std::logic_error("srv_options: BSR has its own format");
    case MethodKind::kEll:
    case MethodKind::kHyb:
    case MethodKind::kDia:
      throw std::logic_error("srv_options: " +
                             std::string(method_kind_name(kind)) +
                             " has its own format");
  }
  return opts;
}

std::vector<double> MethodConfig::selection_rank() const {
  // Lexicographic: cheaper method first, then smaller c, σ, T; StCont (0)
  // before St (1) before Dyn (2) — static scheduling has no runtime queue.
  double sched_rank = 0;
  switch (sched) {
    case Schedule::kStCont: sched_rank = 0; break;
    case Schedule::kSt: sched_rank = 1; break;
    case Schedule::kDyn: sched_rank = 2; break;
  }
  return {static_cast<double>(preprocessing_rank()), static_cast<double>(c),
          static_cast<double>(sigma == kSigmaAll ? 1e18 : sigma), T,
          sched_rank};
}

std::vector<index_t> sigma_values() { return {1 << 9, 1 << 12, 1 << 14}; }
std::vector<int> c_values() { return {4, 8}; }
std::vector<double> t_values() { return {0.7, 0.8, 0.9}; }

std::vector<MethodConfig> csr_configs() {
  std::vector<MethodConfig> out;
  for (Schedule s : {Schedule::kDyn, Schedule::kSt, Schedule::kStCont}) {
    out.push_back({.kind = MethodKind::kCsr, .sched = s});
  }
  return out;
}

std::vector<MethodConfig> all_method_configs() {
  std::vector<MethodConfig> out = csr_configs();
  const auto cs = c_values();

  for (int c : cs) {
    for (Schedule s : {Schedule::kStCont, Schedule::kDyn}) {
      out.push_back({.kind = MethodKind::kSellpack, .sched = s, .c = c});
    }
  }
  for (int c : cs) {
    for (index_t sigma : sigma_values()) {
      for (Schedule s : {Schedule::kStCont, Schedule::kDyn}) {
        out.push_back({.kind = MethodKind::kSellCSigma,
                       .sched = s,
                       .c = c,
                       .sigma = sigma});
      }
    }
  }
  for (int c : cs) {
    out.push_back({.kind = MethodKind::kSellCR,
                   .sched = Schedule::kDyn,
                   .c = c,
                   .sigma = kSigmaAll});
  }
  for (int c : cs) {
    out.push_back({.kind = MethodKind::kLav1Seg,
                   .sched = Schedule::kDyn,
                   .c = c,
                   .sigma = kSigmaAll});
  }
  for (int c : cs) {
    for (double t : t_values()) {
      out.push_back({.kind = MethodKind::kLav,
                     .sched = Schedule::kDyn,
                     .c = c,
                     .sigma = kSigmaAll,
                     .T = t});
    }
  }
  return out;
}

MethodConfig parse_method_config(const std::string& name) {
  // Tokenize on '/'.
  std::vector<std::string> parts;
  std::string cur;
  for (char ch : name) {
    if (ch == '/') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  parts.push_back(cur);
  if (parts.empty()) throw std::invalid_argument("empty method name");

  auto parse_sched = [](const std::string& s) {
    if (s == "Dyn") return Schedule::kDyn;
    if (s == "St") return Schedule::kSt;
    if (s == "StCont") return Schedule::kStCont;
    throw std::invalid_argument("unknown schedule: " + s);
  };
  auto expect = [&](std::size_t n) {
    if (parts.size() != n) {
      throw std::invalid_argument("malformed method name: " + name);
    }
  };
  auto num_after = [&](std::size_t i, char tag) -> double {
    if (parts[i].size() < 2 || parts[i][0] != tag) {
      throw std::invalid_argument("malformed method name: " + name);
    }
    return std::stod(parts[i].substr(1));
  };

  MethodConfig cfg;
  const std::string& head = parts[0];
  if (head == "CSR") {
    expect(2);
    cfg.kind = MethodKind::kCsr;
    cfg.sched = parse_sched(parts[1]);
  } else if (head == "SELLPACK") {
    expect(3);
    cfg.kind = MethodKind::kSellpack;
    cfg.c = static_cast<int>(num_after(1, 'c'));
    cfg.sched = parse_sched(parts[2]);
  } else if (head == "Sell-c-s") {
    expect(4);
    cfg.kind = MethodKind::kSellCSigma;
    cfg.c = static_cast<int>(num_after(1, 'c'));
    cfg.sigma = static_cast<index_t>(num_after(2, 's'));
    cfg.sched = parse_sched(parts[3]);
  } else if (head == "Sell-c-R") {
    expect(2);
    cfg.kind = MethodKind::kSellCR;
    cfg.c = static_cast<int>(num_after(1, 'c'));
    cfg.sigma = kSigmaAll;
    cfg.sched = Schedule::kDyn;
  } else if (head == "LAV-1Seg") {
    expect(2);
    cfg.kind = MethodKind::kLav1Seg;
    cfg.c = static_cast<int>(num_after(1, 'c'));
    cfg.sigma = kSigmaAll;
    cfg.sched = Schedule::kDyn;
  } else if (head == "LAV") {
    expect(3);
    cfg.kind = MethodKind::kLav;
    cfg.c = static_cast<int>(num_after(1, 'c'));
    cfg.T = num_after(2, 'T');
    cfg.sigma = kSigmaAll;
    cfg.sched = Schedule::kDyn;
  } else if (head == "BSR") {
    expect(2);
    cfg.kind = MethodKind::kBsr;
    cfg.c = static_cast<int>(num_after(1, 'b'));
    cfg.sched = Schedule::kStCont;
  } else if (head == "ELL") {
    expect(1);
    cfg.kind = MethodKind::kEll;
    cfg.sched = Schedule::kStCont;
  } else if (head == "HYB") {
    expect(2);
    cfg.kind = MethodKind::kHyb;
    cfg.c = static_cast<int>(num_after(1, 'k'));
    cfg.sched = Schedule::kStCont;
  } else if (head == "DIA") {
    expect(1);
    cfg.kind = MethodKind::kDia;
    cfg.sched = Schedule::kStCont;
  } else {
    throw std::invalid_argument("unknown method: " + head);
  }
  return cfg;
}

}  // namespace wise
