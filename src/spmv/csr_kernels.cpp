#include "spmv/csr_kernels.hpp"

#include <algorithm>
#include <stdexcept>

#include <omp.h>

namespace wise {

namespace {

void check_dims(const CsrMatrix& a, std::span<const value_t> x,
                std::span<value_t> y) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument("spmv_csr: dimension mismatch");
  }
}

inline value_t row_dot(const nnz_t* row_ptr, const index_t* col_idx,
                       const value_t* vals, const value_t* x, index_t i) {
  const nnz_t lo = row_ptr[i];
  const nnz_t hi = row_ptr[i + 1];
  value_t acc = 0;
#pragma omp simd reduction(+ : acc)
  for (nnz_t k = lo; k < hi; ++k) {
    acc += vals[k] * x[col_idx[k]];
  }
  return acc;
}

}  // namespace

void spmv_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, Schedule sched) {
  check_dims(a, x, y);
  const index_t n = a.nrows();
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();

  // OpenMP requires the schedule kind to be lexically fixed per loop, hence
  // one loop per policy.
  switch (sched) {
    case Schedule::kDyn:
#pragma omp parallel for schedule(dynamic, kScheduleGrainRows)
      for (index_t i = 0; i < n; ++i) yp[i] = row_dot(rp, ci, va, xp, i);
      break;
    case Schedule::kSt:
#pragma omp parallel for schedule(static, kScheduleGrainRows)
      for (index_t i = 0; i < n; ++i) yp[i] = row_dot(rp, ci, va, xp, i);
      break;
    case Schedule::kStCont:
#pragma omp parallel for schedule(static)
      for (index_t i = 0; i < n; ++i) yp[i] = row_dot(rp, ci, va, xp, i);
      break;
  }
}

void spmv_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, Schedule sched, const SpmvPlan& plan) {
  check_dims(a, x, y);
  const index_t n = a.nrows();
  if (!plan.covers(n)) {
    throw std::invalid_argument("spmv_csr: plan does not cover the matrix");
  }
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  const index_t nb = plan.num_blocks();
  const index_t* bd = plan.bounds.data();

  auto block = [=](index_t b) {
    const index_t hi = bd[b + 1];
    for (index_t i = bd[b]; i < hi; ++i) yp[i] = row_dot(rp, ci, va, xp, i);
  };

  // Blocks already carry ~equal nonzero counts, so the static policies run
  // one contiguous run of blocks per thread; Dyn keeps work stealing over
  // the (oversubscribed) block list for machines with ambient load.
  if (sched == Schedule::kDyn) {
#pragma omp parallel for schedule(dynamic, 1)
    for (index_t b = 0; b < nb; ++b) block(b);
  } else {
#pragma omp parallel for schedule(static)
    for (index_t b = 0; b < nb; ++b) block(b);
  }
}

void spmv_csr_mkl_like(const CsrMatrix& a, std::span<const value_t> x,
                       std::span<value_t> y) {
  check_dims(a, x, y);
  const index_t n = a.nrows();
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  const nnz_t total = a.nnz();

#pragma omp parallel
  {
    const int nt = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    // Each thread takes the contiguous row range covering its equal share
    // of nonzeros: binary-search row_ptr for the split points.
    const nnz_t lo_target = total * tid / nt;
    const nnz_t hi_target = total * (tid + 1) / nt;
    const auto* begin = rp;
    const auto* end = rp + n + 1;
    // Thread boundaries are computed identically by adjacent threads
    // (thread t's hi_target equals thread t+1's lo_target), so the row
    // ranges tile [0, n) exactly; the first and last threads pin their
    // outer edge so runs of empty rows at either end are still covered.
    const index_t row_lo =
        tid == 0 ? 0
                 : static_cast<index_t>(
                       std::upper_bound(begin, end, lo_target) - begin - 1);
    const index_t row_hi =
        tid == nt - 1
            ? n
            : static_cast<index_t>(
                  std::upper_bound(begin, end, hi_target) - begin - 1);
    for (index_t i = row_lo; i < row_hi; ++i) {
      yp[i] = row_dot(rp, ci, va, xp, i);
    }
  }
}

}  // namespace wise
