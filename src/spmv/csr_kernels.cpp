#include "spmv/csr_kernels.hpp"

#include <algorithm>
#include <stdexcept>

#include <omp.h>

namespace wise {

namespace {

void check_dims(const CsrMatrix& a, std::span<const value_t> x,
                std::span<value_t> y) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument("spmv_csr: dimension mismatch");
  }
}

/// The one reduction loop every variant shares. Bit-identity across the
/// specialized paths rests on this: any row with 3+ nonzeros — where the
/// simd reduction's association order is compiler-chosen — always runs
/// this exact loop, so specialization can never change the bits.
inline value_t range_dot(const index_t* col_idx, const value_t* vals,
                         const value_t* x, nnz_t lo, nnz_t hi) {
  value_t acc = 0;
#pragma omp simd reduction(+ : acc)
  for (nnz_t k = lo; k < hi; ++k) {
    acc += vals[k] * x[col_idx[k]];
  }
  return acc;
}

inline value_t row_dot(const nnz_t* row_ptr, const index_t* col_idx,
                       const value_t* vals, const value_t* x, index_t i) {
  return range_dot(col_idx, vals, x, row_ptr[i], row_ptr[i + 1]);
}

/// Rows with <= 2 nonzeros evaluate as scalar expressions: zero or one FP
/// addition, where every association order is the same order, so this is
/// bit-identical to range_dot on any compiler. Longer rows fall through to
/// the shared loop. This is the kMerge workhorse — on power-law matrices
/// most rows take the scalar exit and skip all vector-loop setup.
inline value_t short_row_dot(const nnz_t* row_ptr, const index_t* col_idx,
                             const value_t* vals, const value_t* x,
                             index_t i) {
  const nnz_t lo = row_ptr[i];
  const nnz_t len = row_ptr[i + 1] - lo;
  if (len > 2) return range_dot(col_idx, vals, x, lo, lo + len);
  // Written as the generic loop's exact += chain (not bare products) so
  // even signed-zero edge cases (0 + -0.0 == +0.0) match bit-for-bit.
  value_t acc = 0;
  if (len >= 1) acc += vals[lo] * x[col_idx[lo]];
  if (len == 2) acc += vals[lo + 1] * x[col_idx[lo + 1]];
  return acc;
}

// --- per-block loops, one per KernelVariant -------------------------------

inline void run_block_generic(const nnz_t* rp, const index_t* ci,
                              const value_t* va, const value_t* x,
                              value_t* y, index_t lo, index_t hi) {
  for (index_t i = lo; i < hi; ++i) y[i] = row_dot(rp, ci, va, x, i);
}

/// kUniform: every row in the block has the same length, so the trip count
/// hoists out of the row loop and row starts become arithmetic instead of
/// row_ptr loads; four rows per iteration give the compiler independent
/// reduction chains to interleave.
inline void run_block_uniform(const nnz_t* rp, const index_t* ci,
                              const value_t* va, const value_t* x,
                              value_t* y, index_t lo, index_t hi) {
  const nnz_t len = rp[lo + 1] - rp[lo];
  nnz_t k = rp[lo];
  index_t i = lo;
  for (; i + 4 <= hi; i += 4, k += 4 * len) {
    y[i] = range_dot(ci, va, x, k, k + len);
    y[i + 1] = range_dot(ci, va, x, k + len, k + 2 * len);
    y[i + 2] = range_dot(ci, va, x, k + 2 * len, k + 3 * len);
    y[i + 3] = range_dot(ci, va, x, k + 3 * len, k + 4 * len);
  }
  for (; i < hi; ++i, k += len) y[i] = range_dot(ci, va, x, k, k + len);
}

/// kWide: long/dense rows — two rows in flight so two independent
/// multi-lane accumulator chains overlap their gather latencies.
inline void run_block_wide(const nnz_t* rp, const index_t* ci,
                           const value_t* va, const value_t* x, value_t* y,
                           index_t lo, index_t hi) {
  index_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    y[i] = row_dot(rp, ci, va, x, i);
    y[i + 1] = row_dot(rp, ci, va, x, i + 1);
  }
  if (i < hi) y[i] = row_dot(rp, ci, va, x, i);
}

/// kMerge: pathological skew — mostly-tiny rows take the scalar exit in
/// short_row_dot, four rows per iteration keep the loads flowing, and the
/// occasional hub row falls back to the shared reduction loop.
inline void run_block_merge(const nnz_t* rp, const index_t* ci,
                            const value_t* va, const value_t* x, value_t* y,
                            index_t lo, index_t hi) {
  index_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    y[i] = short_row_dot(rp, ci, va, x, i);
    y[i + 1] = short_row_dot(rp, ci, va, x, i + 1);
    y[i + 2] = short_row_dot(rp, ci, va, x, i + 2);
    y[i + 3] = short_row_dot(rp, ci, va, x, i + 3);
  }
  for (; i < hi; ++i) y[i] = short_row_dot(rp, ci, va, x, i);
}

}  // namespace

void spmv_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, Schedule sched) {
  check_dims(a, x, y);
  const index_t n = a.nrows();
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();

  // OpenMP requires the schedule kind to be lexically fixed per loop, hence
  // one loop per policy.
  switch (sched) {
    case Schedule::kDyn:
#pragma omp parallel for schedule(dynamic, kScheduleGrainRows)
      for (index_t i = 0; i < n; ++i) yp[i] = row_dot(rp, ci, va, xp, i);
      break;
    case Schedule::kSt:
#pragma omp parallel for schedule(static, kScheduleGrainRows)
      for (index_t i = 0; i < n; ++i) yp[i] = row_dot(rp, ci, va, xp, i);
      break;
    case Schedule::kStCont:
#pragma omp parallel for schedule(static)
      for (index_t i = 0; i < n; ++i) yp[i] = row_dot(rp, ci, va, xp, i);
      break;
  }
}

void spmv_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, Schedule sched, const SpmvPlan& plan) {
  check_dims(a, x, y);
  const index_t n = a.nrows();
  if (!plan.covers(n)) {
    throw std::invalid_argument("spmv_csr: plan does not cover the matrix");
  }
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  const index_t nb = plan.num_blocks();
  const index_t* bd = plan.bounds.data();
  const std::uint8_t* vt =
      plan.variants.empty() ? nullptr : plan.variants.data();

  auto block = [=](index_t b) {
    const index_t lo = bd[b];
    const index_t hi = bd[b + 1];
    const KernelVariant v =
        vt == nullptr ? KernelVariant::kGeneric
                      : static_cast<KernelVariant>(vt[b]);
    switch (v) {
      case KernelVariant::kUniform:
        run_block_uniform(rp, ci, va, xp, yp, lo, hi);
        break;
      case KernelVariant::kWide:
        run_block_wide(rp, ci, va, xp, yp, lo, hi);
        break;
      case KernelVariant::kMerge:
        run_block_merge(rp, ci, va, xp, yp, lo, hi);
        break;
      case KernelVariant::kGeneric:
      default:
        run_block_generic(rp, ci, va, xp, yp, lo, hi);
        break;
    }
  };

  // Blocks already carry ~equal nonzero counts, so the static policies run
  // one contiguous run of blocks per thread; Dyn keeps work stealing over
  // the (oversubscribed) block list for machines with ambient load.
  if (sched == Schedule::kDyn) {
#pragma omp parallel for schedule(dynamic, 1)
    for (index_t b = 0; b < nb; ++b) block(b);
  } else {
#pragma omp parallel for schedule(static)
    for (index_t b = 0; b < nb; ++b) block(b);
  }
}

void spmv_csr_mkl_like(const CsrMatrix& a, std::span<const value_t> x,
                       std::span<value_t> y) {
  check_dims(a, x, y);
  const index_t n = a.nrows();
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  const nnz_t total = a.nnz();

#pragma omp parallel
  {
    const int nt = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    // Each thread takes the contiguous row range covering its equal share
    // of nonzeros: binary-search row_ptr for the split points.
    const nnz_t lo_target = total * tid / nt;
    const nnz_t hi_target = total * (tid + 1) / nt;
    const auto* begin = rp;
    const auto* end = rp + n + 1;
    // Thread boundaries are computed identically by adjacent threads
    // (thread t's hi_target equals thread t+1's lo_target), so the row
    // ranges tile [0, n) exactly; the first and last threads pin their
    // outer edge so runs of empty rows at either end are still covered.
    const index_t row_lo =
        tid == 0 ? 0
                 : static_cast<index_t>(
                       std::upper_bound(begin, end, lo_target) - begin - 1);
    const index_t row_hi =
        tid == nt - 1
            ? n
            : static_cast<index_t>(
                  std::upper_bound(begin, end, hi_target) - begin - 1);
    for (index_t i = row_lo; i < row_hi; ++i) {
      yp[i] = row_dot(rp, ci, va, xp, i);
    }
  }
}

}  // namespace wise
