#pragma once
// Selection-time applicability predicates for the extension formats.
//
// The model bank predicts how *fast* a configuration would be; these
// predicates say whether it is *convertible at all*. ELL rejects padding
// blow-up (one hub row widens every row) and DIA rejects scattered
// matrices (too many diagonals, or diagonals mostly fill) — exactly the
// matrices whose from_csr() would throw. choose() masks inapplicable
// configurations out of the arg-max, so a mispredicting tree can never
// route an RMAT matrix into DiaMatrix::from_csr and down the demotion
// path; the paper-space methods and HYB are applicable to everything.
//
// The mask is O(nrows) for ELL and O(nnz) for DIA, and each analysis runs
// at most once per matrix regardless of how many configs share the kind.

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "spmv/method.hpp"

namespace wise {

/// True when `cfg` can be prepared for `m` (conversion will not reject).
bool config_applicable(const MethodConfig& cfg, const CsrMatrix& m);

/// Per-config applicability for a whole registry. mask[i] != 0 iff
/// configs[i] is applicable to m; per-kind analyses are computed lazily
/// and shared across configs.
std::vector<char> applicability_mask(std::span<const MethodConfig> configs,
                                     const CsrMatrix& m);

}  // namespace wise
