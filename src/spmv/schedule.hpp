#pragma once
// Row-to-thread scheduling policies for parallel SpMV (paper §2.1).

#include <string>

namespace wise {

/// How rows (or SRVPack chunks) are assigned to OpenMP threads.
///   kDyn    — dynamic, K rows at a time (work stealing from a shared queue)
///   kSt     — static round-robin, K rows at a time
///   kStCont — static contiguous: one dense block of rows per thread
enum class Schedule { kDyn, kSt, kStCont };

inline const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kDyn: return "Dyn";
    case Schedule::kSt: return "St";
    case Schedule::kStCont: return "StCont";
  }
  return "?";
}

/// Grain size K: how many rows Dyn and St hand out at a time (§2.1 "assign
/// K rows at a time"). Chosen so a grain is a few thousand nonzeros on
/// typical matrices — big enough to amortize dequeue cost, small enough to
/// load-balance skewed rows.
inline constexpr int kScheduleGrainRows = 256;

}  // namespace wise
