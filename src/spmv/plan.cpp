#include "spmv/plan.hpp"

#include <algorithm>
#include <limits>

#include "util/env.hpp"

namespace wise {

const char* kernel_variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::kGeneric: return "generic";
    case KernelVariant::kUniform: return "uniform";
    case KernelVariant::kWide: return "wide";
    case KernelVariant::kMerge: return "merge";
  }
  return "unknown";
}

bool SpmvPlan::covers(index_t n) const {
  if (bounds.size() < 2) return false;
  if (bounds.front() != 0 || bounds.back() != n) return false;
  if (!variants.empty() &&
      variants.size() != static_cast<std::size_t>(num_blocks())) {
    return false;
  }
  if (n == 0) return bounds.size() == 2;
  for (std::size_t b = 1; b < bounds.size(); ++b) {
    if (bounds[b] <= bounds[b - 1]) return false;
  }
  return true;
}

std::array<std::uint32_t, kNumKernelVariants> SpmvPlan::variant_histogram()
    const {
  std::array<std::uint32_t, kNumKernelVariants> hist{};
  const index_t nb = num_blocks();
  if (variants.empty()) {
    hist[static_cast<std::size_t>(KernelVariant::kGeneric)] =
        static_cast<std::uint32_t>(nb);
    return hist;
  }
  for (index_t b = 0; b < nb; ++b) {
    const std::size_t v = variants[static_cast<std::size_t>(b)];
    ++hist[v < kNumKernelVariants
               ? v
               : static_cast<std::size_t>(KernelVariant::kGeneric)];
  }
  return hist;
}

SpmvPlan build_balanced_plan(std::span<const nnz_t> offsets,
                             index_t max_blocks) {
  SpmvPlan plan;
  const index_t n =
      offsets.empty() ? 0 : static_cast<index_t>(offsets.size()) - 1;
  plan.bounds.push_back(0);
  if (n <= 0) {
    plan.bounds.push_back(0);
    return plan;
  }
  max_blocks = std::max<index_t>(1, max_blocks);
  const nnz_t total = offsets[static_cast<std::size_t>(n)];
  if (total > 0) {
    const nnz_t* begin = offsets.data();
    const nnz_t* end = begin + n + 1;
    for (index_t b = 1; b < max_blocks; ++b) {
      const nnz_t target = total * b / max_blocks;
      // Last item whose prefix start is <= target: the block boundary the
      // target falls in. Runs of zero-weight items stick to the block on
      // their left.
      const index_t item = static_cast<index_t>(
          std::upper_bound(begin, end, target) - begin - 1);
      // Strictly-ascending bounds merge split points that landed inside
      // one heavy item (or in a run too light to fill a block).
      if (item > plan.bounds.back() && item < n) plan.bounds.push_back(item);
    }
  }
  plan.bounds.push_back(n);
  plan.bounds.shrink_to_fit();
  return plan;
}

KernelVariant classify_block(std::span<const nnz_t> offsets, index_t lo,
                             index_t hi) {
  if (hi <= lo) return KernelVariant::kGeneric;
  nnz_t min_len = offsets[static_cast<std::size_t>(lo) + 1] -
                  offsets[static_cast<std::size_t>(lo)];
  nnz_t max_len = min_len;
  index_t tiny = 0;
  for (index_t i = lo; i < hi; ++i) {
    const nnz_t len = offsets[static_cast<std::size_t>(i) + 1] -
                      offsets[static_cast<std::size_t>(i)];
    min_len = std::min(min_len, len);
    max_len = std::max(max_len, len);
    if (len <= kTinyItemLen) ++tiny;
  }
  // Order matters: an all-tiny block (including all-empty) is scalar-safe
  // everywhere, which beats the uniform unroll; a uniform block of long
  // items is better served by the hoisted trip count than by the wide
  // interleave; and a meaningful tiny tail picks merge even when hub items
  // pull the mean up — merge still runs hubs through the shared reduction
  // loop while the tail takes the scalar exit, whereas the wide interleave
  // would pay full vector-loop setup on every tiny item.
  if (max_len <= kTinyItemLen) return KernelVariant::kMerge;
  if (min_len == max_len) return KernelVariant::kUniform;
  const index_t items = hi - lo;
  if (static_cast<double>(tiny) >=
      kMergeTinyFrac * static_cast<double>(items)) {
    return KernelVariant::kMerge;
  }
  const nnz_t total = offsets[static_cast<std::size_t>(hi)] -
                      offsets[static_cast<std::size_t>(lo)];
  const double mean =
      static_cast<double>(total) / static_cast<double>(items);
  if (mean >= kWideMeanLen) return KernelVariant::kWide;
  return KernelVariant::kGeneric;
}

SpmvPlan build_specialized_plan(std::span<const nnz_t> offsets,
                                index_t max_blocks) {
  // Subdividing the balanced budget keeps each block's length distribution
  // close to homogeneous (a hub row and its tail of singletons land in
  // different blocks), which is what lets the classifier commit to one
  // variant per block. Thread-count-based budgets are far too coarse for
  // that — RMAT hub runs recur every ~2^k rows — so the budget targets
  // ~kSpecializeTargetNnz nonzeros per block instead, floored at
  // kSpecializeSubdivide x the balanced budget. The static schedules
  // still hand each thread a contiguous run of blocks, so the finer
  // partition costs nothing at steady state.
  max_blocks = std::max<index_t>(1, max_blocks);
  index_t budget =
      max_blocks > (std::numeric_limits<index_t>::max)() / kSpecializeSubdivide
          ? (std::numeric_limits<index_t>::max)()
          : max_blocks * kSpecializeSubdivide;
  if (!offsets.empty()) {
    const nnz_t total = offsets.back();
    const nnz_t by_nnz = total / kSpecializeTargetNnz;
    const index_t n = static_cast<index_t>(offsets.size()) - 1;
    budget = std::max(budget,
                      static_cast<index_t>(std::min<nnz_t>(by_nnz, n)));
  }
  SpmvPlan plan = build_balanced_plan(offsets, budget);
  const index_t nb = plan.num_blocks();
  plan.variants.resize(static_cast<std::size_t>(nb));
  for (index_t b = 0; b < nb; ++b) {
    plan.variants[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(
        classify_block(offsets, plan.bounds[static_cast<std::size_t>(b)],
                       plan.bounds[static_cast<std::size_t>(b) + 1]));
  }
  plan.variants.shrink_to_fit();
  return plan;
}

index_t plan_blocks_for(Schedule sched, int threads) {
  const index_t t = std::max(1, threads);
  if (sched != Schedule::kDyn) return t;
  const index_t factor = static_cast<index_t>(
      std::clamp<std::int64_t>(env_int("WISE_PLAN_BLOCK_FACTOR", 4), 1, 256));
  return t * factor;
}

SpmvPlan build_csr_plan(const CsrMatrix& m, Schedule sched, int threads) {
  return build_csr_plan(m, sched, threads, plan_specialization_enabled());
}

SpmvPlan build_csr_plan(const CsrMatrix& m, Schedule sched, int threads,
                        bool specialize) {
  const index_t blocks = plan_blocks_for(sched, threads);
  return specialize ? build_specialized_plan(m.row_ptr(), blocks)
                    : build_balanced_plan(m.row_ptr(), blocks);
}

std::size_t SrvPlan::memory_bytes() const {
  std::size_t bytes = segments.capacity() * sizeof(SpmvPlan);
  for (const auto& seg : segments) bytes += seg.memory_bytes();
  return bytes;
}

std::array<std::uint32_t, kNumKernelVariants> SrvPlan::variant_histogram()
    const {
  std::array<std::uint32_t, kNumKernelVariants> hist{};
  for (const auto& seg : segments) {
    const auto seg_hist = seg.variant_histogram();
    for (std::size_t v = 0; v < kNumKernelVariants; ++v) {
      hist[v] += seg_hist[v];
    }
  }
  return hist;
}

SrvPlan build_srv_plan(const SrvPackMatrix& m, Schedule sched, int threads) {
  return build_srv_plan(m, sched, threads, plan_specialization_enabled());
}

SrvPlan build_srv_plan(const SrvPackMatrix& m, Schedule sched, int threads,
                       bool specialize) {
  SrvPlan plan;
  plan.segments.reserve(m.segments().size());
  const index_t blocks = plan_blocks_for(sched, threads);
  for (const auto& seg : m.segments()) {
    plan.segments.push_back(
        specialize ? build_specialized_plan(seg.chunk_offset, blocks)
                   : build_balanced_plan(seg.chunk_offset, blocks));
  }
  return plan;
}

bool plans_enabled() { return env_flag("WISE_PLAN", true); }

bool plan_specialization_enabled() {
  return env_flag("WISE_PLAN_SPECIALIZE", true);
}

bool srv_merge_enabled() {
  // Cached: consulted per block on the SRVPack execution path.
  static const bool enabled = env_flag("WISE_SRV_MERGE", false);
  return enabled;
}

}  // namespace wise
