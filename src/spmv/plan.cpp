#include "spmv/plan.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace wise {

bool SpmvPlan::covers(index_t n) const {
  if (bounds.size() < 2) return false;
  if (bounds.front() != 0 || bounds.back() != n) return false;
  if (n == 0) return bounds.size() == 2;
  for (std::size_t b = 1; b < bounds.size(); ++b) {
    if (bounds[b] <= bounds[b - 1]) return false;
  }
  return true;
}

SpmvPlan build_balanced_plan(std::span<const nnz_t> offsets,
                             index_t max_blocks) {
  SpmvPlan plan;
  const index_t n =
      offsets.empty() ? 0 : static_cast<index_t>(offsets.size()) - 1;
  plan.bounds.push_back(0);
  if (n <= 0) {
    plan.bounds.push_back(0);
    return plan;
  }
  max_blocks = std::max<index_t>(1, max_blocks);
  const nnz_t total = offsets[static_cast<std::size_t>(n)];
  if (total > 0) {
    const nnz_t* begin = offsets.data();
    const nnz_t* end = begin + n + 1;
    for (index_t b = 1; b < max_blocks; ++b) {
      const nnz_t target = total * b / max_blocks;
      // Last item whose prefix start is <= target: the block boundary the
      // target falls in. Runs of zero-weight items stick to the block on
      // their left.
      const index_t item = static_cast<index_t>(
          std::upper_bound(begin, end, target) - begin - 1);
      // Strictly-ascending bounds merge split points that landed inside
      // one heavy item (or in a run too light to fill a block).
      if (item > plan.bounds.back() && item < n) plan.bounds.push_back(item);
    }
  }
  plan.bounds.push_back(n);
  plan.bounds.shrink_to_fit();
  return plan;
}

index_t plan_blocks_for(Schedule sched, int threads) {
  const index_t t = std::max(1, threads);
  if (sched != Schedule::kDyn) return t;
  const index_t factor = static_cast<index_t>(
      std::clamp<std::int64_t>(env_int("WISE_PLAN_BLOCK_FACTOR", 4), 1, 256));
  return t * factor;
}

SpmvPlan build_csr_plan(const CsrMatrix& m, Schedule sched, int threads) {
  return build_balanced_plan(m.row_ptr(), plan_blocks_for(sched, threads));
}

std::size_t SrvPlan::memory_bytes() const {
  std::size_t bytes = segments.capacity() * sizeof(SpmvPlan);
  for (const auto& seg : segments) bytes += seg.memory_bytes();
  return bytes;
}

SrvPlan build_srv_plan(const SrvPackMatrix& m, Schedule sched, int threads) {
  SrvPlan plan;
  plan.segments.reserve(m.segments().size());
  const index_t blocks = plan_blocks_for(sched, threads);
  for (const auto& seg : m.segments()) {
    plan.segments.push_back(build_balanced_plan(seg.chunk_offset, blocks));
  }
  return plan;
}

bool plans_enabled() { return env_flag("WISE_PLAN", true); }

}  // namespace wise
