#include "spmv/format_kernels.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

#include <omp.h>

namespace wise {

namespace {

template <typename Matrix>
void check_dims(const Matrix& a, std::span<const value_t> x,
                std::span<value_t> y, const char* who) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument(std::string(who) + ": dimension mismatch");
  }
}

/// Runs `block(lo, hi)` over a disjoint cover of [0, n): the plan's blocks
/// (static, one contiguous run per thread — every format config registers
/// with kStCont) or, with no plan, one even row range per thread. Rows are
/// computed independently, so the partition never affects the bits.
template <typename Block>
void run_blocked(const SpmvPlan* plan, index_t n, const char* who,
                 Block&& block) {
  if (plan != nullptr) {
    if (!plan->covers(n)) {
      throw std::invalid_argument(std::string(who) +
                                  ": plan does not cover the matrix");
    }
    const index_t nb = plan->num_blocks();
    const index_t* bd = plan->bounds.data();
#pragma omp parallel for schedule(static)
    for (index_t b = 0; b < nb; ++b) block(bd[b], bd[b + 1]);
    return;
  }
#pragma omp parallel
  {
    const int nt = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    const index_t lo = static_cast<index_t>(
        static_cast<std::int64_t>(n) * tid / nt);
    const index_t hi = static_cast<index_t>(
        static_cast<std::int64_t>(n) * (tid + 1) / nt);
    if (lo < hi) block(lo, hi);
  }
}

/// The shared ELL-part loop (used by both ELL and HYB): slot-outer over
/// the rows [lo, hi), accumulating into y. The length guard means padding
/// cells are never read, so each y[i] receives exactly its row's first
/// `len[i]` CSR entries in column order — the reference chain.
void ell_part_block(const index_t* len, const index_t* cols,
                    const value_t* vals, std::size_t n, index_t slots,
                    const value_t* x, value_t* y, index_t lo, index_t hi) {
  for (index_t i = lo; i < hi; ++i) y[i] = 0.0;
  for (index_t s = 0; s < slots; ++s) {
    const index_t* cs = cols + static_cast<std::size_t>(s) * n;
    const value_t* vs = vals + static_cast<std::size_t>(s) * n;
    for (index_t i = lo; i < hi; ++i) {
      if (s < len[i]) y[i] += vs[i] * x[cs[i]];
    }
  }
}

}  // namespace

void spmv_ell(const EllMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, const SpmvPlan* plan) {
  check_dims(a, x, y, "spmv_ell");
  const index_t* len = a.row_lens().data();
  const index_t* cols = a.cols().data();
  const value_t* vals = a.vals().data();
  const std::size_t n = static_cast<std::size_t>(a.nrows());
  const index_t slots = a.slots();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  run_blocked(plan, a.nrows(), "spmv_ell", [=](index_t lo, index_t hi) {
    ell_part_block(len, cols, vals, n, slots, xp, yp, lo, hi);
  });
}

void spmv_hyb(const HybMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, const SpmvPlan* plan) {
  check_dims(a, x, y, "spmv_hyb");
  const index_t* len = a.ell_lens().data();
  const index_t* cols = a.ell_cols().data();
  const value_t* vals = a.ell_vals().data();
  const nnz_t* trp = a.tail_row_ptr().data();
  const index_t* tc = a.tail_cols().data();
  const value_t* tv = a.tail_vals().data();
  const std::size_t n = static_cast<std::size_t>(a.nrows());
  const index_t slots = a.ell_slots();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  run_blocked(plan, a.nrows(), "spmv_hyb", [=](index_t lo, index_t hi) {
    ell_part_block(len, cols, vals, n, slots, xp, yp, lo, hi);
    for (index_t i = lo; i < hi; ++i) {
      value_t acc = yp[i];
      for (nnz_t k = trp[i]; k < trp[i + 1]; ++k) {
        acc += tv[static_cast<std::size_t>(k)] *
               xp[tc[static_cast<std::size_t>(k)]];
      }
      yp[i] = acc;
    }
  });
}

void spmv_dia(const DiaMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, const SpmvPlan* plan) {
  check_dims(a, x, y, "spmv_dia");
  const std::int64_t* off = a.offsets().data();
  const char* dense = a.lane_dense().data();
  const value_t* vals = a.vals().data();
  const std::size_t n = static_cast<std::size_t>(a.nrows());
  const index_t nd = a.num_diagonals();
  const index_t ncols = a.ncols();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  run_blocked(plan, a.nrows(), "spmv_dia", [=](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) yp[i] = 0.0;
    for (index_t d = 0; d < nd; ++d) {
      const std::int64_t o = off[d];
      const value_t* lane = vals + static_cast<std::size_t>(d) * n;
      const index_t ilo = static_cast<index_t>(
          std::max<std::int64_t>(lo, -o));
      const index_t ihi = static_cast<index_t>(std::min<std::int64_t>(
          hi, static_cast<std::int64_t>(ncols) - o));
      if (dense[d]) {
        // No fill: every lane cell in [ilo, ihi) is a real entry, so the
        // unguarded triad is exact — and fully vectorizable, since it has
        // no branch, no index load, and no gather.
#pragma omp simd
        for (index_t i = ilo; i < ihi; ++i) {
          yp[i] += lane[i] * xp[i + o];
        }
      } else {
        for (index_t i = ilo; i < ihi; ++i) {
          const value_t v = lane[i];
          if (v != 0.0) yp[i] += v * xp[i + o];
        }
      }
    }
  });
}

}  // namespace wise
