#pragma once
// The SpMV method/parameter space WISE searches (paper Table 1 and §4.3).
//
// A MethodConfig is one fully-specified way to run SpMV. The registry
// enumerates the paper's 29 configurations: every configuration gets its own
// WISE performance-prediction model.

#include <string>
#include <vector>

#include "sparse/srvpack.hpp"
#include "spmv/schedule.hpp"
#include "util/types.hpp"

namespace wise {

enum class MethodKind {
  kCsr,         ///< baseline CSR (§2.1)
  kSellpack,    ///< Sliced ELLPACK, natural row order
  kSellCSigma,  ///< Sell-c-σ, σ-windowed row sort
  kSellCR,      ///< Sell-c-σ with σ = #rows (full RFS)
  kLav1Seg,     ///< CFS + RFS, single segment
  kLav,         ///< CFS + RFS + dense/sparse segmentation (fraction T)
  kBsr,         ///< Block CSR extension (not in the paper's 29; see bsr.hpp)
  kEll,         ///< ELLPACK extension (sparse/ell.hpp)
  kHyb,         ///< hybrid ELL + overflow tail extension (sparse/hyb.hpp)
  kDia,         ///< diagonal extension (sparse/dia.hpp)
};

const char* method_kind_name(MethodKind k);

/// One {method, parameter values} pair.
struct MethodConfig {
  MethodKind kind = MethodKind::kCsr;
  Schedule sched = Schedule::kStCont;
  int c = 0;          ///< chunk height; BSR block size; HYB cutoff; 0 for CSR
  index_t sigma = 0;  ///< Sell-c-σ window; kSigmaAll where RFS is implied
  double T = 0.0;     ///< LAV dense-segment nonzero fraction; 0 otherwise

  /// Human-readable id, e.g. "Sell-c-s/c8/s4096/Dyn"; stable across runs —
  /// used as the key in measurement CSVs and model files.
  std::string name() const;

  /// SRVPack build options realizing this configuration. Must not be called
  /// for kCsr (which runs directly on the CSR arrays).
  SrvBuildOptions srv_options() const;

  /// Preprocessing-cost rank of the *method* (paper §4.4): CSR < SELLPACK <
  /// Sell-c-σ < Sell-c-R < LAV-1Seg < LAV.
  int preprocessing_rank() const { return static_cast<int>(kind); }

  /// Total deterministic tie-break order used by the selection heuristic:
  /// lower compares first on preprocessing rank, then on smaller parameters.
  /// Returns a lexicographic key.
  std::vector<double> selection_rank() const;

  friend bool operator==(const MethodConfig&, const MethodConfig&) = default;
};

/// Parses the name() format back into a config; throws std::invalid_argument
/// on unknown strings. Inverse of MethodConfig::name().
MethodConfig parse_method_config(const std::string& name);

/// The paper's full 29-configuration space (§4.3):
///   CSR×{Dyn,St,StCont}; SELLPACK×{c4,c8}×{StCont,Dyn};
///   Sell-c-σ×{c4,c8}×{2^9,2^12,2^14}×{StCont,Dyn};
///   Sell-c-R×{c4,c8}; LAV-1Seg×{c4,c8}; LAV×{c4,c8}×{0.7,0.8,0.9}.
std::vector<MethodConfig> all_method_configs();

/// Just the three CSR scheduling variants.
std::vector<MethodConfig> csr_configs();

/// σ values the registry instantiates (paper: 2^9, 2^12, 2^14).
std::vector<index_t> sigma_values();

/// c values (machine vector widths; paper: 4 and 8).
std::vector<int> c_values();

/// T values (paper: 0.7, 0.8, 0.9).
std::vector<double> t_values();

}  // namespace wise
