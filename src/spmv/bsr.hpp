#pragma once
// BSR (Block Compressed Sparse Row) — an *extension* method beyond the
// paper's five, exercising WISE's central framework claim: "we can add new
// methods without changing already existing models" (§7). BSR stores dense
// b x b blocks, which pays off on matrices with block structure (FEM,
// block-diagonal systems) and loses badly on scattered nonzeros — exactly
// the kind of trade-off WISE's locality features can predict.
//
// The registry below extends the 29 paper configurations with BSR entries;
// the measurement, training, and selection machinery operate on the
// extended space with no other code changes (see ablation_extension).

#include <vector>

#include "sparse/csr.hpp"
#include "spmv/method.hpp"
#include "util/aligned.hpp"

namespace wise {

/// Square-block BSR matrix. Dimensions are padded up to block multiples;
/// padding values are zero.
class BsrMatrix {
 public:
  /// Converts from CSR with b x b blocks (b in [1, 16]).
  static BsrMatrix from_csr(const CsrMatrix& m, int block_size);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  int block_size() const { return block_; }
  index_t num_block_rows() const { return nblock_rows_; }
  nnz_t num_blocks() const {
    return static_cast<nnz_t>(block_col_idx_.size());
  }

  /// Stored values including block padding; stored/nnz - 1 is BSR's fill
  /// overhead (the analogue of SRVPack's padding_ratio).
  nnz_t stored_entries() const {
    return num_blocks() * block_ * block_;
  }
  double fill_ratio() const {
    return nnz_ == 0 ? 0.0
                     : static_cast<double>(stored_entries()) /
                               static_cast<double>(nnz_) -
                           1.0;
  }

  std::size_t memory_bytes() const;

  /// y = A*x (parallel over block rows). y is fully overwritten.
  void spmv(std::span<const value_t> x, std::span<value_t> y) const;

  /// Expands back to canonical COO (round-trip test support).
  CooMatrix to_coo() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  nnz_t nnz_ = 0;
  int block_ = 1;
  index_t nblock_rows_ = 0;
  std::vector<nnz_t> block_row_ptr_;
  std::vector<index_t> block_col_idx_;
  aligned_vector<value_t> vals_;  ///< num_blocks * b * b, block-row-major
};

/// The extended configuration space: the paper's 29 plus BSR with block
/// sizes {4, 8}, ELL, HYB with cutoffs hyb_cutoff_values(), and DIA (see
/// sparse/ell.hpp, sparse/hyb.hpp, sparse/dia.hpp). Extension entries sort
/// after every paper method in the preprocessing-cost tie-break.
std::vector<MethodConfig> extended_method_configs();

/// HYB row-length cutoffs the registry instantiates ({8, 32}: one near the
/// padding-free regime, one that keeps most entries in the regular part).
std::vector<int> hyb_cutoff_values();

}  // namespace wise
