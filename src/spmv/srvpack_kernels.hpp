#pragma once
// Vectorized SpMV over the SRVPack unified format.
//
// One kernel serves SELLPACK, Sell-c-σ, Sell-c-R, LAV-1Seg and LAV — the
// format build options decide which method executes (paper Appendix A).
// Each SRVPack chunk is processed with c-wide SIMD across its lanes; chunks
// are distributed to threads with the requested scheduling policy; segments
// run one after another so the input-vector working set of each segment
// stays LLC-resident (LAV's goal).

#include <span>

#include "sparse/srvpack.hpp"
#include "spmv/plan.hpp"
#include "spmv/schedule.hpp"
#include "util/aligned.hpp"

namespace wise {

/// Scratch buffers reused across SpMV iterations. With CFS the input vector
/// is gathered into permuted order once per call; the buffer persists here
/// so iterative solvers pay one allocation total.
struct SrvWorkspace {
  aligned_vector<value_t> permuted_x;
};

/// y = A*x. y is fully overwritten (zero-initialized, then accumulated per
/// segment). Throws std::invalid_argument on dimension mismatch.
///
/// When `plan` is non-null it must hold one chunk partition per segment
/// (build_srv_plan); chunks then execute block-by-block with the balancing
/// decided at prepare() time instead of per-multiplication by the OpenMP
/// runtime. Bit-identical to the plan-less path: each chunk's accumulation
/// is unchanged and every chunk runs exactly once.
void spmv_srvpack(const SrvPackMatrix& a, std::span<const value_t> x,
                  std::span<value_t> y, Schedule sched, SrvWorkspace& ws,
                  const SrvPlan* plan = nullptr);

}  // namespace wise
