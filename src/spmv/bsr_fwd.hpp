#pragma once
// Forward declaration so executor.hpp does not pull in the full BSR header.

namespace wise {
class BsrMatrix;
}  // namespace wise
