#pragma once
// On-disk measurement cache.
//
// Measuring the full corpus takes minutes, and several bench binaries need
// the same measurements (Figs 2-4 and 10-13 plus Table 4 all consume the
// corpus). Records are persisted to a CSV keyed by spec id; each bench
// computes only what is missing. Delete the file (or set WISE_REFRESH=1)
// to force remeasurement.
//
// Persistence is crash-safe: every update writes a complete snapshot to a
// uniquely-named temp file and atomically renames it over the cache, so a
// killed or concurrent run can never leave a truncated entry behind —
// readers always see a whole, parseable file.

#include <string>
#include <vector>

#include "exp/measure.hpp"

namespace wise {

class MeasurementCache {
 public:
  /// Default path: <WISE_DATA_DIR>/measurements.csv.
  explicit MeasurementCache(std::string path = "");

  /// Returns records for `specs` (in order), measuring and persisting any
  /// that are not yet cached. Progress is logged to stderr.
  std::vector<MatrixRecord> get_or_measure(const std::vector<MatrixSpec>& specs,
                                           const MeasureOptions& opts = {});

  const std::string& path() const { return path_; }

 private:
  void load();
  void append(const MatrixRecord& rec);

  std::string path_;
  bool loaded_ = false;
  std::vector<MatrixRecord> records_;
};

/// CSV schema helpers (exposed for tests).
std::vector<std::string> measurement_csv_header();
std::vector<std::string> measurement_csv_row(const MatrixRecord& rec);
MatrixRecord measurement_from_csv_row(const std::vector<std::string>& fields);

}  // namespace wise
