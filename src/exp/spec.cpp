#include "exp/spec.hpp"

#include <stdexcept>

namespace wise {

CsrMatrix MatrixSpec::materialize() const {
  switch (kind) {
    case Kind::kRmat: {
      RmatParams p;
      p.n = n;
      p.avg_degree = degree;
      p.a = a;
      p.b = b;
      p.c = c;
      p.d = d;
      return CsrMatrix::from_coo(generate_rmat(p, seed));
    }
    case Kind::kRgg:
      return CsrMatrix::from_coo(generate_rgg(n, degree, seed));
    case Kind::kBanded:
      return CsrMatrix::from_coo(generate_banded(n, half_bw, density, seed));
    case Kind::kStencil2d:
      return CsrMatrix::from_coo(generate_stencil2d(n, n2, points));
    case Kind::kStencil3d:
      return CsrMatrix::from_coo(generate_stencil3d(n, n2, n3, points));
    case Kind::kBlockDiag:
      return CsrMatrix::from_coo(generate_block_diag(n, block, density, seed));
    case Kind::kRoadLike:
      return CsrMatrix::from_coo(generate_road_like(n, seed));
  }
  throw std::logic_error("MatrixSpec::materialize: unknown kind");
}

MatrixSpec rmat_spec(RmatClass cls, index_t n, double degree,
                     std::uint64_t seed) {
  const RmatParams p = rmat_class_params(cls, n, degree);
  MatrixSpec spec;
  spec.kind = MatrixSpec::Kind::kRmat;
  spec.family = rmat_class_name(cls);
  spec.id = "rmat-" + spec.family + "-r" + std::to_string(n) + "-d" +
            std::to_string(static_cast<int>(degree));
  spec.n = n;
  spec.degree = degree;
  spec.a = p.a;
  spec.b = p.b;
  spec.c = p.c;
  spec.d = p.d;
  spec.seed = seed;
  return spec;
}

MatrixSpec rgg_spec(index_t n, double degree, std::uint64_t seed) {
  MatrixSpec spec;
  spec.kind = MatrixSpec::Kind::kRgg;
  spec.family = "rgg";
  spec.id = "rgg-r" + std::to_string(n) + "-d" +
            std::to_string(static_cast<int>(degree));
  spec.n = n;
  spec.degree = degree;
  spec.seed = seed;
  return spec;
}

}  // namespace wise
