#pragma once
// Experiment corpora (paper §5 "Matrices", §4.5, §3).
//
// Two corpora mirror the paper's setup, scaled to this machine:
//  * sci_corpus()    — 136 "scientific-flavored" matrices standing in for
//    the 136 SuiteSparse matrices (stencils, banded, block-diagonal,
//    road-like meshes, RGG, and a few power-law graphs — the same mix of
//    low-skew/high-locality behaviors with a handful of web/social-like
//    outliers that §3 measures in SuiteSparse).
//  * random_corpus() — the RMAT/RGG grid of Table 3: all six skew/locality
//    classes plus RGG, swept over matrix size and average degree.
//
// Row counts scale with the WISE_SCALE environment variable (default 1.0).

#include <vector>

#include "exp/spec.hpp"

namespace wise {

/// 136 scientific-flavored specs (SuiteSparse stand-in).
std::vector<MatrixSpec> sci_corpus();

/// RMAT/RGG training grid: 6 classes x sizes x degrees + RGG sweep.
std::vector<MatrixSpec> random_corpus();

/// sci + random, the full training/evaluation set.
std::vector<MatrixSpec> full_corpus();

/// Fig 5/6 sweep grids: one spec per (rows, degree) cell for the given
/// class. Rows/degrees are chosen to mirror the paper's axes.
std::vector<MatrixSpec> sweep_grid(RmatClass cls);

/// Axis values used by sweep_grid (exposed for the bench's plot labels).
std::vector<index_t> sweep_rows();
std::vector<double> sweep_degrees();

}  // namespace wise
