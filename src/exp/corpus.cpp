#include "exp/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/env.hpp"

namespace wise {

namespace {

/// Applies the global size multiplier. The argument is a row count or a
/// stencil grid side, so the floor must stay below the smallest base value
/// used anywhere (stencil sides go down to 8).
index_t scaled(index_t base_rows) {
  const double s = experiment_scale();
  return std::max<index_t>(
      8, static_cast<index_t>(std::llround(static_cast<double>(base_rows) * s)));
}

std::uint64_t spec_seed(const std::string& id) {
  // Stable per-id seed: FNV-1a over the id string.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char ch : id) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

MatrixSpec sci(MatrixSpec spec) {
  spec.family = "sci";
  spec.seed = spec_seed(spec.id);
  return spec;
}

MatrixSpec stencil2d_spec(index_t nx, index_t ny, int points) {
  MatrixSpec s;
  s.kind = MatrixSpec::Kind::kStencil2d;
  s.id = "st2d" + std::to_string(points) + "-" + std::to_string(nx) + "x" +
         std::to_string(ny);
  s.n = nx;
  s.n2 = ny;
  s.points = points;
  return sci(s);
}

MatrixSpec stencil3d_spec(index_t side, int points) {
  MatrixSpec s;
  s.kind = MatrixSpec::Kind::kStencil3d;
  s.id = "st3d" + std::to_string(points) + "-" + std::to_string(side);
  s.n = s.n2 = s.n3 = side;
  s.points = points;
  return sci(s);
}

MatrixSpec banded_spec(index_t n, index_t half_bw, double density) {
  MatrixSpec s;
  s.kind = MatrixSpec::Kind::kBanded;
  s.id = "band-" + std::to_string(n) + "-hb" + std::to_string(half_bw) +
         "-d" + std::to_string(static_cast<int>(density * 100));
  s.n = n;
  s.half_bw = half_bw;
  s.density = density;
  return sci(s);
}

MatrixSpec blockdiag_spec(index_t n, index_t block, double density) {
  MatrixSpec s;
  s.kind = MatrixSpec::Kind::kBlockDiag;
  s.id = "blkdiag-" + std::to_string(n) + "-b" + std::to_string(block) +
         "-d" + std::to_string(static_cast<int>(density * 100));
  s.n = n;
  s.block = block;
  s.density = density;
  return sci(s);
}

MatrixSpec road_spec(index_t n) {
  MatrixSpec s;
  s.kind = MatrixSpec::Kind::kRoadLike;
  s.id = "road-" + std::to_string(n);
  s.n = n;
  return sci(s);
}

MatrixSpec sci_rgg(index_t n, double degree) {
  MatrixSpec s = rgg_spec(n, degree, 0);
  s.id = "sci-" + s.id;
  return sci(s);
}

MatrixSpec sci_rmat(RmatClass cls, index_t n, double degree) {
  MatrixSpec s = rmat_spec(cls, n, degree, 0);
  s.id = "sci-" + s.id;
  return sci(s);
}

}  // namespace

std::vector<MatrixSpec> sci_corpus() {
  std::vector<MatrixSpec> specs;

  // 2-D stencils: square and 2:1 grids (12 + 6 = 18).
  for (index_t nx : {32, 48, 64, 96, 128, 192, 256, 384}) {
    specs.push_back(stencil2d_spec(scaled(nx), scaled(nx), 5));
  }
  for (index_t nx : {64, 128, 256, 512}) {
    specs.push_back(stencil2d_spec(scaled(nx), scaled(nx / 2), 5));
  }
  for (index_t nx : {32, 64, 128, 256}) {
    specs.push_back(stencil2d_spec(scaled(nx), scaled(nx), 9));
  }
  for (index_t nx : {128, 256}) {
    specs.push_back(stencil2d_spec(scaled(nx), scaled(nx / 2), 9));
  }
  // Long, skinny grids (narrow-band structure, like 1-D PDE chains) (6).
  specs.push_back(stencil2d_spec(scaled(1024), scaled(64), 5));
  specs.push_back(stencil2d_spec(scaled(2048), scaled(32), 5));
  specs.push_back(stencil2d_spec(scaled(512), scaled(128), 5));
  specs.push_back(stencil2d_spec(scaled(640), scaled(160), 5));
  specs.push_back(stencil2d_spec(scaled(800), scaled(200), 5));
  specs.push_back(stencil2d_spec(scaled(256), scaled(64), 9));

  // 3-D stencils (6 + 4 = 10).
  for (index_t side : {8, 12, 16, 24, 32, 40}) {
    specs.push_back(stencil3d_spec(scaled(side), 7));
  }
  for (index_t side : {8, 12, 16, 24}) {
    specs.push_back(stencil3d_spec(scaled(side), 27));
  }

  // Banded systems (15 + 5 + 4 = 24).
  for (index_t n : {1024, 2048, 4096, 8192, 16384}) {
    for (index_t hb : {4, 16, 64}) {
      specs.push_back(banded_spec(scaled(n), hb, 0.5));
    }
  }
  for (index_t n : {1024, 2048, 4096, 8192, 16384}) {
    specs.push_back(banded_spec(scaled(n), 16, 0.9));
  }
  for (index_t n : {32768, 65536}) {
    for (index_t hb : {4, 16}) {
      specs.push_back(banded_spec(scaled(n), hb, 0.5));
    }
  }

  // Block-diagonal (9 + 3 + 2 = 14).
  for (index_t n : {1024, 4096, 16384}) {
    for (index_t blk : {16, 64, 256}) {
      specs.push_back(blockdiag_spec(scaled(n), blk, 0.3));
    }
  }
  for (index_t n : {1024, 4096, 16384}) {
    specs.push_back(blockdiag_spec(scaled(n), 64, 0.7));
  }
  specs.push_back(blockdiag_spec(scaled(65536), 64, 0.2));
  specs.push_back(blockdiag_spec(scaled(65536), 256, 0.2));

  // Road-like meshes (10).
  for (index_t n : {1024, 2048, 4096, 8192, 16384, 32768, 65536, 9216, 25600,
                    43264}) {
    specs.push_back(road_spec(scaled(n)));
  }

  // Spatial RGG (15 + 6 = 21).
  for (index_t n : {1024, 2048, 4096, 8192, 16384}) {
    for (double deg : {8.0, 16.0, 32.0}) {
      specs.push_back(sci_rgg(scaled(n), deg));
    }
  }
  for (index_t n : {32768, 65536}) {
    for (double deg : {8.0, 16.0, 32.0}) {
      specs.push_back(sci_rgg(scaled(n), deg));
    }
  }

  // The few web/social-like and low-skew graph matrices SuiteSparse does
  // contain (6 + 9 + 9 + 9 = 33).
  for (index_t n : {1024, 4096, 16384}) {
    for (double deg : {8.0, 16.0}) {
      specs.push_back(sci_rmat(RmatClass::kHighSkew, scaled(n), deg));
    }
  }
  for (RmatClass cls :
       {RmatClass::kLowSkew, RmatClass::kMedLoc, RmatClass::kHighLoc}) {
    for (index_t n : {1024, 4096, 16384}) {
      for (double deg : {4.0, 8.0, 16.0}) {
        specs.push_back(sci_rmat(cls, scaled(n), deg));
      }
    }
  }

  if (specs.size() != 136) {
    throw std::logic_error("sci_corpus: expected 136 specs, have " +
                           std::to_string(specs.size()));
  }
  return specs;
}

std::vector<MatrixSpec> random_corpus() {
  std::vector<MatrixSpec> specs;
  // Power-of-two sizes plus half-power sizes, mirroring the paper's use of
  // fractional scales (2^24.58 etc.) to densify the size axis.
  const std::vector<index_t> rows = {1024, 1448, 2048, 2896, 4096,
                                     5792, 8192, 11585, 16384, 23170};
  const std::vector<double> degrees = {4, 8, 16, 32, 64};

  for (RmatClass cls : {RmatClass::kHighSkew, RmatClass::kMedSkew,
                        RmatClass::kLowSkew, RmatClass::kLowLoc,
                        RmatClass::kMedLoc, RmatClass::kHighLoc}) {
    for (index_t n : rows) {
      for (double deg : degrees) {
        auto s = rmat_spec(cls, scaled(n), deg, 0);
        s.seed = spec_seed(s.id);
        specs.push_back(std::move(s));
      }
    }
  }
  for (index_t n : rows) {
    for (double deg : degrees) {
      auto s = rgg_spec(scaled(n), deg, 0);
      s.seed = spec_seed(s.id);
      specs.push_back(std::move(s));
    }
  }
  return specs;  // 6*50 + 50 = 350
}

std::vector<MatrixSpec> full_corpus() {
  std::vector<MatrixSpec> specs = sci_corpus();
  auto rnd = random_corpus();
  specs.insert(specs.end(), rnd.begin(), rnd.end());
  return specs;
}

std::vector<index_t> sweep_rows() {
  return {1024, 2048, 4096, 8192, 16384, 32768};
}

std::vector<double> sweep_degrees() { return {4, 8, 16, 32, 64, 128}; }

std::vector<MatrixSpec> sweep_grid(RmatClass cls) {
  std::vector<MatrixSpec> specs;
  for (index_t n : sweep_rows()) {
    for (double deg : sweep_degrees()) {
      auto s = rmat_spec(cls, scaled(n), deg, 0);
      s.id = "sweep-" + s.id;
      s.seed = spec_seed(s.id);
      specs.push_back(std::move(s));
    }
  }
  return specs;
}

}  // namespace wise
