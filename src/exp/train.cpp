#include "exp/train.hpp"

#include <stdexcept>

namespace wise {

ModelBank train_model_bank(const std::vector<MatrixRecord>& records,
                           const TreeParams& params) {
  if (records.empty()) {
    throw std::invalid_argument("train_model_bank: no records");
  }
  const auto configs = all_method_configs();
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> rel_times;
  features.reserve(records.size());
  rel_times.reserve(records.size());
  for (const auto& rec : records) {
    features.push_back(rec.features);
    std::vector<double> rel(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      rel[c] = rec.rel_time(c);
    }
    rel_times.push_back(std::move(rel));
  }
  ModelBank bank;
  bank.train(configs, features, rel_times, params);
  return bank;
}

}  // namespace wise
