#include "exp/train.hpp"

#include <stdexcept>

#include "hw/probe.hpp"

namespace wise {

ModelBank train_model_bank(const std::vector<MatrixRecord>& records,
                           const TreeParams& params) {
  if (records.empty()) {
    throw std::invalid_argument("train_model_bank: no records");
  }
  const auto configs = all_method_configs();
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> rel_times;
  features.reserve(records.size());
  rel_times.reserve(records.size());
  for (const auto& rec : records) {
    features.push_back(rec.features);
    std::vector<double> rel(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      rel[c] = rec.rel_time(c);
    }
    rel_times.push_back(std::move(rel));
  }
  ModelBank bank;
  bank.train(configs, features, rel_times, params);
  return bank;
}

ModelBank train_model_bank_conditioned(
    const std::vector<MatrixRecord>& records, const TreeParams& params) {
  if (records.empty()) {
    throw std::invalid_argument("train_model_bank_conditioned: no records");
  }
  const auto configs = all_method_configs();
  const std::vector<double> machine = hw::machine_features();
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> rel_times;
  features.reserve(records.size());
  rel_times.reserve(records.size());
  for (const auto& rec : records) {
    std::vector<double> f = rec.features;
    f.insert(f.end(), machine.begin(), machine.end());
    features.push_back(std::move(f));
    std::vector<double> rel(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      rel[c] = rec.rel_time(c);
    }
    rel_times.push_back(std::move(rel));
  }
  ModelBank bank;
  bank.train(configs, features, rel_times, params);
  return bank;
}

AmortizedWise train_amortized(const std::vector<MatrixRecord>& records,
                              const TreeParams& params) {
  if (records.empty()) {
    throw std::invalid_argument("train_amortized: no records");
  }
  const auto configs = all_method_configs();
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> rel_times;
  std::vector<std::vector<double>> prep_iters;
  features.reserve(records.size());
  rel_times.reserve(records.size());
  prep_iters.reserve(records.size());
  for (const auto& rec : records) {
    if (rec.config_prep_seconds.size() != configs.size()) {
      throw std::invalid_argument(
          "train_amortized: record '" + rec.id +
          "' carries no per-config prep times");
    }
    const double base = rec.best_csr_seconds();
    if (base <= 0.0) {
      throw std::invalid_argument("train_amortized: record '" + rec.id +
                                  "' has a non-positive CSR baseline");
    }
    features.push_back(rec.features);
    std::vector<double> rel(configs.size());
    std::vector<double> prep(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      rel[c] = rec.rel_time(c);
      prep[c] = rec.config_prep_seconds[c] / base;
    }
    rel_times.push_back(std::move(rel));
    prep_iters.push_back(std::move(prep));
  }
  AmortizedWise model;
  model.train(configs, features, rel_times, prep_iters, params);
  return model;
}

}  // namespace wise
