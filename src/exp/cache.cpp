#include "exp/cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <unordered_map>

#include "features/extractor.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace wise {

namespace {

std::string default_cache_path() {
  return data_dir() + "/measurements.csv";
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::vector<std::string> measurement_csv_header() {
  std::vector<std::string> h = {"id",  "family", "nrows",
                                "ncols", "nnz",  "feature_seconds",
                                "mkl_seconds"};
  for (const auto& name : feature_names()) h.push_back("f:" + name);
  for (const auto& cfg : all_method_configs()) h.push_back("t:" + cfg.name());
  for (const auto& cfg : all_method_configs()) h.push_back("p:" + cfg.name());
  return h;
}

std::vector<std::string> measurement_csv_row(const MatrixRecord& rec) {
  std::vector<std::string> row = {rec.id,
                                  rec.family,
                                  std::to_string(rec.nrows),
                                  std::to_string(rec.ncols),
                                  std::to_string(rec.nnz),
                                  num(rec.feature_seconds),
                                  num(rec.mkl_seconds)};
  for (double f : rec.features) row.push_back(num(f));
  for (double t : rec.config_seconds) row.push_back(num(t));
  for (double p : rec.config_prep_seconds) row.push_back(num(p));
  return row;
}

MatrixRecord measurement_from_csv_row(const std::vector<std::string>& fields) {
  const std::size_t nf = feature_count();
  const std::size_t nc = all_method_configs().size();
  if (fields.size() != 7 + nf + 2 * nc) {
    throw Error(ErrorCategory::kParse, "measurement CSV row: wrong width");
  }
  MatrixRecord rec;
  std::size_t i = 0;
  rec.id = fields[i++];
  rec.family = fields[i++];
  rec.nrows = static_cast<index_t>(std::stoll(fields[i++]));
  rec.ncols = static_cast<index_t>(std::stoll(fields[i++]));
  rec.nnz = std::stoll(fields[i++]);
  rec.feature_seconds = std::stod(fields[i++]);
  rec.mkl_seconds = std::stod(fields[i++]);
  rec.features.reserve(nf);
  for (std::size_t k = 0; k < nf; ++k) rec.features.push_back(std::stod(fields[i++]));
  rec.config_seconds.reserve(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    rec.config_seconds.push_back(std::stod(fields[i++]));
  }
  rec.config_prep_seconds.reserve(nc);
  for (std::size_t k = 0; k < nc; ++k) {
    rec.config_prep_seconds.push_back(std::stod(fields[i++]));
  }
  return rec;
}

MeasurementCache::MeasurementCache(std::string path)
    : path_(path.empty() ? default_cache_path() : std::move(path)) {}

void MeasurementCache::load() {
  loaded_ = true;
  records_.clear();
  if (env_flag("WISE_REFRESH", false)) {
    std::filesystem::remove(path_);
    return;
  }
  if (!std::filesystem::exists(path_)) return;
  const CsvTable table = read_csv(path_);
  if (table.header != measurement_csv_header()) {
    // Schema drift (e.g. config set changed): discard the stale cache.
    std::fprintf(stderr, "[cache] schema mismatch in %s; remeasuring\n",
                 path_.c_str());
    std::filesystem::remove(path_);
    return;
  }
  records_.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    records_.push_back(measurement_from_csv_row(row));
  }
}

void MeasurementCache::append(const MatrixRecord& rec) {
  // Crash-safe persistence: the cache file is always replaced whole, via a
  // uniquely-named temp file in the same directory followed by an atomic
  // rename. A killed run can leave at most a stale *.tmp behind — never a
  // truncated or half-written measurements.csv — and a concurrent run
  // renaming over ours loses (at most) our newest records, not the file's
  // integrity: readers only ever observe complete, parseable snapshots.
  if (!loaded_) load();
  ensure_dir(std::filesystem::path(path_).parent_path().string());
  const std::string tmp =
      path_ + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw Error(ErrorCategory::kResource, "cannot create cache: " + tmp,
                  {.file = tmp});
    }
    const auto write_row = [&out](const std::vector<std::string>& fields) {
      for (std::size_t i = 0; i < fields.size(); ++i) {
        out << (i ? "," : "") << fields[i];
      }
      out << '\n';
    };
    write_row(measurement_csv_header());
    for (const MatrixRecord& existing : records_) {
      write_row(measurement_csv_row(existing));
    }
    write_row(measurement_csv_row(rec));
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw Error(ErrorCategory::kResource, "cache write failed: " + tmp,
                  {.file = tmp});
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw Error(ErrorCategory::kResource,
                "cannot publish cache (rename " + tmp + "): " + ec.message(),
                {.file = path_});
  }
}

std::vector<MatrixRecord> MeasurementCache::get_or_measure(
    const std::vector<MatrixSpec>& specs, const MeasureOptions& opts) {
  if (!loaded_) load();

  std::unordered_map<std::string, std::size_t> by_id;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    by_id.emplace(records_[i].id, i);
  }

  std::size_t missing = 0;
  for (const auto& spec : specs) {
    if (!by_id.contains(spec.id)) ++missing;
  }
  if (missing > 0) {
    std::fprintf(stderr, "[cache] measuring %zu of %zu matrices...\n", missing,
                 specs.size());
  }

  std::vector<MatrixRecord> out;
  out.reserve(specs.size());
  std::size_t done = 0;
  for (const auto& spec : specs) {
    const auto it = by_id.find(spec.id);
    if (it != by_id.end()) {
      out.push_back(records_[it->second]);
      continue;
    }
    MatrixRecord rec = measure_matrix(spec, opts);
    append(rec);
    by_id.emplace(rec.id, records_.size());
    records_.push_back(rec);
    out.push_back(std::move(rec));
    ++done;
    if (done % 25 == 0) {
      std::fprintf(stderr, "[cache] %zu/%zu measured\n", done, missing);
    }
  }
  return out;
}

}  // namespace wise
