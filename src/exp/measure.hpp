#pragma once
// Measurement runner: times every configuration of the method space on one
// matrix and records everything the experiments need (features, per-config
// SpMV time, preprocessing time, MKL-baseline time).

#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "features/extractor.hpp"
#include "spmv/method.hpp"

namespace wise {

struct MeasureOptions {
  int iters = 3;    ///< minimum SpMV iterations per timing pass
  int repeats = 3;  ///< timing passes (minimum taken)
  /// Extraction settings for the recorded features / inspector time. The
  /// default runs the fused parallel extractor, so feature_seconds reflects
  /// the production decision cost.
  FeatureParams feature_params;
};

/// Everything measured for one matrix. config_* vectors are indexed in
/// all_method_configs() order.
struct MatrixRecord {
  std::string id;
  std::string family;
  index_t nrows = 0;
  index_t ncols = 0;
  nnz_t nnz = 0;

  std::vector<double> features;             ///< 67 WISE features
  double feature_seconds = 0;               ///< feature-extraction time
  double mkl_seconds = 0;                   ///< MKL stand-in per-iteration
  std::vector<double> config_seconds;       ///< per-iteration SpMV time
  std::vector<double> config_prep_seconds;  ///< layout-conversion time

  /// Fastest CSR scheduling time — the normalization baseline of §4.3.
  double best_csr_seconds() const;

  /// t_config / t_bestCSR for configuration index c.
  double rel_time(std::size_t c) const;

  /// Index (into all_method_configs()) of the fastest configuration.
  std::size_t best_config_index() const;
};

/// Materializes and measures one spec.
MatrixRecord measure_matrix(const MatrixSpec& spec,
                            const MeasureOptions& opts = {});

/// Measures an already-built matrix (id/family taken from the arguments).
MatrixRecord measure_matrix(const CsrMatrix& m, const std::string& id,
                            const std::string& family,
                            const MeasureOptions& opts = {});

}  // namespace wise
