#pragma once
// Declarative matrix specifications for the experiment corpus.
//
// A MatrixSpec is a small, serializable description from which a matrix can
// be rematerialized bit-identically (generator + parameters + seed). The
// measurement cache is keyed by spec id, so results survive across bench
// binaries and runs.

#include <cstdint>
#include <string>

#include "gen/generators.hpp"
#include "sparse/csr.hpp"

namespace wise {

struct MatrixSpec {
  enum class Kind {
    kRmat,
    kRgg,
    kBanded,
    kStencil2d,
    kStencil3d,
    kBlockDiag,
    kRoadLike,
  };

  std::string id;      ///< unique key, e.g. "rmat-HS-r4096-d16"
  std::string family;  ///< corpus grouping, e.g. "HS", "LL", "rgg", "sci"
  Kind kind = Kind::kRmat;

  index_t n = 0;          ///< rows (or grid nx for stencils)
  index_t n2 = 0;         ///< stencil ny
  index_t n3 = 0;         ///< stencil nz
  double degree = 0;      ///< target average nonzeros per row
  double density = 0;     ///< banded / block-diag fill density
  int points = 0;         ///< stencil points (5/9/7/27)
  index_t half_bw = 0;    ///< banded half bandwidth
  index_t block = 0;      ///< block-diag block size
  double a = 0, b = 0, c = 0, d = 0;  ///< RMAT quadrant probabilities
  std::uint64_t seed = 0;

  /// Generates the matrix. Deterministic.
  CsrMatrix materialize() const;
};

/// Convenience spec constructors used by the corpus builders.
MatrixSpec rmat_spec(RmatClass cls, index_t n, double degree,
                     std::uint64_t seed);
MatrixSpec rgg_spec(index_t n, double degree, std::uint64_t seed);

}  // namespace wise
