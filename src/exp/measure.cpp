#include "exp/measure.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "features/extractor.hpp"
#include "obs/metrics.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/executor.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace wise {

double MatrixRecord::best_csr_seconds() const {
  const auto configs = all_method_configs();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (configs[c].kind == MethodKind::kCsr) {
      best = std::min(best, config_seconds[c]);
    }
  }
  return best;
}

double MatrixRecord::rel_time(std::size_t c) const {
  return config_seconds[c] / best_csr_seconds();
}

std::size_t MatrixRecord::best_config_index() const {
  return static_cast<std::size_t>(
      std::min_element(config_seconds.begin(), config_seconds.end()) -
      config_seconds.begin());
}

MatrixRecord measure_matrix(const MatrixSpec& spec,
                            const MeasureOptions& opts) {
  return measure_matrix(spec.materialize(), spec.id, spec.family, opts);
}

MatrixRecord measure_matrix(const CsrMatrix& m, const std::string& id,
                            const std::string& family,
                            const MeasureOptions& opts) {
  obs::MetricsRegistry::global().add("exp.measure.matrices");
  MatrixRecord rec;
  rec.id = id;
  rec.family = family;
  rec.nrows = m.nrows();
  rec.ncols = m.ncols();
  rec.nnz = m.nnz();

  Timer t;
  {
    obs::ScopedTimer span("exp.measure.features");
    rec.features = extract_features(m, opts.feature_params).values;
  }
  rec.feature_seconds = t.seconds();

  aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
  aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  Xoshiro256 rng(0x5eedf00d);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());

  // Adaptive iteration count: small matrices finish one SpMV in a few
  // microseconds, where OS jitter would swamp a 3-iteration window. Scale
  // the per-pass iteration count so each timed window is >= ~4 ms.
  int iters = opts.iters;
  {
    spmv_csr_mkl_like(m, x, y);  // warm-up (also faults in x/y)
    Timer probe;
    spmv_csr_mkl_like(m, x, y);
    const double est = std::max(probe.seconds(), 1e-9);
    constexpr double kMinWindowSeconds = 4e-3;
    iters = std::clamp(static_cast<int>(kMinWindowSeconds / est) + 1,
                       opts.iters, 500);
  }

  // MKL stand-in baseline.
  {
    obs::ScopedTimer span("exp.measure.baseline");
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < opts.repeats; ++r) {
      Timer timer;
      for (int i = 0; i < iters; ++i) spmv_csr_mkl_like(m, x, y);
      best = std::min(best, timer.seconds() / iters);
    }
    rec.mkl_seconds = best;
  }

  obs::ScopedTimer span("exp.measure.configs");
  const auto configs = all_method_configs();
  rec.config_seconds.resize(configs.size());
  rec.config_prep_seconds.resize(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    PreparedMatrix pm = PreparedMatrix::prepare(m, configs[c]);
    rec.config_prep_seconds[c] = pm.prep_seconds();
    rec.config_seconds[c] = time_spmv(pm, x, y, iters, opts.repeats);
  }
  return rec;
}

}  // namespace wise
