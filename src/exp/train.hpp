#pragma once
// Convenience bridge from measured records to a trained WISE model bank.

#include <vector>

#include "exp/measure.hpp"
#include "wise/model_bank.hpp"

namespace wise {

/// Trains one decision tree per configuration from measured records.
ModelBank train_model_bank(const std::vector<MatrixRecord>& records,
                           const TreeParams& params = {});

}  // namespace wise
