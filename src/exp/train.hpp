#pragma once
// Convenience bridge from measured records to a trained WISE model bank.

#include <vector>

#include "exp/measure.hpp"
#include "wise/amortized.hpp"
#include "wise/model_bank.hpp"

namespace wise {

/// Trains one decision tree per configuration from measured records.
ModelBank train_model_bank(const std::vector<MatrixRecord>& records,
                           const TreeParams& params = {});

/// Same, but appends this machine's probe features (src/hw/probe.hpp) to
/// every record's feature vector before training, producing a
/// hardware-conditioned bank: feature_dim() = 67 + 5 and save() persists
/// the wider dimension (ModelBank v3). Wise::choose() completes inference
/// vectors with the serving machine's own probe, so a bank trained across
/// machines (concatenated record sets, each extended on its home machine)
/// can split on hardware columns. Honors WISE_HW_PROBE.
ModelBank train_model_bank_conditioned(
    const std::vector<MatrixRecord>& records, const TreeParams& params = {});

/// Trains the dual-model amortized selector (wise/amortized.hpp) from the
/// same records: speed trees from rel_time, prep trees from
/// config_prep_seconds normalized to best-CSR iterations. Records must
/// carry per-config prep times (measure_matrix fills them).
AmortizedWise train_amortized(const std::vector<MatrixRecord>& records,
                              const TreeParams& params = {});

}  // namespace wise
