#include "gen/generators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "util/prng.hpp"

namespace wise {

namespace {

value_t random_value(Xoshiro256& rng) {
  return static_cast<value_t>(0.5 + rng.next_double());
}

index_t round_up_pow2(index_t n) {
  if (n <= 1) return 1;
  return static_cast<index_t>(
      std::bit_ceil(static_cast<std::uint64_t>(n)));
}

}  // namespace

const char* rmat_class_name(RmatClass cls) {
  switch (cls) {
    case RmatClass::kHighSkew: return "HS";
    case RmatClass::kMedSkew: return "MS";
    case RmatClass::kLowSkew: return "LS";
    case RmatClass::kLowLoc: return "LL";
    case RmatClass::kMedLoc: return "ML";
    case RmatClass::kHighLoc: return "HL";
  }
  return "?";
}

RmatParams rmat_class_params(RmatClass cls, index_t n, double avg_degree) {
  RmatParams p;
  p.n = n;
  p.avg_degree = avg_degree;
  switch (cls) {  // Table 3 of the paper.
    case RmatClass::kHighSkew: p.a = 0.57; p.b = 0.19; p.c = 0.19; p.d = 0.05; break;
    case RmatClass::kMedSkew:  p.a = 0.46; p.b = 0.22; p.c = 0.22; p.d = 0.10; break;
    case RmatClass::kLowSkew:  p.a = 0.35; p.b = 0.25; p.c = 0.25; p.d = 0.15; break;
    case RmatClass::kLowLoc:   p.a = 0.25; p.b = 0.25; p.c = 0.25; p.d = 0.25; break;
    case RmatClass::kMedLoc:   p.a = 0.35; p.b = 0.15; p.c = 0.15; p.d = 0.35; break;
    case RmatClass::kHighLoc:  p.a = 0.45; p.b = 0.05; p.c = 0.05; p.d = 0.45; break;
  }
  return p;
}

CooMatrix generate_rmat(const RmatParams& params, std::uint64_t seed) {
  if (params.n <= 0 || params.avg_degree <= 0) {
    throw std::invalid_argument("generate_rmat: n and avg_degree must be > 0");
  }
  const double psum = params.a + params.b + params.c + params.d;
  if (std::abs(psum - 1.0) > 1e-6) {
    throw std::invalid_argument("generate_rmat: probabilities must sum to 1");
  }

  const index_t n = round_up_pow2(params.n);
  const int levels = std::countr_zero(static_cast<std::uint64_t>(n));
  const auto num_edges = static_cast<nnz_t>(
      static_cast<double>(params.n) * params.avg_degree);

  Xoshiro256 rng(seed);
  CooMatrix coo(params.n, params.n);
  coo.entries().reserve(static_cast<std::size_t>(num_edges));

  // Cumulative quadrant thresholds.
  const double t_a = params.a;
  const double t_ab = params.a + params.b;
  const double t_abc = params.a + params.b + params.c;

  for (nnz_t e = 0; e < num_edges; ++e) {
    index_t u = 0, v = 0;
    for (int level = 0; level < levels; ++level) {
      const double p = rng.next_double();
      const int rbit = p >= t_ab;                  // bottom half?
      const int cbit = (p >= t_a && p < t_ab) ||   // top-right
                       (p >= t_abc);               // bottom-right
      u = static_cast<index_t>((u << 1) | rbit);
      v = static_cast<index_t>((v << 1) | cbit);
    }
    // When params.n is not a power of two the recursion runs on the next
    // power and out-of-range edges are rejected (resampled).
    if (u >= params.n || v >= params.n) {
      --e;
      continue;
    }
    coo.add(u, v, random_value(rng));
  }
  coo.canonicalize();
  return coo;
}

CooMatrix generate_rgg(index_t n, double avg_degree, std::uint64_t seed) {
  if (n <= 0 || avg_degree <= 0) {
    throw std::invalid_argument("generate_rgg: n and avg_degree must be > 0");
  }
  const double r =
      std::sqrt(avg_degree / (static_cast<double>(n) * std::numbers::pi));

  Xoshiro256 rng(seed);
  struct Point {
    double x, y;
  };
  std::vector<Point> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) {
    p.x = rng.next_double();
    p.y = rng.next_double();
  }

  // Bucket grid with cell edge >= r: neighbors are within the 3x3 block.
  const auto cells = std::max<index_t>(
      1, static_cast<index_t>(std::floor(1.0 / std::max(r, 1e-9))));
  auto cell_of = [&](const Point& p) {
    auto cx = std::min<index_t>(cells - 1, static_cast<index_t>(p.x * cells));
    auto cy = std::min<index_t>(cells - 1, static_cast<index_t>(p.y * cells));
    return cy * cells + cx;
  };

  // Number vertices in spatial (cell-major) order: this is what gives RGG
  // matrices their near-diagonal structure.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return cell_of(pts[static_cast<std::size_t>(a)]) <
           cell_of(pts[static_cast<std::size_t>(b)]);
  });
  std::vector<Point> sorted(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    sorted[static_cast<std::size_t>(i)] =
        pts[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  }

  // Bucket index over sorted points.
  std::vector<std::vector<index_t>> buckets(
      static_cast<std::size_t>(cells * cells));
  for (index_t i = 0; i < n; ++i) {
    buckets[static_cast<std::size_t>(cell_of(sorted[static_cast<std::size_t>(i)]))]
        .push_back(i);
  }

  CooMatrix coo(n, n);
  const double r2 = r * r;
  for (index_t i = 0; i < n; ++i) {
    const auto& pi = sorted[static_cast<std::size_t>(i)];
    const auto cx = std::min<index_t>(cells - 1,
                                      static_cast<index_t>(pi.x * cells));
    const auto cy = std::min<index_t>(cells - 1,
                                      static_cast<index_t>(pi.y * cells));
    for (index_t dy = -1; dy <= 1; ++dy) {
      for (index_t dx = -1; dx <= 1; ++dx) {
        const index_t nx = cx + dx, ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (index_t j : buckets[static_cast<std::size_t>(ny * cells + nx)]) {
          if (j <= i) continue;  // emit each pair once, then mirror
          const auto& pj = sorted[static_cast<std::size_t>(j)];
          const double ddx = pi.x - pj.x, ddy = pi.y - pj.y;
          if (ddx * ddx + ddy * ddy <= r2) {
            const value_t v = random_value(rng);
            coo.add(i, j, v);
            coo.add(j, i, v);
          }
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

CooMatrix generate_banded(index_t n, index_t half_bandwidth, double density,
                          std::uint64_t seed) {
  if (n <= 0 || half_bandwidth < 0 || density < 0 || density > 1) {
    throw std::invalid_argument("generate_banded: bad parameters");
  }
  Xoshiro256 rng(seed);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, random_value(rng));  // always keep the diagonal
    const index_t lo = std::max<index_t>(0, i - half_bandwidth);
    const index_t hi = std::min<index_t>(n - 1, i + half_bandwidth);
    for (index_t j = lo; j <= hi; ++j) {
      if (j != i && rng.next_double() < density) {
        coo.add(i, j, random_value(rng));
      }
    }
  }
  coo.canonicalize();
  return coo;
}

CooMatrix generate_stencil2d(index_t nx, index_t ny, int points) {
  if (nx <= 0 || ny <= 0 || (points != 5 && points != 9)) {
    throw std::invalid_argument("generate_stencil2d: bad parameters");
  }
  const index_t n = nx * ny;
  CooMatrix coo(n, n);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t row = id(x, y);
      coo.add(row, row, static_cast<value_t>(points - 1));
      for (index_t dy = -1; dy <= 1; ++dy) {
        for (index_t dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          if (points == 5 && dx != 0 && dy != 0) continue;  // no diagonals
          const index_t xx = x + dx, yy = y + dy;
          if (xx < 0 || yy < 0 || xx >= nx || yy >= ny) continue;
          coo.add(row, id(xx, yy), value_t{-1});
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

CooMatrix generate_stencil3d(index_t nx, index_t ny, index_t nz, int points) {
  if (nx <= 0 || ny <= 0 || nz <= 0 || (points != 7 && points != 27)) {
    throw std::invalid_argument("generate_stencil3d: bad parameters");
  }
  const index_t n = nx * ny * nz;
  CooMatrix coo(n, n);
  auto id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = id(x, y, z);
        coo.add(row, row, static_cast<value_t>(points - 1));
        for (index_t dz = -1; dz <= 1; ++dz) {
          for (index_t dy = -1; dy <= 1; ++dy) {
            for (index_t dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              if (points == 7 && std::abs(dx) + std::abs(dy) + std::abs(dz) != 1) {
                continue;
              }
              const index_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || yy < 0 || zz < 0 || xx >= nx || yy >= ny ||
                  zz >= nz) {
                continue;
              }
              coo.add(row, id(xx, yy, zz), value_t{-1});
            }
          }
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

CooMatrix generate_block_diag(index_t n, index_t block_size, double density,
                              std::uint64_t seed) {
  if (n <= 0 || block_size <= 0 || density < 0 || density > 1) {
    throw std::invalid_argument("generate_block_diag: bad parameters");
  }
  Xoshiro256 rng(seed);
  CooMatrix coo(n, n);
  for (index_t base = 0; base < n; base += block_size) {
    const index_t end = std::min<index_t>(base + block_size, n);
    for (index_t i = base; i < end; ++i) {
      coo.add(i, i, random_value(rng));
      for (index_t j = base; j < end; ++j) {
        if (j != i && rng.next_double() < density) {
          coo.add(i, j, random_value(rng));
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

CooMatrix generate_road_like(index_t n, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("generate_road_like: n must be > 0");
  const auto side = static_cast<index_t>(
      std::max<double>(1.0, std::ceil(std::sqrt(static_cast<double>(n)))));
  Xoshiro256 rng(seed);
  CooMatrix coo(n, n);
  auto id = [side](index_t x, index_t y) { return y * side + x; };
  auto add_sym = [&](index_t a, index_t b) {
    const value_t v = random_value(rng);
    coo.add(a, b, v);
    coo.add(b, a, v);
  };
  constexpr double kKeepProb = 0.8;       // fraction of grid edges kept
  constexpr double kShortcutProb = 0.05;  // extra short-range links
  for (index_t y = 0; y < side; ++y) {
    for (index_t x = 0; x < side; ++x) {
      const index_t a = id(x, y);
      if (a >= n) continue;
      if (x + 1 < side && id(x + 1, y) < n && rng.next_double() < kKeepProb) {
        add_sym(a, id(x + 1, y));
      }
      if (y + 1 < side && id(x, y + 1) < n && rng.next_double() < kKeepProb) {
        add_sym(a, id(x, y + 1));
      }
      if (rng.next_double() < kShortcutProb) {
        // Shortcut to a vertex within a few grid steps — an overpass/ramp.
        const index_t ddx = static_cast<index_t>(rng.next_in(-3, 3));
        const index_t ddy = static_cast<index_t>(rng.next_in(-3, 3));
        const index_t xx = x + ddx, yy = y + ddy;
        if (xx >= 0 && yy >= 0 && xx < side && yy < side) {
          const index_t b = id(xx, yy);
          if (b < n && b != a) add_sym(a, b);
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

}  // namespace wise
