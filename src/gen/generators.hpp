#pragma once
// Synthetic sparse-matrix generators (paper §4.5).
//
// Two families:
//  * RMAT (Chakrabarti et al.) quadrant-recursive graphs — the paper's
//    source of skew- and locality-controlled matrices (Table 3) — and RGG
//    random geometric graphs for spatially-structured matrices.
//  * "Scientific-flavored" generators (banded systems, 2-D/3-D stencils,
//    block-diagonal, road-network-like meshes) standing in for the
//    SuiteSparse corpus, which is not available offline. The paper's own
//    analysis (§3 insight 5, Fig 7) characterizes SuiteSparse as mostly
//    low-skew matrices with row p-ratio > 0.4; these generators are chosen
//    to reproduce exactly those measured traits, which the fig07 bench
//    verifies.
//
// All generators are deterministic functions of their parameters and a
// 64-bit seed. Values are uniform in [0.5, 1.5) so no generated entry is
// zero and dot products do not systematically cancel.

#include <cstdint>

#include "sparse/coo.hpp"

namespace wise {

/// RMAT parameters: edges recurse into the four quadrants with
/// probabilities a (top-left), b (top-right), c (bottom-left), d
/// (bottom-right); a+b+c+d must be ~1.
struct RmatParams {
  index_t n = 1 << 12;       ///< rows == cols (rounded up to a power of 2)
  double avg_degree = 8.0;   ///< target nonzeros per row before dedup
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;  ///< Graph500 defaults
};

/// The paper's six RMAT classes (Table 3).
enum class RmatClass {
  kHighSkew,  ///< a=.57 b=.19 c=.19 d=.05  (P_R ≈ 0.1)
  kMedSkew,   ///< a=.46 b=.22 c=.22 d=.10  (P_R ≈ 0.2)
  kLowSkew,   ///< a=.35 b=.25 c=.25 d=.15  (P_R ≈ 0.3)
  kLowLoc,    ///< a=b=c=d=.25 (Erdos-Renyi)
  kMedLoc,    ///< a=d=.35 b=c=.15
  kHighLoc,   ///< a=d=.45 b=c=.05
};

const char* rmat_class_name(RmatClass cls);

/// Table 3 parameter presets.
RmatParams rmat_class_params(RmatClass cls, index_t n, double avg_degree);

/// Generates an RMAT matrix. Duplicate edges are merged (values summed), so
/// the realized nonzero count is slightly below n*avg_degree for skewed
/// parameter sets — matching Graph500 semantics.
CooMatrix generate_rmat(const RmatParams& params, std::uint64_t seed);

/// Random geometric graph on n vertices placed uniformly in the unit
/// square, connected when closer than r = sqrt(degree / (n * pi)).
/// Vertices are numbered in spatial (grid-cell) order, giving the high
/// nonzero locality the paper relies on (§4.5). Symmetric.
CooMatrix generate_rgg(index_t n, double avg_degree, std::uint64_t seed);

/// Banded matrix: each row has ~`density * (2*half_bandwidth+1)` nonzeros
/// uniformly placed within the band, plus the diagonal.
CooMatrix generate_banded(index_t n, index_t half_bandwidth, double density,
                          std::uint64_t seed);

/// 5- or 9-point 2-D Poisson stencil on an nx-by-ny grid (n = nx*ny rows).
CooMatrix generate_stencil2d(index_t nx, index_t ny, int points = 5);

/// 7- or 27-point 3-D stencil on an nx*ny*nz grid.
CooMatrix generate_stencil3d(index_t nx, index_t ny, index_t nz,
                             int points = 7);

/// Block-diagonal matrix with dense-ish blocks of `block_size` and the given
/// in-block density. Typical of multi-body scientific problems.
CooMatrix generate_block_diag(index_t n, index_t block_size, double density,
                              std::uint64_t seed);

/// Road-network-like planar mesh: a sqrt(n) x sqrt(n) 4-neighbor grid with
/// a fraction of edges deleted and a few short-range shortcuts added.
/// Low degree (2-4), high locality, like SuiteSparse road graphs. Symmetric.
CooMatrix generate_road_like(index_t n, std::uint64_t seed);

}  // namespace wise
