#pragma once
// Rendering backends for MetricsSnapshot, plus the WISE_METRICS env toggle.
//
// Three sinks cover the three consumers:
//   TableSink — pretty ASCII table for humans (reuses util/ascii_plot);
//   JsonSink  — schema-versioned JSON with stable key order, for CI and
//               cross-run diffing;
//   CsvSink   — one appended row per metric per flush, for long-running
//               processes that want a time series in a spreadsheet.
//
// Selection is driven by the WISE_METRICS environment variable:
//
//   WISE_METRICS=off           (default) registry disabled, zero cost
//   WISE_METRICS=table         enabled; emit an ASCII table to stdout
//   WISE_METRICS=json          enabled; emit JSON to stdout
//   WISE_METRICS=json:FILE     enabled; write JSON to FILE
//   WISE_METRICS=csv:FILE      enabled; append CSV rows to FILE
//
// CLI front ends call configure_metrics_from_env() once at startup and
// emit_metrics_from_env() once before exit. See docs/OBSERVABILITY.md.

#include <cstdio>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace wise::obs {

/// Version of the "wise-metrics" JSON schema emitted by metrics_to_json.
inline constexpr int kMetricsSchemaVersion = 1;

/// Renders the snapshot as aligned ASCII tables (timers in microseconds).
/// Empty snapshot renders as "(no metrics recorded)".
std::string render_metrics_table(const MetricsSnapshot& snap);

/// Schema-versioned JSON document with stable (sorted-by-name) row order:
/// { "schema": "wise-metrics", "version": 1,
///   "counters": [{"name","value"}...],
///   "gauges":   [{"name","value"}...],
///   "timers":   [{"name","count","total_ns","min_ns","mean_ns",
///                 "p50_ns","p95_ns","max_ns"}...] }
JsonValue metrics_to_json(const MetricsSnapshot& snap);

/// Abstract snapshot consumer.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void write(const MetricsSnapshot& snap) = 0;
};

/// ASCII table to a stdio stream (not owned).
class TableSink : public MetricsSink {
 public:
  explicit TableSink(std::FILE* out = stdout) : out_(out) {}
  void write(const MetricsSnapshot& snap) override;

 private:
  std::FILE* out_;
};

/// JSON document to a file (path non-empty) or a stdio stream.
class JsonSink : public MetricsSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}
  explicit JsonSink(std::FILE* out) : out_(out) {}
  void write(const MetricsSnapshot& snap) override;

 private:
  std::string path_;
  std::FILE* out_ = nullptr;
};

/// Appends one row per metric per write() to `path`, creating the file
/// (with a header) when absent. Columns:
///   run,name,kind,count,total_ns,min_ns,mean_ns,p50_ns,p95_ns,max_ns,value
/// `run` is a caller-chosen label (e.g. a git SHA) so successive flushes
/// from a long experiment stay distinguishable.
class CsvSink : public MetricsSink {
 public:
  explicit CsvSink(std::string path, std::string run_label = "");
  void write(const MetricsSnapshot& snap) override;

 private:
  std::string path_;
  std::string run_label_;
};

/// Parsed WISE_METRICS value.
struct MetricsConfig {
  enum class Mode { kOff, kTable, kJson, kCsv };
  Mode mode = Mode::kOff;
  std::string path;  ///< empty = stdout (table/json) — csv requires a path
};

/// Parses a WISE_METRICS-style string ("off", "table", "json", "json:f",
/// "csv:f"). Unknown modes fall back to kOff.
MetricsConfig parse_metrics_config(const std::string& value);

/// Reads WISE_METRICS from the environment.
MetricsConfig metrics_config_from_env();

/// Enables/disables the global registry per WISE_METRICS. Returns the
/// parsed config so callers can branch on the mode.
MetricsConfig configure_metrics_from_env();

/// Snapshots the global registry and emits it through the sink WISE_METRICS
/// selects. Returns false (emitting nothing) when metrics are off or the
/// snapshot is empty. `table_out` overrides the stream used for table mode.
bool emit_metrics_from_env(std::FILE* table_out = stdout);

}  // namespace wise::obs
