#include "obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>

#include <omp.h>

#include "obs/sink.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace wise::obs {

TimingSummary TimingSummary::from_samples(
    const std::vector<double>& pass_seconds, int iters_per_pass) {
  TimingSummary s;
  s.iters = iters_per_pass;
  if (pass_seconds.empty()) return s;
  s.min_seconds = std::numeric_limits<double>::infinity();
  s.max_seconds = 0;
  double sum = 0;
  for (const double v : pass_seconds) {
    s.min_seconds = std::min(s.min_seconds, v);
    s.max_seconds = std::max(s.max_seconds, v);
    sum += v;
  }
  s.mean_seconds = sum / static_cast<double>(pass_seconds.size());
  return s;
}

std::string bench_git_sha() {
  std::string sha = env_string("WISE_GIT_SHA", "");
  if (sha.empty()) sha = env_string("GITHUB_SHA", "");
  if (sha.empty()) sha = "local";
  if (sha.size() > 12) sha.resize(12);
  for (char& c : sha) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '-';
  }
  return sha;
}

BenchReport::BenchReport(std::string suite, std::string git_sha)
    : suite_(std::move(suite)), git_sha_(std::move(git_sha)) {
  if (git_sha_.empty()) git_sha_ = bench_git_sha();
}

void BenchReport::add(const std::string& group, const std::string& name,
                      const TimingSummary& timing, JsonValue params) {
  if (!params.is_object()) {
    throw std::invalid_argument("BenchReport::add: params must be an object");
  }
  JsonValue row = JsonValue::object();
  row.set("group", group);
  row.set("name", name);
  row.set("iters", static_cast<std::int64_t>(timing.iters));
  row.set("params", std::move(params));
  JsonValue seconds = JsonValue::object();
  seconds.set("min", timing.min_seconds);
  seconds.set("mean", timing.mean_seconds);
  seconds.set("max", timing.max_seconds);
  row.set("seconds", std::move(seconds));
  benchmarks_.push_back(std::move(row));
}

void BenchReport::set_metrics(const MetricsSnapshot& snap) {
  metrics_ = metrics_to_json(snap);
  has_metrics_ = true;
}

JsonValue BenchReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "wise-bench-report");
  doc.set("version", kBenchReportSchemaVersion);
  doc.set("suite", suite_);
  doc.set("git_sha", git_sha_);
  doc.set("omp_max_threads", static_cast<std::int64_t>(omp_get_max_threads()));
  JsonValue rows = JsonValue::array();
  for (const auto& b : benchmarks_) rows.push_back(b);
  doc.set("benchmarks", std::move(rows));
  doc.set("metrics", has_metrics_ ? metrics_ : JsonValue::object());
  return doc;
}

std::string BenchReport::file_name() const {
  return "BENCH_" + git_sha_ + ".json";
}

std::string BenchReport::write(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  const std::string path =
      (std::filesystem::path(dir) / file_name()).string();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw Error(ErrorCategory::kResource, "cannot open for writing",
                {.file = path});
  }
  out << to_json().dump() << "\n";
  if (!out.flush()) {
    throw Error(ErrorCategory::kResource, "write failed", {.file = path});
  }
  return path;
}

}  // namespace wise::obs
