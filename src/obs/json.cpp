#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace wise::obs {

namespace {

constexpr int kMaxDepth = 64;

void append_codepoint_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return false;
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (true) {
      if (eof()) return false;
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) return false;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (!consume('\\') || !consume('u')) return false;
            std::uint32_t lo;
            if (!parse_hex4(lo) || lo < 0xDC00 || lo > 0xDFFF) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          append_codepoint_utf8(out, cp);
          break;
        }
        default: return false;
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          out = JsonValue(static_cast<std::int64_t>(v));
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          out = JsonValue(static_cast<std::uint64_t>(v));
          return true;
        }
      }
      // fall through to double on overflow
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out = JsonValue(d);
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{': {
        ++pos_;
        out = JsonValue::object();
        skip_ws();
        if (consume('}')) return true;
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          skip_ws();
          JsonValue v;
          if (!parse_value(v, depth + 1)) return false;
          out.set(std::move(key), std::move(v));
          skip_ws();
          if (consume(',')) continue;
          return consume('}');
        }
      }
      case '[': {
        ++pos_;
        out = JsonValue::array();
        skip_ws();
        if (consume(']')) return true;
        while (true) {
          skip_ws();
          JsonValue v;
          if (!parse_value(v, depth + 1)) return false;
          out.push_back(std::move(v));
          skip_ws();
          if (consume(',')) continue;
          return consume(']');
        }
      }
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!consume_literal("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        out = JsonValue(false);
        return true;
      case 'n':
        if (!consume_literal("null")) return false;
        out = JsonValue();
        return true;
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kInt:
    case JsonValue::Type::kUint:
    case JsonValue::Type::kDouble: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

bool same_shape_rec(const JsonValue& golden, const JsonValue& actual,
                    const std::string& path, std::string* mismatch) {
  // All numeric representations are one JSON type.
  const bool both_numbers = golden.is_number() && actual.is_number();
  if (!both_numbers && golden.type() != actual.type()) {
    if (mismatch != nullptr) {
      *mismatch = path + ": expected " + type_name(golden.type()) + ", got " +
                  type_name(actual.type());
    }
    return false;
  }
  if (golden.is_object()) {
    if (golden.size() != actual.size()) {
      if (mismatch != nullptr) {
        *mismatch = path + ": expected " + std::to_string(golden.size()) +
                    " keys, got " + std::to_string(actual.size());
      }
      return false;
    }
    for (std::size_t i = 0; i < golden.members().size(); ++i) {
      const auto& [gk, gv] = golden.members()[i];
      const auto& [ak, av] = actual.members()[i];
      if (gk != ak) {
        if (mismatch != nullptr) {
          *mismatch = path + ": expected key '" + gk + "', got '" + ak + "'";
        }
        return false;
      }
      if (!same_shape_rec(gv, av, path + "." + gk, mismatch)) return false;
    }
    return true;
  }
  if (golden.is_array()) {
    if (golden.size() == 0) return true;  // any length/shape accepted
    for (std::size_t i = 0; i < actual.size(); ++i) {
      if (!same_shape_rec(golden.at(0), actual.at(i),
                          path + "[" + std::to_string(i) + "]", mismatch)) {
        return false;
      }
    }
    return true;
  }
  return true;  // scalar values are not compared
}

}  // namespace

JsonValue& JsonValue::push_back(JsonValue v) {
  if (type_ != Type::kArray) {
    throw std::logic_error("JsonValue::push_back on non-array");
  }
  array_.push_back(std::move(v));
  return array_.back();
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  if (type_ != Type::kObject) {
    throw std::logic_error("JsonValue::set on non-object");
  }
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return object_.back().second;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (type_ != Type::kArray) {
    throw std::logic_error("JsonValue::at on non-array");
  }
  return array_.at(i);
}

std::int64_t JsonValue::as_int() const {
  switch (type_) {
    case Type::kInt: return int_;
    case Type::kUint: return static_cast<std::int64_t>(uint_);
    case Type::kDouble: return static_cast<std::int64_t>(double_);
    default: return 0;
  }
}

std::uint64_t JsonValue::as_uint() const {
  switch (type_) {
    case Type::kInt: return static_cast<std::uint64_t>(int_);
    case Type::kUint: return uint_;
    case Type::kDouble: return static_cast<std::uint64_t>(double_);
    default: return 0;
  }
}

double JsonValue::as_double() const {
  switch (type_) {
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kDouble: return double_;
    default: return 0;
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kUint: out += std::to_string(uint_); break;
    case Type::kDouble: {
      if (!std::isfinite(double_)) {
        out += "null";
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      out += buf;
      break;
    }
    case Type::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(object_[i].first);
        out += "\": ";
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

bool json_same_shape(const JsonValue& golden, const JsonValue& actual,
                     std::string* mismatch) {
  return same_shape_rec(golden, actual, "$", mismatch);
}

}  // namespace wise::obs
