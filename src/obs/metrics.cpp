#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wise::obs {

namespace {

/// Bounded per-thread sample reservoir size. When full, every other sample
/// is dropped and the keep-stride doubles, so the reservoir stays an
/// evenly spaced, deterministic subsample of the full stream.
constexpr std::size_t kReservoirCap = 512;

/// Nearest-rank percentile of an already-sorted sample vector.
double percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return static_cast<double>(sorted[rank - 1]);
}

}  // namespace

const MetricsSnapshot::Timer* MetricsSnapshot::find_timer(
    std::string_view name) const {
  for (const auto& t : timers) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const MetricsSnapshot::Counter* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

struct MetricsRegistry::ThreadSlab {
  struct TimerAccum {
    std::uint64_t count = 0;
    std::uint64_t total = 0;
    std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max = 0;
    std::uint64_t seq = 0;     ///< samples seen, for stride decimation
    std::uint64_t stride = 1;  ///< keep every stride-th sample
    std::vector<std::uint64_t> samples;

    void record(std::uint64_t ns) {
      ++count;
      total += ns;
      min = std::min(min, ns);
      max = std::max(max, ns);
      if (seq % stride == 0) {
        samples.push_back(ns);
        if (samples.size() >= kReservoirCap) {
          // Halve: keep every other retained sample, double the stride.
          std::size_t w = 0;
          for (std::size_t r = 0; r < samples.size(); r += 2) {
            samples[w++] = samples[r];
          }
          samples.resize(w);
          stride *= 2;
        }
      }
      ++seq;
    }

    void clear() {
      count = total = max = seq = 0;
      min = std::numeric_limits<std::uint64_t>::max();
      stride = 1;
      samples.clear();
    }
  };

  std::mutex m;  ///< uncontended on the hot path (owning thread only)
  std::vector<std::uint64_t> counters;  ///< indexed by MetricId
  std::vector<TimerAccum> timers;       ///< indexed by MetricId
};

MetricsRegistry::MetricsRegistry() {
  static std::atomic<std::uint64_t> next_serial{1};
  serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: OpenMP workers may record during static teardown.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

MetricsRegistry::ThreadSlab& MetricsRegistry::slab() {
  // One-entry thread-local cache keyed by the registry's unique serial.
  // A miss (first use on this thread, or a different registry instance)
  // registers a fresh slab; the registry owns it, so nothing needs to
  // happen at thread exit and late-exiting OpenMP workers stay safe.
  thread_local std::uint64_t cached_serial = 0;
  thread_local ThreadSlab* cached_slab = nullptr;
  if (cached_serial != serial_) {
    std::lock_guard<std::mutex> lock(mutex_);
    slabs_.push_back(std::make_unique<ThreadSlab>());
    cached_slab = slabs_.back().get();
    cached_serial = serial_;
  }
  return *cached_slab;
}

MetricId MetricsRegistry::intern(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (names_[it->second].kind != kind) {
      throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                             "' re-interned with a different kind");
    }
    return it->second;
  }
  const MetricId id = static_cast<MetricId>(names_.size());
  names_.push_back({std::string(name), kind});
  gauges_.emplace_back(0.0, false);
  index_.emplace(std::string(name), id);
  return id;
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  if (!enabled() || id == kInvalidMetric) return;
  ThreadSlab& s = slab();
  std::lock_guard<std::mutex> lock(s.m);
  if (s.counters.size() <= id) s.counters.resize(id + 1, 0);
  s.counters[id] += delta;
}

void MetricsRegistry::record_ns(MetricId id, std::uint64_t ns) {
  if (!enabled() || id == kInvalidMetric) return;
  ThreadSlab& s = slab();
  std::lock_guard<std::mutex> lock(s.m);
  if (s.timers.size() <= id) s.timers.resize(id + 1);
  s.timers[id].record(ns);
}

void MetricsRegistry::set_gauge(MetricId id, double value) {
  if (!enabled() || id == kInvalidMetric) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < gauges_.size()) gauges_[id] = {value, true};
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  add(counter_id(name), delta);
}

void MetricsRegistry::record_ns(std::string_view name, std::uint64_t ns) {
  if (!enabled()) return;
  record_ns(timer_id(name), ns);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  if (!enabled()) return;
  set_gauge(gauge_id(name), value);
}

MetricsSnapshot MetricsRegistry::snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = names_.size();

  std::vector<std::uint64_t> counters(n, 0);
  std::vector<ThreadSlab::TimerAccum> timers(n);
  std::vector<std::vector<std::uint64_t>> samples(n);

  for (const auto& slab_ptr : slabs_) {
    ThreadSlab& s = *slab_ptr;
    std::lock_guard<std::mutex> slab_lock(s.m);
    for (std::size_t i = 0; i < s.counters.size(); ++i) {
      counters[i] += s.counters[i];
    }
    for (std::size_t i = 0; i < s.timers.size(); ++i) {
      const auto& t = s.timers[i];
      if (t.count == 0) continue;
      auto& dst = timers[i];
      dst.count += t.count;
      dst.total += t.total;
      dst.min = std::min(dst.min, t.min);
      dst.max = std::max(dst.max, t.max);
      samples[i].insert(samples[i].end(), t.samples.begin(), t.samples.end());
    }
  }

  MetricsSnapshot snap;
  for (std::size_t i = 0; i < n; ++i) {
    switch (names_[i].kind) {
      case MetricKind::kCounter:
        if (counters[i] != 0) {
          snap.counters.push_back({names_[i].name, counters[i]});
        }
        break;
      case MetricKind::kGauge:
        if (gauges_[i].second) {
          snap.gauges.push_back({names_[i].name, gauges_[i].first});
        }
        break;
      case MetricKind::kTimer: {
        const auto& t = timers[i];
        if (t.count == 0) break;
        TimerStats st;
        st.count = t.count;
        st.total_ns = t.total;
        st.min_ns = t.min;
        st.max_ns = t.max;
        st.mean_ns = static_cast<double>(t.total) / static_cast<double>(t.count);
        std::sort(samples[i].begin(), samples[i].end());
        st.p50_ns = percentile(samples[i], 0.50);
        st.p95_ns = percentile(samples[i], 0.95);
        snap.timers.push_back({names_[i].name, st});
        break;
      }
    }
  }

  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& slab_ptr : slabs_) {
    ThreadSlab& s = *slab_ptr;
    std::lock_guard<std::mutex> slab_lock(s.m);
    std::fill(s.counters.begin(), s.counters.end(), 0);
    for (auto& t : s.timers) t.clear();
  }
  for (auto& g : gauges_) g = {0.0, false};
}

}  // namespace wise::obs
