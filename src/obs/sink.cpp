#include "obs/sink.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/ascii_plot.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace wise::obs {

namespace {

std::string us(double ns) { return fmt(ns / 1e3, 3); }

void write_text_file(const std::string& path, const std::string& text) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw Error(ErrorCategory::kResource, "cannot open for writing",
                {.file = path});
  }
  out << text;
  if (!out.flush()) {
    throw Error(ErrorCategory::kResource, "write failed", {.file = path});
  }
}

}  // namespace

std::string render_metrics_table(const MetricsSnapshot& snap) {
  if (snap.empty()) return "(no metrics recorded)\n";
  std::string out;
  if (!snap.timers.empty()) {
    std::vector<std::string> rows;
    std::vector<std::vector<std::string>> cells;
    for (const auto& t : snap.timers) {
      rows.push_back(t.name);
      cells.push_back({std::to_string(t.stats.count),
                       fmt(static_cast<double>(t.stats.total_ns) / 1e6, 3),
                       us(static_cast<double>(t.stats.min_ns)),
                       us(t.stats.mean_ns), us(t.stats.p50_ns),
                       us(t.stats.p95_ns),
                       us(static_cast<double>(t.stats.max_ns))});
    }
    out += render_table({"count", "total ms", "min us", "mean us", "p50 us",
                         "p95 us", "max us"},
                        rows, cells, "timer");
  }
  if (!snap.counters.empty()) {
    std::vector<std::string> rows;
    std::vector<std::vector<std::string>> cells;
    for (const auto& c : snap.counters) {
      rows.push_back(c.name);
      cells.push_back({std::to_string(c.value)});
    }
    if (!out.empty()) out += "\n";
    out += render_table({"value"}, rows, cells, "counter");
  }
  if (!snap.gauges.empty()) {
    std::vector<std::string> rows;
    std::vector<std::vector<std::string>> cells;
    for (const auto& g : snap.gauges) {
      rows.push_back(g.name);
      cells.push_back({fmt(g.value, 6)});
    }
    if (!out.empty()) out += "\n";
    out += render_table({"value"}, rows, cells, "gauge");
  }
  return out;
}

JsonValue metrics_to_json(const MetricsSnapshot& snap) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "wise-metrics");
  doc.set("version", kMetricsSchemaVersion);

  JsonValue counters = JsonValue::array();
  for (const auto& c : snap.counters) {
    JsonValue row = JsonValue::object();
    row.set("name", c.name);
    row.set("value", c.value);
    counters.push_back(std::move(row));
  }
  doc.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::array();
  for (const auto& g : snap.gauges) {
    JsonValue row = JsonValue::object();
    row.set("name", g.name);
    row.set("value", g.value);
    gauges.push_back(std::move(row));
  }
  doc.set("gauges", std::move(gauges));

  JsonValue timers = JsonValue::array();
  for (const auto& t : snap.timers) {
    JsonValue row = JsonValue::object();
    row.set("name", t.name);
    row.set("count", t.stats.count);
    row.set("total_ns", t.stats.total_ns);
    row.set("min_ns", t.stats.min_ns);
    row.set("mean_ns", t.stats.mean_ns);
    row.set("p50_ns", t.stats.p50_ns);
    row.set("p95_ns", t.stats.p95_ns);
    row.set("max_ns", t.stats.max_ns);
    timers.push_back(std::move(row));
  }
  doc.set("timers", std::move(timers));
  return doc;
}

void TableSink::write(const MetricsSnapshot& snap) {
  const std::string text = render_metrics_table(snap);
  std::fputs(text.c_str(), out_);
}

void JsonSink::write(const MetricsSnapshot& snap) {
  const std::string text = metrics_to_json(snap).dump() + "\n";
  if (!path_.empty()) {
    write_text_file(path_, text);
  } else {
    std::fputs(text.c_str(), out_);
  }
}

CsvSink::CsvSink(std::string path, std::string run_label)
    : path_(std::move(path)), run_label_(std::move(run_label)) {
  if (path_.empty()) {
    throw std::invalid_argument("CsvSink: csv mode requires a file path");
  }
}

void CsvSink::write(const MetricsSnapshot& snap) {
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  const bool fresh = !std::filesystem::exists(path_) ||
                     std::filesystem::file_size(path_) == 0;
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    throw Error(ErrorCategory::kResource, "cannot open for append",
                {.file = path_});
  }
  if (fresh) {
    out << "run,name,kind,count,total_ns,min_ns,mean_ns,p50_ns,p95_ns,"
           "max_ns,value\n";
  }
  for (const auto& t : snap.timers) {
    out << run_label_ << ',' << t.name << ",timer," << t.stats.count << ','
        << t.stats.total_ns << ',' << t.stats.min_ns << ','
        << fmt(t.stats.mean_ns, 6) << ',' << fmt(t.stats.p50_ns, 6) << ','
        << fmt(t.stats.p95_ns, 6) << ',' << t.stats.max_ns << ",\n";
  }
  for (const auto& c : snap.counters) {
    out << run_label_ << ',' << c.name << ",counter,,,,,,,," << c.value
        << "\n";
  }
  for (const auto& g : snap.gauges) {
    out << run_label_ << ',' << g.name << ",gauge,,,,,,,," << fmt(g.value, 6)
        << "\n";
  }
  if (!out.flush()) {
    throw Error(ErrorCategory::kResource, "append failed", {.file = path_});
  }
}

MetricsConfig parse_metrics_config(const std::string& value) {
  MetricsConfig cfg;
  std::string mode = value;
  const std::size_t colon = value.find(':');
  if (colon != std::string::npos) {
    mode = value.substr(0, colon);
    cfg.path = value.substr(colon + 1);
  }
  if (mode == "table") {
    cfg.mode = MetricsConfig::Mode::kTable;
  } else if (mode == "json") {
    cfg.mode = MetricsConfig::Mode::kJson;
  } else if (mode == "csv") {
    cfg.mode = MetricsConfig::Mode::kCsv;
  } else {
    cfg.mode = MetricsConfig::Mode::kOff;  // "off", "", unknown
    cfg.path.clear();
  }
  return cfg;
}

MetricsConfig metrics_config_from_env() {
  return parse_metrics_config(env_string("WISE_METRICS", "off"));
}

MetricsConfig configure_metrics_from_env() {
  const MetricsConfig cfg = metrics_config_from_env();
  MetricsRegistry::global().set_enabled(cfg.mode != MetricsConfig::Mode::kOff);
  return cfg;
}

bool emit_metrics_from_env(std::FILE* table_out) {
  const MetricsConfig cfg = metrics_config_from_env();
  if (cfg.mode == MetricsConfig::Mode::kOff) return false;
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  if (snap.empty()) return false;
  switch (cfg.mode) {
    case MetricsConfig::Mode::kTable: {
      TableSink sink(table_out);
      sink.write(snap);
      break;
    }
    case MetricsConfig::Mode::kJson: {
      if (cfg.path.empty()) {
        JsonSink sink(table_out);
        sink.write(snap);
      } else {
        JsonSink sink(cfg.path);
        sink.write(snap);
      }
      break;
    }
    case MetricsConfig::Mode::kCsv: {
      CsvSink sink(cfg.path, env_string("WISE_GIT_SHA", "local"));
      sink.write(snap);
      break;
    }
    case MetricsConfig::Mode::kOff:
      return false;
  }
  return true;
}

}  // namespace wise::obs
