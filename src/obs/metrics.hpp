#pragma once
// Low-overhead metrics registry: counters, gauges, and nanosecond timers
// with per-stage scoped (RAII) spans.
//
// Design goals, in priority order:
//
//  1. Zero cost when disabled. Every hot-path entry point first reads one
//     relaxed atomic flag; with WISE_METRICS unset (or "off") no clock is
//     read, no string is interned, and no allocation happens.
//  2. Contention-free when enabled inside OpenMP regions. Samples
//     accumulate into per-thread slabs (one uncontended mutex each, taken
//     only by the owning thread on the hot path) and are merged on
//     snapshot(), so parallel instrumented loops never share a cache line.
//  3. Stable, machine-consumable output. snapshot() returns rows sorted by
//     metric name; the sinks in obs/sink.hpp render them as an ASCII
//     table, schema-versioned JSON, or CSV appends (see
//     docs/OBSERVABILITY.md for the catalog of metric names).
//
// Typical use:
//
//   void Wise::choose(...) {
//     obs::ScopedTimer t("wise.choose.feature");   // no-op when disabled
//     ...
//   }
//
// Hot kernels that cannot afford a by-name lookup resolve a MetricId once
// (obs::MetricsRegistry::global().timer_id("spmv.run.CSR/Dyn")) and record
// through it.
//
// Threading contract: record/add/set calls are safe from any thread at any
// time. snapshot() and reset() are safe concurrently with recording, but a
// snapshot taken while instrumented work is in flight sees a consistent
// prefix of each thread's samples, not a global cut.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wise::obs {

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = 0xffffffffu;

enum class MetricKind { kCounter, kGauge, kTimer };

/// Merged view of one timer: exact count/total/min/max plus percentiles
/// estimated from a bounded, deterministically decimated sample reservoir.
struct TimerStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  double mean_ns = 0;
  double p50_ns = 0;
  double p95_ns = 0;
};

/// Point-in-time merged view of the registry, rows sorted by name.
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0;
  };
  struct Timer {
    std::string name;
    TimerStats stats;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Timer> timers;

  bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty();
  }
  /// Pointer into `timers` for `name`, or nullptr.
  const Timer* find_timer(std::string_view name) const;
  const Counter* find_counter(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every library instrumentation point uses.
  /// Never destroyed (leaked on purpose) so OpenMP worker threads can
  /// record until the very end of the process without teardown races.
  static MetricsRegistry& global();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Interns `name` and returns its stable id. Idempotent; a name keeps its
  /// id for the registry's lifetime (reset() clears values, not names).
  /// Interning the same name with two different kinds throws
  /// std::logic_error — metric names are namespaced by convention
  /// ("<subsystem>.<stage>[.<detail>]"), not by kind.
  MetricId intern(std::string_view name, MetricKind kind);
  MetricId timer_id(std::string_view name) {
    return intern(name, MetricKind::kTimer);
  }
  MetricId counter_id(std::string_view name) {
    return intern(name, MetricKind::kCounter);
  }
  MetricId gauge_id(std::string_view name) {
    return intern(name, MetricKind::kGauge);
  }

  /// Hot-path record entry points. All are no-ops when disabled and ignore
  /// kInvalidMetric, so callers can cache ids unconditionally.
  void add(MetricId id, std::uint64_t delta = 1);
  void record_ns(MetricId id, std::uint64_t ns);
  void set_gauge(MetricId id, double value);

  /// By-name convenience (one interning lookup per call). No-ops — with no
  /// allocation — when disabled.
  void add(std::string_view name, std::uint64_t delta = 1);
  void record_ns(std::string_view name, std::uint64_t ns);
  void set_gauge(std::string_view name, double value);

  /// Merges every thread's slab into a sorted snapshot. Metrics that never
  /// recorded a value are omitted.
  MetricsSnapshot snapshot();

  /// Zeroes all recorded values (interned names keep their ids).
  void reset();

 private:
  struct ThreadSlab;
  ThreadSlab& slab();

  std::atomic<bool> enabled_{false};

  std::mutex mutex_;  ///< guards names_, ids_, slabs_, gauges_
  struct MetricInfo {
    std::string name;
    MetricKind kind;
  };
  std::vector<MetricInfo> names_;
  std::unordered_map<std::string, MetricId> index_;
  std::vector<std::pair<double, bool>> gauges_;  ///< value, has-been-set
  std::vector<std::unique_ptr<ThreadSlab>> slabs_;
  std::uint64_t serial_;  ///< unique per registry instance, for the TL cache
};

/// RAII span: records wall-clock nanoseconds into a timer metric on
/// destruction. When the registry is disabled at construction the object
/// does nothing at all — no clock read, no interning, no allocation.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name)
      : ScopedTimer(name, MetricsRegistry::global()) {}
  ScopedTimer(const char* name, MetricsRegistry& reg) {
    if (reg.enabled()) arm(reg.timer_id(name), reg);
  }
  /// For pre-interned hot paths.
  ScopedTimer(MetricId id, MetricsRegistry& reg) {
    if (reg.enabled() && id != kInvalidMetric) arm(id, reg);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (reg_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    reg_->record_ns(id_, static_cast<std::uint64_t>(ns));
  }

 private:
  void arm(MetricId id, MetricsRegistry& reg) {
    id_ = id;
    reg_ = &reg;
    start_ = std::chrono::steady_clock::now();
  }

  MetricsRegistry* reg_ = nullptr;
  MetricId id_ = kInvalidMetric;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wise::obs
