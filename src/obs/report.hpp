#pragma once
// BENCH_*.json report builder — the artifact the CI perf-smoke job uploads.
//
// A report is a schema-versioned JSON document ("wise-bench-report" v1)
// holding one row per benchmark plus an embedded wise-metrics snapshot, so
// a single file answers both "how fast was each suite entry" and "where did
// the pipeline spend its time". Key order is fixed by the builder (object
// insertion order), making reports byte-diffable across commits:
//
//   {
//     "schema": "wise-bench-report", "version": 1,
//     "suite": "perf_smoke", "git_sha": "<sha or 'local'>",
//     "omp_max_threads": N,
//     "benchmarks": [
//       { "group": "...", "name": "...", "iters": N,
//         "params": { ... },                       // caller-defined
//         "seconds": {"min":..,"mean":..,"max":..} }
//     ],
//     "metrics": { <wise-metrics document, see obs/sink.hpp> }
//   }
//
// The file name is BENCH_<git_sha>.json; the sha comes from WISE_GIT_SHA,
// then GITHUB_SHA, then "local" (first 12 characters, path-safe).

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace wise::obs {

inline constexpr int kBenchReportSchemaVersion = 1;

/// Aggregate of repeated timing passes of one benchmark.
struct TimingSummary {
  int iters = 0;  ///< inner iterations per timed pass
  double min_seconds = 0;
  double mean_seconds = 0;
  double max_seconds = 0;

  /// Min/mean/max over per-iteration seconds of each pass.
  static TimingSummary from_samples(const std::vector<double>& pass_seconds,
                                    int iters_per_pass);
};

/// Resolves the commit label for report file names: WISE_GIT_SHA, else
/// GITHUB_SHA, else "local"; truncated to 12 chars, non-alphanumerics
/// replaced with '-'.
std::string bench_git_sha();

class BenchReport {
 public:
  BenchReport(std::string suite, std::string git_sha);

  /// Appends one benchmark row. `params` must be a JSON object (defaults to
  /// empty); rows keep insertion order.
  void add(const std::string& group, const std::string& name,
           const TimingSummary& timing, JsonValue params = JsonValue::object());

  /// Embeds a metrics snapshot (replacing any previous one).
  void set_metrics(const MetricsSnapshot& snap);

  std::size_t size() const { return benchmarks_.size(); }
  const std::string& git_sha() const { return git_sha_; }

  JsonValue to_json() const;

  /// "BENCH_<git_sha>.json".
  std::string file_name() const;

  /// Writes to_json() under `dir` (created if missing) as file_name().
  /// Returns the full path written.
  std::string write(const std::string& dir) const;

 private:
  std::string suite_;
  std::string git_sha_;
  std::vector<JsonValue> benchmarks_;
  JsonValue metrics_ = JsonValue::object();
  bool has_metrics_ = false;
};

}  // namespace wise::obs
