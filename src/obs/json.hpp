#pragma once
// Minimal JSON document model for the observability layer.
//
// The repository deliberately carries no third-party JSON dependency; the
// metrics sinks need (a) a writer with *stable key order* so BENCH_*.json
// files diff cleanly across runs, and (b) a strict parser so tests and the
// CI perf-smoke gate can validate emitted reports without python. Objects
// preserve insertion order (the schema defines the order); duplicate keys
// overwrite. Numbers keep their integer-ness: values written as int64 or
// uint64 render without a decimal point and round-trip exactly.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wise::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(std::int64_t v) : type_(Type::kInt), int_(v) {}
  JsonValue(std::uint64_t v) : type_(Type::kUint), uint_(v) {}
  JsonValue(int v) : JsonValue(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue array() { return JsonValue(Type::kArray); }
  static JsonValue object() { return JsonValue(Type::kObject); }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }

  /// Appends to an array. Throws std::logic_error on non-arrays.
  JsonValue& push_back(JsonValue v);

  /// Sets an object member, preserving first-insertion order. Throws
  /// std::logic_error on non-objects.
  JsonValue& set(std::string key, JsonValue v);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  std::size_t size() const;  ///< elements (array) or members (object)
  const JsonValue& at(std::size_t i) const;  ///< array element
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;  ///< any numeric type, widened
  const std::string& as_string() const { return string_; }

  /// Serializes with 2-space indentation and "\n" line ends; object keys in
  /// insertion order. Non-finite doubles render as null (JSON has no inf).
  std::string dump(int indent = 2) const;

  /// Strict recursive-descent parse of a complete JSON document (trailing
  /// non-whitespace rejected). Returns nullopt on any syntax error.
  static std::optional<JsonValue> parse(std::string_view text);

 private:
  explicit JsonValue(Type t) : type_(t) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// True when `a` and `b` have the same *shape*: equal types, equal object
/// key sets (order-sensitive), and for arrays every element matching the
/// shape of the golden's first element (an empty golden array matches any).
/// Scalar values are ignored. Used by the BENCH_*.json golden-file test.
bool json_same_shape(const JsonValue& golden, const JsonValue& actual,
                     std::string* mismatch = nullptr);

}  // namespace wise::obs
