#include "graph/algorithms.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/semiring.hpp"

namespace wise {

CsrMatrix pagerank_transition(const CsrMatrix& adjacency) {
  CooMatrix coo(adjacency.ncols(), adjacency.nrows());
  coo.entries().reserve(static_cast<std::size_t>(adjacency.nnz()));
  for (index_t u = 0; u < adjacency.nrows(); ++u) {
    const auto cols = adjacency.row_cols(u);
    if (cols.empty()) continue;
    const auto w =
        static_cast<value_t>(1.0 / static_cast<double>(cols.size()));
    for (index_t v : cols) coo.add(v, u, w);
  }
  return CsrMatrix::from_coo(coo);
}

PageRankResult pagerank(const SpmvOperator& spmv, index_t n,
                        const PageRankOptions& opts) {
  if (n <= 0) throw std::invalid_argument("pagerank: n must be > 0");
  PageRankResult res;
  res.rank.assign(static_cast<std::size_t>(n),
                  static_cast<value_t>(1.0 / n));
  std::vector<value_t> next(static_cast<std::size_t>(n));

  for (res.iterations = 1; res.iterations <= opts.max_iterations;
       ++res.iterations) {
    spmv(res.rank, next);
    // Mass lost to dangling columns is redistributed uniformly along with
    // the teleport term.
    double sum = 0;
    for (value_t v : next) sum += v;
    const auto base =
        static_cast<value_t>((1.0 - opts.damping * sum) / n);
    double delta = 0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      const value_t updated =
          static_cast<value_t>(opts.damping) * next[i] + base;
      delta += std::abs(static_cast<double>(updated - res.rank[i]));
      res.rank[i] = updated;
    }
    if (delta < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  return res;
}

HitsResult hits(const SpmvOperator& spmv, const SpmvOperator& spmv_t,
                index_t n, double tolerance, int max_iterations) {
  if (n <= 0) throw std::invalid_argument("hits: n must be > 0");
  HitsResult res;
  res.hub.assign(static_cast<std::size_t>(n), 1.0);
  res.authority.assign(static_cast<std::size_t>(n), 1.0);
  std::vector<value_t> prev_auth(res.authority);

  auto normalize = [](std::vector<value_t>& v) {
    const double norm = blas::norm2(v);
    if (norm > 0) blas::scale(v, static_cast<value_t>(1.0 / norm));
  };
  normalize(res.hub);
  normalize(res.authority);

  for (res.iterations = 1; res.iterations <= max_iterations;
       ++res.iterations) {
    spmv_t(res.hub, res.authority);  // a = A^T h
    normalize(res.authority);
    spmv(res.authority, res.hub);    // h = A a
    normalize(res.hub);

    double delta = 0;
    for (std::size_t i = 0; i < prev_auth.size(); ++i) {
      delta += std::abs(
          static_cast<double>(res.authority[i] - prev_auth[i]));
    }
    prev_auth = res.authority;
    if (delta < tolerance) {
      res.converged = true;
      break;
    }
  }
  return res;
}

std::vector<index_t> bfs_levels(const CsrMatrix& adjacency, index_t source) {
  const index_t n = adjacency.nrows();
  if (source < 0 || source >= n) {
    throw std::invalid_argument("bfs_levels: source out of range");
  }
  if (adjacency.ncols() != n) {
    throw std::invalid_argument("bfs_levels: adjacency must be square");
  }
  // Frontier expansion via A^T over the boolean semiring: next = A^T f
  // restricted to unvisited vertices.
  const CsrMatrix at = adjacency.transpose();

  std::vector<index_t> level(static_cast<std::size_t>(n), -1);
  std::vector<value_t> frontier(static_cast<std::size_t>(n), 0);
  std::vector<value_t> next(static_cast<std::size_t>(n));
  level[static_cast<std::size_t>(source)] = 0;
  frontier[static_cast<std::size_t>(source)] = 1;

  for (index_t depth = 1; depth <= n; ++depth) {
    spmv_semiring<OrAnd>(at, frontier, next);
    bool any = false;
    for (index_t v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (next[vi] != 0 && level[vi] < 0) {
        level[vi] = depth;
        frontier[vi] = 1;
        any = true;
      } else {
        frontier[vi] = 0;
      }
    }
    if (!any) break;
  }
  return level;
}

std::vector<value_t> sssp(const CsrMatrix& adjacency, index_t source,
                          int max_iterations) {
  const index_t n = adjacency.nrows();
  if (source < 0 || source >= n) {
    throw std::invalid_argument("sssp: source out of range");
  }
  if (adjacency.ncols() != n) {
    throw std::invalid_argument("sssp: adjacency must be square");
  }
  if (max_iterations <= 0) max_iterations = n;

  // Bellman-Ford: dist' = min(dist, (A^T dist) over MinPlus). A^T because
  // relaxing edge (u,v) updates v from u.
  const CsrMatrix at = adjacency.transpose();
  std::vector<value_t> dist(static_cast<std::size_t>(n), MinPlus::zero());
  std::vector<value_t> relaxed(static_cast<std::size_t>(n));
  dist[static_cast<std::size_t>(source)] = 0;

  for (int it = 0; it < max_iterations; ++it) {
    spmv_semiring<MinPlus>(at, dist, relaxed);
    bool changed = false;
    for (std::size_t i = 0; i < dist.size(); ++i) {
      if (relaxed[i] < dist[i]) {
        dist[i] = relaxed[i];
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace wise
