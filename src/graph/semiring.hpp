#pragma once
// Semiring-generic SpMV.
//
// The paper positions WISE as an extension for GraphBLAS/BLAS frameworks
// (§1, §8). GraphBLAS generalizes y = A x over arbitrary semirings: graph
// kernels are SpMV with (+,*) replaced by other (add, multiply) pairs.
// This header provides the semiring concept and a parallel CSR SpMV
// templated over it; the graph algorithms (BFS, SSSP) build on these.
//
//   PlusTimes   — ordinary arithmetic: linear algebra, PageRank, HITS
//   MinPlus     — shortest paths (tropical semiring)
//   OrAnd       — boolean reachability / BFS frontiers

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>

#include "sparse/csr.hpp"
#include "spmv/schedule.hpp"

namespace wise {

/// Ordinary (+, *) semiring over value_t.
struct PlusTimes {
  using value_type = value_t;
  static constexpr value_type zero() { return 0; }
  static value_type add(value_type a, value_type b) { return a + b; }
  static value_type mul(value_type a, value_type b) { return a * b; }
};

/// Tropical (min, +) semiring: path relaxation.
struct MinPlus {
  using value_type = value_t;
  static constexpr value_type zero() {
    return std::numeric_limits<value_type>::infinity();
  }
  static value_type add(value_type a, value_type b) { return std::min(a, b); }
  static value_type mul(value_type a, value_type b) { return a + b; }
};

/// Boolean (or, and) semiring: reachability. Values are 0/1 in value_t.
struct OrAnd {
  using value_type = value_t;
  static constexpr value_type zero() { return 0; }
  static value_type add(value_type a, value_type b) {
    return (a != 0 || b != 0) ? value_type{1} : value_type{0};
  }
  static value_type mul(value_type a, value_type b) {
    return (a != 0 && b != 0) ? value_type{1} : value_type{0};
  }
};

/// y_i = add-reduction over j of mul(A_ij, x_j), with the semiring's zero
/// as the reduction identity. For PlusTimes this is exactly spmv_csr.
template <typename Semiring>
void spmv_semiring(const CsrMatrix& a,
                   std::span<const typename Semiring::value_type> x,
                   std::span<typename Semiring::value_type> y) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument("spmv_semiring: dimension mismatch");
  }
  const index_t n = a.nrows();
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const auto* xp = x.data();
  auto* yp = y.data();

#pragma omp parallel for schedule(dynamic, kScheduleGrainRows)
  for (index_t i = 0; i < n; ++i) {
    auto acc = Semiring::zero();
    for (nnz_t k = rp[i]; k < rp[i + 1]; ++k) {
      acc = Semiring::add(acc, Semiring::mul(va[k], xp[ci[k]]));
    }
    yp[i] = acc;
  }
}

}  // namespace wise
