#pragma once
// Graph algorithms expressed as iterated SpMV — the workloads the paper's
// introduction motivates (PageRank, HITS) plus the classic semiring pair
// (BFS over OrAnd, SSSP over MinPlus).
//
// PageRank and HITS accept a pluggable SpmvOperator so the inner products
// can run through a WISE-prepared matrix; BFS/SSSP use the semiring CSR
// kernel directly (their "multiplications" are not plain arithmetic).

#include <vector>

#include "solvers/solver_common.hpp"
#include "sparse/csr.hpp"

namespace wise {

/// Column-stochastic transition matrix M = A^T D_out^-1 of a directed
/// graph given by its adjacency matrix (row u lists u's out-edges).
/// Dangling vertices (no out-edges) produce zero columns; the iteration
/// renormalizes for them.
CsrMatrix pagerank_transition(const CsrMatrix& adjacency);

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-10;  ///< on the L1 change per iteration
  int max_iterations = 500;
};

struct PageRankResult {
  std::vector<value_t> rank;
  int iterations = 0;
  bool converged = false;
};

/// Power-method PageRank; `spmv` must apply the transition matrix from
/// pagerank_transition. n is the vertex count.
PageRankResult pagerank(const SpmvOperator& spmv, index_t n,
                        const PageRankOptions& opts = {});

struct HitsResult {
  std::vector<value_t> hub;
  std::vector<value_t> authority;
  int iterations = 0;
  bool converged = false;
};

/// HITS (Kleinberg): alternating hub/authority updates a = A^T h,
/// h = A a with 2-norm normalization. `spmv` applies A, `spmv_t` applies
/// A^T.
HitsResult hits(const SpmvOperator& spmv, const SpmvOperator& spmv_t,
                index_t n, double tolerance = 1e-10, int max_iterations = 500);

/// BFS levels from `source` using OrAnd-semiring frontier expansion over
/// A^T (so level k+1 = vertices reachable from the level-k frontier).
/// Unreached vertices get level -1.
std::vector<index_t> bfs_levels(const CsrMatrix& adjacency, index_t source);

/// Single-source shortest paths via MinPlus Bellman-Ford iteration
/// (edge weights must be non-negative for meaningful distances here).
/// Unreachable vertices get +infinity.
std::vector<value_t> sssp(const CsrMatrix& adjacency, index_t source,
                          int max_iterations = 0 /* 0 = #vertices */);

}  // namespace wise
