#pragma once
// Structural matrix fingerprints — the cache key of the serving layer.
//
// A fingerprint is an FNV-1a hash over a CSR matrix's identity: dimensions,
// row_ptr, and col_idx always; the value array optionally (structure alone
// is the right key for WISE, whose features and therefore choices are
// structure-driven, but RUN responses depend on values too). Hashing is a
// single linear pass over the index arrays — orders of magnitude cheaper
// than feature extraction, which is the whole point: a served matrix seen
// before skips straight to its cached choice/layout.
//
// Fingerprints are deterministic for a given matrix on a given platform
// (the hash covers the in-memory bytes of index_t/nnz_t arrays, so the
// value is endianness- and width-specific; it is a cache key, not a
// portable checksum). Equal fingerprints mean "treat as the same matrix";
// with 128 bits (structure + values) over FNV-1a, accidental collisions
// are negligible for serving purposes, and the golden test pins the
// algorithm so the values stay stable across refactors.

#include <cstdint>
#include <functional>
#include <string>

#include "sparse/csr.hpp"

namespace wise::serve {

struct Fingerprint {
  std::uint64_t structure = 0;  ///< dims + row_ptr + col_idx
  std::uint64_t values = 0;     ///< value bytes; 0 when not hashed
  bool has_values = false;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// "s:<16 hex>" or "s:<16 hex>/v:<16 hex>" — used in logs and the daemon
  /// protocol.
  std::string hex() const;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    // structure already mixes well; fold in the value hash.
    return static_cast<std::size_t>(fp.structure ^ (fp.values * 0x9e3779b97f4a7c15ull));
  }
};

/// FNV-1a over a byte range, continuing from `seed` (so multi-array hashes
/// chain). Exposed for tests and for hashing auxiliary request data.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/// Fingerprints `m`. With `include_values` the value array is hashed too
/// (needed when responses depend on numerics, e.g. RUN checksums).
Fingerprint fingerprint_matrix(const CsrMatrix& m, bool include_values = false);

}  // namespace wise::serve
