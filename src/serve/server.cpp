#include "serve/server.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "features/extractor.hpp"
#include "obs/metrics.hpp"
#include "solvers/solvers.hpp"
#include "spmv/plan.hpp"
#include "util/aligned.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/lru.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"
#include "wise/speedup_class.hpp"

namespace wise::serve {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

// Ids interned once per process (first Server construction). By-name
// metric calls go through the registry mutex; the request path records
// exclusively through these pre-interned ids, which only touch the calling
// thread's slab.
struct ServeMetricIds {
  obs::MetricId request_count;
  obs::MetricId reject_count;
  obs::MetricId expired_count;
  obs::MetricId degraded_count;
  obs::MetricId coalesced_count;
  obs::MetricId queue_wait;
  obs::MetricId request_service;
};

const ServeMetricIds& serve_metric_ids() {
  static const ServeMetricIds ids = [] {
    auto& metrics = obs::MetricsRegistry::global();
    ServeMetricIds out;
    out.request_count = metrics.counter_id("serve.request.count");
    out.reject_count = metrics.counter_id("serve.request.reject.count");
    out.expired_count = metrics.counter_id("serve.deadline.expired.count");
    out.degraded_count = metrics.counter_id("serve.degraded.count");
    out.coalesced_count = metrics.counter_id("serve.coalesced.count");
    out.queue_wait = metrics.timer_id("serve.queue.wait");
    out.request_service = metrics.timer_id("serve.request.service");
    return out;
  }();
  return ids;
}

Response error_response(const Request& req, ErrorCategory category,
                        std::string message) {
  Response rsp;
  rsp.id = req.id;
  rsp.ok = false;
  rsp.category = category;
  rsp.error = std::move(message);
  return rsp;
}

std::uint64_t record_since(obs::MetricId id,
                           std::chrono::steady_clock::time_point start) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  obs::MetricsRegistry::global().record_ns(id,
                                           static_cast<std::uint64_t>(ns));
  return static_cast<std::uint64_t>(ns);
}

/// Resolved shard count: explicit values round down to a power of two in
/// [1, 256]; auto (0) additionally caps at both hardware concurrency and
/// the worker count, so a workers=1 server stays a single shard with the
/// pre-sharding single-queue semantics.
int resolve_shards(const ServerOptions& o) {
  int s = o.shards;
  if (s <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    s = static_cast<int>(
        std::min<unsigned>(hw, static_cast<unsigned>(std::max(1, o.workers))));
  }
  s = std::clamp(s, 1, 256);
  int pow2 = 1;
  while (pow2 * 2 <= s) pow2 *= 2;
  return pow2;
}

/// split_budget share with a floor of 1 when the total is bounded: a 0
/// share would mean "unbounded" to the cache, inverting the budget. Only
/// fires in the pathological total < shards case (then the shard sum
/// exceeds the configured total by at most shards-1 units).
std::size_t bounded_share(std::size_t share, std::size_t total) {
  if (total == 0) return 0;  // unbounded stays unbounded on every shard
  return std::max<std::size_t>(1, share);
}

}  // namespace

ServerOptions ServerOptions::from_env() {
  ServerOptions o;
  o.workers = static_cast<int>(env_int("WISE_SERVE_WORKERS", o.workers));
  o.queue_capacity = static_cast<std::size_t>(
      env_int("WISE_SERVE_QUEUE", static_cast<std::int64_t>(o.queue_capacity)));
  const std::string overflow = env_string("WISE_SERVE_OVERFLOW", "block");
  if (overflow == "reject") {
    o.overflow = OverflowPolicy::kReject;
  } else if (overflow != "block") {
    throw Error(ErrorCategory::kValidation,
                "WISE_SERVE_OVERFLOW: expected 'block' or 'reject', got '" +
                    overflow + "'");
  }
  o.cache_bytes = static_cast<std::size_t>(env_int(
      "WISE_SERVE_CACHE_BYTES", static_cast<std::int64_t>(o.cache_bytes)));
  o.choice_entries = static_cast<std::size_t>(env_int(
      "WISE_SERVE_CHOICE_ENTRIES", static_cast<std::int64_t>(o.choice_entries)));
  o.fingerprint_values = env_flag("WISE_SERVE_HASH_VALUES", false);
  o.default_deadline =
      std::chrono::milliseconds(env_int("WISE_SERVE_DEADLINE_MS", 0));
  o.shards = static_cast<int>(env_int("WISE_SERVE_SHARDS", 0));
  return o;
}

Server::Server(std::shared_ptr<const Wise> predictor, ServerOptions options)
    : options_(options) {
  if (!predictor) {
    throw std::invalid_argument("serve::Server: null predictor");
  }
  bank_.store(new BankSlot{std::move(predictor), 1},
              std::memory_order_seq_cst);
  serve_metric_ids();  // intern before the first request can record

  const std::size_t n = static_cast<std::size_t>(resolve_shards(options_));
  options_.shards = static_cast<int>(n);

  // Every per-shard resource is a base + round-robin-remainder split of the
  // configured total (util/lru.hpp split_budget), so the shard sums match
  // the configuration exactly; worker/queue/entry shares are floored at 1
  // because those totals must stay positive per shard.
  const auto worker_shares = split_budget(
      static_cast<std::size_t>(std::max(1, options_.workers)), n);
  const auto queue_shares = split_budget(options_.queue_capacity, n);
  const auto choice_shares = split_budget(options_.choice_entries, n);
  const auto byte_shares = split_budget(options_.cache_bytes, n);

  shards_.reserve(n);
  int total_threads = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int workers =
        static_cast<int>(std::max<std::size_t>(1, worker_shares[i]));
    const std::size_t queue =
        options_.queue_capacity == 0
            ? 0
            : std::max<std::size_t>(1, queue_shares[i]);
    shards_.push_back(std::make_unique<Shard>(
        bounded_share(choice_shares[i], options_.choice_entries),
        bounded_share(byte_shares[i], options_.cache_bytes), workers, queue));
    total_threads += shards_.back()->pool->thread_count();
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.set_gauge("serve.workers", static_cast<double>(total_threads));
  metrics.set_gauge("serve.shards", static_cast<double>(n));
}

Server::~Server() {
  // Learners publish through this server and sample into it from worker
  // threads; stop them (joining their retrain threads) before the pools and
  // the bank slots go away.
  for (auto& l : learners_) {
    if (l) l->stop();
  }
  learner_raw_.store(nullptr, std::memory_order_release);
  shutdown(true);
  // Pools are joined: no reader can hold a pin into our slots anymore.
  delete bank_.load(std::memory_order_relaxed);
  for (auto& [slot, epoch] : retired_banks_) delete slot;
  retired_banks_.clear();
}

Server::BankSlot Server::acquire_bank() const {
  // Pin → load → copy: the copy of the shared_ptr happens while the pin
  // guarantees the slot is not freed; after that the shared_ptr itself
  // keeps the Wise alive regardless of slot reclamation.
  EpochDomain::Pin pin(EpochDomain::global());
  return *bank_.load(std::memory_order_seq_cst);
}

std::uint64_t Server::publish_bank(std::shared_ptr<const Wise> wise) {
  if (!wise) {
    throw std::invalid_argument("serve::Server::publish_bank: null bank");
  }
  std::lock_guard<std::mutex> lock(publish_mutex_);
  BankSlot* old = bank_.load(std::memory_order_seq_cst);
  auto* next = new BankSlot{std::move(wise), old->version + 1};
  bank_.store(next, std::memory_order_seq_cst);
  retired_banks_.emplace_back(old, EpochDomain::global().retire_epoch());

  // Reclaim every retired slot no pinned reader can still observe. Readers
  // that copied the shared_ptr before the swap keep serving the old bank —
  // only the slot shell is freed here.
  const std::uint64_t safe = EpochDomain::global().min_active();
  std::erase_if(retired_banks_, [safe](const auto& r) {
    if (safe < r.second) return false;
    delete r.first;
    return true;
  });

  // Cached choices and prepared entries embed the old bank's configurations;
  // drop them so post-swap traffic re-infers. In-flight RUNs keep their
  // entries alive through shared_ptr — nothing is interrupted.
  for (auto& shard : shards_) {
    shard->choice_cache.clear();
    shard->prepared_cache.clear();
  }
  obs::MetricsRegistry::global().set_gauge(
      "serve.bank.version", static_cast<double>(next->version));
  return next->version;
}

std::uint64_t Server::bank_version() const { return acquire_bank().version; }

std::shared_ptr<const Wise> Server::predictor() const {
  return acquire_bank().wise;
}

void Server::attach_learner(std::shared_ptr<learn::OnlineLearner> learner) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  if (!learner) {
    learner_raw_.store(nullptr, std::memory_order_release);
    return;
  }
  BankSlot* slot = bank_.load(std::memory_order_seq_cst);
  learner->bind(
      [this](std::shared_ptr<const Wise> candidate) {
        return publish_bank(std::move(candidate));
      },
      slot->wise, slot->version);
  learner->start();
  learners_.push_back(std::move(learner));
  learner_raw_.store(learners_.back().get(), std::memory_order_release);
}

std::shared_ptr<learn::OnlineLearner> Server::learner() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return learners_.empty() ? nullptr : learners_.back();
}

void Server::set_spmm_bank(std::shared_ptr<const spmm::SpmmBank> bank) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  spmm_bank_ = std::move(bank);
}

std::shared_ptr<const spmm::SpmmBank> Server::spmm_bank() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return spmm_bank_;
}

void Server::set_amortized(std::shared_ptr<const AmortizedWise> model) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  amortized_ = std::move(model);
}

std::shared_ptr<const AmortizedWise> Server::amortized() const {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  return amortized_;
}

std::size_t Server::shard_of(const Fingerprint& fp) const {
  // splitmix64-style finalizer over the fingerprint hash: home shards stay
  // uniform even when structure hashes share low bits (similar matrices).
  std::uint64_t z =
      static_cast<std::uint64_t>(FingerprintHash{}(fp)) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<std::size_t>(z & (shards_.size() - 1));
}

std::future<Response> Server::submit(Request req) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  auto& metrics = obs::MetricsRegistry::global();
  const auto& ids = serve_metric_ids();
  metrics.add(ids.request_count);

  // Fingerprinted requests go to their home shard (its caches and inflight
  // table live there); the rest round-robin across pools and re-home after
  // the worker hashes the matrix.
  Shard* shard =
      req.fingerprint.has_value()
          ? shards_[shard_of(*req.fingerprint)].get()
          : shards_[rr_.fetch_add(1, std::memory_order_relaxed) &
                    (shards_.size() - 1)]
                .get();

  if (!accepting_.load(std::memory_order_acquire)) {
    promise->set_value(error_response(req, ErrorCategory::kResource,
                                      "server is shutting down"));
    shard->counters.rejected.fetch_add(1, std::memory_order_relaxed);
    return future;
  }

  const auto enqueued = std::chrono::steady_clock::now();
  const auto deadline_ms =
      req.deadline.count() > 0 ? req.deadline : options_.default_deadline;
  const auto deadline =
      deadline_ms.count() > 0 ? enqueued + deadline_ms : kNoDeadline;

  const std::string id = req.id;
  auto task = [this, promise, shard, request = std::move(req), enqueued,
               deadline] {
    promise->set_value(process(*shard, request, enqueued, deadline));
  };

  const bool queued = options_.overflow == OverflowPolicy::kBlock
                          ? shard->pool->submit(task)
                          : shard->pool->try_submit(task);
  if (!queued) {
    metrics.add(ids.reject_count);
    // The rejected task was never enqueued but still owns a promise
    // reference; complete the request through our copy.
    Request rejected;
    rejected.id = id;
    promise->set_value(
        error_response(rejected, ErrorCategory::kResource,
                       options_.overflow == OverflowPolicy::kReject
                           ? "request queue is full"
                           : "server is shutting down"));
    shard->counters.rejected.fetch_add(1, std::memory_order_relaxed);
    return future;
  }
  shard->counters.accepted.fetch_add(1, std::memory_order_relaxed);
  return future;
}

Response Server::call(Request req) { return submit(std::move(req)).get(); }

void Server::shutdown(bool drain) {
  accepting_.store(false, std::memory_order_release);
  if (!drain) cancelled_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->pool->drain_and_stop();
}

std::size_t Server::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& shard : shards_) depth += shard->pool->queue_depth();
  return depth;
}

ServerStats Server::stats() const {
  ServerStats s;
  for (const auto& shard : shards_) {
    const ShardCounters& c = shard->counters;
    s.accepted += c.accepted.load(std::memory_order_relaxed);
    s.completed += c.completed.load(std::memory_order_relaxed);
    s.rejected += c.rejected.load(std::memory_order_relaxed);
    s.expired += c.expired.load(std::memory_order_relaxed);
    s.failed += c.failed.load(std::memory_order_relaxed);
    s.degraded += c.degraded.load(std::memory_order_relaxed);
    s.coalesced += c.coalesced.load(std::memory_order_relaxed);
    s.prepares += c.prepares.load(std::memory_order_relaxed);
    s.sampled += c.sampled.load(std::memory_order_relaxed);
    s.spmm_requests += c.spmm_requests.load(std::memory_order_relaxed);
    s.sessions_active += c.sessions_active.load(std::memory_order_relaxed);
    s.sessions_completed +=
        c.sessions_completed.load(std::memory_order_relaxed);
    s.session_iters += c.session_iters.load(std::memory_order_relaxed);
  }
  // Gauges refresh here, off the request path (stats() is the poll point).
  obs::MetricsRegistry::global().set_gauge(
      "serve.queue.depth", static_cast<double>(queue_depth()));
  return s;
}

CacheStats Server::cache_stats() const {
  CacheStats cs;
  for (const auto& shard : shards_) {
    cs.choice_hits += shard->choice_cache.hits();
    cs.choice_misses += shard->choice_cache.misses();
    cs.choice_entries += shard->choice_cache.size();
    cs.prepared_hits += shard->prepared_cache.hits();
    cs.prepared_misses += shard->prepared_cache.misses();
    cs.prepared_entries += shard->prepared_cache.size();
    cs.prepared_bytes += shard->prepared_cache.bytes();
    cs.evictions += shard->prepared_cache.evictions();
  }
  auto& metrics = obs::MetricsRegistry::global();
  metrics.set_gauge("serve.cache.bytes",
                    static_cast<double>(cs.prepared_bytes));
  metrics.set_gauge("serve.cache.entries",
                    static_cast<double>(cs.prepared_entries));
  return cs;
}

MethodConfig Server::cheapest_csr_config(const Wise& wise) {
  const auto& configs = wise.bank().configs();
  const MethodConfig* best = nullptr;
  for (const MethodConfig& cfg : configs) {
    if (cfg.kind != MethodKind::kCsr) continue;
    if (best == nullptr || cfg.selection_rank() < best->selection_rank()) {
      best = &cfg;
    }
  }
  return best != nullptr ? *best : MethodConfig{};
}

std::shared_ptr<PreparedEntry> Server::prepare_entry(Shard& home,
                                                     const Request& req,
                                                     const Fingerprint& fp,
                                                     WiseChoice& choice,
                                                     bool preset) {
  home.counters.prepares.fetch_add(1, std::memory_order_relaxed);
  const std::size_t shard_budget = home.prepared_cache.budget();
  const BankSlot slot = acquire_bank();
  // A preset choice (the SOLVE path's amortized selection) is converted
  // as-is; otherwise the bank chooses as part of prepare.
  PreparedMatrix pm = preset
                          ? PreparedMatrix::prepare(*req.matrix, choice.config)
                          : slot.wise->prepare(*req.matrix, choice);
  if (shard_budget > 0 && choice.config.kind != MethodKind::kCsr &&
      prepared_entry_bytes(*req.matrix, pm) > shard_budget) {
    // A layout that alone overflows its shard's prepared-cache budget would
    // evict the shard's whole working set and still not be cacheable: serve
    // it (and cache it) as the cheapest CSR variant instead.
    choice.config = cheapest_csr_config(*slot.wise);
    choice.predicted_class = 0;
    choice.fallback_reason =
        "serve: converted layout exceeds WISE_SERVE_CACHE_BYTES budget of " +
        std::to_string(shard_budget) + " bytes";
    pm = PreparedMatrix::prepare(*req.matrix, choice.config);
    obs::MetricsRegistry::global().add(serve_metric_ids().degraded_count);
    home.counters.degraded.fetch_add(1, std::memory_order_relaxed);
  }

  auto entry = std::make_shared<PreparedEntry>();
  entry->matrix = req.matrix;
  entry->choice = choice;
  entry->bytes = prepared_entry_bytes(*req.matrix, pm);
  entry->prepared = std::move(pm);
  entry->bank_version = slot.version;
  // An amortized (preset) choice answers "best for N iterations", not the
  // bank's N-agnostic PREDICT — keep it out of the choice tier.
  if (!preset) home.choice_cache.put(fp, choice);
  home.prepared_cache.put(fp, entry);
  return entry;
}

std::shared_ptr<PreparedEntry> Server::prepare_or_join(Shard& home,
                                                       const Request& req,
                                                       const Fingerprint& fp,
                                                       Response& rsp,
                                                       bool preset) {
  std::promise<std::shared_ptr<PreparedEntry>> my_promise;
  std::shared_future<std::shared_ptr<PreparedEntry>> fut;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(home.inflight_mutex);
    // Double-check under the inflight lock: a leader publishes to the cache
    // *before* erasing its inflight slot, so a request arriving between
    // those two steps (or between its own miss and this lock) finds the
    // entry here instead of preparing again.
    if (auto cached = home.prepared_cache.peek(fp)) {
      rsp.prepared_cache_hit = true;
      rsp.choice = cached->choice;
      return cached;
    }
    auto it = home.inflight.find(fp);
    if (it != home.inflight.end()) {
      fut = it->second;
    } else {
      fut = my_promise.get_future().share();
      home.inflight.emplace(fp, fut);
      leader = true;
    }
  }

  if (!leader) {
    // Join the in-flight prepare: park on the leader's future. The leader's
    // failure (if any) rethrows here and surfaces as this request's error.
    rsp.coalesced = true;
    home.counters.coalesced.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::global().add(serve_metric_ids().coalesced_count);
    std::shared_ptr<PreparedEntry> entry = fut.get();
    rsp.choice = entry->choice;
    return entry;
  }

  try {
    std::shared_ptr<PreparedEntry> entry =
        prepare_entry(home, req, fp, rsp.choice, preset);
    my_promise.set_value(entry);
    std::lock_guard<std::mutex> lock(home.inflight_mutex);
    home.inflight.erase(fp);
    return entry;
  } catch (...) {
    my_promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(home.inflight_mutex);
      home.inflight.erase(fp);
    }
    throw;
  }
}

Response Server::run_prepared(Shard& home, const Request& req, Response rsp,
                              const std::shared_ptr<PreparedEntry>& entry) {
  const CsrMatrix& m = *entry->matrix;
  // The input vector is a pure function of the fingerprint, so a RUN served
  // cold and a RUN served from cache compute bit-identical answers — the
  // property the determinism stress test asserts.
  aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
  aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  Xoshiro256 rng(0x517e5eedull ^ rsp.fingerprint.structure);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());

  const int iters = std::max(1, req.iters);
  {
    // Lock-free concurrent RUNs of one cached entry: everything a run
    // touches is immutable after prepare except the gather scratch buffer,
    // which each worker thread brings itself.
    static thread_local SrvWorkspace run_ws;
    Timer t;
    for (int i = 0; i < iters; ++i) entry->prepared.run(x, y, run_ws);
    rsp.spmv_seconds = t.seconds() / iters;
  }
  double sum = 0;
  for (const value_t v : y) sum += static_cast<double>(v);
  rsp.checksum = sum;

  // Online-learning tap: a sampled RUN additionally times the CSR baseline
  // on the same input, which turns (predicted class, measured relative
  // time) into a labeled observation. Gated by one atomic load when no
  // learner is attached.
  auto* lr = learner_raw_.load(std::memory_order_acquire);
  if (lr != nullptr && lr->should_sample()) {
    observe_run(home, req, rsp, entry, {x.data(), x.size()});
  }
  return rsp;
}

void Server::observe_run(Shard& home, const Request& req, const Response& rsp,
                         const std::shared_ptr<PreparedEntry>& entry,
                         std::span<const value_t> x) {
  auto* lr = learner_raw_.load(std::memory_order_acquire);
  if (lr == nullptr) return;
  // Fallback choices carry no feature vector (pipeline degraded before
  // inference) — there is nothing to retrain on.
  if (!entry->choice.features) return;
  try {
    const CsrMatrix& m = *entry->matrix;
    // Label against the same baseline the training pipeline uses: the
    // library-default CSR configuration, on the same input vector and
    // iteration count as the request itself.
    PreparedMatrix baseline = PreparedMatrix::prepare(m, MethodConfig{});
    aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
    static thread_local SrvWorkspace baseline_ws;
    const int iters = std::max(1, req.iters);
    Timer t;
    for (int i = 0; i < iters; ++i) baseline.run(x, y, baseline_ws);
    const double baseline_per_iter = t.seconds() / iters;
    if (baseline_per_iter <= 0.0) return;

    learn::Sample s;
    s.fingerprint = rsp.fingerprint.structure;
    s.bank_version = entry->bank_version;
    s.predicted_class = entry->choice.predicted_class;
    s.rel_time = rsp.spmv_seconds / baseline_per_iter;
    s.observed_class = classify_relative_time(s.rel_time);
    s.config_name = entry->choice.config.name();
    s.features = *entry->choice.features;
    lr->observe(s);
    home.counters.sampled.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Sampling rides on a successful request; it must never fail one.
  }
}

Response Server::process_spmm(Shard& home, const Request& req, Response rsp) {
  const CsrMatrix& m = *req.matrix;
  const index_t k = static_cast<index_t>(std::clamp(req.rhs_cols, 1, 64));
  const auto bank = spmm_bank();
  rsp.bank_version = bank_version();

  spmm::SpmmChoice choice;
  std::shared_ptr<const std::vector<double>> features;
  if (bank != nullptr && bank->trained()) {
    auto fv =
        std::make_shared<std::vector<double>>(extract_features(m).values);
    choice = bank->choose(*fv);
    features = std::move(fv);
    rsp.choice.predicted_class = choice.predicted_class;
  } else {
    choice.config = spmm::spmm_method_configs()[0];
    rsp.choice.fallback_reason =
        "spmm: no bank installed; serving the kb=1 baseline";
  }
  rsp.config_name = choice.config.name();

  // Seeded like kRun: the RHS is a pure function of the fingerprint, so
  // repeated SPMMs of one matrix are bit-identical at any shard count.
  aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()) *
                            static_cast<std::size_t>(k));
  aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()) *
                            static_cast<std::size_t>(k));
  Xoshiro256 rng(0x517e5eedull ^ rsp.fingerprint.structure);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());

  const int iters = std::max(1, req.iters);
  const SpmvPlan plan =
      build_csr_plan(m, choice.config.sched, omp_get_max_threads(), false);
  Timer t;
  for (int i = 0; i < iters; ++i) {
    spmm::spmm_csr(m, x, y, k, choice.config, plan);
  }
  rsp.spmv_seconds = t.seconds() / iters;
  double sum = 0;
  for (const value_t v : y) sum += static_cast<double>(v);
  rsp.checksum = sum;
  home.counters.spmm_requests.fetch_add(1, std::memory_order_relaxed);

  auto* lr = learner_raw_.load(std::memory_order_acquire);
  if (lr != nullptr && features != nullptr && lr->should_sample()) {
    observe_spmm(home, rsp, choice, features, m, x, y, k, iters,
                 rsp.spmv_seconds);
  }
  return rsp;
}

void Server::observe_spmm(
    Shard& home, const Response& rsp, const spmm::SpmmChoice& choice,
    const std::shared_ptr<const std::vector<double>>& features,
    const CsrMatrix& m, std::span<const value_t> x, std::span<value_t> y,
    index_t k, int iters, double chosen_per_iter) {
  auto* lr = learner_raw_.load(std::memory_order_acquire);
  if (lr == nullptr || features == nullptr) return;
  try {
    // Label against the SpMM training baseline: kb=1/Dyn, i.e. k repeated
    // plan-SpMVs, on the same RHS.
    const spmm::SpmmConfig& baseline = spmm::spmm_method_configs()[0];
    Timer t;
    for (int i = 0; i < iters; ++i) {
      spmm::spmm_csr(m, x, y, k, baseline);
    }
    const double baseline_per_iter = t.seconds() / iters;
    if (baseline_per_iter <= 0.0 || chosen_per_iter <= 0.0) return;

    learn::Sample s;
    s.fingerprint = rsp.fingerprint.structure;
    s.bank_version = rsp.bank_version;
    s.predicted_class = choice.predicted_class;
    s.rel_time = chosen_per_iter / baseline_per_iter;
    s.observed_class = classify_relative_time(s.rel_time);
    s.config_name = choice.config.name();
    s.features = *features;
    s.workload_class = static_cast<std::uint8_t>(learn::WorkloadClass::kSpmm);
    lr->observe(s);
    home.counters.sampled.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Sampling rides on a successful request; it must never fail one.
  }
}

Response Server::process_solve(Shard& home, const Request& req, Response rsp) {
  const CsrMatrix& m = *req.matrix;
  if (m.nrows() != m.ncols()) {
    throw Error(ErrorCategory::kValidation,
                "SOLVE requires a square matrix", {.stage = stage::kServe});
  }
  home.counters.sessions_active.fetch_add(1, std::memory_order_relaxed);
  struct ActiveGuard {
    std::atomic<std::uint64_t>& active;
    ~ActiveGuard() { active.fetch_sub(1, std::memory_order_relaxed); }
  } guard{home.counters.sessions_active};

  const int max_iters = std::max(1, req.iters);

  // Warm session: the layout a previous session (or RUN) prepared for this
  // fingerprint serves every iteration — no choose, no prepare. This cache
  // hit IS the amortization the solve-session perf stage measures.
  std::shared_ptr<PreparedEntry> entry =
      home.prepared_cache.get(rsp.fingerprint);
  if (entry != nullptr) {
    rsp.prepared_cache_hit = true;
    rsp.choice = entry->choice;
  } else {
    const auto model = amortized();
    bool preset = false;
    if (model != nullptr && model->trained()) {
      try {
        auto fv =
            std::make_shared<std::vector<double>>(extract_features(m).values);
        const AmortizedChoice ac =
            model->choose(*fv, static_cast<double>(max_iters));
        rsp.choice = WiseChoice{};
        rsp.choice.config = ac.config;
        rsp.choice.predicted_class = ac.speed_class;
        rsp.choice.features = std::move(fv);
        preset = true;
      } catch (const std::exception&) {
        preset = false;  // degrade to the bank's N-agnostic choose
      }
    }
    entry = prepare_or_join(home, req, rsp.fingerprint, rsp, preset);
  }
  rsp.bank_version = entry->bank_version;

  // Time each SpMV through the operator wrapper: the per-SpMV cost is what
  // the amortized model predicted, and what a sampled session is labeled
  // with (the solver's vector work is excluded from the label).
  static thread_local SrvWorkspace solve_ws;
  double spmv_total = 0;
  int spmv_calls = 0;
  const SpmvOperator op = [&](std::span<const value_t> vx,
                              std::span<value_t> vy) {
    Timer t;
    entry->prepared.run(vx, vy, solve_ws);
    spmv_total += t.seconds();
    ++spmv_calls;
  };

  // b is a pure function of the fingerprint (same seed family as kRun), so
  // a warm session reproduces a cold session's iterates bit for bit.
  aligned_vector<value_t> b(static_cast<std::size_t>(m.nrows()));
  Xoshiro256 rng(0x517e5eedull ^ rsp.fingerprint.structure);
  for (auto& v : b) v = static_cast<value_t>(rng.next_double());

  SolverOptions sopts;
  sopts.max_iterations = max_iters;
  SolverResult result;
  Timer solve_t;
  if (req.solver == "jacobi") {
    aligned_vector<value_t> diag(static_cast<std::size_t>(m.nrows()), 0.0);
    const nnz_t* rp = m.row_ptr().data();
    const index_t* ci = m.col_idx().data();
    const value_t* va = m.vals().data();
    for (index_t i = 0; i < m.nrows(); ++i) {
      for (nnz_t p = rp[i]; p < rp[i + 1]; ++p) {
        if (ci[p] == i) diag[static_cast<std::size_t>(i)] = va[p];
      }
    }
    result = solve_jacobi(op, diag, b, sopts);
  } else if (req.solver == "bicgstab") {
    result = solve_bicgstab(op, b, sopts);
  } else if (req.solver == "cg") {
    result = solve_cg(op, b, sopts);
  } else {
    throw Error(ErrorCategory::kValidation,
                "unknown solver '" + req.solver +
                    "' (expected cg, jacobi, or bicgstab)",
                {.stage = stage::kServe});
  }
  const double solve_seconds = solve_t.seconds();

  rsp.solve_iterations = result.iterations;
  rsp.residual_norm = result.residual_norm;
  rsp.converged = result.converged;
  rsp.spmv_seconds = result.iterations > 0
                         ? solve_seconds / result.iterations
                         : solve_seconds;
  double sum = 0;
  for (const value_t v : result.x) sum += static_cast<double>(v);
  rsp.checksum = sum;

  home.counters.sessions_completed.fetch_add(1, std::memory_order_relaxed);
  home.counters.session_iters.fetch_add(
      static_cast<std::uint64_t>(std::max(0, result.iterations)),
      std::memory_order_relaxed);

  auto* lr = learner_raw_.load(std::memory_order_acquire);
  if (lr != nullptr && spmv_calls > 0 && entry->choice.features != nullptr &&
      lr->should_sample()) {
    observe_session(home, rsp, entry, b, spmv_total / spmv_calls);
  }
  return rsp;
}

void Server::observe_session(Shard& home, const Response& rsp,
                             const std::shared_ptr<PreparedEntry>& entry,
                             std::span<const value_t> b,
                             double chosen_per_spmv) {
  auto* lr = learner_raw_.load(std::memory_order_acquire);
  if (lr == nullptr || entry->choice.features == nullptr) return;
  try {
    const CsrMatrix& m = *entry->matrix;
    PreparedMatrix baseline = PreparedMatrix::prepare(m, MethodConfig{});
    aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
    static thread_local SrvWorkspace baseline_ws;
    const int iters = std::clamp(rsp.solve_iterations, 1, 4);
    Timer t;
    for (int i = 0; i < iters; ++i) baseline.run(b, y, baseline_ws);
    const double baseline_per_iter = t.seconds() / iters;
    if (baseline_per_iter <= 0.0 || chosen_per_spmv <= 0.0) return;

    learn::Sample s;
    s.fingerprint = rsp.fingerprint.structure;
    s.bank_version = entry->bank_version;
    s.predicted_class = entry->choice.predicted_class;
    s.rel_time = chosen_per_spmv / baseline_per_iter;
    s.observed_class = classify_relative_time(s.rel_time);
    s.config_name = entry->choice.config.name();
    s.features = *entry->choice.features;
    s.workload_class =
        static_cast<std::uint8_t>(learn::WorkloadClass::kSession);
    lr->observe(s);
    home.counters.sampled.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Sampling rides on a successful request; it must never fail one.
  }
}

Response Server::process(Shard& exec, const Request& req,
                         std::chrono::steady_clock::time_point enqueued,
                         std::chrono::steady_clock::time_point deadline) {
  auto& metrics = obs::MetricsRegistry::global();
  const auto& ids = serve_metric_ids();
  const std::uint64_t wait_ns = record_since(ids.queue_wait, enqueued);

  Response rsp;
  const auto finish = [&](Response r) {
    r.queue_seconds = static_cast<double>(wait_ns) * 1e-9;
    exec.counters.completed.fetch_add(1, std::memory_order_relaxed);
    if (!r.ok) exec.counters.failed.fetch_add(1, std::memory_order_relaxed);
    return r;
  };

  if (cancelled_.load(std::memory_order_acquire)) {
    return finish(error_response(req, ErrorCategory::kResource,
                                 "server shut down before the request ran"));
  }
  if (deadline != kNoDeadline && std::chrono::steady_clock::now() > deadline) {
    metrics.add(ids.expired_count);
    exec.counters.expired.fetch_add(1, std::memory_order_relaxed);
    return finish(error_response(req, ErrorCategory::kResource,
                                 "deadline expired while queued"));
  }

  Timer service;
  try {
    obs::ScopedTimer span(ids.request_service, metrics);
    FaultInjector::global().maybe_throw(stage::kServe,
                                        ErrorCategory::kResource);
    if (!req.matrix) {
      throw Error(ErrorCategory::kValidation, "request carries no matrix",
                  {.stage = stage::kServe});
    }
    rsp.id = req.id;
    rsp.fingerprint =
        req.fingerprint.has_value()
            ? *req.fingerprint
            : fingerprint_matrix(*req.matrix, options_.fingerprint_values);
    // Per-fingerprint state always lives on the fingerprint's home shard —
    // for unfingerprinted requests that may differ from the pool that runs
    // the task, so resolve it from the hash just computed.
    Shard& home = *shards_[shard_of(rsp.fingerprint)];

    if (req.kind == RequestKind::kPredict) {
      if (auto cached = home.choice_cache.get(rsp.fingerprint)) {
        rsp.choice = *cached;
        rsp.choice_cache_hit = true;
        // Caches are cleared on publish, so a cached choice belongs to the
        // current bank (modulo a benign swap race: the entry was valid when
        // cached and the version is observability, not a correctness key).
        rsp.bank_version = bank_version();
      } else {
        const BankSlot slot = acquire_bank();
        rsp.choice = slot.wise->choose(*req.matrix);
        rsp.bank_version = slot.version;
        home.choice_cache.put(rsp.fingerprint, rsp.choice);
      }
    } else if (req.kind == RequestKind::kSpmm) {
      rsp = process_spmm(home, req, std::move(rsp));
    } else if (req.kind == RequestKind::kSolve) {
      rsp = process_solve(home, req, std::move(rsp));
    } else {
      std::shared_ptr<PreparedEntry> entry =
          home.prepared_cache.get(rsp.fingerprint);
      if (entry != nullptr) {
        rsp.prepared_cache_hit = true;
        rsp.choice = entry->choice;
      } else {
        entry = prepare_or_join(home, req, rsp.fingerprint, rsp);
      }
      rsp.bank_version = entry->bank_version;
      if (req.kind == RequestKind::kRun) {
        rsp = run_prepared(home, req, std::move(rsp), entry);
      }
    }
    // kSpmm names its SpmmConfig itself; everything else echoes the choice.
    if (rsp.config_name.empty()) {
      rsp.config_name = rsp.choice.config.name();
    }
    rsp.ok = true;
  } catch (const Error& e) {
    rsp = error_response(req, e.category(), e.what());
  } catch (const std::exception& e) {
    rsp = error_response(req, ErrorCategory::kResource, e.what());
  }
  rsp.service_seconds = service.seconds();
  return finish(std::move(rsp));
}

}  // namespace wise::serve
