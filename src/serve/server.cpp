#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/aligned.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace wise::serve {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

Response error_response(const Request& req, ErrorCategory category,
                        std::string message) {
  Response rsp;
  rsp.id = req.id;
  rsp.ok = false;
  rsp.category = category;
  rsp.error = std::move(message);
  return rsp;
}

std::uint64_t record_since(const char* name,
                           std::chrono::steady_clock::time_point start) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  obs::MetricsRegistry::global().record_ns(name,
                                           static_cast<std::uint64_t>(ns));
  return static_cast<std::uint64_t>(ns);
}

}  // namespace

ServerOptions ServerOptions::from_env() {
  ServerOptions o;
  o.workers = static_cast<int>(env_int("WISE_SERVE_WORKERS", o.workers));
  o.queue_capacity = static_cast<std::size_t>(
      env_int("WISE_SERVE_QUEUE", static_cast<std::int64_t>(o.queue_capacity)));
  const std::string overflow = env_string("WISE_SERVE_OVERFLOW", "block");
  if (overflow == "reject") {
    o.overflow = OverflowPolicy::kReject;
  } else if (overflow != "block") {
    throw Error(ErrorCategory::kValidation,
                "WISE_SERVE_OVERFLOW: expected 'block' or 'reject', got '" +
                    overflow + "'");
  }
  o.cache_bytes = static_cast<std::size_t>(env_int(
      "WISE_SERVE_CACHE_BYTES", static_cast<std::int64_t>(o.cache_bytes)));
  o.choice_entries = static_cast<std::size_t>(env_int(
      "WISE_SERVE_CHOICE_ENTRIES", static_cast<std::int64_t>(o.choice_entries)));
  o.fingerprint_values = env_flag("WISE_SERVE_HASH_VALUES", false);
  o.default_deadline =
      std::chrono::milliseconds(env_int("WISE_SERVE_DEADLINE_MS", 0));
  return o;
}

Server::Server(std::shared_ptr<const Wise> predictor, ServerOptions options)
    : wise_(std::move(predictor)),
      options_(options),
      choice_cache_(options.choice_entries),
      prepared_cache_(options.cache_bytes) {
  if (!wise_) {
    throw std::invalid_argument("serve::Server: null predictor");
  }
  pool_ = std::make_unique<ThreadPool>(options_.workers,
                                       options_.queue_capacity);
  obs::MetricsRegistry::global().set_gauge(
      "serve.workers", static_cast<double>(pool_->thread_count()));
}

Server::~Server() { shutdown(true); }

std::future<Response> Server::submit(Request req) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  auto& metrics = obs::MetricsRegistry::global();
  metrics.add("serve.request.count");

  if (!accepting_.load(std::memory_order_acquire)) {
    promise->set_value(error_response(req, ErrorCategory::kResource,
                                      "server is shutting down"));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    return future;
  }

  const auto enqueued = std::chrono::steady_clock::now();
  const auto deadline_ms =
      req.deadline.count() > 0 ? req.deadline : options_.default_deadline;
  const auto deadline =
      deadline_ms.count() > 0 ? enqueued + deadline_ms : kNoDeadline;

  const std::string id = req.id;
  auto task = [this, promise, request = std::move(req), enqueued, deadline] {
    promise->set_value(process(request, enqueued, deadline));
  };

  const bool queued = options_.overflow == OverflowPolicy::kBlock
                          ? pool_->submit(task)
                          : pool_->try_submit(task);
  if (!queued) {
    metrics.add("serve.request.reject.count");
    // The rejected task was never enqueued but still owns a promise
    // reference; complete the request through our copy.
    Request rejected;
    rejected.id = id;
    promise->set_value(
        error_response(rejected, ErrorCategory::kResource,
                       options_.overflow == OverflowPolicy::kReject
                           ? "request queue is full"
                           : "server is shutting down"));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    return future;
  }
  metrics.set_gauge("serve.queue.depth",
                    static_cast<double>(pool_->queue_depth()));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
  }
  return future;
}

Response Server::call(Request req) { return submit(std::move(req)).get(); }

void Server::shutdown(bool drain) {
  accepting_.store(false, std::memory_order_release);
  if (!drain) cancelled_.store(true, std::memory_order_release);
  pool_->drain_and_stop();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

CacheStats Server::cache_stats() const {
  CacheStats cs;
  cs.choice_hits = choice_cache_.hits();
  cs.choice_misses = choice_cache_.misses();
  cs.choice_entries = choice_cache_.size();
  cs.prepared_hits = prepared_cache_.hits();
  cs.prepared_misses = prepared_cache_.misses();
  cs.prepared_entries = prepared_cache_.size();
  cs.prepared_bytes = prepared_cache_.bytes();
  cs.evictions = prepared_cache_.evictions();
  return cs;
}

MethodConfig Server::cheapest_csr_config() const {
  const auto& configs = wise_->bank().configs();
  const MethodConfig* best = nullptr;
  for (const MethodConfig& cfg : configs) {
    if (cfg.kind != MethodKind::kCsr) continue;
    if (best == nullptr || cfg.selection_rank() < best->selection_rank()) {
      best = &cfg;
    }
  }
  return best != nullptr ? *best : MethodConfig{};
}

std::shared_ptr<PreparedEntry> Server::prepare_entry(const Request& req,
                                                     const Fingerprint& fp,
                                                     WiseChoice& choice) {
  PreparedMatrix pm = wise_->prepare(*req.matrix, choice);
  if (options_.cache_bytes > 0 && choice.config.kind != MethodKind::kCsr &&
      prepared_entry_bytes(*req.matrix, pm) > options_.cache_bytes) {
    // A layout that alone overflows the prepared-cache budget would evict
    // the whole working set and still not be cacheable: serve it (and cache
    // it) as the cheapest CSR variant instead.
    choice.config = cheapest_csr_config();
    choice.predicted_class = 0;
    choice.fallback_reason =
        "serve: converted layout exceeds WISE_SERVE_CACHE_BYTES budget of " +
        std::to_string(options_.cache_bytes) + " bytes";
    pm = PreparedMatrix::prepare(*req.matrix, choice.config);
    obs::MetricsRegistry::global().add("serve.degraded.count");
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.degraded;
  }

  auto entry = std::make_shared<PreparedEntry>();
  entry->matrix = req.matrix;
  entry->choice = choice;
  entry->bytes = prepared_entry_bytes(*req.matrix, pm);
  entry->prepared = std::move(pm);
  choice_cache_.put(fp, choice);
  prepared_cache_.put(fp, entry);
  return entry;
}

Response Server::run_prepared(const Request& req, Response rsp,
                              const std::shared_ptr<PreparedEntry>& entry) {
  const CsrMatrix& m = *entry->matrix;
  // The input vector is a pure function of the fingerprint, so a RUN served
  // cold and a RUN served from cache compute bit-identical answers — the
  // property the determinism stress test asserts.
  aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
  aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  Xoshiro256 rng(0x517e5eedull ^ rsp.fingerprint.structure);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());

  const int iters = std::max(1, req.iters);
  {
    // PreparedMatrix::run reuses a scratch workspace; concurrent RUNs of
    // one cached entry serialize here.
    std::lock_guard<std::mutex> lock(entry->run_mutex);
    Timer t;
    for (int i = 0; i < iters; ++i) entry->prepared.run(x, y);
    rsp.spmv_seconds = t.seconds() / iters;
  }
  double sum = 0;
  for (const value_t v : y) sum += static_cast<double>(v);
  rsp.checksum = sum;
  return rsp;
}

Response Server::process(const Request& req,
                         std::chrono::steady_clock::time_point enqueued,
                         std::chrono::steady_clock::time_point deadline) {
  auto& metrics = obs::MetricsRegistry::global();
  const std::uint64_t wait_ns = record_since("serve.queue.wait", enqueued);

  Response rsp;
  const auto finish = [&](Response r) {
    r.queue_seconds = static_cast<double>(wait_ns) * 1e-9;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.completed;
    if (!r.ok) ++stats_.failed;
    return r;
  };

  if (cancelled_.load(std::memory_order_acquire)) {
    return finish(error_response(req, ErrorCategory::kResource,
                                 "server shut down before the request ran"));
  }
  if (deadline != kNoDeadline && std::chrono::steady_clock::now() > deadline) {
    metrics.add("serve.deadline.expired.count");
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.expired;
    }
    return finish(error_response(req, ErrorCategory::kResource,
                                 "deadline expired while queued"));
  }

  Timer service;
  try {
    obs::ScopedTimer span("serve.request.service");
    FaultInjector::global().maybe_throw(stage::kServe,
                                        ErrorCategory::kResource);
    if (!req.matrix) {
      throw Error(ErrorCategory::kValidation, "request carries no matrix",
                  {.stage = stage::kServe});
    }
    rsp.id = req.id;
    rsp.fingerprint =
        req.fingerprint.has_value()
            ? *req.fingerprint
            : fingerprint_matrix(*req.matrix, options_.fingerprint_values);

    if (req.kind == RequestKind::kPredict) {
      if (auto cached = choice_cache_.get(rsp.fingerprint)) {
        rsp.choice = *cached;
        rsp.choice_cache_hit = true;
      } else {
        rsp.choice = wise_->choose(*req.matrix);
        choice_cache_.put(rsp.fingerprint, rsp.choice);
      }
    } else {
      std::shared_ptr<PreparedEntry> entry =
          prepared_cache_.get(rsp.fingerprint);
      if (entry != nullptr) {
        rsp.prepared_cache_hit = true;
        rsp.choice = entry->choice;
      } else {
        entry = prepare_entry(req, rsp.fingerprint, rsp.choice);
      }
      if (req.kind == RequestKind::kRun) {
        rsp = run_prepared(req, std::move(rsp), entry);
      }
    }
    rsp.config_name = rsp.choice.config.name();
    rsp.ok = true;
  } catch (const Error& e) {
    rsp = error_response(req, e.category(), e.what());
  } catch (const std::exception& e) {
    rsp = error_response(req, ErrorCategory::kResource, e.what());
  }
  rsp.service_seconds = service.seconds();
  return finish(std::move(rsp));
}

}  // namespace wise::serve
