#pragma once
// Concurrent prediction server — the long-lived, multi-tenant front half of
// the WISE pipeline (ROADMAP: "serves heavy traffic").
//
// A Server owns a fixed worker pool (util/thread_pool.hpp), a bounded
// request queue with an explicit backpressure policy, and the two-tier
// fingerprint cache (serve/cache.hpp). One shared, const wise::Wise does
// all prediction; Wise::choose/prepare are const-thread-safe (see
// wise/pipeline.hpp), so N workers share one ModelBank with no locking.
//
// Request lifecycle:
//   submit() fingerprints nothing and copies nothing — it enqueues the
//   request (shared_ptr to the matrix) and returns a std::future<Response>.
//   When the queue is full the overflow policy decides: kBlock parks the
//   caller until a slot frees; kReject completes the future immediately
//   with a kResource error. A worker that dequeues an expired request (its
//   deadline passed while queued) completes it with a kResource error
//   without doing the work — deadlines are admission control, not
//   preemption. shutdown(drain=true) stops intake and completes every
//   queued request; shutdown(drain=false) stops intake and completes queued
//   requests with a "shutting down" error (the work is skipped, the future
//   is still fulfilled — promises are never broken).
//
// Degradation: when a converted layout alone would overflow the prepared
// cache's byte budget, the server re-prepares with the bank's cheapest CSR
// configuration instead (fallback_reason "serve: ..."), mirroring the
// pipeline's degrade-don't-die contract. The "serve" fault-injection stage
// (WISE_FAULT_STAGES=serve) makes the overload error path deterministic in
// tests.
//
// Metrics (see docs/SERVING.md): serve.request.count/.reject/.expired,
// serve.degraded.count, serve.queue.wait + serve.request.service timers,
// serve.queue.depth gauge, and the serve.cache.* family from cache.hpp.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "serve/cache.hpp"
#include "serve/fingerprint.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wise/pipeline.hpp"

namespace wise::serve {

enum class RequestKind {
  kPredict,  ///< choose() only: selection + predicted class
  kPrepare,  ///< choose() + layout conversion, result cached
  kRun,      ///< kPrepare + `iters` SpMV iterations on a seeded vector
};

enum class OverflowPolicy {
  kBlock,   ///< submit() blocks until the queue has room
  kReject,  ///< submit() completes the future with a kResource error
};

struct ServerOptions {
  int workers = 4;
  std::size_t queue_capacity = 64;  ///< 0 = unbounded
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  std::size_t cache_bytes = 256u << 20;  ///< prepared-tier budget; 0 = unbounded
  std::size_t choice_entries = 1024;     ///< choice-tier entry cap
  bool fingerprint_values = false;  ///< hash values too (RUN-heavy loads)
  std::chrono::milliseconds default_deadline{0};  ///< 0 = none

  /// Reads WISE_SERVE_WORKERS, WISE_SERVE_QUEUE, WISE_SERVE_OVERFLOW
  /// (block|reject), WISE_SERVE_CACHE_BYTES, WISE_SERVE_CHOICE_ENTRIES,
  /// WISE_SERVE_HASH_VALUES, WISE_SERVE_DEADLINE_MS over these defaults.
  static ServerOptions from_env();
};

struct Request {
  RequestKind kind = RequestKind::kPredict;
  std::shared_ptr<const CsrMatrix> matrix;
  std::string id;  ///< caller tag (e.g. file path), echoed in the response
  int iters = 1;   ///< SpMV iterations for kRun
  /// Per-request deadline override; 0 uses ServerOptions::default_deadline.
  std::chrono::milliseconds deadline{0};
  /// Precomputed cache key, trusted verbatim. The hash is an O(nnz) pass,
  /// so callers that load a matrix once and send many requests against it
  /// (the daemon's loader, steady-state clients) compute it at load time;
  /// leave unset and the worker hashes per request.
  std::optional<Fingerprint> fingerprint;
};

struct Response {
  bool ok = false;
  std::string id;
  std::string error;  ///< empty when ok
  ErrorCategory category = ErrorCategory::kValidation;  ///< valid when !ok

  WiseChoice choice;        ///< selection outcome (kPredict/kPrepare/kRun)
  std::string config_name;  ///< choice.config.name()
  Fingerprint fingerprint;
  bool choice_cache_hit = false;
  bool prepared_cache_hit = false;

  double queue_seconds = 0;    ///< time spent waiting for a worker
  double service_seconds = 0;  ///< worker time (fingerprint → done)
  double spmv_seconds = 0;     ///< kRun: mean seconds per iteration
  double checksum = 0;         ///< kRun: sum of the final y (determinism)
};

/// Monotonic server counters (separate from the obs registry so STATS works
/// even with metrics disabled).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< queue-full rejections
  std::uint64_t expired = 0;   ///< deadline passed while queued
  std::uint64_t failed = 0;    ///< completed with !ok (incl. expired)
  std::uint64_t degraded = 0;  ///< serve-level CSR demotions
};

class Server {
 public:
  /// `predictor` is shared with the caller and must stay alive while the
  /// server runs; it is used strictly through const methods.
  explicit Server(std::shared_ptr<const Wise> predictor,
                  ServerOptions options = {});

  /// Drains and stops (shutdown(true)).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues `req` (see class comment for backpressure/deadline rules).
  /// The returned future is always eventually completed with a Response —
  /// rejections and shutdowns produce !ok responses, never exceptions.
  std::future<Response> submit(Request req);

  /// submit() + wait.
  Response call(Request req);

  /// Stops intake; with `drain` runs every queued request to completion,
  /// without it completes queued requests with a shutdown error. Idempotent.
  void shutdown(bool drain = true);

  ServerStats stats() const;
  CacheStats cache_stats() const;
  const ServerOptions& options() const { return options_; }
  std::size_t queue_depth() const { return pool_->queue_depth(); }

 private:
  Response process(const Request& req,
                   std::chrono::steady_clock::time_point enqueued,
                   std::chrono::steady_clock::time_point deadline);
  Response run_prepared(const Request& req, Response rsp,
                        const std::shared_ptr<PreparedEntry>& entry);
  std::shared_ptr<PreparedEntry> prepare_entry(const Request& req,
                                               const Fingerprint& fp,
                                               WiseChoice& choice);
  MethodConfig cheapest_csr_config() const;

  std::shared_ptr<const Wise> wise_;
  ServerOptions options_;
  ChoiceCache choice_cache_;
  PreparedCache prepared_cache_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> cancelled_{false};
  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace wise::serve
