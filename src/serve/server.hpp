#pragma once
// Concurrent prediction server — the long-lived, multi-tenant front half of
// the WISE pipeline (ROADMAP: "serves heavy traffic").
//
// The server is SHARDED: the fingerprint space is partitioned across N
// shards (N = WISE_SERVE_SHARDS, default: hardware concurrency rounded
// down to a power of two and capped by the worker count). Each shard owns
// its own slice of the serving state — a ChoiceCache, a byte-budgeted
// PreparedCache slice, a worker pool, and an in-flight prepare table — so
// independent hot matrices never touch each other's locks or cache lines.
// submit() routes a fingerprinted request to its home shard by mixing the
// fingerprint bits; requests without a precomputed fingerprint are
// round-robined across pools and re-homed to the owning shard's caches
// once the worker has hashed the matrix.
//
// Within a shard the warm path is lock-FREE, not merely lock-light: both
// cache tiers read through epoch-protected copy-on-write tables
// (util/epoch_lru.hpp), and cached entries execute SpMV through the
// const-thread-safe PreparedMatrix::run overload with a per-thread
// workspace — a warm PREDICT or RUN takes zero mutexes end to end. Server
// counters are per-shard relaxed atomics, aggregated only when stats() is
// called.
//
// Cold misses COALESCE: concurrent requests for the same not-yet-prepared
// fingerprint register on the shard's in-flight table and share one
// prepare — one leader converts the layout, the others park on a
// shared_future and reuse its entry (Response::coalesced). A stampede of
// K identical cold requests costs one conversion, not K.
//
// Request lifecycle:
//   submit() fingerprints nothing and copies nothing — it enqueues the
//   request (shared_ptr to the matrix) and returns a std::future<Response>.
//   When the home shard's queue is full the overflow policy decides: kBlock
//   parks the caller until a slot frees; kReject completes the future
//   immediately with a kResource error. A worker that dequeues an expired
//   request (its deadline passed while queued) completes it with a
//   kResource error without doing the work — deadlines are admission
//   control, not preemption. shutdown(drain=true) stops intake and
//   completes every queued request; shutdown(drain=false) stops intake and
//   completes queued requests with a "shutting down" error (the work is
//   skipped, the future is still fulfilled — promises are never broken).
//
// Degradation: when a converted layout alone would overflow its shard's
// prepared-cache byte budget, the server re-prepares with the bank's
// cheapest CSR configuration instead (fallback_reason "serve: ..."),
// mirroring the pipeline's degrade-don't-die contract. The "serve"
// fault-injection stage (WISE_FAULT_STAGES=serve) makes the overload error
// path deterministic in tests.
//
// Metrics (see docs/SERVING.md): serve.request.count/.reject/.expired,
// serve.degraded.count, serve.coalesced.count, serve.queue.wait +
// serve.request.service timers, the serve.cache.* family from cache.hpp,
// and the serve.shards/serve.workers/serve.queue.depth gauges (queue depth
// and cache gauges refresh on stats()/cache_stats(), keeping gauge writes
// off the request path).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "learn/online.hpp"
#include "serve/cache.hpp"
#include "serve/fingerprint.hpp"
#include "spmm/model.hpp"
#include "util/epoch.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "wise/amortized.hpp"
#include "wise/pipeline.hpp"

namespace wise::serve {

enum class RequestKind {
  kPredict,  ///< choose() only: selection + predicted class
  kPrepare,  ///< choose() + layout conversion, result cached
  kRun,      ///< kPrepare + `iters` SpMV iterations on a seeded vector
  /// Blocked SpMM on a seeded `rhs_cols`-column dense RHS, configuration
  /// chosen by the SpMM bank (set_spmm_bank; src/spmm/). Served from the
  /// CSR arrays directly — no prepared-cache entry — so only the choice is
  /// model work.
  kSpmm,
  /// One whole iterative solve (src/solvers/) as a single request: choose
  /// once with the amortized dual-model selector (set_amortized;
  /// src/wise/amortized.hpp) using `iters` as the expected iteration
  /// count, prepare once into the shard's prepared cache, then run every
  /// solver iteration on that layout. A warm session (fingerprint already
  /// prepared) skips choose AND prepare — the paper's "one-time selection,
  /// many iterations" amortization, measured by the solve-session perf
  /// stage.
  kSolve,
};

enum class OverflowPolicy {
  kBlock,   ///< submit() blocks until the queue has room
  kReject,  ///< submit() completes the future with a kResource error
};

struct ServerOptions {
  int workers = 4;  ///< total across shards
  std::size_t queue_capacity = 64;  ///< total across shards; 0 = unbounded
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  std::size_t cache_bytes = 256u << 20;  ///< prepared-tier budget; 0 = unbounded
  std::size_t choice_entries = 1024;     ///< choice-tier entry cap
  bool fingerprint_values = false;  ///< hash values too (RUN-heavy loads)
  std::chrono::milliseconds default_deadline{0};  ///< 0 = none
  /// Shard count; non-powers-of-two round down, clamped to [1, 256].
  /// 0 = auto: hardware concurrency, capped by `workers`, rounded down to a
  /// power of two — so a workers=1 server is a single shard with a single
  /// queue, exactly the pre-sharding semantics. The resolved value is
  /// reported by options().shards after construction.
  int shards = 0;

  /// Reads WISE_SERVE_WORKERS, WISE_SERVE_QUEUE, WISE_SERVE_OVERFLOW
  /// (block|reject), WISE_SERVE_CACHE_BYTES, WISE_SERVE_CHOICE_ENTRIES,
  /// WISE_SERVE_HASH_VALUES, WISE_SERVE_DEADLINE_MS, WISE_SERVE_SHARDS
  /// over these defaults.
  static ServerOptions from_env();
};

struct Request {
  RequestKind kind = RequestKind::kPredict;
  std::shared_ptr<const CsrMatrix> matrix;
  std::string id;  ///< caller tag (e.g. file path), echoed in the response
  /// kRun: SpMV iterations. kSpmm: SpMM iterations. kSolve: the solver's
  /// max iteration count AND the amortized selector's expected-N.
  int iters = 1;
  int rhs_cols = 4;  ///< kSpmm: dense RHS column count, clamped to [1, 64]
  /// kSolve: "cg" (default), "jacobi", or "bicgstab".
  std::string solver = "cg";
  /// Per-request deadline override; 0 uses ServerOptions::default_deadline.
  std::chrono::milliseconds deadline{0};
  /// Precomputed cache key, trusted verbatim. The hash is an O(nnz) pass,
  /// so callers that load a matrix once and send many requests against it
  /// (the daemon's loader, steady-state clients) compute it at load time;
  /// leave unset and the worker hashes per request. Also the shard router:
  /// fingerprinted requests go straight to their home shard's queue.
  std::optional<Fingerprint> fingerprint;
};

struct Response {
  bool ok = false;
  std::string id;
  std::string error;  ///< empty when ok
  ErrorCategory category = ErrorCategory::kValidation;  ///< valid when !ok

  WiseChoice choice;        ///< selection outcome (kPredict/kPrepare/kRun)
  std::string config_name;  ///< choice.config.name()
  Fingerprint fingerprint;
  bool choice_cache_hit = false;
  bool prepared_cache_hit = false;
  /// This request's prepare was satisfied by another in-flight request for
  /// the same fingerprint (it waited instead of converting).
  bool coalesced = false;

  double queue_seconds = 0;    ///< time spent waiting for a worker
  double service_seconds = 0;  ///< worker time (fingerprint → done)
  /// kRun/kSpmm: mean seconds per iteration. kSolve: mean seconds per
  /// solver iteration (SpMV + vector work).
  double spmv_seconds = 0;
  /// kRun: sum of the final y. kSpmm: sum of the final Y block. kSolve:
  /// sum of the solution x. Bit-stable across cache temperature and shard
  /// count (the determinism contract).
  double checksum = 0;
  int solve_iterations = 0;  ///< kSolve: iterations the solver executed
  double residual_norm = 0;  ///< kSolve: final ||b - Ax||_2
  bool converged = false;    ///< kSolve: tolerance reached before `iters`
  /// Version of the model bank that served this request (hot-swap
  /// observability; the initial bank is version 1).
  std::uint64_t bank_version = 0;
};

/// Monotonic server counters (separate from the obs registry so STATS works
/// even with metrics disabled). Aggregated across shards at read time.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< queue-full rejections
  std::uint64_t expired = 0;   ///< deadline passed while queued
  std::uint64_t failed = 0;    ///< completed with !ok (incl. expired)
  std::uint64_t degraded = 0;  ///< serve-level CSR demotions
  std::uint64_t coalesced = 0;  ///< requests that joined an in-flight prepare
  std::uint64_t prepares = 0;   ///< layout conversions actually executed
  std::uint64_t sampled = 0;    ///< RUNs observed by the online learner
  std::uint64_t spmm_requests = 0;   ///< kSpmm requests completed
  std::uint64_t sessions_active = 0;     ///< kSolve sessions running now
  std::uint64_t sessions_completed = 0;  ///< kSolve sessions finished
  std::uint64_t session_iters = 0;  ///< solver iterations across sessions
};

class Server {
 public:
  /// `predictor` is shared with the caller and must stay alive while the
  /// server runs; it is used strictly through const methods.
  explicit Server(std::shared_ptr<const Wise> predictor,
                  ServerOptions options = {});

  /// Drains and stops (shutdown(true)).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues `req` (see class comment for backpressure/deadline rules).
  /// The returned future is always eventually completed with a Response —
  /// rejections and shutdowns produce !ok responses, never exceptions.
  std::future<Response> submit(Request req);

  /// submit() + wait.
  Response call(Request req);

  /// Stops intake; with `drain` runs every queued request to completion,
  /// without it completes queued requests with a shutdown error. Idempotent.
  void shutdown(bool drain = true);

  ServerStats stats() const;
  CacheStats cache_stats() const;
  const ServerOptions& options() const { return options_; }
  std::size_t queue_depth() const;

  /// Resolved shard count (options().shards after auto-resolution).
  std::size_t shard_count() const { return shards_.size(); }
  /// Home shard index for a fingerprint — exposed so tests and benchmarks
  /// can construct colliding / non-colliding workloads deliberately.
  std::size_t shard_of(const Fingerprint& fp) const;

  /// Atomically replaces the serving model bank (the online-learning
  /// hot-swap). The swap is an atomic pointer exchange under util/epoch
  /// reclamation: requests already holding the old bank (or a cached entry
  /// built from it) finish on it — zero downtime, no lock on the warm
  /// path. Both cache tiers of every shard are cleared (their entries
  /// embed the old bank's choices); in-flight RUNs keep their entries
  /// alive through shared_ptr. Returns the new bank's version (the
  /// constructor-installed bank is version 1). Thread-safe.
  std::uint64_t publish_bank(std::shared_ptr<const Wise> wise);

  /// Version of the bank serving right now.
  std::uint64_t bank_version() const;

  /// The bank serving right now (epoch-protected snapshot).
  std::shared_ptr<const Wise> predictor() const;

  /// Attaches an online learner: binds it to publish_bank and the current
  /// bank, start()s it, and begins sampling RUN completions into it at the
  /// learner's sample rate (each sampled RUN additionally times the CSR
  /// baseline to label the observation). Pass nullptr to detach.
  void attach_learner(std::shared_ptr<learn::OnlineLearner> learner);
  std::shared_ptr<learn::OnlineLearner> learner() const;

  /// Installs the SpMM model bank serving kSpmm requests. Independent of
  /// the SpMV bank (publish_bank never touches it — the §7 add-a-method
  /// separation). Without one, kSpmm serves the kb=1 baseline with a
  /// fallback note. Thread-safe.
  void set_spmm_bank(std::shared_ptr<const spmm::SpmmBank> bank);
  std::shared_ptr<const spmm::SpmmBank> spmm_bank() const;

  /// Installs the amortized dual-model selector kSolve sessions choose
  /// with. Without one, sessions fall back to the SpMV bank's N-agnostic
  /// choose(). Thread-safe.
  void set_amortized(std::shared_ptr<const AmortizedWise> model);
  std::shared_ptr<const AmortizedWise> amortized() const;

 private:
  /// Hot-path counters, one cache-line-padded block per shard. Relaxed
  /// atomics: each event is a single uncontended fetch_add; cross-shard
  /// totals only materialize in stats().
  struct alignas(64) ShardCounters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> prepares{0};
    std::atomic<std::uint64_t> sampled{0};
    std::atomic<std::uint64_t> spmm_requests{0};
    std::atomic<std::uint64_t> sessions_active{0};
    std::atomic<std::uint64_t> sessions_completed{0};
    std::atomic<std::uint64_t> session_iters{0};
  };

  /// One slice of the serving state. The inflight table holds prepares
  /// currently executing on this shard, keyed by fingerprint; its mutex is
  /// cold-path only (taken on cache misses and prepare completion, never on
  /// a warm hit).
  struct Shard {
    Shard(std::size_t choice_entries, std::size_t cache_bytes, int workers,
          std::size_t queue_capacity)
        : choice_cache(choice_entries),
          prepared_cache(cache_bytes),
          pool(std::make_unique<ThreadPool>(workers, queue_capacity)) {}

    ChoiceCache choice_cache;
    PreparedCache prepared_cache;
    std::unique_ptr<ThreadPool> pool;
    std::mutex inflight_mutex;
    std::unordered_map<Fingerprint,
                       std::shared_future<std::shared_ptr<PreparedEntry>>,
                       FingerprintHash>
        inflight;
    ShardCounters counters;
  };

  /// The serving bank plus its version, swapped as one unit so a reader
  /// never pairs a new bank with an old version number.
  struct BankSlot {
    std::shared_ptr<const Wise> wise;
    std::uint64_t version = 1;
  };

  /// Epoch-protected snapshot of the current slot: pin, load, copy the
  /// shared_ptr, unpin. Lock-free; the shared_ptr keeps the Wise alive
  /// after the pin drops even if the slot itself is retired.
  BankSlot acquire_bank() const;

  Response process(Shard& exec, const Request& req,
                   std::chrono::steady_clock::time_point enqueued,
                   std::chrono::steady_clock::time_point deadline);
  Response run_prepared(Shard& home, const Request& req, Response rsp,
                        const std::shared_ptr<PreparedEntry>& entry);
  /// kSpmm: choose from the SpMM bank, run the blocked kernel on a seeded
  /// RHS, optionally sample (workload class spmm).
  Response process_spmm(Shard& home, const Request& req, Response rsp);
  /// kSolve: amortized choose + cached prepare + full iterative solve.
  /// Samples carry workload class session.
  Response process_solve(Shard& home, const Request& req, Response rsp);
  /// Labels a sampled RUN: times the CSR baseline on the same input,
  /// classifies the measured relative time against the request's own
  /// timing, and feeds the learner. Any failure is swallowed — sampling
  /// never fails a request.
  void observe_run(Shard& home, const Request& req, const Response& rsp,
                   const std::shared_ptr<PreparedEntry>& entry,
                   std::span<const value_t> x);
  /// Labels a sampled SpMM: times the kb=1/Dyn baseline on the same RHS.
  /// Workload class spmm; failures swallowed like observe_run.
  void observe_spmm(Shard& home, const Response& rsp,
                    const spmm::SpmmChoice& choice,
                    const std::shared_ptr<const std::vector<double>>& features,
                    const CsrMatrix& m, std::span<const value_t> x,
                    std::span<value_t> y, index_t k, int iters,
                    double chosen_per_iter);
  /// Labels a sampled SOLVE session: times the CSR baseline SpMV against
  /// the session's measured per-SpMV time. Workload class session.
  void observe_session(Shard& home, const Response& rsp,
                       const std::shared_ptr<PreparedEntry>& entry,
                       std::span<const value_t> b, double chosen_per_spmv);
  /// Cache-miss path: join the shard's in-flight prepare for `fp` or become
  /// its leader. Exactly one conversion runs per fingerprint no matter how
  /// many requests race. Marks rsp.coalesced on joiners. With `preset` the
  /// choice already in rsp.choice is converted as-is (the SOLVE path, whose
  /// amortized selection must not be re-chosen by the SpMV bank); without
  /// it the bank chooses during prepare.
  std::shared_ptr<PreparedEntry> prepare_or_join(Shard& home,
                                                 const Request& req,
                                                 const Fingerprint& fp,
                                                 Response& rsp,
                                                 bool preset = false);
  std::shared_ptr<PreparedEntry> prepare_entry(Shard& home, const Request& req,
                                               const Fingerprint& fp,
                                               WiseChoice& choice,
                                               bool preset = false);
  static MethodConfig cheapest_csr_config(const Wise& wise);

  /// Current bank slot; readers go through acquire_bank(). Swapped-out
  /// slots are retired to the global epoch domain and reclaimed on later
  /// publishes (or at destruction, after the pools are joined).
  std::atomic<BankSlot*> bank_{nullptr};
  mutable std::mutex publish_mutex_;  ///< serializes publish_bank()
  std::vector<std::pair<BankSlot*, std::uint64_t>>
      retired_banks_;  ///< guarded by publish_mutex_; {slot, retire epoch}

  ServerOptions options_;  ///< with shards resolved to the actual count
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> rr_{0};  ///< router for unfingerprinted requests

  /// Learner plumbing: the hot path gates on one relaxed-ish atomic load;
  /// ownership lives in the vector (learners attached earlier are kept
  /// alive until destruction so an in-flight observe() can never race a
  /// re-attach). Guarded by publish_mutex_ except the atomic.
  std::atomic<learn::OnlineLearner*> learner_raw_{nullptr};
  std::vector<std::shared_ptr<learn::OnlineLearner>> learners_;

  /// SpMM bank + amortized selector (guarded by publish_mutex_; read once
  /// per request on the cold inference path — never on a warm hit).
  std::shared_ptr<const spmm::SpmmBank> spmm_bank_;
  std::shared_ptr<const AmortizedWise> amortized_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> cancelled_{false};
};

}  // namespace wise::serve
