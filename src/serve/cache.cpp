#include "serve/cache.hpp"

#include "obs/metrics.hpp"

namespace wise::serve {

namespace {

void gauge_update(std::size_t bytes, std::size_t entries) {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.set_gauge("serve.cache.bytes", static_cast<double>(bytes));
  metrics.set_gauge("serve.cache.entries", static_cast<double>(entries));
}

}  // namespace

ChoiceCache::ChoiceCache(std::size_t max_entries) : map_(max_entries) {}

std::optional<WiseChoice> ChoiceCache::get(const Fingerprint& fp) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const WiseChoice* hit = map_.get(fp)) {
    ++hits_;
    obs::MetricsRegistry::global().add("serve.cache.choice.hit");
    return *hit;
  }
  ++misses_;
  obs::MetricsRegistry::global().add("serve.cache.choice.miss");
  return std::nullopt;
}

void ChoiceCache::put(const Fingerprint& fp, const WiseChoice& choice) {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.put(fp, choice, 1);  // count-bounded: every choice costs 1
}

std::uint64_t ChoiceCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ChoiceCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ChoiceCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t prepared_entry_bytes(const CsrMatrix& m, const PreparedMatrix& pm) {
  std::size_t bytes = m.memory_bytes() + pm.plan_bytes();
  if (pm.config().kind != MethodKind::kCsr) bytes += pm.memory_bytes();
  return bytes;
}

PreparedCache::PreparedCache(std::size_t budget_bytes) : map_(budget_bytes) {}

std::shared_ptr<PreparedEntry> PreparedCache::get(const Fingerprint& fp) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& metrics = obs::MetricsRegistry::global();
  if (auto* hit = map_.get(fp)) {
    ++hits_;
    metrics.add("serve.cache.hit");
    return *hit;
  }
  ++misses_;
  metrics.add("serve.cache.miss");
  return nullptr;
}

void PreparedCache::put(const Fingerprint& fp,
                        std::shared_ptr<PreparedEntry> entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t cost = entry->bytes;
  const auto evicted = map_.put(fp, std::move(entry), cost);
  if (!evicted.empty()) {
    evictions_ += evicted.size();
    obs::MetricsRegistry::global().add("serve.cache.evict.count",
                                       evicted.size());
  }
  gauge_update(map_.total_cost(), map_.size());
}

std::uint64_t PreparedCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PreparedCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t PreparedCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t PreparedCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.total_cost();
}

std::size_t PreparedCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t PreparedCache::budget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.budget();
}

}  // namespace wise::serve
