#include "serve/cache.hpp"

#include "obs/metrics.hpp"

namespace wise::serve {
namespace {

// Counter ids interned once per process, at first cache construction.
// Interning goes through the registry mutex, so it must never happen on
// the lock-free get() path; recording through a pre-interned MetricId only
// touches the calling thread's slab (and no-ops when metrics are off).
struct CacheMetricIds {
  obs::MetricId hit;
  obs::MetricId miss;
  obs::MetricId choice_hit;
  obs::MetricId choice_miss;
  obs::MetricId evict;
};

const CacheMetricIds& cache_metric_ids() {
  static const CacheMetricIds ids = [] {
    auto& metrics = obs::MetricsRegistry::global();
    CacheMetricIds out;
    out.hit = metrics.counter_id("serve.cache.hit");
    out.miss = metrics.counter_id("serve.cache.miss");
    out.choice_hit = metrics.counter_id("serve.cache.choice.hit");
    out.choice_miss = metrics.counter_id("serve.cache.choice.miss");
    out.evict = metrics.counter_id("serve.cache.evict.count");
    return out;
  }();
  return ids;
}

}  // namespace

ChoiceCache::ChoiceCache(std::size_t max_entries) : map_(max_entries) {
  cache_metric_ids();  // intern off the hot path, before any get()
}

std::optional<WiseChoice> ChoiceCache::get(const Fingerprint& fp) {
  auto& metrics = obs::MetricsRegistry::global();
  WiseChoice choice;
  if (map_.get(fp, choice)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.add(cache_metric_ids().choice_hit);
    return choice;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  metrics.add(cache_metric_ids().choice_miss);
  return std::nullopt;
}

void ChoiceCache::put(const Fingerprint& fp, const WiseChoice& choice) {
  map_.put(fp, choice, 1);  // count-bounded: every choice costs 1
}

std::size_t prepared_entry_bytes(const CsrMatrix& m, const PreparedMatrix& pm) {
  std::size_t bytes = m.memory_bytes() + pm.plan_bytes();
  if (pm.config().kind != MethodKind::kCsr) bytes += pm.memory_bytes();
  return bytes;
}

PreparedCache::PreparedCache(std::size_t budget_bytes) : map_(budget_bytes) {
  cache_metric_ids();
}

std::shared_ptr<PreparedEntry> PreparedCache::get(const Fingerprint& fp) {
  auto& metrics = obs::MetricsRegistry::global();
  std::shared_ptr<PreparedEntry> entry;
  if (map_.get(fp, entry)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.add(cache_metric_ids().hit);
    return entry;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  metrics.add(cache_metric_ids().miss);
  return nullptr;
}

std::shared_ptr<PreparedEntry> PreparedCache::peek(const Fingerprint& fp) {
  std::shared_ptr<PreparedEntry> entry;
  map_.get(fp, entry);
  return entry;
}

void PreparedCache::put(const Fingerprint& fp,
                        std::shared_ptr<PreparedEntry> entry) {
  const std::size_t cost = entry->bytes;
  const std::size_t evicted = map_.put(fp, std::move(entry), cost);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    obs::MetricsRegistry::global().add(cache_metric_ids().evict, evicted);
  }
  // serve.cache.bytes / .entries gauges are exported by the server, which
  // aggregates its shards' tiers — per-shard writers would fight over one
  // global gauge here.
}

}  // namespace wise::serve
