#include "serve/fingerprint.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace wise::serve {

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string Fingerprint::hex() const {
  char buf[64];
  if (has_values) {
    std::snprintf(buf, sizeof buf, "s:%016llx/v:%016llx",
                  static_cast<unsigned long long>(structure),
                  static_cast<unsigned long long>(values));
  } else {
    std::snprintf(buf, sizeof buf, "s:%016llx",
                  static_cast<unsigned long long>(structure));
  }
  return buf;
}

Fingerprint fingerprint_matrix(const CsrMatrix& m, bool include_values) {
  obs::ScopedTimer span("serve.fingerprint");
  Fingerprint fp;
  const std::int64_t dims[2] = {m.nrows(), m.ncols()};
  std::uint64_t h = fnv1a(dims, sizeof dims);
  const auto row_ptr = m.row_ptr();
  h = fnv1a(row_ptr.data(), row_ptr.size_bytes(), h);
  const auto col_idx = m.col_idx();
  h = fnv1a(col_idx.data(), col_idx.size_bytes(), h);
  fp.structure = h;
  if (include_values) {
    const auto vals = m.vals();
    fp.values = fnv1a(vals.data(), vals.size_bytes());
    fp.has_values = true;
  }
  return fp;
}

}  // namespace wise::serve
