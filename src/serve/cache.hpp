#pragma once
// The serving layer's two-tier result cache, keyed by matrix fingerprint.
// One instance of each tier belongs to one *shard* of the sharded server
// (serve/server.hpp); shard routing happens above this layer.
//
// Tier 1 (ChoiceCache) memoizes WiseChoice — the output of feature
// extraction + model inference. Entries are tiny, so the tier is bounded by
// entry count. Tier 2 (PreparedCache) memoizes fully converted layouts
// (PreparedMatrix plus the owned source CsrMatrix); entries can be large,
// so the tier is bounded by a byte budget and eviction is accounted with
// each entry's actual footprint (matrix bytes + converted-layout bytes).
//
// Concurrency: the *read* path of both tiers is lock-free. Lookups probe an
// immutable copy-on-write table through one atomic pointer load, protected
// by epoch-based reclamation (util/epoch_lru.hpp) — a warm hit takes zero
// mutexes, which is what lets hot matrices scale with client threads
// instead of serializing on a cache-wide lock. Writers (misses) serialize
// on the map's internal mutex and rebuild the table; recency is a relaxed
// per-entry tick, which reduces to strict LRU under sequential access so
// eviction order stays deterministic for tests.
//
// obs counters:
//   serve.cache.hit / serve.cache.miss          prepared tier (the
//                                               expensive one — the
//                                               acceptance metric)
//   serve.cache.choice.hit / .choice.miss       choice tier
//   serve.cache.evict.count                     prepared-tier evictions
//   serve.cache.bytes / serve.cache.entries     prepared-tier gauges
//     (gauges aggregate across shards via the server's stats, not here)
//
// Prepared entries are handed out as shared_ptr, so an entry evicted while
// a worker is mid-SpMV stays alive until that worker drops it. Entries
// carry no run lock: PreparedMatrix::run has a const-thread-safe overload
// taking a caller workspace (spmv/executor.hpp), so concurrent RUNs of one
// hot entry proceed in parallel.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "serve/fingerprint.hpp"
#include "spmv/executor.hpp"
#include "util/epoch_lru.hpp"
#include "wise/pipeline.hpp"

namespace wise::serve {

/// Point-in-time cache counters (monotonic except bytes/entries).
struct CacheStats {
  std::uint64_t choice_hits = 0;
  std::uint64_t choice_misses = 0;
  std::uint64_t prepared_hits = 0;
  std::uint64_t prepared_misses = 0;
  std::uint64_t evictions = 0;
  std::size_t prepared_bytes = 0;
  std::size_t prepared_entries = 0;
  std::size_t choice_entries = 0;
};

/// Tier 1: fingerprint → WiseChoice, bounded by entry count. get() is
/// lock-free.
class ChoiceCache {
 public:
  explicit ChoiceCache(std::size_t max_entries);

  std::optional<WiseChoice> get(const Fingerprint& fp);
  void put(const Fingerprint& fp, const WiseChoice& choice);

  /// Drops every entry (epoch-safe against concurrent get()). Called when
  /// a new model bank is published: cached choices embed the old bank's
  /// configurations.
  void clear() { map_.clear(); }

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const { return map_.size(); }

 private:
  EpochLruMap<Fingerprint, WiseChoice, FingerprintHash> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// One cached prepared matrix: the owned source CSR (PreparedMatrix
/// references it for CSR configs), the converted layout, the choice that
/// produced it, and the footprint it was charged at insertion. Immutable
/// once published — RUNs execute it through the const-thread-safe
/// PreparedMatrix::run overload with a per-thread workspace.
struct PreparedEntry {
  std::shared_ptr<const CsrMatrix> matrix;
  PreparedMatrix prepared;
  WiseChoice choice;
  std::size_t bytes = 0;
  /// Version of the model bank whose choice produced this entry — lets the
  /// online-learning loop attribute an observed RUN to the bank that
  /// predicted it (a swap mid-flight must not poison the new bank's
  /// guardrail window).
  std::uint64_t bank_version = 0;
};

/// Actual footprint an entry is charged: the owned CSR plus, for converted
/// (non-CSR) layouts, the converted representation, plus the precomputed
/// execution plan (spmv/plan.hpp) the prepared kernel runs over. CSR
/// entries are not double-counted (their PreparedMatrix references the
/// same arrays).
std::size_t prepared_entry_bytes(const CsrMatrix& m, const PreparedMatrix& pm);

/// Tier 2: fingerprint → shared PreparedEntry, bounded by a byte budget.
/// get() is lock-free.
class PreparedCache {
 public:
  /// `budget_bytes` caps the summed entry footprints (0 = unbounded).
  explicit PreparedCache(std::size_t budget_bytes);

  std::shared_ptr<PreparedEntry> get(const Fingerprint& fp);

  /// Uncounted lookup for the server's coalescing double-check: identical
  /// to get() but records no hit/miss (the miss that led the caller here
  /// was already counted).
  std::shared_ptr<PreparedEntry> peek(const Fingerprint& fp);

  /// Inserts and applies the LRU byte budget. The entry's footprint must
  /// already be set (prepared_entry_bytes). Evicted entries only die once
  /// every outstanding shared_ptr drops.
  void put(const Fingerprint& fp, std::shared_ptr<PreparedEntry> entry);

  /// Drops every entry (epoch-safe against concurrent get()). Entries
  /// being RUN right now stay alive through their shared_ptr — a bank swap
  /// never interrupts an in-flight request.
  void clear() { map_.clear(); }

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t bytes() const { return map_.total_cost(); }
  std::size_t size() const { return map_.size(); }
  std::size_t budget() const { return map_.budget(); }

 private:
  EpochLruMap<Fingerprint, std::shared_ptr<PreparedEntry>, FingerprintHash>
      map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace wise::serve
