#pragma once
// The serving layer's two-tier result cache, keyed by matrix fingerprint.
//
// Tier 1 (ChoiceCache) memoizes WiseChoice — the output of feature
// extraction + model inference. Entries are tiny, so the tier is bounded by
// entry count. Tier 2 (PreparedCache) memoizes fully converted layouts
// (PreparedMatrix plus the owned source CsrMatrix); entries can be large,
// so the tier is bounded by a byte budget and eviction is accounted with
// each entry's actual footprint (matrix bytes + converted-layout bytes).
//
// Both tiers are thread-safe (one mutex each around an LruMap) and record
// obs counters:
//   serve.cache.hit / serve.cache.miss          prepared tier (the
//                                               expensive one — the
//                                               acceptance metric)
//   serve.cache.choice.hit / .choice.miss       choice tier
//   serve.cache.evict.count                     prepared-tier evictions
//   serve.cache.bytes / serve.cache.entries     prepared-tier gauges
//
// Prepared entries are handed out as shared_ptr, so an entry evicted while
// a worker is mid-SpMV stays alive until that worker drops it. Each entry
// carries its own run mutex because PreparedMatrix::run reuses a scratch
// workspace and is not safe for concurrent calls on one object.

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>

#include "serve/fingerprint.hpp"
#include "spmv/executor.hpp"
#include "util/lru.hpp"
#include "wise/pipeline.hpp"

namespace wise::serve {

/// Point-in-time cache counters (monotonic except bytes/entries).
struct CacheStats {
  std::uint64_t choice_hits = 0;
  std::uint64_t choice_misses = 0;
  std::uint64_t prepared_hits = 0;
  std::uint64_t prepared_misses = 0;
  std::uint64_t evictions = 0;
  std::size_t prepared_bytes = 0;
  std::size_t prepared_entries = 0;
  std::size_t choice_entries = 0;
};

/// Tier 1: fingerprint → WiseChoice, bounded by entry count.
class ChoiceCache {
 public:
  explicit ChoiceCache(std::size_t max_entries);

  std::optional<WiseChoice> get(const Fingerprint& fp);
  void put(const Fingerprint& fp, const WiseChoice& choice);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  LruMap<Fingerprint, WiseChoice, FingerprintHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// One cached prepared matrix: the owned source CSR (PreparedMatrix
/// references it for CSR configs), the converted layout, the choice that
/// produced it, and the footprint it was charged at insertion.
struct PreparedEntry {
  std::shared_ptr<const CsrMatrix> matrix;
  PreparedMatrix prepared;
  WiseChoice choice;
  std::size_t bytes = 0;
  /// PreparedMatrix::run reuses a scratch buffer; concurrent RUNs of the
  /// same cached entry serialize on this.
  std::mutex run_mutex;
};

/// Actual footprint an entry is charged: the owned CSR plus, for converted
/// (non-CSR) layouts, the converted representation, plus the precomputed
/// execution plan (spmv/plan.hpp) the prepared kernel runs over. CSR
/// entries are not double-counted (their PreparedMatrix references the
/// same arrays).
std::size_t prepared_entry_bytes(const CsrMatrix& m, const PreparedMatrix& pm);

/// Tier 2: fingerprint → shared PreparedEntry, bounded by a byte budget.
class PreparedCache {
 public:
  /// `budget_bytes` caps the summed entry footprints (0 = unbounded).
  explicit PreparedCache(std::size_t budget_bytes);

  std::shared_ptr<PreparedEntry> get(const Fingerprint& fp);

  /// Inserts and applies the LRU byte budget. The entry's footprint must
  /// already be set (prepared_entry_bytes). Evicted entries only die once
  /// every outstanding shared_ptr drops.
  void put(const Fingerprint& fp, std::shared_ptr<PreparedEntry> entry);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::size_t bytes() const;
  std::size_t size() const;
  std::size_t budget() const;

 private:
  mutable std::mutex mutex_;
  LruMap<Fingerprint, std::shared_ptr<PreparedEntry>, FingerprintHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace wise::serve
