#pragma once
// Machine probe — the hardware side of hardware-conditioned selection.
//
// The paper trains and evaluates WISE on one 24-core Skylake server, so
// its 67 features describe only the *matrix*; the machine is implicit in
// the training labels. That breaks the moment one trained bank serves
// heterogeneous fleet nodes: the fastest format flips with core count and
// memory bandwidth, not just with the matrix (Chen et al., PAPERS.md).
// This module measures a small, stable machine summary once per process:
//
//   hw:threads      std::thread::hardware_concurrency()
//   hw:l1d_kib      L1 data cache size     (sysfs, cpu0)
//   hw:l2_kib      L2 cache size           (sysfs, cpu0)
//   hw:llc_kib     last-level cache size   (sysfs, cpu0, highest index)
//   hw:stream_gbs  measured STREAM-triad bandwidth (a[i] = b[i] + s*c[i])
//
// ModelBank v3 records its feature width; a bank trained on 67 + these 5
// columns makes wise::Wise::choose() append machine_features() to every
// extracted vector, so the per-config trees can split on the machine
// exactly like they split on the matrix (docs/FEATURES.md, docs/ML.md).
//
// The probe is cheap (~10 ms, dominated by the triad sweep) and runs
// lazily on first use. WISE_HW_PROBE controls it (docs/PERFORMANCE.md):
//   WISE_HW_PROBE=off            neutral defaults, no sysfs reads, no
//                                measurement (deterministic CI runs)
//   WISE_HW_PROBE=cached:<file>  load the probe from <file>; when the
//                                file does not exist, measure once and
//                                write it (fleet nodes probe on first
//                                boot, then start instantly)

#include <cstdint>
#include <string>
#include <vector>

namespace wise::hw {

/// One machine's probed summary.
struct MachineProbe {
  int hardware_threads = 1;
  std::int64_t l1d_bytes = 0;
  std::int64_t l2_bytes = 0;
  std::int64_t llc_bytes = 0;
  double stream_triad_gbs = 0.0;
  /// False when the probe was disabled (WISE_HW_PROBE=off) or measurement
  /// failed; the numeric fields then hold neutral defaults.
  bool measured = false;
  /// Provenance: "measured", "off", or "cached:<file>".
  std::string source = "off";
};

/// The process-wide probe, resolved once on first call (honoring
/// WISE_HW_PROBE) and cached for the process lifetime.
const MachineProbe& machine_probe();

/// Runs a fresh probe unconditionally (ignores WISE_HW_PROBE). Exposed
/// for tests and the cached:<file> first-boot path.
MachineProbe run_probe();

/// Serialization for WISE_HW_PROBE=cached:<file> — a small key/value text
/// file. load_probe throws wise::Error (kParse) on a malformed file.
void save_probe(const MachineProbe& p, const std::string& path);
MachineProbe load_probe(const std::string& path);

/// The machine-feature columns appended to the 67 matrix features when a
/// ModelBank's feature_dim() asks for them. Caches are reported in KiB
/// and bandwidth in GB/s so the tree thresholds stay human-readable.
std::size_t machine_feature_count();
const std::vector<std::string>& machine_feature_names();
std::vector<double> machine_features(const MachineProbe& p);
std::vector<double> machine_features();  ///< from machine_probe()

}  // namespace wise::hw
