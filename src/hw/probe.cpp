#include "hw/probe.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <omp.h>

#include "util/aligned.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace wise::hw {

namespace {

/// Parses a sysfs cache size string ("32K", "1024K", "8M", "16777216").
std::int64_t parse_cache_size(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t end = 0;
  long long num = 0;
  try {
    num = std::stoll(text, &end);
  } catch (const std::exception&) {
    return 0;
  }
  if (num < 0) return 0;
  std::int64_t bytes = num;
  if (end < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[end]))) {
      case 'K': bytes *= 1024; break;
      case 'M': bytes *= 1024 * 1024; break;
      case 'G': bytes *= 1024 * 1024 * 1024; break;
      default: break;
    }
  }
  return bytes;
}

std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return {};
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

/// Reads L1d/L2/LLC sizes from /sys/devices/system/cpu/cpu0/cache. Any
/// missing piece (containers, non-Linux) just stays 0 — the features are
/// still usable, the trees simply cannot split on that column.
void probe_caches(MachineProbe& p) {
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    const std::string level_s = read_line(dir + "level");
    if (level_s.empty()) break;
    const std::string type = read_line(dir + "type");
    const std::int64_t size = parse_cache_size(read_line(dir + "size"));
    if (size == 0) continue;
    const int level = static_cast<int>(parse_cache_size(level_s));
    if (level == 1 && type == "Data") p.l1d_bytes = size;
    if (level == 2 && type != "Instruction") p.l2_bytes = size;
    if (level >= 3 && type != "Instruction") {
      p.llc_bytes = std::max(p.llc_bytes, size);
    }
  }
  // Single-level parts: the biggest cache we saw is the LLC.
  if (p.llc_bytes == 0) p.llc_bytes = std::max(p.l1d_bytes, p.l2_bytes);
}

/// Short STREAM-triad sweep: a[i] = b[i] + s * c[i] over arrays sized to
/// spill every cache, best-of-3 timed passes, counted as 3 x 8 bytes per
/// element (two streaming reads + one streaming write).
double probe_stream_triad() {
  const std::size_t n = 1u << 21;  // 3 x 16 MiB — beyond any LLC here
  aligned_vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  const double s = 3.0;
  double best = 0.0;
  for (int pass = 0; pass < 4; ++pass) {
    Timer t;
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      a[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i)] + s * c[static_cast<std::size_t>(i)];
    }
    const double secs = t.seconds();
    if (pass == 0) continue;  // warm-up: faults the pages in
    if (secs > 0.0) {
      best = std::max(best, 3.0 * 8.0 * static_cast<double>(n) / secs / 1e9);
    }
  }
  // Keep the result from being optimized out.
  volatile double sink = a[n / 2];
  (void)sink;
  return best;
}

MachineProbe neutral_probe() {
  MachineProbe p;
  p.hardware_threads = 1;
  p.measured = false;
  p.source = "off";
  return p;
}

MachineProbe resolve_probe() {
  const std::string mode = env_string("WISE_HW_PROBE", "");
  if (mode == "off") return neutral_probe();
  if (mode.rfind("cached:", 0) == 0) {
    const std::string path = mode.substr(7);
    {
      std::ifstream probe_file(path);
      if (probe_file.good()) {
        MachineProbe p = load_probe(path);
        p.source = "cached:" + path;
        return p;
      }
    }
    MachineProbe p = run_probe();
    save_probe(p, path);
    p.source = "cached:" + path;
    return p;
  }
  return run_probe();
}

}  // namespace

MachineProbe run_probe() {
  MachineProbe p;
  const unsigned hc = std::thread::hardware_concurrency();
  p.hardware_threads = hc == 0 ? 1 : static_cast<int>(hc);
  probe_caches(p);
  p.stream_triad_gbs = probe_stream_triad();
  p.measured = true;
  p.source = "measured";
  return p;
}

const MachineProbe& machine_probe() {
  static const MachineProbe probe = resolve_probe();
  return probe;
}

void save_probe(const MachineProbe& p, const std::string& path) {
  std::ofstream out(path);
  out << "wise-hw-probe v1\n";
  out << "hardware_threads " << p.hardware_threads << '\n';
  out << "l1d_bytes " << p.l1d_bytes << '\n';
  out << "l2_bytes " << p.l2_bytes << '\n';
  out << "llc_bytes " << p.llc_bytes << '\n';
  out << "stream_triad_gbs " << p.stream_triad_gbs << '\n';
  if (!out) {
    throw Error(ErrorCategory::kResource,
                "save_probe: cannot write " + path);
  }
}

MachineProbe load_probe(const std::string& path) {
  std::ifstream in(path);
  const auto fail = [&](const std::string& why) -> Error {
    return Error(ErrorCategory::kParse, "load_probe: " + path + ": " + why);
  };
  if (!in) throw fail("cannot open");
  std::string magic, version;
  in >> magic >> version;
  if (magic != "wise-hw-probe" || version != "v1") throw fail("bad header");
  MachineProbe p;
  std::string key;
  while (in >> key) {
    if (key == "hardware_threads") {
      in >> p.hardware_threads;
    } else if (key == "l1d_bytes") {
      in >> p.l1d_bytes;
    } else if (key == "l2_bytes") {
      in >> p.l2_bytes;
    } else if (key == "llc_bytes") {
      in >> p.llc_bytes;
    } else if (key == "stream_triad_gbs") {
      in >> p.stream_triad_gbs;
    } else {
      throw fail("unknown key " + key);
    }
    if (in.fail()) throw fail("bad value for " + key);
  }
  if (p.hardware_threads < 1) throw fail("implausible hardware_threads");
  p.measured = true;
  p.source = "cached:" + path;
  return p;
}

std::size_t machine_feature_count() { return machine_feature_names().size(); }

const std::vector<std::string>& machine_feature_names() {
  static const std::vector<std::string> names = {
      "hw:threads", "hw:l1d_kib", "hw:l2_kib", "hw:llc_kib", "hw:stream_gbs",
  };
  return names;
}

std::vector<double> machine_features(const MachineProbe& p) {
  return {
      static_cast<double>(p.hardware_threads),
      static_cast<double>(p.l1d_bytes) / 1024.0,
      static_cast<double>(p.l2_bytes) / 1024.0,
      static_cast<double>(p.llc_bytes) / 1024.0,
      p.stream_triad_gbs,
  };
}

std::vector<double> machine_features() {
  return machine_features(machine_probe());
}

}  // namespace wise::hw
