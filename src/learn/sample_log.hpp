#pragma once
// Crash-safe write-ahead log of served-prediction samples — the durable
// half of the online-learning loop (docs/LEARNING.md).
//
// Every RUN the server executes yields one labeled sample: the cached
// feature vector, the configuration the bank chose, the class it predicted,
// and the class actually observed (measured runtime of the chosen config
// relative to the CSR baseline). Those samples are the retraining corpus,
// so they must survive a crash mid-append.
//
// On-disk format (single file, platform-native byte order — a local log,
// like serve fingerprints, not an interchange format):
//
//   "wise-sample-log v2\n"                    header (magic)
//   [u32 payload bytes][u64 FNV-1a of payload][payload] ...   records
//
// v2 appends one workload-class byte (SpMV / SpMM / solver session) to the
// payload so multi-workload deployments can keep their drift windows
// separate. The bump is compatible both ways: open() accepts a v1 header
// unchanged (same length, records decode normally), and a v1 payload —
// one byte short — decodes as SpMV with the record counted in
// RecoveryStats::legacy_records and warned about once, the same
// skip-and-warn posture corrupt records get.
//
// The payload is the Sample encoded by encode_sample(). The length field
// frames the record; the checksum detects payload corruption independently
// of framing. Recovery on open() distinguishes the two:
//   * a record whose frame extends past EOF is a TORN TAIL — the crash hit
//     mid-append. The tail is truncated (physically, so the next append
//     starts a clean frame) and the bytes are counted.
//   * a fully framed record whose checksum (or decode) fails is CORRUPT —
//     bit rot or a foreign write. It is skipped with a counted warning and
//     recovery continues at the next frame, exactly the ModelBank v2
//     skip-and-warn posture.
//   * a missing or garbled header abandons the file: recovery reports it
//     and open() rewrites a fresh log (the samples were unreadable anyway).
//
// Rotation: the log is capped at `max_records`; crossing the cap compacts
// to the newest half via temp-file + atomic rename (the exp/cache.cpp
// crash-safety pattern — a kill mid-rotation leaves a stale *.tmp, never a
// half-written log).
//
// Fault injection: append() consults the `sample_log` stage
// (WISE_FAULT_STAGES=sample_log), so tests can prove a WAL write error
// degrades to continued serving.
//
// Not internally synchronized: the OnlineLearner serializes access.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace wise::learn {

/// Which operation class produced a sample. Values are stable — they are
/// the WAL's on-disk workload byte. Each OnlineLearner tracks exactly one
/// class in its drift window (LearnOptions::workload_class); samples of
/// other classes are still WAL-appended (they are valid training material
/// for their own bank) but never pollute a foreign window.
enum class WorkloadClass : std::uint8_t {
  kSpmv = 0,     ///< single-vector RUN requests
  kSpmm = 1,     ///< multi-vector SpMM requests (src/spmm/)
  kSession = 2,  ///< iterative SOLVE sessions
};

/// Stable lowercase name ("spmv", "spmm", "session").
const char* workload_class_name(WorkloadClass c);

/// One labeled observation of a served RUN.
struct Sample {
  std::uint64_t fingerprint = 0;   ///< structural matrix fingerprint
  std::uint64_t bank_version = 0;  ///< bank that made the prediction
  std::int32_t predicted_class = 0;
  std::int32_t observed_class = 0;
  double rel_time = 0;  ///< measured t_chosen / t_csr_baseline
  std::string config_name;
  std::vector<double> features;
  /// On-disk workload byte; v1 records decode as kSpmv.
  std::uint8_t workload_class =
      static_cast<std::uint8_t>(WorkloadClass::kSpmv);

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Serializes a sample to the WAL payload encoding (exposed for tests that
/// craft corrupt fixtures byte-by-byte).
std::string encode_sample(const Sample& s);

/// Inverse of encode_sample. Throws wise::Error (kParse) on malformed
/// payloads. A v1 payload (no workload byte) decodes as kSpmv and sets
/// *legacy when the caller asks.
Sample decode_sample(std::string_view payload, bool* legacy = nullptr);

/// The checksum the WAL frames carry (FNV-1a over the payload bytes).
std::uint64_t wal_checksum(std::string_view payload);

/// What open() found on disk.
struct RecoveryStats {
  std::size_t records = 0;          ///< samples recovered intact
  std::size_t corrupt_skipped = 0;  ///< framed records with bad checksum/body
  std::size_t torn_tail_bytes = 0;  ///< trailing bytes truncated
  std::size_t legacy_records = 0;   ///< v1 records read as SpMV (warned)
  bool header_rewritten = false;    ///< header unusable; started fresh
};

class SampleLog {
 public:
  static constexpr std::string_view kMagic = "wise-sample-log v2\n";
  /// Still accepted by open(); same length, so records read identically.
  static constexpr std::string_view kMagicV1 = "wise-sample-log v1\n";

  /// `max_records` caps the log; crossing it compacts to the newest half.
  explicit SampleLog(std::string path, std::size_t max_records = 4096);

  /// Recovers the on-disk log (see file comment), truncates any torn tail,
  /// and opens for appending. Throws wise::Error (kResource) only when the
  /// file cannot be created at all.
  RecoveryStats open();

  /// Appends one record (write + flush). Throws wise::Error (kResource) on
  /// I/O failure and on an injected `sample_log` fault; the in-memory
  /// sample set is unchanged when it throws.
  void append(const Sample& s);

  /// Every sample currently in the log (recovered + appended), oldest
  /// first.
  const std::vector<Sample>& samples() const { return samples_; }

  /// Current on-disk size of the log in bytes.
  std::size_t bytes() const { return bytes_; }

  /// Compactions performed by this instance.
  std::uint64_t rotations() const { return rotations_; }

  const std::string& path() const { return path_; }
  std::size_t max_records() const { return max_records_; }

 private:
  void rotate();  ///< compact to the newest half via temp + rename

  std::string path_;
  std::size_t max_records_;
  std::vector<Sample> samples_;
  std::ofstream out_;
  std::size_t bytes_ = 0;
  std::uint64_t rotations_ = 0;
};

}  // namespace wise::learn
