#include "learn/drift.hpp"

namespace wise::learn {

DriftDetector::DriftDetector(std::size_t window, std::size_t min_samples,
                             double threshold)
    : ring_(window < 1 ? 1 : window),
      min_samples_(min_samples < 1 ? 1 : min_samples),
      threshold_(threshold) {}

void DriftDetector::observe(int predicted, int observed) {
  const Entry incoming{predicted, mispredicted(predicted, observed)};
  if (filled_ == ring_.size()) {
    if (ring_[next_].miss) --misses_;
  } else {
    ++filled_;
  }
  ring_[next_] = incoming;
  if (incoming.miss) ++misses_;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

double DriftDetector::rate() const {
  return filled_ == 0 ? 0.0
                      : static_cast<double>(misses_) /
                            static_cast<double>(filled_);
}

double DriftDetector::class_rate(int predicted) const {
  std::size_t n = 0, miss = 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    const Entry& e = ring_[i];
    if (e.predicted != predicted) continue;
    ++n;
    if (e.miss) ++miss;
  }
  return n == 0 ? 0.0 : static_cast<double>(miss) / static_cast<double>(n);
}

bool DriftDetector::drifted() const {
  return filled_ >= min_samples_ && rate() > threshold_;
}

void DriftDetector::reset() {
  next_ = 0;
  filled_ = 0;
  misses_ = 0;
}

}  // namespace wise::learn
