#include "learn/online.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "features/extractor.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "wise/speedup_class.hpp"

namespace wise::learn {

namespace {

// Pre-interned once so observe() (called from server workers) records
// through thread-local slabs, same pattern as serve/server.cpp.
struct LearnMetricIds {
  obs::MetricId sample_count;
  obs::MetricId wal_error_count;
  obs::MetricId drift_count;
  obs::MetricId retrain_count;
  obs::MetricId swap_count;
  obs::MetricId rollback_count;
};

const LearnMetricIds& learn_metric_ids() {
  static const LearnMetricIds ids = [] {
    auto& metrics = obs::MetricsRegistry::global();
    LearnMetricIds out;
    out.sample_count = metrics.counter_id("learn.sample.count");
    out.wal_error_count = metrics.counter_id("learn.wal.error.count");
    out.drift_count = metrics.counter_id("learn.drift.count");
    out.retrain_count = metrics.counter_id("learn.retrain.count");
    out.swap_count = metrics.counter_id("learn.swap.count");
    out.rollback_count = metrics.counter_id("learn.rollback.count");
    return out;
  }();
  return ids;
}

/// ±1-class accuracy of `bank` over `samples` (re-predicting each sample's
/// config from its cached features). Samples naming configs the bank does
/// not have, or with a stale feature width, are skipped.
struct Validation {
  double accuracy = 0;
  std::size_t n = 0;
};

Validation bank_accuracy(const ModelBank& bank,
                         const std::vector<Sample>& samples) {
  std::unordered_map<std::string, std::size_t> index;
  const auto& configs = bank.configs();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    index.emplace(configs[i].name(), i);
  }
  const std::size_t width = bank.feature_dim();
  Validation v;
  std::size_t good = 0;
  for (const Sample& s : samples) {
    const auto it = index.find(s.config_name);
    if (it == index.end() || s.features.size() != width) continue;
    const int pred = bank.predict_class(it->second, s.features);
    ++v.n;
    if (!DriftDetector::mispredicted(pred, s.observed_class)) ++good;
  }
  v.accuracy = v.n == 0 ? 0.0
                        : static_cast<double>(good) /
                              static_cast<double>(v.n);
  return v;
}

/// Per-config refit over `train`: configurations with at least
/// `min_config_samples` observations get a fresh tree fitted to the
/// OBSERVED classes; the rest keep the live bank's tree. Returns nullopt
/// when nothing had enough data to refit.
std::optional<ModelBank> build_candidate(const ModelBank& live,
                                         const std::vector<Sample>& train,
                                         const LearnOptions& opts,
                                         std::size_t* refit_out) {
  const auto& configs = live.configs();
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    index.emplace(configs[i].name(), i);
  }
  // Refits must match the live bank's width — a hardware-conditioned bank
  // (feature_dim > 67) trains its replacement trees on the same columns.
  const auto names = bank_feature_names(live.feature_dim());
  std::vector<std::vector<const Sample*>> buckets(configs.size());
  for (const Sample& s : train) {
    const auto it = index.find(s.config_name);
    if (it == index.end() || s.features.size() != names.size()) continue;
    buckets[it->second].push_back(&s);
  }

  std::vector<DecisionTree> trees = live.trees();
  std::size_t refit = 0;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (buckets[c].size() < opts.min_config_samples) continue;
    Dataset ds(names, kNumSpeedupClasses);
    for (const Sample* s : buckets[c]) {
      ds.add(s->features, s->observed_class);
    }
    DecisionTree tree;
    tree.fit(ds, opts.tree_params);
    trees[c] = std::move(tree);
    ++refit;
  }
  if (refit == 0) return std::nullopt;
  if (refit_out != nullptr) *refit_out = refit;
  return ModelBank::assemble(configs, std::move(trees), live.feature_dim());
}

/// The learner's retraining corpus: only samples of its own workload
/// class. Foreign-class records stay in the shared WAL for their own
/// bank's tooling but must never reach this bank's trees or holdout.
std::vector<Sample> own_class_samples(const std::vector<Sample>& all,
                                      WorkloadClass cls) {
  std::vector<Sample> out;
  out.reserve(all.size());
  const auto want = static_cast<std::uint8_t>(cls);
  for (const Sample& s : all) {
    if (s.workload_class == want) out.push_back(s);
  }
  return out;
}

/// Temporal split: train on the oldest (1 - holdout) fraction, validate on
/// the newest — the distribution the next bank will actually serve.
std::size_t holdout_count(std::size_t n, double fraction) {
  if (n < 2) return 0;
  auto h = static_cast<std::size_t>(
      std::lround(static_cast<double>(n) * fraction));
  h = std::clamp<std::size_t>(h, 1, n - 1);
  return h;
}

}  // namespace

LearnOptions LearnOptions::from_env() {
  LearnOptions o;
  o.enabled = env_flag("WISE_LEARN", false);
  o.log_path = env_string("WISE_LEARN_LOG", "");
  o.sample_rate = env_double("WISE_LEARN_SAMPLE_RATE", o.sample_rate);
  o.log_max_records = static_cast<std::size_t>(env_int(
      "WISE_LEARN_LOG_MAX", static_cast<std::int64_t>(o.log_max_records)));
  o.window = static_cast<std::size_t>(
      env_int("WISE_LEARN_WINDOW", static_cast<std::int64_t>(o.window)));
  o.min_samples = static_cast<std::size_t>(env_int(
      "WISE_LEARN_MIN_SAMPLES", static_cast<std::int64_t>(o.min_samples)));
  o.drift_threshold =
      env_double("WISE_LEARN_DRIFT_THRESHOLD", o.drift_threshold);
  o.interval =
      std::chrono::milliseconds(env_int("WISE_LEARN_INTERVAL_MS", 0));
  o.min_config_samples = static_cast<std::size_t>(
      env_int("WISE_LEARN_MIN_CONFIG_SAMPLES",
              static_cast<std::int64_t>(o.min_config_samples)));
  o.holdout = env_double("WISE_LEARN_HOLDOUT", o.holdout);
  o.swap_margin = env_double("WISE_LEARN_SWAP_MARGIN", o.swap_margin);
  o.guard_min_samples = static_cast<std::size_t>(
      env_int("WISE_LEARN_GUARD_MIN",
              static_cast<std::int64_t>(o.guard_min_samples)));
  o.rollback_margin =
      env_double("WISE_LEARN_ROLLBACK_MARGIN", o.rollback_margin);
  const std::string workload = env_string("WISE_LEARN_WORKLOAD", "spmv");
  if (workload == "spmm") {
    o.workload_class = WorkloadClass::kSpmm;
  } else if (workload == "session") {
    o.workload_class = WorkloadClass::kSession;
  } else if (workload != "spmv") {
    std::fprintf(stderr,
                 "LearnOptions: unknown WISE_LEARN_WORKLOAD '%s'; using "
                 "spmv\n",
                 workload.c_str());
  }
  return o;
}

OnlineLearner::OnlineLearner(LearnOptions opts)
    : opts_(std::move(opts)),
      log_(opts_.log_path.empty() ? data_dir() + "/samples.wal"
                                  : opts_.log_path,
           opts_.log_max_records),
      drift_(opts_.window, opts_.min_samples, opts_.drift_threshold) {
  learn_metric_ids();  // intern before the first observe() can record
}

OnlineLearner::~OnlineLearner() { stop(); }

void OnlineLearner::bind(Publisher publish, std::shared_ptr<const Wise> live,
                         std::uint64_t live_version) {
  std::lock_guard<std::mutex> lk(mutex_);
  publisher_ = std::move(publish);
  live_ = std::move(live);
  live_version_ = live_version;
}

void OnlineLearner::start() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (started_) return;
    started_ = true;
    stop_ = false;
    try {
      const RecoveryStats rec = log_.open();
      stats_.samples_recovered = rec.records;
      stats_.wal_corrupt_skipped = rec.corrupt_skipped;
      stats_.wal_torn_bytes = rec.torn_tail_bytes;
      stats_.wal_legacy_records = rec.legacy_records;
      // Recovered samples are retrainable material that postdates the last
      // retrain (there was none in this process).
      samples_seen_ += rec.records;
      if (rec.corrupt_skipped > 0 || rec.torn_tail_bytes > 0 ||
          rec.header_rewritten) {
        std::fprintf(stderr,
                     "OnlineLearner: WAL recovery: %zu records, %zu corrupt "
                     "skipped, %zu torn bytes truncated%s\n",
                     rec.records, rec.corrupt_skipped, rec.torn_tail_bytes,
                     rec.header_rewritten ? ", header rewritten" : "");
      }
    } catch (const std::exception& e) {
      ++stats_.wal_errors;
      std::fprintf(stderr,
                   "OnlineLearner: WAL unavailable (%s); continuing without "
                   "durability\n",
                   e.what());
    }
  }
  thread_ = std::thread(&OnlineLearner::thread_main, this);
}

void OnlineLearner::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mutex_);
  started_ = false;
}

bool OnlineLearner::should_sample() {
  if (opts_.sample_rate >= 1.0) return true;
  if (opts_.sample_rate <= 0.0) return false;
  std::lock_guard<std::mutex> lk(sample_mutex_);
  const double u =
      static_cast<double>(sample_rng_.next() >> 11) * 0x1.0p-53;
  return u < opts_.sample_rate;
}

void OnlineLearner::observe(const Sample& s) {
  auto& metrics = obs::MetricsRegistry::global();
  const auto& ids = learn_metric_ids();
  std::lock_guard<std::mutex> lk(mutex_);
  ++samples_seen_;
  try {
    log_.append(s);
    ++stats_.samples_logged;
    metrics.add(ids.sample_count);
  } catch (const std::exception&) {
    // Degrade, don't die: a WAL that stops accepting writes costs
    // durability, never a request.
    ++stats_.wal_errors;
    metrics.add(ids.wal_error_count);
  }

  // Foreign workload classes (SpMM, SOLVE sessions) are durable in the
  // shared WAL above, but this learner's drift window, guardrail, and
  // retrains describe only its own bank — don't let them pollute it.
  if (s.workload_class != static_cast<std::uint8_t>(opts_.workload_class)) {
    ++stats_.samples_foreign_class;
    return;
  }

  // Only the live bank's predictions say anything about the live bank;
  // samples from a version that was swapped out mid-flight are logged
  // (they are still valid training data) but not window-tracked.
  if (s.bank_version != live_version_) return;
  drift_.observe(s.predicted_class, s.observed_class);

  if (guard_active_) {
    ++guard_n_;
    if (DriftDetector::mispredicted(s.predicted_class, s.observed_class)) {
      ++guard_misses_;
    }
    if (guard_n_ >= opts_.guard_min_samples) {
      const double rate = static_cast<double>(guard_misses_) /
                          static_cast<double>(guard_n_);
      if (rate > pre_swap_rate_ + opts_.rollback_margin) {
        rollback_pending_ = true;
        cv_.notify_all();
      } else {
        // The swap held up under live traffic: drop the rollback target.
        guard_active_ = false;
        prev_.reset();
      }
    }
    return;  // no drift-triggered retrain while the guard is deciding
  }

  if (!drift_pending_ && drift_.drifted() &&
      samples_seen_ > last_retrain_samples_) {
    drift_pending_ = true;
    ++stats_.drift_events;
    metrics.add(ids.drift_count);
    cv_.notify_all();
  }
}

void OnlineLearner::thread_main() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (!stop_) {
    const auto timeout = opts_.interval.count() > 0
                             ? opts_.interval
                             : std::chrono::milliseconds(60'000);
    const bool signalled = cv_.wait_for(lk, timeout, [&] {
      return stop_ || drift_pending_ || rollback_pending_ || poked_;
    });
    if (stop_) break;
    const bool interval_due = !signalled && opts_.interval.count() > 0;
    const bool want_retrain = drift_pending_ || poked_ || interval_due;
    poked_ = false;
    if (rollback_pending_) {
      rollback(lk);
      continue;
    }
    if (want_retrain) retrain_cycle(lk);
  }
}

void OnlineLearner::retrain_cycle(std::unique_lock<std::mutex>& lk) {
  drift_pending_ = false;
  const std::vector<Sample> all =
      own_class_samples(log_.samples(), opts_.workload_class);
  if (all.size() < std::max<std::size_t>(2, opts_.min_samples)) return;
  if (samples_seen_ <= last_retrain_samples_) return;  // nothing new
  const std::uint64_t prev_retrain_mark = last_retrain_samples_;
  last_retrain_samples_ = samples_seen_;
  ++stats_.retrains;
  obs::MetricsRegistry::global().add(learn_metric_ids().retrain_count);
  const std::shared_ptr<const Wise> live = live_;

  lk.unlock();
  std::shared_ptr<const Wise> candidate;
  double cand_acc = 0;
  double live_acc = 0;
  bool accept = false;
  bool failed = false;
  try {
    FaultInjector::global().maybe_throw(stage::kRetrain,
                                        ErrorCategory::kModelBank);
    const std::size_t hold = holdout_count(all.size(), opts_.holdout);
    const std::vector<Sample> train(all.begin(),
                                    all.end() - static_cast<std::ptrdiff_t>(
                                                    hold));
    const std::vector<Sample> holdout(all.end() - static_cast<std::ptrdiff_t>(
                                                      hold),
                                      all.end());
    std::size_t refit = 0;
    auto built = build_candidate(live->bank(), train, opts_, &refit);
    if (built.has_value()) {
      candidate = make_wise(std::move(*built), live);
      const Validation cand_v = bank_accuracy(candidate->bank(), holdout);
      const Validation live_v = bank_accuracy(live->bank(), holdout);
      cand_acc = cand_v.accuracy;
      live_acc = live_v.accuracy;
      accept = cand_v.n > 0 && cand_acc > live_acc + opts_.swap_margin;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "OnlineLearner: retrain failed: %s\n", e.what());
    failed = true;
  }
  lk.lock();
  if (failed) {
    ++stats_.retrain_failures;
    // The samples were not consumed: a later trigger may retry them.
    last_retrain_samples_ = prev_retrain_mark;
    return;
  }
  stats_.last_candidate_accuracy = cand_acc;
  stats_.last_live_accuracy = live_acc;
  if (!accept) {
    ++stats_.candidates_rejected;
    return;
  }
  publish_and_guard(lk, std::move(candidate));
}

bool OnlineLearner::publish_and_guard(std::unique_lock<std::mutex>& lk,
                                      std::shared_ptr<const Wise> candidate) {
  const Publisher pub = publisher_;
  if (!pub || candidate == nullptr) {
    ++stats_.swap_failures;
    return false;
  }
  const std::shared_ptr<const Wise> old_live = live_;
  const double window_rate = drift_.rate();

  lk.unlock();
  std::uint64_t version = 0;
  bool failed = false;
  try {
    FaultInjector::global().maybe_throw(stage::kSwap,
                                        ErrorCategory::kResource);
    version = pub(candidate);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "OnlineLearner: publish failed: %s\n", e.what());
    failed = true;
  }
  lk.lock();
  if (failed) {
    ++stats_.swap_failures;
    return false;
  }
  prev_ = old_live;
  pre_swap_rate_ = window_rate;
  baseline_rate_ = window_rate;
  drift_.reset();
  guard_active_ = true;
  guard_n_ = 0;
  guard_misses_ = 0;
  live_ = std::move(candidate);
  live_version_ = version;
  ++stats_.swaps;
  auto& metrics = obs::MetricsRegistry::global();
  metrics.add(learn_metric_ids().swap_count);
  metrics.set_gauge("learn.bank.version", static_cast<double>(version));
  return true;
}

void OnlineLearner::rollback(std::unique_lock<std::mutex>& lk) {
  rollback_pending_ = false;
  const std::shared_ptr<const Wise> target = prev_;
  const Publisher pub = publisher_;
  if (target == nullptr || !pub) {
    guard_active_ = false;
    return;
  }

  lk.unlock();
  std::uint64_t version = 0;
  bool failed = false;
  // No fault injection here: the rollback is the recovery path, and making
  // it fail alongside the forward swap would leave tests with no way to
  // exercise "swap fails, rollback succeeds".
  try {
    version = pub(target);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "OnlineLearner: rollback publish failed: %s\n",
                 e.what());
    failed = true;
  }
  lk.lock();
  guard_active_ = false;
  guard_n_ = 0;
  guard_misses_ = 0;
  prev_.reset();
  if (failed) {
    ++stats_.swap_failures;
    return;
  }
  live_ = target;
  live_version_ = version;
  drift_.reset();
  baseline_rate_ = pre_swap_rate_;
  ++stats_.rollbacks;
  auto& metrics = obs::MetricsRegistry::global();
  metrics.add(learn_metric_ids().rollback_count);
  metrics.set_gauge("learn.bank.version", static_cast<double>(version));
}

bool OnlineLearner::publish_candidate(ModelBank bank, bool validate) {
  std::unique_lock<std::mutex> lk(mutex_);
  const std::shared_ptr<const Wise> live = live_;
  std::shared_ptr<const Wise> candidate;
  try {
    lk.unlock();
    candidate = make_wise(std::move(bank), live);
    lk.lock();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "OnlineLearner: bad candidate bank: %s\n",
                 e.what());
    lk.lock();
    ++stats_.candidates_rejected;
    return false;
  }

  if (validate) {
    const std::vector<Sample> all =
        own_class_samples(log_.samples(), opts_.workload_class);
    lk.unlock();
    double cand_acc = 0;
    double live_acc = 0;
    bool accept = false;
    try {
      const Validation cand_v = bank_accuracy(candidate->bank(), all);
      const Validation live_v = live != nullptr
                                    ? bank_accuracy(live->bank(), all)
                                    : Validation{};
      cand_acc = cand_v.accuracy;
      live_acc = live_v.accuracy;
      accept = cand_v.n > 0 && cand_acc > live_acc + opts_.swap_margin;
    } catch (const std::exception&) {
      accept = false;
    }
    lk.lock();
    stats_.last_candidate_accuracy = cand_acc;
    stats_.last_live_accuracy = live_acc;
    if (!accept) {
      ++stats_.candidates_rejected;
      return false;
    }
  }
  return publish_and_guard(lk, std::move(candidate));
}

void OnlineLearner::poke() {
  std::lock_guard<std::mutex> lk(mutex_);
  poked_ = true;
  cv_.notify_all();
}

LearnStats OnlineLearner::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  LearnStats s = stats_;
  s.wal_bytes = log_.bytes();
  s.wal_rotations = log_.rotations();
  s.mispredict_rate = drift_.rate();
  s.window_samples = drift_.size();
  s.baseline_mispredict_rate = baseline_rate_;
  s.bank_version = live_version_;
  return s;
}

std::shared_ptr<const Wise> OnlineLearner::make_wise(
    ModelBank bank, const std::shared_ptr<const Wise>& like) {
  auto wise = std::make_shared<Wise>(std::move(bank));
  if (like != nullptr) {
    // The candidate serves the same traffic the live predictor did: carry
    // its configuration knobs, not the environment defaults.
    wise->feature_params = like->feature_params;
    wise->validate_input = like->validate_input;
    wise->memory_budget_bytes = like->memory_budget_bytes;
  }
  return wise;
}

}  // namespace wise::learn
