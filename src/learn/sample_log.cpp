#include "learn/sample_log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <filesystem>
#include <system_error>
#include <unistd.h>
#include <utility>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace wise::learn {

namespace {

// Same FNV-1a as the model-bank checksums; local copy keeps learn/ from
// depending on serve/ (which depends back on nothing here).
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// A record is a feature vector (~67 doubles) plus a config name; anything
// near this cap means the length field itself is damaged, in which case
// framing is lost and the rest of the file is unrecoverable.
constexpr std::size_t kMaxRecordBytes = std::size_t{1} << 20;
constexpr std::size_t kFrameHeader = sizeof(std::uint32_t) +
                                     sizeof(std::uint64_t);

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T take(std::string_view payload, std::size_t& off) {
  if (off + sizeof(T) > payload.size()) {
    throw Error(ErrorCategory::kParse, "sample payload truncated",
                {.offset = off});
  }
  T v;
  std::memcpy(&v, payload.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

std::string frame_record(const Sample& s) {
  const std::string payload = encode_sample(s);
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  put(frame, static_cast<std::uint32_t>(payload.size()));
  put(frame, fnv1a(payload));
  frame += payload;
  return frame;
}

}  // namespace

std::uint64_t wal_checksum(std::string_view payload) {
  return fnv1a(payload);
}

const char* workload_class_name(WorkloadClass c) {
  switch (c) {
    case WorkloadClass::kSpmv: return "spmv";
    case WorkloadClass::kSpmm: return "spmm";
    case WorkloadClass::kSession: return "session";
  }
  return "unknown";
}

std::string encode_sample(const Sample& s) {
  std::string out;
  put(out, s.fingerprint);
  put(out, s.bank_version);
  put(out, s.predicted_class);
  put(out, s.observed_class);
  put(out, s.rel_time);
  put(out, static_cast<std::uint32_t>(s.config_name.size()));
  out += s.config_name;
  put(out, static_cast<std::uint32_t>(s.features.size()));
  for (double f : s.features) put(out, f);
  // v2: workload class rides at the end so a v1 reader's fields all stay
  // at their old offsets.
  put(out, s.workload_class);
  return out;
}

Sample decode_sample(std::string_view payload, bool* legacy) {
  std::size_t off = 0;
  Sample s;
  s.fingerprint = take<std::uint64_t>(payload, off);
  s.bank_version = take<std::uint64_t>(payload, off);
  s.predicted_class = take<std::int32_t>(payload, off);
  s.observed_class = take<std::int32_t>(payload, off);
  s.rel_time = take<double>(payload, off);
  const auto name_len = take<std::uint32_t>(payload, off);
  if (off + name_len > payload.size()) {
    throw Error(ErrorCategory::kParse, "sample config name truncated",
                {.offset = off});
  }
  s.config_name.assign(payload.data() + off, name_len);
  off += name_len;
  const auto feat_count = take<std::uint32_t>(payload, off);
  if (off + std::size_t{feat_count} * sizeof(double) > payload.size()) {
    throw Error(ErrorCategory::kParse, "sample feature vector truncated",
                {.offset = off});
  }
  s.features.resize(feat_count);
  for (auto& f : s.features) f = take<double>(payload, off);
  if (off == payload.size()) {
    // v1 payload: no workload byte. Those logs predate SpMM/session
    // serving, so every record is an SpMV sample.
    s.workload_class = static_cast<std::uint8_t>(WorkloadClass::kSpmv);
    if (legacy) *legacy = true;
    return s;
  }
  s.workload_class = take<std::uint8_t>(payload, off);
  if (legacy) *legacy = false;
  if (off != payload.size()) {
    throw Error(ErrorCategory::kParse, "sample payload has trailing bytes",
                {.offset = off});
  }
  return s;
}

SampleLog::SampleLog(std::string path, std::size_t max_records)
    : path_(std::move(path)),
      max_records_(max_records < 2 ? 2 : max_records) {}

RecoveryStats SampleLog::open() {
  RecoveryStats stats;
  samples_.clear();
  out_.close();

  {
    // First open in a fresh data dir: make the parent exist.
    const auto parent = std::filesystem::path(path_).parent_path();
    if (!parent.empty()) {
      std::error_code ignored;
      std::filesystem::create_directories(parent, ignored);
    }
  }

  std::string data;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      data.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    }
  }

  // v1 and v2 headers are the same length and frame records identically,
  // so an old log reads in place; its records just lack the workload byte.
  static_assert(kMagic.size() == kMagicV1.size());
  const auto header = std::string_view(data).substr(
      0, std::min(data.size(), kMagic.size()));
  bool rewrite = false;
  std::size_t good_end = 0;
  if (data.empty()) {
    rewrite = true;  // new (or empty) log: write the header
  } else if (header != kMagic && header != kMagicV1) {
    stats.header_rewritten = true;
    rewrite = true;
  } else {
    std::size_t off = kMagic.size();
    good_end = off;
    while (off < data.size()) {
      if (off + kFrameHeader > data.size()) break;  // torn frame header
      std::size_t cursor = off;
      const auto len = take<std::uint32_t>(data, cursor);
      if (len == 0 || len > kMaxRecordBytes) break;  // length damaged: torn
      const auto checksum = take<std::uint64_t>(data, cursor);
      if (cursor + len > data.size()) break;  // torn payload
      const std::string_view payload(data.data() + cursor, len);
      off = cursor + len;
      if (fnv1a(payload) != checksum) {
        ++stats.corrupt_skipped;  // framing intact: skip just this record
        good_end = off;
        continue;
      }
      try {
        bool legacy = false;
        samples_.push_back(decode_sample(payload, &legacy));
        ++stats.records;
        if (legacy) ++stats.legacy_records;
      } catch (const Error&) {
        ++stats.corrupt_skipped;
      }
      good_end = off;
    }
    stats.torn_tail_bytes = data.size() - good_end;
    if (stats.legacy_records > 0) {
      std::fprintf(stderr,
                   "SampleLog: %zu v1 record(s) in %s read as spmv "
                   "(no workload byte)\n",
                   stats.legacy_records, path_.c_str());
    }
  }

  if (rewrite) {
    std::ofstream fresh(path_, std::ios::binary | std::ios::trunc);
    if (!fresh) {
      throw Error(ErrorCategory::kResource,
                  "SampleLog: cannot create " + path_, {.file = path_});
    }
    fresh.write(kMagic.data(),
                static_cast<std::streamsize>(kMagic.size()));
    fresh.flush();
    bytes_ = kMagic.size();
  } else if (stats.torn_tail_bytes > 0) {
    // Physically drop the torn tail so the next append starts a clean
    // frame instead of extending garbage.
    std::error_code ec;
    std::filesystem::resize_file(path_, good_end, ec);
    if (ec) {
      throw Error(ErrorCategory::kResource,
                  "SampleLog: cannot truncate torn tail of " + path_,
                  {.file = path_});
    }
    bytes_ = good_end;
  } else {
    bytes_ = data.size();
  }

  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw Error(ErrorCategory::kResource,
                "SampleLog: cannot open " + path_ + " for append",
                {.file = path_});
  }
  return stats;
}

void SampleLog::append(const Sample& s) {
  FaultInjector::global().maybe_throw(stage::kSampleLog,
                                      ErrorCategory::kResource);
  if (!out_.is_open()) {
    throw Error(ErrorCategory::kResource,
                "SampleLog: append before open()", {.file = path_});
  }
  out_.clear();  // a previous failed append must not poison this one
  const std::string frame = frame_record(s);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) {
    throw Error(ErrorCategory::kResource,
                "SampleLog: write failed for " + path_, {.file = path_});
  }
  bytes_ += frame.size();
  samples_.push_back(s);
  if (samples_.size() > max_records_) rotate();
}

void SampleLog::rotate() {
  // Compact to the newest half. Temp + atomic rename (the exp/cache.cpp
  // pattern): a crash mid-rotation leaves a stale *.tmp, never a log with
  // half its records.
  const std::size_t keep = max_records_ / 2;
  std::vector<Sample> kept(samples_.end() - static_cast<std::ptrdiff_t>(keep),
                           samples_.end());
  const std::string tmp = path_ + ".tmp." + std::to_string(::getpid());
  std::size_t new_bytes = kMagic.size();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error(ErrorCategory::kResource,
                  "SampleLog: cannot create " + tmp, {.file = tmp});
    }
    out.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
    for (const Sample& s : kept) {
      const std::string frame = frame_record(s);
      out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
      new_bytes += frame.size();
    }
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw Error(ErrorCategory::kResource,
                  "SampleLog: rotation write failed for " + tmp,
                  {.file = tmp});
    }
  }
  out_.close();
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw Error(ErrorCategory::kResource,
                "SampleLog: rotation rename failed: " + ec.message(),
                {.file = path_});
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw Error(ErrorCategory::kResource,
                "SampleLog: cannot reopen " + path_ + " after rotation",
                {.file = path_});
  }
  samples_ = std::move(kept);
  bytes_ = new_bytes;
  ++rotations_;
}

}  // namespace wise::learn
