#pragma once
// The online learning loop: served measurements retrain the model bank
// (ROADMAP item 1; docs/LEARNING.md).
//
// The OnlineLearner sits beside serve::Server and closes the loop between
// prediction and measurement:
//
//   observe()   — called from the server's RUN path for sampled requests
//                 (WISE_LEARN_SAMPLE_RATE). Appends the labeled sample to
//                 the crash-safe WAL (learn/sample_log.hpp) and feeds the
//                 sliding-window drift detector (learn/drift.hpp). A WAL
//                 write error is counted and serving continues.
//   background  — a retrain thread wakes when the misprediction rate
//                 crosses WISE_LEARN_DRIFT_THRESHOLD (or every
//                 WISE_LEARN_INTERVAL_MS), refits the per-config decision
//                 trees that have enough fresh samples (carrying the live
//                 trees for the rest), reassembles the bank via
//                 ModelBank::assemble (the flat-tree recompile), and
//                 VALIDATES the candidate on a held-out newest slice of
//                 the WAL: both the candidate and the live bank re-predict
//                 every holdout sample, and only a candidate whose ±1-class
//                 accuracy beats the live bank's by WISE_LEARN_SWAP_MARGIN
//                 is published.
//   publish     — through the bound publisher (serve::Server::publish_bank):
//                 an atomic pointer swap under epoch reclamation. In-flight
//                 requests finish on the old bank; zero downtime, no lock
//                 on the warm path.
//   guardrail   — after a swap the learner watches the live misprediction
//                 rate of the NEW bank (samples are attributed by bank
//                 version). Once WISE_LEARN_GUARD_MIN samples accumulate,
//                 a rate worse than the pre-swap rate by more than
//                 WISE_LEARN_ROLLBACK_MARGIN triggers an automatic rollback
//                 publish of the previous bank, counted in stats.
//
// Every failure path — WAL write error, retrain exception, validation
// miss, publish fault — degrades to continued serving on the current bank
// and a counter; the learner never takes the server down. The `sample_log`,
// `retrain`, and `swap` fault stages (util/fault.hpp) make each path
// deterministic in tests.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "learn/drift.hpp"
#include "learn/sample_log.hpp"
#include "util/prng.hpp"
#include "wise/pipeline.hpp"

namespace wise::learn {

struct LearnOptions {
  bool enabled = false;       ///< master switch (daemon: WISE_LEARN)
  std::string log_path;       ///< WAL file; empty = <data_dir>/samples.wal
  double sample_rate = 1.0;   ///< fraction of RUNs observed
  std::size_t log_max_records = 4096;  ///< WAL cap before rotation

  std::size_t window = 256;        ///< drift window (observations)
  std::size_t min_samples = 64;    ///< window floor before drift can fire
  double drift_threshold = 0.35;   ///< mispredict rate that triggers retrain
  /// Also retrain on this cadence regardless of drift; 0 = drift-only.
  std::chrono::milliseconds interval{0};

  std::size_t min_config_samples = 8;  ///< per-config refit floor
  double holdout = 0.25;   ///< newest fraction of the WAL held out
  double swap_margin = 0.02;  ///< candidate must beat live accuracy by this

  std::size_t guard_min_samples = 32;  ///< post-swap observations before verdict
  double rollback_margin = 0.10;  ///< regression beyond this rolls back

  /// Which workload this learner's drift window and retrains track. All
  /// observed samples land in the WAL regardless of class (one durable log
  /// per daemon), but only own-class samples feed the drift detector,
  /// guardrail, and retraining corpus — SpMM and SOLVE traffic must not
  /// trigger SpMV retrains or dilute the SpMV window.
  WorkloadClass workload_class = WorkloadClass::kSpmv;

  TreeParams tree_params;  ///< refit hyperparameters

  /// Reads WISE_LEARN, WISE_LEARN_LOG, WISE_LEARN_SAMPLE_RATE,
  /// WISE_LEARN_LOG_MAX, WISE_LEARN_WINDOW, WISE_LEARN_MIN_SAMPLES,
  /// WISE_LEARN_DRIFT_THRESHOLD, WISE_LEARN_INTERVAL_MS,
  /// WISE_LEARN_MIN_CONFIG_SAMPLES, WISE_LEARN_HOLDOUT,
  /// WISE_LEARN_SWAP_MARGIN, WISE_LEARN_GUARD_MIN,
  /// WISE_LEARN_ROLLBACK_MARGIN, WISE_LEARN_WORKLOAD (spmv|spmm|session)
  /// over these defaults.
  static LearnOptions from_env();
};

/// Point-in-time learner counters (the daemon's STATS `learn` object).
struct LearnStats {
  std::uint64_t samples_logged = 0;     ///< appended to the WAL this process
  std::uint64_t samples_recovered = 0;  ///< recovered from the WAL at start()
  std::uint64_t wal_bytes = 0;          ///< current WAL size on disk
  std::uint64_t wal_corrupt_skipped = 0;  ///< corrupt records skipped
  std::uint64_t wal_torn_bytes = 0;       ///< torn tail truncated at start()
  std::uint64_t wal_errors = 0;     ///< append failures (serving continued)
  std::uint64_t wal_rotations = 0;  ///< log compactions
  std::uint64_t wal_legacy_records = 0;  ///< v1 records read as spmv
  /// Samples logged but outside this learner's workload class (kept out of
  /// the drift window and retrains).
  std::uint64_t samples_foreign_class = 0;

  double mispredict_rate = 0;  ///< current sliding window (±1-class)
  std::size_t window_samples = 0;
  /// Window rate when the live bank was published (0 for the initial bank):
  /// mispredict_rate − baseline is the online accuracy drift.
  double baseline_mispredict_rate = 0;

  std::uint64_t bank_version = 1;
  std::uint64_t drift_events = 0;   ///< drift threshold crossings
  std::uint64_t retrains = 0;       ///< retrain cycles attempted
  std::uint64_t retrain_failures = 0;
  std::uint64_t candidates_rejected = 0;  ///< failed holdout validation
  std::uint64_t swaps = 0;          ///< banks published (excl. rollbacks)
  std::uint64_t swap_failures = 0;  ///< publish attempts that threw
  std::uint64_t rollbacks = 0;      ///< guardrail reverts
  double last_candidate_accuracy = 0;  ///< holdout, ±1-class
  double last_live_accuracy = 0;
};

class OnlineLearner {
 public:
  /// Swap sink; returns the version the new bank was published as.
  using Publisher =
      std::function<std::uint64_t(std::shared_ptr<const Wise>)>;

  explicit OnlineLearner(LearnOptions opts);

  /// stop()s.
  ~OnlineLearner();

  OnlineLearner(const OnlineLearner&) = delete;
  OnlineLearner& operator=(const OnlineLearner&) = delete;

  /// Wires the learner to a server: `publish` swaps a bank in, `live` /
  /// `live_version` describe the bank serving right now. Must be called
  /// before start() (serve::Server::attach_learner does all of this).
  void bind(Publisher publish, std::shared_ptr<const Wise> live,
            std::uint64_t live_version);

  /// Recovers the WAL and launches the retrain thread. A WAL that cannot
  /// be opened is counted (wal_errors) and the learner runs without
  /// durability — degrade, don't die.
  void start();

  /// Joins the retrain thread. Idempotent.
  void stop();

  /// Cheap sampling decision for the server's RUN path: true when this RUN
  /// should be measured against the CSR baseline and observed.
  bool should_sample();

  /// One labeled observation. Thread-safe; called from server workers.
  void observe(const Sample& s);

  /// Injects an externally built candidate bank (ops hook; also how tests
  /// force a regression to prove the guardrail). With `validate` the
  /// candidate faces the same holdout gate as a retrained one; without it
  /// the candidate publishes immediately — the post-swap guardrail is the
  /// only protection, which is exactly what the rollback test exercises.
  /// Returns true when the candidate was published.
  bool publish_candidate(ModelBank bank, bool validate = true);

  /// Wakes the retrain thread now (tests; avoids waiting on the interval).
  void poke();

  LearnStats stats() const;
  const LearnOptions& options() const { return opts_; }

 private:
  void thread_main();
  /// One retrain → validate → publish attempt. Called with `lk` held;
  /// releases it around the heavy work.
  void retrain_cycle(std::unique_lock<std::mutex>& lk);
  void rollback(std::unique_lock<std::mutex>& lk);
  /// Publishes `candidate` and arms the guardrail. Called with the lock
  /// held; releases it around the publisher call.
  bool publish_and_guard(std::unique_lock<std::mutex>& lk,
                         std::shared_ptr<const Wise> candidate);
  static std::shared_ptr<const Wise> make_wise(
      ModelBank bank, const std::shared_ptr<const Wise>& like);

  LearnOptions opts_;

  mutable std::mutex mutex_;  ///< guards everything below
  std::condition_variable cv_;
  SampleLog log_;
  DriftDetector drift_;
  Publisher publisher_;
  std::shared_ptr<const Wise> live_;
  std::uint64_t live_version_ = 1;
  std::shared_ptr<const Wise> prev_;  ///< rollback target while guarding
  bool guard_active_ = false;
  std::size_t guard_n_ = 0;
  std::size_t guard_misses_ = 0;
  double pre_swap_rate_ = 0;      ///< window rate when the swap happened
  double baseline_rate_ = 0;      ///< stats baseline for drift reporting
  std::uint64_t samples_seen_ = 0;          ///< monotonic observe() count
  std::uint64_t last_retrain_samples_ = 0;  ///< samples_seen_ at last cycle
  bool drift_pending_ = false;
  bool rollback_pending_ = false;
  bool poked_ = false;
  bool stop_ = false;
  LearnStats stats_;

  std::mutex sample_mutex_;  ///< only should_sample()'s PRNG
  SplitMix64 sample_rng_{0x5ab7'1e5eed'0001ull};

  std::thread thread_;
  bool started_ = false;
};

}  // namespace wise::learn
