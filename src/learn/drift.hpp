#pragma once
// Sliding-window misprediction tracking — the trigger half of the online
// learning loop (docs/LEARNING.md).
//
// Every sampled RUN contributes one (predicted class, observed class) pair.
// A prediction counts as a MISPREDICTION when it misses the observed class
// by more than one — the paper's ±1-class tolerance (a one-class miss
// changes the relative-time estimate by ~10%, within measurement noise;
// two or more classes means the model is wrong about the matrix, not the
// clock). The detector keeps the last `window` pairs in a ring buffer and
// reports drift once the window holds at least `min_samples` observations
// and the misprediction rate exceeds `threshold`.
//
// Per-class rates (indexed by *predicted* class) let the stats surface
// which region of the model went stale, not just that something did.
//
// Not internally synchronized: the OnlineLearner serializes access.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wise::learn {

class DriftDetector {
 public:
  DriftDetector(std::size_t window, std::size_t min_samples,
                double threshold);

  /// The ±1-class tolerance shared by drift tracking and candidate
  /// validation.
  static bool mispredicted(int predicted, int observed) {
    const int d = predicted - observed;
    return d > 1 || d < -1;
  }

  void observe(int predicted, int observed);

  /// Rate over the current window; 0 while the window is empty.
  double rate() const;

  /// Misprediction rate among window entries with this predicted class.
  double class_rate(int predicted) const;

  /// True once the window holds >= min_samples and rate() > threshold.
  bool drifted() const;

  /// Entries currently in the window.
  std::size_t size() const { return filled_; }
  /// Observations ever fed in (monotonic, survives reset()).
  std::uint64_t total() const { return total_; }

  /// Empties the window (after a bank swap: the old bank's mispredictions
  /// say nothing about the new bank).
  void reset();

  double threshold() const { return threshold_; }
  std::size_t min_samples() const { return min_samples_; }

 private:
  struct Entry {
    int predicted = 0;
    bool miss = false;
  };

  std::vector<Entry> ring_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::size_t misses_ = 0;
  std::size_t min_samples_;
  double threshold_;
  std::uint64_t total_ = 0;
};

}  // namespace wise::learn
