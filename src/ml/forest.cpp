#include "ml/forest.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prng.hpp"

namespace wise {

void RandomForest::fit(const Dataset& data, const ForestParams& params) {
  if (data.size() == 0) {
    throw std::invalid_argument("RandomForest::fit: empty dataset");
  }
  if (params.num_trees < 1 || params.row_subsample <= 0 ||
      params.row_subsample > 1) {
    throw std::invalid_argument("RandomForest::fit: invalid params");
  }
  num_classes_ = data.num_classes();
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(params.num_trees));

  Xoshiro256 rng(params.seed);
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(data.size()) * params.row_subsample));

  for (int t = 0; t < params.num_trees; ++t) {
    // Bootstrap: sample with replacement.
    std::vector<std::size_t> indices(sample_size);
    for (auto& i : indices) {
      i = static_cast<std::size_t>(rng.next_below(data.size()));
    }
    const Dataset boot = data.subset(indices);
    DecisionTree tree;
    tree.fit(boot, params.tree);
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::predict(std::span<const double> x) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict: not fitted");
  }
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (const auto& tree : trees_) {
    ++votes[static_cast<std::size_t>(tree.predict(x))];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

double RandomForest::accuracy(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace wise
