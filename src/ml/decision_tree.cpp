#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/error.hpp"

namespace wise {

namespace {

double gini_impurity(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double sum_sq = 0;
  for (int c : counts) {
    const double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int majority_class(const std::vector<int>& counts) {
  return static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                          counts.begin());
}

/// Recursive CART builder over index subsets.
class Builder {
 public:
  Builder(const Dataset& data, const TreeParams& params)
      : data_(data), params_(params) {}

  std::vector<DecisionTree::Node> build() {
    std::vector<std::size_t> idx(data_.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    build_node(idx, 0);
    return std::move(nodes_);
  }

 private:
  int build_node(std::vector<std::size_t>& idx, int depth) {
    std::vector<int> counts(static_cast<std::size_t>(data_.num_classes()), 0);
    for (std::size_t i : idx) ++counts[static_cast<std::size_t>(data_.label(i))];
    const int n = static_cast<int>(idx.size());

    const int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_id].label = majority_class(counts);
    nodes_[node_id].impurity = gini_impurity(counts, n);
    nodes_[node_id].n_samples = n;

    const bool pure = nodes_[node_id].impurity == 0.0;
    if (pure || depth >= params_.max_depth || n < params_.min_samples_split) {
      return node_id;
    }

    int best_feature = -1;
    double best_threshold = 0;
    double best_child_impurity = std::numeric_limits<double>::infinity();

    std::vector<std::pair<double, int>> column(idx.size());
    std::vector<int> left_counts(counts.size());
    for (std::size_t f = 0; f < data_.num_features(); ++f) {
      for (std::size_t k = 0; k < idx.size(); ++k) {
        column[k] = {data_.row(idx[k])[f], data_.label(idx[k])};
      }
      std::sort(column.begin(), column.end());
      if (column.front().first == column.back().first) continue;  // constant

      std::fill(left_counts.begin(), left_counts.end(), 0);
      for (int k = 1; k < n; ++k) {
        ++left_counts[static_cast<std::size_t>(column[static_cast<std::size_t>(k - 1)].second)];
        const double prev = column[static_cast<std::size_t>(k - 1)].first;
        const double next = column[static_cast<std::size_t>(k)].first;
        if (prev == next) continue;  // cannot split between equal values
        if (k < params_.min_samples_leaf || n - k < params_.min_samples_leaf) {
          continue;
        }
        // Weighted Gini of the two children; right counts derived from the
        // node totals.
        double left_sq = 0, right_sq = 0;
        for (std::size_t cls = 0; cls < counts.size(); ++cls) {
          const double lc = left_counts[cls];
          const double rc = counts[cls] - left_counts[cls];
          left_sq += lc * lc;
          right_sq += rc * rc;
        }
        const double wl = static_cast<double>(k);
        const double wr = static_cast<double>(n - k);
        const double child =
            (wl - left_sq / wl + wr - right_sq / wr) / static_cast<double>(n);
        if (child < best_child_impurity) {
          best_child_impurity = child;
          best_feature = static_cast<int>(f);
          best_threshold = prev + (next - prev) / 2;
          // Guard against midpoint rounding to `next` for adjacent floats.
          if (best_threshold >= next) best_threshold = prev;
        }
      }
    }

    if (best_feature < 0 ||
        best_child_impurity >= nodes_[node_id].impurity - 1e-12) {
      return node_id;  // no useful split
    }

    std::vector<std::size_t> left_idx, right_idx;
    left_idx.reserve(idx.size());
    right_idx.reserve(idx.size());
    for (std::size_t i : idx) {
      if (data_.row(i)[static_cast<std::size_t>(best_feature)] <=
          best_threshold) {
        left_idx.push_back(i);
      } else {
        right_idx.push_back(i);
      }
    }
    if (left_idx.empty() || right_idx.empty()) return node_id;

    idx.clear();
    idx.shrink_to_fit();

    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    const int left = build_node(left_idx, depth + 1);
    const int right = build_node(right_idx, depth + 1);
    nodes_[node_id].left = left;
    nodes_[node_id].right = right;
    return node_id;
  }

  const Dataset& data_;
  TreeParams params_;
  std::vector<DecisionTree::Node> nodes_;
};

/// Minimal cost-complexity pruning: repeatedly collapse the internal node
/// with the smallest effective alpha g(t) = (R(t) - R(T_t)) / (|T_t| - 1)
/// while g(t) <= ccp_alpha, where R is the sample-weighted Gini risk.
void ccp_prune(std::vector<DecisionTree::Node>& nodes, double ccp_alpha,
               int total_samples) {
  if (nodes.empty() || ccp_alpha <= 0) return;

  auto risk = [&](const DecisionTree::Node& nd) {
    return nd.impurity * nd.n_samples / total_samples;
  };

  while (true) {
    // Bottom-up subtree aggregates. Children always have larger indices
    // than their parent (preorder layout), so a reverse sweep suffices.
    const std::size_t n = nodes.size();
    std::vector<double> subtree_risk(n);
    std::vector<int> subtree_leaves(n);
    for (std::size_t i = n; i-- > 0;) {
      const auto& nd = nodes[i];
      if (nd.feature < 0) {
        subtree_risk[i] = risk(nd);
        subtree_leaves[i] = 1;
      } else {
        subtree_risk[i] = subtree_risk[static_cast<std::size_t>(nd.left)] +
                          subtree_risk[static_cast<std::size_t>(nd.right)];
        subtree_leaves[i] = subtree_leaves[static_cast<std::size_t>(nd.left)] +
                            subtree_leaves[static_cast<std::size_t>(nd.right)];
      }
    }

    double weakest_alpha = std::numeric_limits<double>::infinity();
    std::size_t weakest = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (nodes[i].feature < 0) continue;
      const double g = (risk(nodes[i]) - subtree_risk[i]) /
                       (subtree_leaves[i] - 1);
      if (g < weakest_alpha) {
        weakest_alpha = g;
        weakest = i;
      }
    }
    if (weakest == n || weakest_alpha > ccp_alpha) break;
    // Collapse to a leaf; orphaned descendants are dropped by compaction.
    nodes[weakest].feature = -1;
    nodes[weakest].left = nodes[weakest].right = -1;
  }

  // Compact: renumber reachable nodes in preorder.
  std::vector<DecisionTree::Node> compact;
  compact.reserve(nodes.size());
  // Iterative preorder with explicit fix-up of child indices.
  struct Frame {
    int old_id;
    int parent_new;
    bool is_left;
  };
  std::vector<Frame> stack{{0, -1, false}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const int new_id = static_cast<int>(compact.size());
    compact.push_back(nodes[static_cast<std::size_t>(f.old_id)]);
    if (f.parent_new >= 0) {
      auto& parent = compact[static_cast<std::size_t>(f.parent_new)];
      (f.is_left ? parent.left : parent.right) = new_id;
    }
    const auto& old_node = nodes[static_cast<std::size_t>(f.old_id)];
    if (old_node.feature >= 0) {
      // Push right first so left is visited (and numbered) first.
      stack.push_back({old_node.right, new_id, false});
      stack.push_back({old_node.left, new_id, true});
    }
  }
  nodes = std::move(compact);
}

}  // namespace

void DecisionTree::fit(const Dataset& data, const TreeParams& params) {
  if (data.size() == 0) {
    throw std::invalid_argument("DecisionTree::fit: empty dataset");
  }
  if (params.max_depth < 1 || params.ccp_alpha < 0) {
    throw std::invalid_argument("DecisionTree::fit: invalid params");
  }
  params_ = params;
  Builder builder(data, params);
  nodes_ = builder.build();
  ccp_prune(nodes_, params.ccp_alpha, static_cast<int>(data.size()));
}

int DecisionTree::predict(std::span<const double> x) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict: not fitted");
  }
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const auto& nd = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                   : nd.right;
  }
  return nodes_[static_cast<std::size_t>(node)].label;
}

std::vector<int> DecisionTree::predict_all(const Dataset& data) const {
  std::vector<int> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = predict(data.row(i));
  return out;
}

double DecisionTree::accuracy(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.row(i)) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

int DecisionTree::num_leaves() const {
  int leaves = 0;
  for (const auto& nd : nodes_) leaves += nd.feature < 0;
  return leaves;
}

int DecisionTree::depth_below(int node) const {
  const auto& nd = nodes_[static_cast<std::size_t>(node)];
  if (nd.feature < 0) return 0;
  return 1 + std::max(depth_below(nd.left), depth_below(nd.right));
}

int DecisionTree::depth() const {
  return nodes_.empty() ? 0 : depth_below(0);
}

std::vector<double> DecisionTree::feature_importances(
    std::size_t num_features) const {
  std::vector<double> imp(num_features, 0.0);
  if (nodes_.empty()) return imp;
  const double total = nodes_[0].n_samples;
  for (const auto& nd : nodes_) {
    if (nd.feature < 0) continue;
    const auto& l = nodes_[static_cast<std::size_t>(nd.left)];
    const auto& r = nodes_[static_cast<std::size_t>(nd.right)];
    const double decrease =
        nd.n_samples * nd.impurity - l.n_samples * l.impurity -
        r.n_samples * r.impurity;
    imp[static_cast<std::size_t>(nd.feature)] += decrease / total;
  }
  double sum = 0;
  for (double v : imp) sum += v;
  if (sum > 0) {
    for (double& v : imp) v /= sum;
  }
  return imp;
}

void DecisionTree::save(std::ostream& out) const {
  out << "wise-dtree v1\n";
  out << params_.max_depth << ' ' << params_.ccp_alpha << ' '
      << params_.min_samples_split << ' ' << params_.min_samples_leaf << '\n';
  out << nodes_.size() << '\n';
  out << std::setprecision(17);
  for (const auto& nd : nodes_) {
    out << nd.feature << ' ' << nd.threshold << ' ' << nd.left << ' '
        << nd.right << ' ' << nd.label << ' ' << nd.impurity << ' '
        << nd.n_samples << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& in) {
  auto bad = [](const std::string& what) -> void {
    throw Error(ErrorCategory::kModelBank, "DecisionTree::load: " + what);
  };
  std::string magic, version;
  in >> magic >> version;
  if (magic != "wise-dtree" || version != "v1") bad("bad header");
  DecisionTree tree;
  std::size_t n = 0;
  in >> tree.params_.max_depth >> tree.params_.ccp_alpha >>
      tree.params_.min_samples_split >> tree.params_.min_samples_leaf >> n;
  if (!in) bad("truncated stream");
  // A corrupt count must not drive a huge allocation; real trees are tiny.
  constexpr std::size_t kMaxNodes = 1u << 24;
  if (n == 0 || n > kMaxNodes) {
    bad("implausible node count " + std::to_string(n));
  }
  tree.nodes_.resize(n);
  for (auto& nd : tree.nodes_) {
    in >> nd.feature >> nd.threshold >> nd.left >> nd.right >> nd.label >>
        nd.impurity >> nd.n_samples;
  }
  if (!in) bad("truncated stream");
  // Structural check: children of a preorder-serialized tree point forward
  // and stay in range, so predict() can never walk out of the array or
  // loop forever on a corrupt file.
  const auto count = static_cast<int>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& nd = tree.nodes_[i];
    if (nd.label < 0) bad("negative class label");
    if (nd.feature < 0) continue;
    if (nd.left <= static_cast<int>(i) || nd.left >= count ||
        nd.right <= static_cast<int>(i) || nd.right >= count) {
      bad("child index out of range at node " + std::to_string(i));
    }
  }
  return tree;
}

}  // namespace wise
