#include "ml/dataset.hpp"

#include <stdexcept>

namespace wise {

void Dataset::add(std::vector<double> row, int label) {
  if (row.size() != feature_names_.size()) {
    throw std::invalid_argument("Dataset::add: feature count mismatch");
  }
  if (label < 0 || label >= num_classes_) {
    throw std::invalid_argument("Dataset::add: label out of range");
  }
  rows_.push_back(std::move(row));
  labels_.push_back(label);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(feature_names_, num_classes_);
  for (std::size_t i : indices) {
    if (i >= rows_.size()) {
      throw std::out_of_range("Dataset::subset: index out of range");
    }
    out.rows_.push_back(rows_[i]);
    out.labels_.push_back(labels_[i]);
  }
  return out;
}

}  // namespace wise
