#pragma once
// Flattened packed-node decision-tree bank for batch inference.
//
// The model bank answers every prediction by walking all ~29 configuration
// trees over ONE feature vector. Walking DecisionTree::nodes() does that as
// 29 independent pointer chases through 48-byte AoS nodes whose every step
// is a data-dependent branch — on fresh feature vectors the branch
// predictor has nothing to learn, so each level costs a likely
// misprediction on top of the dependent-load latency, and the traversal
// drags impurity/n_samples training bookkeeping through the cache.
//
// FlatTreeEnsemble re-encodes every tree into 16-byte packed nodes
// {threshold, feature, left} with each node's two children ADJACENT
// (right child = left + 1, a BFS renumbering done once at build time).
// That turns the child select into pure arithmetic —
//
//   next = left + (x[feature] <= threshold ? 0 : 1)
//
// — which the compiler lowers to a compare + add: no branch exists to
// mispredict. Leaves self-loop (left = self, threshold = +inf, so the
// comparison always takes the +0 arm), letting predict_batch advance ALL
// trees in lockstep for exactly max-depth levels with no leaf test and no
// active-list bookkeeping. The per-tree steps within a level are
// independent, so all ~29 dependent-load chains overlap in the
// out-of-order window instead of serializing.
//
// Internal nodes use the same `x[feature] <= threshold` predicate as
// DecisionTree::predict, so predictions are bit-identical to the recursive
// per-tree path for finite feature values (pinned by
// tests/flat_tree_test.cpp — the WISE pipeline rejects non-finite features
// before inference; a NaN here yields an unspecified label but stays
// in-bounds thanks to a trailing sentinel node). The speedup floor is
// gated by the perf_smoke "inference" stage.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace wise {

class FlatTreeEnsemble {
 public:
  FlatTreeEnsemble() = default;

  /// Flattens fitted trees. Unfitted trees are rejected
  /// (std::invalid_argument); an empty vector yields an empty ensemble.
  static FlatTreeEnsemble build(const std::vector<DecisionTree>& trees);

  int num_trees() const { return static_cast<int>(root_.size()); }
  bool empty() const { return root_.empty(); }

  /// out[t] = class predicted by tree t for feature vector x, identical to
  /// DecisionTree::predict of the source tree. out.size() must equal
  /// num_trees(). All trees are evaluated in one branchless lockstep sweep.
  void predict_batch(std::span<const double> x, std::span<int> out) const;

  /// Allocating convenience wrapper around predict_batch.
  std::vector<int> predict_classes(std::span<const double> x) const;

  /// Single-tree traversal over the flat arrays (used for spot checks).
  int predict_one(int tree, std::span<const double> x) const;

  /// Real node count across all trees (excludes the bounds sentinel).
  std::size_t num_nodes() const { return feature_.size(); }
  std::size_t memory_bytes() const;

 private:
  /// Exactly 16 bytes; one node is one aligned load. `left` is an absolute
  /// index into nodes_, and the right child always sits at left + 1.
  struct PackedNode {
    double threshold;       ///< +inf at leaves (self-loop always takes +0)
    std::int32_t featsel;   ///< split feature; clamped to 0 at leaves
    std::int32_t left;      ///< left child; leaf points at itself
  };
  static_assert(sizeof(PackedNode) == 16);

  // All trees concatenated in BFS order (children adjacent), plus one
  // trailing sentinel so a NaN-driven leaf overstep stays in-bounds.
  std::vector<PackedNode> nodes_;
  std::vector<std::int32_t> feature_;  ///< original feature, -1 marks a leaf
  std::vector<std::int32_t> label_;    ///< majority class per node
  std::vector<std::int32_t> root_;     ///< root node index per tree
  int depth_ = 0;                      ///< deepest tree's height in edges
};

}  // namespace wise
