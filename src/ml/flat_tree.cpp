#include "ml/flat_tree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace wise {

FlatTreeEnsemble FlatTreeEnsemble::build(
    const std::vector<DecisionTree>& trees) {
  FlatTreeEnsemble flat;
  std::size_t total = 0;
  for (const auto& tree : trees) {
    if (!tree.fitted()) {
      throw std::invalid_argument("FlatTreeEnsemble: unfitted tree");
    }
    total += tree.nodes().size();
  }
  if (total == 0) return flat;
  flat.nodes_.reserve(total + 1);
  flat.feature_.reserve(total);
  flat.label_.reserve(total + 1);
  flat.root_.reserve(trees.size());

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::int32_t> newid;
  std::vector<std::int32_t> order;  // old ids, in new-id order
  for (const auto& tree : trees) {
    const auto& nd = tree.nodes();
    const auto base = static_cast<std::int32_t>(flat.nodes_.size());
    flat.root_.push_back(base);
    flat.depth_ = std::max(flat.depth_, tree.depth());

    // BFS renumbering that hands each split node's children CONSECUTIVE new
    // ids, establishing the right-child-at-left+1 invariant the arithmetic
    // select relies on.
    newid.assign(nd.size(), -1);
    order.clear();
    order.push_back(0);
    newid[0] = 0;
    std::int32_t next = 1;
    for (std::size_t q = 0; q < order.size(); ++q) {
      const auto& o = nd[static_cast<std::size_t>(order[q])];
      if (o.feature < 0) continue;
      newid[static_cast<std::size_t>(o.left)] = next++;
      newid[static_cast<std::size_t>(o.right)] = next++;
      order.push_back(o.left);
      order.push_back(o.right);
    }

    flat.nodes_.resize(static_cast<std::size_t>(base) + nd.size());
    flat.feature_.resize(flat.nodes_.size());
    flat.label_.resize(flat.nodes_.size());
    for (std::size_t i = 0; i < nd.size(); ++i) {
      const auto& o = nd[i];
      const std::int32_t abs_id = base + newid[i];
      const auto ni = static_cast<std::size_t>(abs_id);
      flat.feature_[ni] = o.feature;
      flat.label_[ni] = o.label;
      if (o.feature < 0) {
        flat.nodes_[ni] = {kInf, 0, abs_id};
      } else {
        flat.nodes_[ni] = {o.threshold, o.feature,
                           base + newid[static_cast<std::size_t>(o.left)]};
      }
    }
  }
  // Sentinel: absorbs the one-past-a-leaf step a NaN feature can cause, so
  // even unspecified results never index out of bounds.
  flat.nodes_.push_back(
      {kInf, 0, static_cast<std::int32_t>(flat.nodes_.size()) - 1});
  flat.label_.push_back(0);
  return flat;
}

void FlatTreeEnsemble::predict_batch(std::span<const double> x,
                                     std::span<int> out) const {
  const int nt = num_trees();
  if (out.size() != static_cast<std::size_t>(nt)) {
    throw std::invalid_argument("predict_batch: output size != num_trees");
  }
  if (nt == 0) return;
  const PackedNode* nodes = nodes_.data();
  const double* xp = x.data();

  constexpr int kStackTrees = 64;
  std::int32_t cur_buf[kStackTrees];
  std::vector<std::int32_t> heap;
  std::int32_t* cur = cur_buf;
  if (nt > kStackTrees) {
    heap.resize(static_cast<std::size_t>(nt));
    cur = heap.data();
  }
  for (int t = 0; t < nt; ++t) cur[t] = root_[static_cast<std::size_t>(t)];

  // Fixed-depth branchless sweep: every level advances EVERY tree by one
  // arithmetic select — compare, add, load; nothing to mispredict. Cursors
  // parked on a leaf stay there (threshold = +inf takes the +0 arm), and
  // after depth_ levels — the deepest tree's height — every cursor is at
  // its leaf. depth_ > 0 implies some node splits, which requires x to
  // cover that feature index; depth_ == 0 never reads x at all.
  for (int level = 0; level < depth_; ++level) {
    for (int t = 0; t < nt; ++t) {
      const PackedNode nd = nodes[cur[t]];
      cur[t] =
          nd.left + static_cast<std::int32_t>(!(xp[nd.featsel] <= nd.threshold));
    }
  }
  for (int t = 0; t < nt; ++t) {
    out[static_cast<std::size_t>(t)] = label_[static_cast<std::size_t>(cur[t])];
  }
}

std::vector<int> FlatTreeEnsemble::predict_classes(
    std::span<const double> x) const {
  std::vector<int> out(static_cast<std::size_t>(num_trees()));
  predict_batch(x, out);
  return out;
}

int FlatTreeEnsemble::predict_one(int tree, std::span<const double> x) const {
  std::int32_t n = root_[static_cast<std::size_t>(tree)];
  while (feature_[static_cast<std::size_t>(n)] >= 0) {
    const PackedNode& nd = nodes_[static_cast<std::size_t>(n)];
    n = nd.left +
        static_cast<std::int32_t>(!(x[static_cast<std::size_t>(nd.featsel)] <=
                                    nd.threshold));
  }
  return label_[static_cast<std::size_t>(n)];
}

std::size_t FlatTreeEnsemble::memory_bytes() const {
  return nodes_.capacity() * sizeof(PackedNode) +
         feature_.capacity() * sizeof(std::int32_t) +
         label_.capacity() * sizeof(std::int32_t) +
         root_.capacity() * sizeof(std::int32_t);
}

}  // namespace wise
