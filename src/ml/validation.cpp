#include "ml/validation.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/ascii_plot.hpp"
#include "util/prng.hpp"

namespace wise {

std::vector<std::vector<std::size_t>> stratified_kfold(
    const std::vector<int>& labels, int k, std::uint64_t seed) {
  if (k < 2 || static_cast<std::size_t>(k) > labels.size()) {
    throw std::invalid_argument("stratified_kfold: invalid k");
  }

  // Bucket indices per class, shuffle each bucket, then deal round-robin so
  // every fold gets ~1/k of each class.
  int num_classes = 0;
  for (int l : labels) num_classes = std::max(num_classes, l + 1);
  std::vector<std::vector<std::size_t>> per_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      throw std::invalid_argument("stratified_kfold: negative label");
    }
    per_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }

  Xoshiro256 rng(seed);
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  std::size_t deal = 0;
  for (auto& bucket : per_class) {
    // Fisher-Yates with the deterministic generator.
    for (std::size_t i = bucket.size(); i > 1; --i) {
      std::swap(bucket[i - 1],
                bucket[static_cast<std::size_t>(rng.next_below(i))]);
    }
    for (std::size_t idx : bucket) {
      folds[deal % static_cast<std::size_t>(k)].push_back(idx);
      ++deal;
    }
  }
  return folds;
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<std::size_t>(num_classes) * num_classes, 0) {
  if (num_classes < 1) {
    throw std::invalid_argument("ConfusionMatrix: need >= 1 class");
  }
}

void ConfusionMatrix::add(int true_class, int predicted_class) {
  if (true_class < 0 || true_class >= num_classes_ || predicted_class < 0 ||
      predicted_class >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix::add: class out of range");
  }
  ++cells_[static_cast<std::size_t>(true_class) * num_classes_ +
           predicted_class];
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.num_classes_ != num_classes_) {
    throw std::invalid_argument("ConfusionMatrix::merge: size mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

std::int64_t ConfusionMatrix::at(int truth, int predicted) const {
  return cells_[static_cast<std::size_t>(truth) * num_classes_ + predicted];
}

std::int64_t ConfusionMatrix::total() const {
  std::int64_t t = 0;
  for (auto c : cells_) t += c;
  return t;
}

double ConfusionMatrix::accuracy() const {
  const auto t = total();
  if (t == 0) return 0.0;
  std::int64_t diag = 0;
  for (int i = 0; i < num_classes_; ++i) diag += at(i, i);
  return static_cast<double>(diag) / static_cast<double>(t);
}

double ConfusionMatrix::misclassified_within(int distance) const {
  std::int64_t wrong = 0, near = 0;
  for (int t = 0; t < num_classes_; ++t) {
    for (int p = 0; p < num_classes_; ++p) {
      if (t == p) continue;
      wrong += at(t, p);
      if (std::abs(t - p) <= distance) near += at(t, p);
    }
  }
  return wrong == 0 ? 1.0
                    : static_cast<double>(near) / static_cast<double>(wrong);
}

std::string ConfusionMatrix::render() const {
  std::vector<std::string> col_labels, row_labels;
  std::vector<std::vector<std::string>> cells;
  for (int i = 0; i < num_classes_; ++i) {
    col_labels.push_back("P" + std::to_string(i));
    row_labels.push_back("C" + std::to_string(i));
  }
  for (int t = 0; t < num_classes_; ++t) {
    std::vector<std::string> row;
    for (int p = 0; p < num_classes_; ++p) {
      row.push_back(std::to_string(at(t, p)));
    }
    cells.push_back(std::move(row));
  }
  return render_table(col_labels, row_labels, cells, "true\\pred");
}

}  // namespace wise
