#pragma once
// CART decision-tree classifier (paper §4.3).
//
// WISE uses one decision tree per {method, parameter} configuration to
// predict its speedup class. Trees are chosen over e.g. neural models
// because the features have wildly different ranges (row counts in the
// millions next to Gini indices in [0,1]) and trees need no normalization.
//
// Implementation: classic CART with the Gini split criterion, a maximum
// depth limit, and minimal cost-complexity pruning (the ccp_alpha knob),
// matching the paper's scikit-learn configuration (D=15, ccp=0.005).

#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace wise {

/// Tree hyperparameters (paper Table 4 sweeps D and ccp_alpha).
struct TreeParams {
  int max_depth = 15;
  double ccp_alpha = 0.005;
  int min_samples_split = 2;
  int min_samples_leaf = 1;

  friend bool operator==(const TreeParams&, const TreeParams&) = default;
};

class DecisionTree {
 public:
  /// One node of the flattened tree. Leaves have feature == -1.
  struct Node {
    int feature = -1;        ///< split feature index, -1 for leaves
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int label = 0;           ///< majority class (used at leaves)
    double impurity = 0.0;   ///< Gini impurity of the training samples here
    int n_samples = 0;       ///< training samples that reached this node
  };

  /// Trains on `data`. Throws std::invalid_argument on an empty dataset.
  void fit(const Dataset& data, const TreeParams& params = {});

  /// Predicts the class of one feature vector. Must be fitted.
  int predict(std::span<const double> x) const;

  std::vector<int> predict_all(const Dataset& data) const;

  /// Fraction of rows in `data` predicted correctly.
  double accuracy(const Dataset& data) const;

  bool fitted() const { return !nodes_.empty(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const;
  int depth() const;
  const std::vector<Node>& nodes() const { return nodes_; }
  const TreeParams& params() const { return params_; }

  /// Impurity-decrease feature importances, normalized to sum to 1
  /// (all-zero if the tree is a single leaf).
  std::vector<double> feature_importances(std::size_t num_features) const;

  /// Text serialization (stable across versions; used by the model bank).
  void save(std::ostream& out) const;
  static DecisionTree load(std::istream& in);

 private:
  int depth_below(int node) const;

  std::vector<Node> nodes_;  // nodes_[0] is the root when non-empty
  TreeParams params_;
};

}  // namespace wise
