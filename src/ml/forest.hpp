#pragma once
// Random-forest extension (DESIGN.md §9).
//
// The paper uses single decision trees; a bagged forest is the natural "new
// performance model" extension it suggests. Used by the ablation bench to
// quantify how much (or little) ensembling buys over the paper's choice.

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"

namespace wise {

struct ForestParams {
  int num_trees = 25;
  TreeParams tree;               ///< per-tree hyperparameters
  double row_subsample = 1.0;    ///< bootstrap fraction per tree
  std::uint64_t seed = 0x5eed;
};

/// Majority-vote ensemble of CART trees over bootstrap samples.
class RandomForest {
 public:
  void fit(const Dataset& data, const ForestParams& params = {});

  int predict(std::span<const double> x) const;
  double accuracy(const Dataset& data) const;

  bool fitted() const { return !trees_.empty(); }
  const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace wise
