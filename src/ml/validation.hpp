#pragma once
// Model validation: stratified k-fold cross-validation and confusion
// matrices (paper §5 "Model Training & Testing", §6.2).

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace wise {

/// Splits [0, labels.size()) into k folds with approximately equal class
/// proportions per fold (stratified). Deterministic given the seed.
/// Throws std::invalid_argument when k < 2 or k > number of samples.
std::vector<std::vector<std::size_t>> stratified_kfold(
    const std::vector<int>& labels, int k, std::uint64_t seed);

/// Square confusion matrix accumulator: rows = true class, cols = predicted.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int true_class, int predicted_class);
  void merge(const ConfusionMatrix& other);

  int num_classes() const { return num_classes_; }
  std::int64_t at(int truth, int predicted) const;
  std::int64_t total() const;

  /// Fraction on the diagonal.
  double accuracy() const;

  /// Of the misclassified samples, the fraction within `distance` classes
  /// of the truth (the paper reports distance-1: "within 10% of the correct
  /// execution time"). Returns 1 when nothing is misclassified.
  double misclassified_within(int distance) const;

  /// Rendered as the paper's Fig 10 grids (truth on rows).
  std::string render() const;

 private:
  int num_classes_;
  std::vector<std::int64_t> cells_;
};

}  // namespace wise
