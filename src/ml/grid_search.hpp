#pragma once
// Hyperparameter grid search with cross-validated scoring (paper §6.5 uses
// exactly this to pick D=15, ccp=0.005).

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace wise {

/// One grid point and its cross-validated score.
struct GridPoint {
  TreeParams params;
  double score = 0;  ///< mean held-out accuracy across folds
};

struct GridSearchResult {
  std::vector<GridPoint> points;  ///< every evaluated combination
  TreeParams best;                ///< highest-scoring parameters
  double best_score = 0;
};

/// Evaluates every (max_depth, ccp_alpha) combination by k-fold
/// cross-validated accuracy on `data`; ties go to the earlier grid point
/// (smaller depth first), making the result deterministic.
GridSearchResult grid_search_tree(const Dataset& data,
                                  const std::vector<int>& depths,
                                  const std::vector<double>& ccp_alphas,
                                  int folds = 5, std::uint64_t seed = 0x96d);

/// Generic scorer variant: `score(train, test)` returns a
/// higher-is-better number for a candidate parameter set.
using ParamScorer =
    std::function<double(const TreeParams&, const Dataset& train,
                         const Dataset& test)>;

GridSearchResult grid_search_custom(const Dataset& data,
                                    const std::vector<int>& depths,
                                    const std::vector<double>& ccp_alphas,
                                    const ParamScorer& scorer, int folds = 5,
                                    std::uint64_t seed = 0x96d);

}  // namespace wise
