#include "ml/grid_search.hpp"

#include <limits>
#include <stdexcept>

#include "ml/validation.hpp"

namespace wise {

namespace {

GridSearchResult run_grid(const Dataset& data, const std::vector<int>& depths,
                          const std::vector<double>& ccp_alphas,
                          const ParamScorer& scorer, int folds,
                          std::uint64_t seed) {
  if (depths.empty() || ccp_alphas.empty()) {
    throw std::invalid_argument("grid_search: empty grid");
  }
  const auto fold_indices = stratified_kfold(data.labels(), folds, seed);

  // Precompute the train/test datasets once; every grid point reuses them.
  std::vector<Dataset> trains, tests;
  for (const auto& test_fold : fold_indices) {
    std::vector<bool> in_test(data.size(), false);
    for (std::size_t idx : test_fold) in_test[idx] = true;
    std::vector<std::size_t> train_idx, test_idx;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (in_test[i] ? test_idx : train_idx).push_back(i);
    }
    trains.push_back(data.subset(train_idx));
    tests.push_back(data.subset(test_idx));
  }

  GridSearchResult result;
  result.best_score = -std::numeric_limits<double>::infinity();
  for (int depth : depths) {
    for (double ccp : ccp_alphas) {
      const TreeParams params{.max_depth = depth, .ccp_alpha = ccp};
      double total = 0;
      for (std::size_t f = 0; f < trains.size(); ++f) {
        total += scorer(params, trains[f], tests[f]);
      }
      const double score = total / static_cast<double>(trains.size());
      result.points.push_back({params, score});
      if (score > result.best_score) {
        result.best_score = score;
        result.best = params;
      }
    }
  }
  return result;
}

}  // namespace

GridSearchResult grid_search_tree(const Dataset& data,
                                  const std::vector<int>& depths,
                                  const std::vector<double>& ccp_alphas,
                                  int folds, std::uint64_t seed) {
  return run_grid(
      data, depths, ccp_alphas,
      [](const TreeParams& params, const Dataset& train, const Dataset& test) {
        DecisionTree tree;
        tree.fit(train, params);
        return tree.accuracy(test);
      },
      folds, seed);
}

GridSearchResult grid_search_custom(const Dataset& data,
                                    const std::vector<int>& depths,
                                    const std::vector<double>& ccp_alphas,
                                    const ParamScorer& scorer, int folds,
                                    std::uint64_t seed) {
  return run_grid(data, depths, ccp_alphas, scorer, folds, seed);
}

}  // namespace wise
