#pragma once
// Tabular dataset container for the performance-prediction models.

#include <span>
#include <string>
#include <vector>

namespace wise {

/// Rows of doubles with integer class labels in [0, num_classes).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names, int num_classes)
      : feature_names_(std::move(feature_names)), num_classes_(num_classes) {}

  void add(std::vector<double> row, int label);

  std::size_t size() const { return rows_.size(); }
  std::size_t num_features() const { return feature_names_.size(); }
  int num_classes() const { return num_classes_; }

  std::span<const double> row(std::size_t i) const { return rows_[i]; }
  int label(std::size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Subset by row indices (copies).
  Dataset subset(const std::vector<std::size_t>& indices) const;

 private:
  std::vector<std::string> feature_names_;
  int num_classes_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

}  // namespace wise
