#include "wise/baselines.hpp"

#include <limits>
#include <stdexcept>

#include "util/prng.hpp"
#include "util/timer.hpp"

namespace wise {

namespace {

ExplorationResult explore(const CsrMatrix& m,
                          std::span<const MethodConfig> configs, int iters) {
  if (configs.empty()) {
    throw std::invalid_argument("explore: no candidate configurations");
  }
  aligned_vector<value_t> x(static_cast<std::size_t>(m.ncols()));
  aligned_vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  Xoshiro256 rng(0xbedd1e);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());

  ExplorationResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();

  Timer total;
  for (const auto& cfg : configs) {
    PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
    const double secs = time_spmv(pm, x, y, iters, /*repeats=*/1);
    if (secs < result.best_seconds) {
      result.best_seconds = secs;
      result.best = cfg;
    }
  }
  result.preprocessing_seconds = total.seconds();
  return result;
}

}  // namespace

ExplorationResult oracle_select(const CsrMatrix& m,
                                std::span<const MethodConfig> configs,
                                int iters) {
  return explore(m, configs, iters);
}

std::vector<MethodConfig> inspector_executor_candidates() {
  return {
      {.kind = MethodKind::kCsr, .sched = Schedule::kDyn},
      {.kind = MethodKind::kSellpack, .sched = Schedule::kStCont, .c = 8},
      {.kind = MethodKind::kSellCSigma,
       .sched = Schedule::kStCont,
       .c = 8,
       .sigma = 1 << 12},
      {.kind = MethodKind::kSellCR,
       .sched = Schedule::kDyn,
       .c = 8,
       .sigma = kSigmaAll},
      {.kind = MethodKind::kLav1Seg,
       .sched = Schedule::kDyn,
       .c = 8,
       .sigma = kSigmaAll},
      {.kind = MethodKind::kLav,
       .sched = Schedule::kDyn,
       .c = 8,
       .sigma = kSigmaAll,
       .T = 0.8},
  };
}

ExplorationResult inspector_executor_select(
    const CsrMatrix& m, std::span<const MethodConfig> candidates,
    int probe_iters) {
  return explore(m, candidates, probe_iters);
}

}  // namespace wise
