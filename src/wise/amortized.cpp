#include "wise/amortized.hpp"

#include <limits>
#include <stdexcept>

#include "features/extractor.hpp"
#include "wise/speedup_class.hpp"

namespace wise {

namespace {
// Upper bounds of prep classes P0..P4 (P5 is open-ended).
constexpr double kPrepBounds[] = {1, 3, 8, 20, 50};
constexpr double kPrepMidpoints[] = {0.5, 2, 5, 13, 33, 80};
}  // namespace

int classify_prep_cost(double prep_csr_iters) {
  if (!(prep_csr_iters >= 0)) {
    throw std::invalid_argument("classify_prep_cost: negative cost");
  }
  for (int k = 0; k < kNumPrepClasses - 1; ++k) {
    if (prep_csr_iters < kPrepBounds[k]) return k;
  }
  return kNumPrepClasses - 1;
}

double prep_class_midpoint(int cls) {
  if (cls < 0 || cls >= kNumPrepClasses) {
    throw std::out_of_range("prep_class_midpoint");
  }
  return kPrepMidpoints[cls];
}

void AmortizedWise::train(const std::vector<MethodConfig>& configs,
                          const std::vector<std::vector<double>>& features,
                          const std::vector<std::vector<double>>& rel_times,
                          const std::vector<std::vector<double>>& prep_iters,
                          const TreeParams& params) {
  if (configs.empty() || features.empty() ||
      features.size() != rel_times.size() ||
      features.size() != prep_iters.size()) {
    throw std::invalid_argument("AmortizedWise::train: shape mismatch");
  }
  configs_ = configs;
  speed_trees_.assign(configs.size(), {});
  prep_trees_.assign(configs.size(), {});

  const auto& names = feature_names();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    Dataset speed_ds(names, kNumSpeedupClasses);
    Dataset prep_ds(names, kNumPrepClasses);
    for (std::size_t i = 0; i < features.size(); ++i) {
      if (rel_times[i].size() != configs.size() ||
          prep_iters[i].size() != configs.size()) {
        throw std::invalid_argument("AmortizedWise::train: row width");
      }
      speed_ds.add(features[i], classify_relative_time(rel_times[i][c]));
      prep_ds.add(features[i], classify_prep_cost(prep_iters[i][c]));
    }
    speed_trees_[c].fit(speed_ds, params);
    prep_trees_[c].fit(prep_ds, params);
  }
}

AmortizedChoice AmortizedWise::choose(std::span<const double> features,
                                      double expected_iterations) const {
  if (!trained()) {
    throw std::logic_error("AmortizedWise::choose: not trained");
  }
  if (!(expected_iterations > 0)) {
    throw std::invalid_argument(
        "AmortizedWise::choose: iterations must be > 0");
  }

  AmortizedChoice best;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<double> best_rank;
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    const int speed_cls = speed_trees_[c].predict(features);
    const int prep_cls = prep_trees_[c].predict(features);
    const double cost =
        expected_iterations * class_midpoint_rel(speed_cls) +
        prep_class_midpoint(prep_cls);
    auto rank = configs_[c].selection_rank();
    const bool better =
        cost < best_cost - 1e-12 ||
        (cost < best_cost + 1e-12 && (best_rank.empty() || rank < best_rank));
    if (better) {
      best_cost = cost;
      best_rank = std::move(rank);
      best = {configs_[c], speed_cls, prep_cls, cost};
    }
  }
  return best;
}

}  // namespace wise
