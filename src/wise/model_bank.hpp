#pragma once
// The bank of per-configuration performance models (paper Fig 8, step 2).
//
// WISE trains one decision tree per {method, parameter} configuration; each
// tree maps a matrix's feature vector to the configuration's speedup class.
// The bank owns the trees, keyed by MethodConfig::name(), and can be saved
// to / loaded from a directory so a trained WISE ships with the library.

#include <span>
#include <string>
#include <vector>

#include "ml/decision_tree.hpp"
#include "spmv/method.hpp"

namespace wise {

class ModelBank {
 public:
  /// Trains one tree per configuration.
  ///   features[i]        — feature vector of training matrix i
  ///   rel_times[i][c]    — t_config / t_bestCSR of matrix i, configuration
  ///                        configs[c]
  /// Throws std::invalid_argument on shape mismatches.
  void train(const std::vector<MethodConfig>& configs,
             const std::vector<std::vector<double>>& features,
             const std::vector<std::vector<double>>& rel_times,
             const TreeParams& params = {});

  /// Predicted speedup class per configuration, in configs() order.
  std::vector<int> predict_classes(std::span<const double> features) const;

  const std::vector<MethodConfig>& configs() const { return configs_; }
  const std::vector<DecisionTree>& trees() const { return trees_; }
  bool trained() const { return !trees_.empty(); }

  /// Persists as <dir>/models.txt (one header + serialized trees).
  void save(const std::string& dir) const;
  static ModelBank load(const std::string& dir);

 private:
  std::vector<MethodConfig> configs_;
  std::vector<DecisionTree> trees_;
};

}  // namespace wise
