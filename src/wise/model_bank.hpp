#pragma once
// The bank of per-configuration performance models (paper Fig 8, step 2).
//
// WISE trains one decision tree per {method, parameter} configuration; each
// tree maps a matrix's feature vector to the configuration's speedup class.
// The bank owns the trees, keyed by MethodConfig::name(), and can be saved
// to / loaded from a directory so a trained WISE ships with the library.
//
// Persistence format (<dir>/models.txt), version 3:
//
//   wise-model-bank v3
//   features <feature dim>
//   <#configs>
//   <config name>
//   tree <payload bytes> <fnv1a checksum, hex>
//   <payload: serialized DecisionTree, exactly that many bytes>
//   ... repeated per configuration ...
//
// The per-tree length + checksum let load() detect corruption of any one
// tree and *skip* it — the remaining configurations stay usable and a
// warning is recorded (degrade, don't die). The feature-dim record is what
// makes hardware-conditioned banks possible: a bank trained on 67 + 5
// machine-feature columns (src/hw/probe.hpp) declares 72 here, and
// Wise::choose() appends hw::machine_features() to every extracted vector
// before inference. Version 2 files (no feature-dim record) load with a
// counted warning and are pinned to the 67 matrix features; version 1
// files (no checksums either) still load, strictly. A bank in which no
// tree survives throws wise::Error (kModelBank).

#include <span>
#include <string>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/flat_tree.hpp"
#include "spmv/method.hpp"

namespace wise {

class ModelBank {
 public:
  /// Trains one tree per configuration.
  ///   features[i]        — feature vector of training matrix i
  ///   rel_times[i][c]    — t_config / t_bestCSR of matrix i, configuration
  ///                        configs[c]
  /// All feature rows must share one width; that width becomes the bank's
  /// feature_dim() (67 for plain matrix features, 67 + 5 for
  /// hardware-conditioned training via train_model_bank_conditioned).
  /// Throws std::invalid_argument on shape mismatches.
  void train(const std::vector<MethodConfig>& configs,
             const std::vector<std::vector<double>>& features,
             const std::vector<std::vector<double>>& rel_times,
             const TreeParams& params = {});

  /// Builds a bank from already-fitted trees, one per configuration — the
  /// online-learning retrainer's path (src/learn/): it refits only the
  /// trees with enough fresh samples and carries the live bank's trees for
  /// the rest, then reassembles here (including the flat-tree recompile).
  /// Throws std::invalid_argument on shape mismatch, emptiness, or an
  /// unfitted tree.
  /// `feature_dim` 0 means "the default 67 matrix features".
  static ModelBank assemble(std::vector<MethodConfig> configs,
                            std::vector<DecisionTree> trees,
                            std::size_t feature_dim = 0);

  /// The §7 add-a-method path: a new bank whose configuration list is
  /// base's plus `new_configs`, and whose trees are base's trees —
  /// *unchanged, byte-identical on save()* — plus the freshly trained
  /// `new_trees`. Throws std::invalid_argument on shape mismatch or a
  /// config name already present in base (existing models must never be
  /// replaced through this path).
  static ModelBank extended(const ModelBank& base,
                            std::vector<MethodConfig> new_configs,
                            std::vector<DecisionTree> new_trees);

  /// Predicted speedup class of a single configuration (holdout validation
  /// and spot checks; the serving path uses predict_classes_into).
  int predict_class(std::size_t config_index,
                    std::span<const double> features) const;

  /// Predicted speedup class per configuration, in configs() order.
  /// Served from the flattened ensemble: all trees are evaluated in one
  /// lockstep SoA sweep (ml/flat_tree.hpp), bit-identical to walking each
  /// DecisionTree in trees() individually.
  std::vector<int> predict_classes(std::span<const double> features) const;

  /// predict_classes without the allocation: out.size() must equal
  /// configs().size(). The serving hot path calls this per request.
  void predict_classes_into(std::span<const double> features,
                            std::span<int> out) const;

  const std::vector<MethodConfig>& configs() const { return configs_; }
  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// Width of the feature vectors this bank was trained on: 67 for plain
  /// matrix-feature banks (including every v1/v2 file), larger for
  /// hardware-conditioned banks (the extra columns are
  /// hw::machine_feature_names()). predict_* throws std::invalid_argument
  /// on a vector of any other width.
  std::size_t feature_dim() const;

  /// The flattened inference bank, rebuilt by train() and load().
  const FlatTreeEnsemble& flat() const { return flat_; }

  bool trained() const { return !trees_.empty(); }

  /// Persists as <dir>/models.txt (versioned header + checksummed trees).
  void save(const std::string& dir) const;

  /// Loads a bank saved by save(). Corrupt individual trees are skipped
  /// with a warning (see warnings()); throws wise::Error (kModelBank) when
  /// the file is missing, the header is unreadable, or no tree survives.
  static ModelBank load(const std::string& dir);

  /// Human-readable reports of trees skipped by load(); empty when the
  /// bank loaded cleanly.
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  /// Throws std::invalid_argument unless features.size() == feature_dim().
  void check_width(std::span<const double> features) const;

  std::vector<MethodConfig> configs_;
  std::vector<DecisionTree> trees_;
  FlatTreeEnsemble flat_;
  std::vector<std::string> warnings_;
  std::size_t feature_dim_ = 0;  ///< 0 = the default 67 matrix features
};

/// Column labels for a `dim`-wide training Dataset: the 67 matrix feature
/// names, then hw::machine_feature_names(), then generated "extra<i>"
/// fillers — truncated or padded to exactly `dim` entries.
std::vector<std::string> bank_feature_names(std::size_t dim);

}  // namespace wise
