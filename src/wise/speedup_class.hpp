#pragma once
// Speedup classes C0..C6 (paper §4.3).
//
// Each performance model predicts a *class* of relative execution time
// r = t_config / t_bestCSR rather than a raw number:
//   C0: r > 1.05          (slowdown)
//   C1: 0.95 < r <= 1.05  (parity)
//   C2: 0.85 < r <= 0.95
//   C3: 0.75 < r <= 0.85
//   C4: 0.65 < r <= 0.75
//   C5: 0.55 < r <= 0.65
//   C6: r <= 0.55         (more than ~2x speedup)
// Higher class index means faster execution.

#include <string>

namespace wise {

inline constexpr int kNumSpeedupClasses = 7;

/// Maps a relative execution time to its class. r must be positive.
int classify_relative_time(double rel_time);

/// Inclusive upper bound of the class's relative-time range (C0 returns
/// +infinity's stand-in of 8.0 for plotting purposes via midpoint below).
double class_upper_rel(int cls);

/// Exclusive lower bound of the class's relative-time range (C6 returns 0).
double class_lower_rel(int cls);

/// Representative relative time of a class: midpoint of its range; C0 and
/// C6 use 1.10 and 0.50 respectively. Used when a scalar estimate is needed
/// (e.g. ranking classes by expected speedup).
double class_midpoint_rel(int cls);

/// "C0".."C6".
std::string class_name(int cls);

}  // namespace wise
