#include "wise/speedup_class.hpp"

#include <stdexcept>

namespace wise {

namespace {
// Class k (for k in 1..6) covers (kBounds[k], kBounds[k-1]].
constexpr double kBounds[] = {1.05, 0.95, 0.85, 0.75, 0.65, 0.55};
}  // namespace

int classify_relative_time(double rel_time) {
  if (!(rel_time > 0)) {
    throw std::invalid_argument("classify_relative_time: non-positive time");
  }
  if (rel_time > kBounds[0]) return 0;
  for (int k = 1; k <= 5; ++k) {
    if (rel_time > kBounds[k]) return k;
  }
  return 6;
}

double class_upper_rel(int cls) {
  if (cls < 0 || cls >= kNumSpeedupClasses) {
    throw std::out_of_range("class_upper_rel");
  }
  if (cls == 0) return 8.0;  // open-ended slowdown range, capped for plots
  return kBounds[cls - 1];
}

double class_lower_rel(int cls) {
  if (cls < 0 || cls >= kNumSpeedupClasses) {
    throw std::out_of_range("class_lower_rel");
  }
  if (cls == 6) return 0.0;
  return kBounds[cls];
}

double class_midpoint_rel(int cls) {
  if (cls == 0) return 1.10;
  if (cls == 6) return 0.50;
  return (class_lower_rel(cls) + class_upper_rel(cls)) / 2;
}

std::string class_name(int cls) {
  if (cls < 0 || cls >= kNumSpeedupClasses) {
    throw std::out_of_range("class_name");
  }
  return "C" + std::to_string(cls);
}

}  // namespace wise
