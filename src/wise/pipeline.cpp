#include "wise/pipeline.hpp"

#include <stdexcept>

#include <omp.h>

#include "util/timer.hpp"
#include "wise/selector.hpp"

namespace wise {

Wise::Wise(ModelBank bank) : bank_(std::move(bank)) {
  if (!bank_.trained()) {
    throw std::invalid_argument("Wise: model bank is not trained");
  }
}

WiseChoice Wise::choose(const CsrMatrix& m) const {
  WiseChoice choice;

  Timer t;
  const FeatureVector features = extract_features(m, feature_params);
  choice.feature_seconds = t.seconds();
  choice.feature_threads = omp_get_max_threads();

  t.reset();
  const std::vector<int> classes = bank_.predict_classes(features.values);
  const std::size_t best = select_best_config(bank_.configs(), classes);
  choice.inference_seconds = t.seconds();

  choice.config = bank_.configs()[best];
  choice.predicted_class = classes[best];
  return choice;
}

PreparedMatrix Wise::prepare(const CsrMatrix& m) const {
  const WiseChoice choice = choose(m);
  return PreparedMatrix::prepare(m, choice.config);
}

}  // namespace wise
