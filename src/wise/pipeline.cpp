#include "wise/pipeline.hpp"

#include <cmath>
#include <new>
#include <stdexcept>

#include <omp.h>

#include "hw/probe.hpp"
#include "obs/metrics.hpp"
#include "spmv/applicability.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"
#include "wise/selector.hpp"

namespace wise {

namespace {

/// The configuration the pipeline demotes to when a stage fails: the best
/// CSR variant the bank knows. With per-config predictions available the
/// selection heuristic runs restricted to the CSR subset; without them the
/// deterministic tie-break order picks the cheapest CSR variant. A bank
/// with no CSR configuration at all falls back to the library default
/// (CSR, static-contiguous).
MethodConfig best_csr_config(const ModelBank& bank,
                             const std::vector<int>* classes,
                             int* predicted_class) {
  std::vector<MethodConfig> csr;
  std::vector<int> csr_classes;
  const auto& configs = bank.configs();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (configs[i].kind != MethodKind::kCsr) continue;
    csr.push_back(configs[i]);
    if (classes != nullptr) csr_classes.push_back((*classes)[i]);
  }
  if (csr.empty()) return MethodConfig{};  // library default: CSR / StCont

  std::size_t best = 0;
  if (classes != nullptr) {
    best = select_best_config(csr, csr_classes);
    if (predicted_class != nullptr) {
      *predicted_class = csr_classes[best];
    }
  } else {
    for (std::size_t i = 1; i < csr.size(); ++i) {
      if (csr[i].selection_rank() < csr[best].selection_rank()) best = i;
    }
  }
  return csr[best];
}

/// Stamps a demoted choice: CSR config + "<stage>: <why>".
void demote(WiseChoice& choice, const ModelBank& bank, const char* stg,
            const std::string& why, const std::vector<int>* classes) {
  choice.predicted_class = 0;
  choice.config = best_csr_config(bank, classes, &choice.predicted_class);
  choice.fallback_reason = std::string(stg) + ": " + why;
  obs::MetricsRegistry::global().add("wise.fallback.count");
}

}  // namespace

Wise::Wise(ModelBank bank) : bank_(std::move(bank)) {
  if (!bank_.trained()) {
    throw std::invalid_argument("Wise: model bank is not trained");
  }
  memory_budget_bytes =
      static_cast<std::size_t>(env_int("WISE_MEMORY_BUDGET", 0));
}

WiseChoice Wise::choose(const CsrMatrix& m) const {
  WiseChoice choice;
  choice.feature_threads = omp_get_max_threads();
  auto& metrics = obs::MetricsRegistry::global();
  metrics.add("wise.choose.count");
  metrics.set_gauge("wise.feature.threads",
                    static_cast<double>(choice.feature_threads));

  FeatureVector features;
  Timer t;
  try {
    obs::ScopedTimer span("wise.choose.feature");
    FaultInjector::global().maybe_throw(stage::kFeature,
                                        ErrorCategory::kValidation);
    features = extract_features(m, feature_params);
    for (double v : features.values) {
      if (!std::isfinite(v)) {
        throw Error(ErrorCategory::kValidation, "non-finite feature value",
                    {.stage = stage::kFeature});
      }
    }
  } catch (const std::exception& e) {
    choice.feature_seconds = t.seconds();
    demote(choice, bank_, stage::kFeature, e.what(), nullptr);
    return choice;
  }
  choice.feature_seconds = t.seconds();

  t.reset();
  std::vector<int> classes;
  try {
    obs::ScopedTimer span("wise.choose.inference");
    FaultInjector::global().maybe_throw(stage::kInference,
                                        ErrorCategory::kModelBank);
    if (bank_.feature_dim() > features.values.size()) {
      // A hardware-conditioned bank (ModelBank v3 with machine-feature
      // columns): complete the vector with this machine's probe. Any
      // remaining width mismatch throws below and demotes to CSR.
      for (double v : hw::machine_features()) {
        features.values.push_back(v);
      }
    }
    classes = bank_.predict_classes(features.values);
    const std::vector<char> applicable =
        applicability_mask(bank_.configs(), m);
    const std::size_t best =
        select_best_config(bank_.configs(), classes, applicable);
    choice.config = bank_.configs()[best];
    choice.predicted_class = classes[best];
  } catch (const std::exception& e) {
    choice.inference_seconds = t.seconds();
    demote(choice, bank_, stage::kInference, e.what(), nullptr);
    return choice;
  }
  choice.inference_seconds = t.seconds();
  choice.features = std::make_shared<const std::vector<double>>(
      std::move(features.values));
  return choice;
}

PreparedMatrix Wise::prepare(const CsrMatrix& m) const {
  WiseChoice choice;
  return prepare(m, choice);
}

PreparedMatrix Wise::prepare(const CsrMatrix& m,
                             WiseChoice& choice_out) const {
  try {
    FaultInjector::global().maybe_throw(stage::kParse,
                                        ErrorCategory::kValidation);
    if (validate_input) {
      obs::ScopedTimer span("wise.prepare.validate");
      m.validate();
    }
    choice_out = choose(m);
  } catch (const std::exception& e) {
    // Input validation failed before selection could run; the CSR baseline
    // executes the matrix as-is.
    choice_out = WiseChoice{};
    choice_out.feature_threads = omp_get_max_threads();
    demote(choice_out, bank_, stage::kParse, e.what(), nullptr);
  }

  if (choice_out.config.kind != MethodKind::kCsr) {
    try {
      obs::ScopedTimer span("wise.prepare.conversion");
      FaultInjector::global().maybe_throw(stage::kConversion,
                                          ErrorCategory::kConversion);
      if (memory_budget_bytes > 0 && m.memory_bytes() > memory_budget_bytes) {
        // A converted layout stores at least the CSR nonzeros (plus
        // padding), so exceeding the budget is knowable before building.
        throw Error(ErrorCategory::kResource,
                    "conversion estimate exceeds memory budget of " +
                        std::to_string(memory_budget_bytes) + " bytes",
                    {.stage = stage::kConversion});
      }
      PreparedMatrix pm = PreparedMatrix::prepare(m, choice_out.config);
      if (memory_budget_bytes > 0 &&
          pm.memory_bytes() > memory_budget_bytes) {
        throw Error(ErrorCategory::kResource,
                    "converted layout (" + std::to_string(pm.memory_bytes()) +
                        " bytes) exceeds memory budget of " +
                        std::to_string(memory_budget_bytes) + " bytes",
                    {.stage = stage::kConversion});
      }
      return pm;
    } catch (const std::bad_alloc&) {
      demote(choice_out, bank_, stage::kConversion,
             "out of memory during layout conversion", nullptr);
    } catch (const std::exception& e) {
      demote(choice_out, bank_, stage::kConversion, e.what(), nullptr);
    }
  }
  return PreparedMatrix::prepare(m, choice_out.config);
}

}  // namespace wise
