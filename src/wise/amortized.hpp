#pragma once
// Amortization-aware selection (extension of paper §4.4).
//
// The paper's heuristic uses preprocessing cost only as a tie-break, which
// is the right call when SpMV runs thousands of iterations. But for short
// runs the conversion cost can exceed the total savings. This extension
// trains a second tree per configuration that predicts the *preprocessing
// cost class* (conversion time expressed in best-CSR SpMV iterations) from
// the same features, and selects the configuration minimizing the expected
// total cost for a caller-supplied iteration count N:
//
//     cost(config) ≈ N * rel_time(speedup class midpoint)
//                    + prep_iters(prep class midpoint)
//
// measured in units of best-CSR iterations. As N → ∞ this converges to the
// paper's heuristic; at small N it prefers cheap formats.

#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "spmv/method.hpp"

namespace wise {

/// Number of preprocessing-cost classes.
inline constexpr int kNumPrepClasses = 6;

/// Buckets a preprocessing cost (in best-CSR iterations) into classes
/// P0=[0,1) P1=[1,3) P2=[3,8) P3=[8,20) P4=[20,50) P5=[50,inf).
int classify_prep_cost(double prep_csr_iters);

/// Representative cost of a class (geometric-ish midpoints; P5 uses 80).
double prep_class_midpoint(int cls);

struct AmortizedChoice {
  MethodConfig config;
  int speed_class = 0;
  int prep_class = 0;
  double expected_cost_iters = 0;  ///< N*rel + prep, in best-CSR iterations
};

/// Dual-model selector: speedup trees + preprocessing-cost trees.
class AmortizedWise {
 public:
  /// Trains both model families.
  ///   rel_times[i][c]  — t_config / t_bestCSR (as in ModelBank)
  ///   prep_iters[i][c] — prep_seconds / t_bestCSR
  void train(const std::vector<MethodConfig>& configs,
             const std::vector<std::vector<double>>& features,
             const std::vector<std::vector<double>>& rel_times,
             const std::vector<std::vector<double>>& prep_iters,
             const TreeParams& params = {});

  /// Picks the configuration minimizing expected total cost over
  /// `expected_iterations` SpMV runs. Ties (within 1e-12) break toward the
  /// paper's preprocessing-cost order.
  AmortizedChoice choose(std::span<const double> features,
                         double expected_iterations) const;

  bool trained() const { return !speed_trees_.empty(); }
  const std::vector<MethodConfig>& configs() const { return configs_; }

 private:
  std::vector<MethodConfig> configs_;
  std::vector<DecisionTree> speed_trees_;
  std::vector<DecisionTree> prep_trees_;
};

}  // namespace wise
