#pragma once
// End-to-end WISE pipeline (paper Fig 8): feature extraction → per-config
// class prediction → selection → layout conversion → SpMV.
//
// This is the library's main user-facing entry point:
//
//   wise::Wise predictor(wise::ModelBank::load("models/"));
//   auto prepared = predictor.prepare(csr_matrix);   // picks + converts
//   prepared.run(x, y);                              // fast SpMV
//
// The choice is user-transparent: callers never name a format — and it is
// never worse than the CSR baseline. When any stage fails (invalid input,
// non-finite features, a corrupt model bank, a failed or over-budget layout
// conversion, std::bad_alloc), choose()/prepare() demote to the best CSR
// configuration instead of throwing, and record why in
// WiseChoice::fallback_reason. Failure paths are exercised deterministically
// via util/fault.hpp (WISE_FAULT_STAGES). See docs/ROBUSTNESS.md.
//
// Thread-safety contract (relied on by serve/server.hpp): choose() and
// prepare() are const and safe to call concurrently from any number of
// threads against one shared Wise/ModelBank. Audited guarantees:
//  * ModelBank::predict_classes walks the immutable flattened SoA node
//    arrays (ml/flat_tree.hpp), built eagerly at train()/load() time — no
//    lazy initialization, no caching, no mutable members. Its per-call
//    cursor state lives on the caller's stack.
//  * extract_features uses only locals and its own OpenMP region; its one
//    static (the feature-name table) has thread-safe magic-static init.
//  * The global MetricsRegistry and FaultInjector the stages consult are
//    internally synchronized.
// The mutable knobs below (feature_params, validate_input,
// memory_budget_bytes) are configuration: set them before sharing the
// object across threads. The PreparedMatrix a prepare() returns is NOT
// concurrency-safe (see executor.hpp) — each caller runs its own.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "features/extractor.hpp"
#include "spmv/executor.hpp"
#include "wise/model_bank.hpp"

namespace wise {

/// Outcome of the selection stage, including the measured decision costs.
struct WiseChoice {
  MethodConfig config;
  int predicted_class = 0;
  double feature_seconds = 0;    ///< feature-extraction wall time
  double inference_seconds = 0;  ///< tree-inference + selection wall time
  int feature_threads = 1;       ///< OpenMP threads available to the extractor

  /// Empty on the normal path. On degradation: "<stage>: <why>", where
  /// stage is one of parse, feature, inference, conversion (see
  /// util/fault.hpp) and config has been demoted to the best CSR variant.
  std::string fallback_reason;

  /// The feature vector inference ran on, kept for the online-learning
  /// loop (src/learn/): a served RUN of this choice is a free labeled
  /// sample, and re-extracting features would cost the O(nnz) sweep the
  /// cache exists to avoid. Null on the fallback paths (nothing was
  /// predicted, so there is nothing to learn from). Shared, not copied:
  /// the vector rides along through both serve cache tiers.
  std::shared_ptr<const std::vector<double>> features;

  bool fell_back() const { return !fallback_reason.empty(); }
};

class Wise {
 public:
  /// Takes ownership of a trained bank. Throws if the bank is untrained.
  explicit Wise(ModelBank bank);

  /// Runs feature extraction + model inference + the selection heuristic.
  /// Never throws on data-driven failures: a failing stage demotes the
  /// choice to the best CSR configuration (see WiseChoice::fallback_reason).
  WiseChoice choose(const CsrMatrix& m) const;

  /// choose() + layout conversion. The returned PreparedMatrix references
  /// `m` when CSR is selected, so `m` must outlive it. A failed or
  /// over-budget conversion falls back to CSR rather than throwing.
  PreparedMatrix prepare(const CsrMatrix& m) const;

  /// Same, reporting the (possibly demoted) choice through `choice_out`.
  PreparedMatrix prepare(const CsrMatrix& m, WiseChoice& choice_out) const;

  const ModelBank& bank() const { return bank_; }

  FeatureParams feature_params;  ///< tiling resolution override, if any

  /// Re-validate the input matrix at the top of prepare() (O(nnz) scan).
  /// On by default; hot loops that prepare many trusted matrices can turn
  /// it off.
  bool validate_input = true;

  /// Upper bound in bytes for a converted (non-CSR) layout; conversions
  /// whose estimated or actual footprint exceeds it are demoted to CSR
  /// with a kResource fallback. 0 = unlimited. Initialized from the
  /// WISE_MEMORY_BUDGET environment variable (bytes, default 0).
  std::size_t memory_budget_bytes = 0;

 private:
  ModelBank bank_;
};

}  // namespace wise
