#pragma once
// End-to-end WISE pipeline (paper Fig 8): feature extraction → per-config
// class prediction → selection → layout conversion → SpMV.
//
// This is the library's main user-facing entry point:
//
//   wise::Wise predictor(wise::ModelBank::load("models/"));
//   auto prepared = predictor.prepare(csr_matrix);   // picks + converts
//   prepared.run(x, y);                              // fast SpMV
//
// The choice is user-transparent: callers never name a format.

#include <span>

#include "features/extractor.hpp"
#include "spmv/executor.hpp"
#include "wise/model_bank.hpp"

namespace wise {

/// Outcome of the selection stage, including the measured decision costs.
struct WiseChoice {
  MethodConfig config;
  int predicted_class = 0;
  double feature_seconds = 0;    ///< feature-extraction wall time
  double inference_seconds = 0;  ///< tree-inference + selection wall time
  int feature_threads = 1;       ///< OpenMP threads available to the extractor
};

class Wise {
 public:
  /// Takes ownership of a trained bank. Throws if the bank is untrained.
  explicit Wise(ModelBank bank);

  /// Runs feature extraction + model inference + the selection heuristic.
  WiseChoice choose(const CsrMatrix& m) const;

  /// choose() + layout conversion. The returned PreparedMatrix references
  /// `m` when CSR is selected, so `m` must outlive it.
  PreparedMatrix prepare(const CsrMatrix& m) const;

  const ModelBank& bank() const { return bank_; }

  FeatureParams feature_params;  ///< tiling resolution override, if any

 private:
  ModelBank bank_;
};

}  // namespace wise
