#pragma once
// Comparison baselines (paper §6.3-6.4).
//
//  * Oracle: exhaustively measures every configuration and keeps the
//    fastest — the upper bound WISE is compared against (Fig 13b).
//  * Inspector-executor: an empirical autotuner standing in for Intel MKL's
//    closed-source inspector-executor, which the paper describes only as
//    "explores different methods before picking the best one". Our stand-in
//    converts + probe-times a candidate subset (one representative per
//    method family by default) and returns the winner; its preprocessing
//    overhead is the total exploration time, which — like MKL IE's — is a
//    multiple of plain SpMV iterations.

#include <span>
#include <vector>

#include "spmv/executor.hpp"
#include "spmv/method.hpp"

namespace wise {

struct ExplorationResult {
  MethodConfig best;
  double best_seconds = 0;           ///< measured per-iteration time of best
  double preprocessing_seconds = 0;  ///< conversions + probing, total
};

/// Oracle: tries every configuration in `configs` with `iters` timed
/// iterations each and returns the fastest. preprocessing_seconds reports
/// the exhaustive search cost (not counted against the oracle in the
/// paper's Fig 13b, but recorded for completeness).
ExplorationResult oracle_select(const CsrMatrix& m,
                                std::span<const MethodConfig> configs,
                                int iters = 3);

/// Default inspector-executor candidate set: one representative per method
/// family (CSR/Dyn, SELLPACK/c8/StCont, Sell-c-σ/c8/σ=2^12/StCont,
/// Sell-c-R/c8, LAV-1Seg/c8, LAV/c8/T0.8).
std::vector<MethodConfig> inspector_executor_candidates();

/// The IE stand-in: probe-times each candidate and picks the winner.
ExplorationResult inspector_executor_select(
    const CsrMatrix& m, std::span<const MethodConfig> candidates,
    int probe_iters = 2);

}  // namespace wise
