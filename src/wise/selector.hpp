#pragma once
// The method-selection heuristic (paper §4.4).
//
// Given one predicted speedup class per configuration, pick the
// configuration predicted fastest; break ties by preprocessing cost
// (CSR < SELLPACK < Sell-c-σ < Sell-c-R < LAV-1Seg < LAV), then by smaller
// parameter values (smaller parameters empirically preprocess faster).

#include <vector>

#include "spmv/method.hpp"

namespace wise {

/// Index into `configs` of the chosen configuration.
/// Throws std::invalid_argument when sizes mismatch or inputs are empty.
std::size_t select_best_config(const std::vector<MethodConfig>& configs,
                               const std::vector<int>& predicted_classes);

/// Same, restricted to configurations whose mask entry is nonzero (an
/// empty mask means everything is applicable; see spmv/applicability.hpp).
/// Throws std::invalid_argument when no configuration is applicable.
std::size_t select_best_config(const std::vector<MethodConfig>& configs,
                               const std::vector<int>& predicted_classes,
                               const std::vector<char>& applicable);

}  // namespace wise
