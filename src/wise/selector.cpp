#include "wise/selector.hpp"

#include <stdexcept>

namespace wise {

std::size_t select_best_config(const std::vector<MethodConfig>& configs,
                               const std::vector<int>& predicted_classes) {
  return select_best_config(configs, predicted_classes, {});
}

std::size_t select_best_config(const std::vector<MethodConfig>& configs,
                               const std::vector<int>& predicted_classes,
                               const std::vector<char>& applicable) {
  if (configs.empty() || configs.size() != predicted_classes.size() ||
      (!applicable.empty() && applicable.size() != configs.size())) {
    throw std::invalid_argument("select_best_config: size mismatch");
  }
  const auto is_applicable = [&](std::size_t i) {
    return applicable.empty() || applicable[i] != 0;
  };

  std::size_t best = configs.size();
  std::vector<double> best_rank;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (!is_applicable(i)) continue;
    if (best == configs.size()) {
      best = i;
      best_rank = configs[i].selection_rank();
      continue;
    }
    const int cls = predicted_classes[i];
    const int best_cls = predicted_classes[best];
    if (cls > best_cls) {
      best = i;
      best_rank = configs[i].selection_rank();
    } else if (cls == best_cls) {
      auto rank = configs[i].selection_rank();
      if (rank < best_rank) {
        best = i;
        best_rank = std::move(rank);
      }
    }
  }
  if (best == configs.size()) {
    throw std::invalid_argument(
        "select_best_config: no applicable configuration");
  }
  return best;
}

}  // namespace wise
