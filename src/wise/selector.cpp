#include "wise/selector.hpp"

#include <stdexcept>

namespace wise {

std::size_t select_best_config(const std::vector<MethodConfig>& configs,
                               const std::vector<int>& predicted_classes) {
  if (configs.empty() || configs.size() != predicted_classes.size()) {
    throw std::invalid_argument("select_best_config: size mismatch");
  }
  std::size_t best = 0;
  auto best_rank = configs[0].selection_rank();
  for (std::size_t i = 1; i < configs.size(); ++i) {
    const int cls = predicted_classes[i];
    const int best_cls = predicted_classes[best];
    if (cls > best_cls) {
      best = i;
      best_rank = configs[i].selection_rank();
    } else if (cls == best_cls) {
      auto rank = configs[i].selection_rank();
      if (rank < best_rank) {
        best = i;
        best_rank = std::move(rank);
      }
    }
  }
  return best;
}

}  // namespace wise
