#include "wise/model_bank.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "features/extractor.hpp"
#include "hw/probe.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "wise/speedup_class.hpp"

namespace wise {

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw Error(ErrorCategory::kModelBank, "ModelBank::load: " + what,
              {.file = path, .stage = stage::kModelBank});
}

/// Loads the legacy (v1, checksum-free) body: strict, any damage throws.
void load_v1_body(std::istream& in, const std::string& path, std::size_t n,
                  std::vector<MethodConfig>& configs,
                  std::vector<DecisionTree>& trees) {
  for (std::size_t c = 0; c < n; ++c) {
    std::string name;
    in >> name;
    if (!in) fail(path, "truncated at configuration " + std::to_string(c));
    configs.push_back(parse_method_config(name));
    trees.push_back(DecisionTree::load(in));
  }
}

}  // namespace

void ModelBank::train(const std::vector<MethodConfig>& configs,
                      const std::vector<std::vector<double>>& features,
                      const std::vector<std::vector<double>>& rel_times,
                      const TreeParams& params) {
  if (configs.empty()) {
    throw std::invalid_argument("ModelBank::train: no configurations");
  }
  if (features.size() != rel_times.size() || features.empty()) {
    throw std::invalid_argument("ModelBank::train: shape mismatch");
  }
  for (const auto& row : rel_times) {
    if (row.size() != configs.size()) {
      throw std::invalid_argument(
          "ModelBank::train: rel_times width != #configs");
    }
  }

  configs_ = configs;
  warnings_.clear();
  trees_.clear();
  trees_.resize(configs.size());

  const std::size_t width = features[0].size();
  for (const auto& row : features) {
    if (row.size() != width) {
      throw std::invalid_argument(
          "ModelBank::train: inconsistent feature widths");
    }
  }
  feature_dim_ = width;

  obs::ScopedTimer total("ml.train.bank");
  const auto names = bank_feature_names(width);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    obs::ScopedTimer span("ml.train.tree");
    Dataset ds(names, kNumSpeedupClasses);
    for (std::size_t i = 0; i < features.size(); ++i) {
      ds.add(features[i], classify_relative_time(rel_times[i][c]));
    }
    trees_[c].fit(ds, params);
  }
  flat_ = FlatTreeEnsemble::build(trees_);
}

ModelBank ModelBank::assemble(std::vector<MethodConfig> configs,
                              std::vector<DecisionTree> trees,
                              std::size_t feature_dim) {
  if (configs.empty() || configs.size() != trees.size()) {
    throw std::invalid_argument(
        "ModelBank::assemble: #configs != #trees or empty");
  }
  ModelBank bank;
  bank.configs_ = std::move(configs);
  bank.trees_ = std::move(trees);
  bank.feature_dim_ = feature_dim;
  // build() rejects unfitted trees, so a half-initialized bank cannot leak.
  bank.flat_ = FlatTreeEnsemble::build(bank.trees_);
  return bank;
}

ModelBank ModelBank::extended(const ModelBank& base,
                              std::vector<MethodConfig> new_configs,
                              std::vector<DecisionTree> new_trees) {
  if (!base.trained()) {
    throw std::invalid_argument("ModelBank::extended: base not trained");
  }
  if (new_configs.empty() || new_configs.size() != new_trees.size()) {
    throw std::invalid_argument(
        "ModelBank::extended: #configs != #trees or empty");
  }
  for (const auto& cfg : new_configs) {
    for (const auto& existing : base.configs_) {
      if (cfg.name() == existing.name()) {
        throw std::invalid_argument(
            "ModelBank::extended: '" + cfg.name() +
            "' already has a model; existing models are never replaced");
      }
    }
  }
  ModelBank bank;
  bank.configs_ = base.configs_;
  bank.trees_ = base.trees_;  // byte-identical on save(): trees serialize
                              // independently, so copying preserves bytes
  bank.feature_dim_ = base.feature_dim_;
  bank.configs_.insert(bank.configs_.end(), new_configs.begin(),
                       new_configs.end());
  bank.trees_.insert(bank.trees_.end(),
                     std::make_move_iterator(new_trees.begin()),
                     std::make_move_iterator(new_trees.end()));
  bank.flat_ = FlatTreeEnsemble::build(bank.trees_);
  return bank;
}

std::size_t ModelBank::feature_dim() const {
  return feature_dim_ != 0 ? feature_dim_ : feature_count();
}

std::vector<std::string> bank_feature_names(std::size_t dim) {
  std::vector<std::string> names = feature_names();
  for (const auto& n : hw::machine_feature_names()) {
    if (names.size() >= dim) break;
    names.push_back(n);
  }
  while (names.size() < dim) {
    names.push_back("extra" + std::to_string(names.size()));
  }
  names.resize(dim);
  return names;
}

void ModelBank::check_width(std::span<const double> features) const {
  const std::size_t want = feature_dim();
  if (features.size() != want) {
    throw std::invalid_argument(
        "ModelBank: feature vector has " + std::to_string(features.size()) +
        " entries, bank expects " + std::to_string(want));
  }
}

int ModelBank::predict_class(std::size_t config_index,
                             std::span<const double> features) const {
  if (config_index >= trees_.size()) {
    throw std::out_of_range("ModelBank::predict_class: bad config index");
  }
  check_width(features);
  return flat_.predict_one(static_cast<int>(config_index), features);
}

std::vector<int> ModelBank::predict_classes(
    std::span<const double> features) const {
  if (!trained()) {
    throw std::logic_error("ModelBank::predict_classes: not trained");
  }
  std::vector<int> out(trees_.size());
  predict_classes_into(features, out);
  return out;
}

void ModelBank::predict_classes_into(std::span<const double> features,
                                     std::span<int> out) const {
  if (!trained()) {
    throw std::logic_error("ModelBank::predict_classes_into: not trained");
  }
  check_width(features);
  flat_.predict_batch(features, out);
}

void ModelBank::save(const std::string& dir) const {
  if (!trained()) throw std::logic_error("ModelBank::save: not trained");
  std::filesystem::create_directories(dir);
  const auto path = (std::filesystem::path(dir) / "models.txt").string();
  std::ofstream out(path);
  if (!out) {
    throw Error(ErrorCategory::kResource,
                "ModelBank::save: cannot write to " + dir, {.file = path});
  }
  out << "wise-model-bank v3\n";
  out << "features " << feature_dim() << '\n';
  out << configs_.size() << '\n';
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    std::ostringstream payload;
    trees_[c].save(payload);
    const std::string bytes = payload.str();
    out << configs_[c].name() << '\n';
    out << "tree " << bytes.size() << ' ' << hex64(fnv1a(bytes)) << '\n';
    out << bytes;
  }
  if (!out) {
    throw Error(ErrorCategory::kResource,
                "ModelBank::save: write failed for " + path, {.file = path});
  }
}

ModelBank ModelBank::load(const std::string& dir) {
  FaultInjector::global().maybe_throw(stage::kModelBank,
                                      ErrorCategory::kModelBank);
  const auto path = (std::filesystem::path(dir) / "models.txt").string();
  std::ifstream in(path);
  if (!in) fail(path, "cannot open models in " + dir);

  std::string magic, version;
  in >> magic >> version;
  if (magic != "wise-model-bank" ||
      (version != "v1" && version != "v2" && version != "v3")) {
    fail(path, "bad header");
  }

  ModelBank bank;

  if (version == "v3") {
    std::string tag;
    std::size_t dim = 0;
    in >> tag >> dim;
    // Cap mirrors a plausible feature-vector width, not tree sizes.
    if (!in || tag != "features" || dim == 0 || dim > 100000) {
      fail(path, "malformed feature-dim record");
    }
    bank.feature_dim_ = dim;
  }

  std::size_t n = 0;
  in >> n;
  if (!in || n == 0 || n > 100000) {
    fail(path, "implausible configuration count");
  }

  if (version != "v3") {
    // Legacy banks predate machine features: pin them to the 67 matrix
    // features (feature_dim_ = 0) and record the downgrade, counted, so
    // operators can see how many stale banks are in circulation.
    const std::string warning = "legacy " + version +
                                " bank (no feature-dim record); pinned to "
                                "matrix features only";
    std::fprintf(stderr, "ModelBank::load: %s\n", warning.c_str());
    bank.warnings_.push_back(warning);
  }

  bank.configs_.reserve(n);
  bank.trees_.reserve(n);

  if (version == "v1") {
    load_v1_body(in, path, n, bank.configs_, bank.trees_);
    bank.flat_ = FlatTreeEnsemble::build(bank.trees_);
    return bank;
  }

  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  // Trees are hundreds of bytes; anything near this cap is corruption.
  constexpr std::size_t kMaxTreeBytes = std::size_t{1} << 30;
  for (std::size_t c = 0; c < n; ++c) {
    std::string name;
    if (!std::getline(in, name)) {
      fail(path, "truncated at configuration " + std::to_string(c));
    }
    std::string tag;
    std::size_t len = 0;
    std::string checksum_hex;
    in >> tag >> len >> checksum_hex;
    if (!in || tag != "tree" || len == 0 || len > kMaxTreeBytes) {
      // The length field frames the payload; without it the stream cannot
      // be resynchronized, so this is fatal rather than skippable.
      fail(path, "malformed tree record for '" + name + "'");
    }
    in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    std::string payload(len, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::size_t>(in.gcount()) != len) {
      fail(path, "truncated tree payload for '" + name + "'");
    }

    std::string why;
    if (hex64(fnv1a(payload)) != checksum_hex) {
      why = "checksum mismatch";
    } else {
      try {
        std::istringstream tree_in(payload);
        DecisionTree tree = DecisionTree::load(tree_in);
        bank.configs_.push_back(parse_method_config(name));
        bank.trees_.push_back(std::move(tree));
        continue;
      } catch (const std::exception& e) {
        why = e.what();
      }
    }
    const std::string warning =
        "skipping model for '" + name + "': " + why;
    std::fprintf(stderr, "ModelBank::load: %s\n", warning.c_str());
    bank.warnings_.push_back(warning);
  }

  if (bank.trees_.empty()) {
    fail(path, "no usable trees (" + std::to_string(bank.warnings_.size()) +
                   " skipped)");
  }
  bank.flat_ = FlatTreeEnsemble::build(bank.trees_);
  return bank;
}

}  // namespace wise
