#include "wise/model_bank.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "features/extractor.hpp"
#include "wise/speedup_class.hpp"

namespace wise {

void ModelBank::train(const std::vector<MethodConfig>& configs,
                      const std::vector<std::vector<double>>& features,
                      const std::vector<std::vector<double>>& rel_times,
                      const TreeParams& params) {
  if (configs.empty()) {
    throw std::invalid_argument("ModelBank::train: no configurations");
  }
  if (features.size() != rel_times.size() || features.empty()) {
    throw std::invalid_argument("ModelBank::train: shape mismatch");
  }
  for (const auto& row : rel_times) {
    if (row.size() != configs.size()) {
      throw std::invalid_argument(
          "ModelBank::train: rel_times width != #configs");
    }
  }

  configs_ = configs;
  trees_.clear();
  trees_.resize(configs.size());

  const auto& names = feature_names();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    Dataset ds(names, kNumSpeedupClasses);
    for (std::size_t i = 0; i < features.size(); ++i) {
      ds.add(features[i], classify_relative_time(rel_times[i][c]));
    }
    trees_[c].fit(ds, params);
  }
}

std::vector<int> ModelBank::predict_classes(
    std::span<const double> features) const {
  if (!trained()) {
    throw std::logic_error("ModelBank::predict_classes: not trained");
  }
  std::vector<int> out(trees_.size());
  for (std::size_t c = 0; c < trees_.size(); ++c) {
    out[c] = trees_[c].predict(features);
  }
  return out;
}

void ModelBank::save(const std::string& dir) const {
  if (!trained()) throw std::logic_error("ModelBank::save: not trained");
  std::filesystem::create_directories(dir);
  std::ofstream out(std::filesystem::path(dir) / "models.txt");
  if (!out) throw std::runtime_error("ModelBank::save: cannot write to " + dir);
  out << "wise-model-bank v1\n" << configs_.size() << '\n';
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    out << configs_[c].name() << '\n';
    trees_[c].save(out);
  }
}

ModelBank ModelBank::load(const std::string& dir) {
  std::ifstream in(std::filesystem::path(dir) / "models.txt");
  if (!in) {
    throw std::runtime_error("ModelBank::load: cannot open models in " + dir);
  }
  std::string magic, version;
  in >> magic >> version;
  if (magic != "wise-model-bank" || version != "v1") {
    throw std::runtime_error("ModelBank::load: bad header");
  }
  std::size_t n = 0;
  in >> n;
  ModelBank bank;
  bank.configs_.reserve(n);
  bank.trees_.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::string name;
    in >> name;
    bank.configs_.push_back(parse_method_config(name));
    bank.trees_.push_back(DecisionTree::load(in));
  }
  return bank;
}

}  // namespace wise
