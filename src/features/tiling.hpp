#pragma once
// 2-D tiling analysis of a sparse matrix (paper §4.2, Fig 9).
//
// The matrix is logically split into K×K tiles of ceil(nR/K) × ceil(nC/K)
// elements. One fused, OpenMP row-partitioned pass over the nonzeros
// produces:
//   * the T distribution  — nonzeros per tile (sparse: only occupied tiles),
//   * the RB distribution — nonzeros per row block (row of tiles),
//   * the CB distribution — nonzeros per column block,
//   * per-column nonzero counts (the C distribution, a free by-product of
//     the per-thread column histograms),
//   * presence sums for the uniq/potReuse features: for every grouping
//     factor X in {1, 4, 8, 16, 32, 64},
//       row_presence[X]  = Σ over groups of X adjacent rows of the number
//                          of distinct tiles the group touches,
//       col_presence[X]  = Σ over groups of X adjacent columns likewise.
//
// These presence sums serve double duty (§4.2): divided by nnz they are the
// paper's uniqR/uniqC/GrX_uniq* features (unique rows/columns per tile,
// summed over tiles); divided by the group count they are potReuseR /
// potReuseC / GrX_potReuse* (tiles touched per row/column group). The
// identity holds because both count the same set of (group, tile) presence
// pairs, only aggregated along different axes.
//
// Parallelization and determinism: rows are partitioned into contiguous
// chunks aligned to tile-row boundaries and balanced by nonzero count, so
// every (group, tile-row, tile-column) presence triple is counted by exactly
// one chunk. All per-chunk counters are integers merged in chunk order,
// which makes every field of TilingResult — including the order of
// tile_counts — a pure function of the matrix, independent of the OpenMP
// thread count. The column side is computed in the same sweep via
// monotone change-detection markers over the refined (column-group ×
// tile-column) partition; no transpose is ever materialized.

#include <array>
#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace wise {

/// Grouping factors: index 0 is X=1 (ungrouped uniqR/potReuseR), the rest
/// are the paper's X values {4, 8, 16, 32, 64}.
inline constexpr std::array<int, 6> kGroupFactors = {1, 4, 8, 16, 32, 64};

struct TilingResult {
  index_t k = 0;         ///< tiles per side actually used
  index_t tile_rows = 0; ///< rows per tile (ceil)
  index_t tile_cols = 0; ///< columns per tile (ceil)

  std::vector<nnz_t> tile_counts;  ///< occupied tiles only (T distribution)
  nnz_t total_tiles = 0;           ///< K^2 (for implicit-zero statistics)

  std::vector<nnz_t> rowblock_counts;  ///< dense, K entries (RB)
  std::vector<nnz_t> colblock_counts;  ///< dense, K entries (CB)

  /// Per-column nonzero counts (C distribution). Filled by the fused
  /// analyze_tiling sweep so extract_features needs no separate column
  /// pass; left empty by analyze_tiling_reference.
  std::vector<nnz_t> col_counts;

  /// presence sums per grouping factor, same order as kGroupFactors.
  std::array<nnz_t, kGroupFactors.size()> row_presence{};
  std::array<nnz_t, kGroupFactors.size()> col_presence{};

  /// Number of row/column groups per factor (denominator of potReuse).
  std::array<nnz_t, kGroupFactors.size()> row_groups{};
  std::array<nnz_t, kGroupFactors.size()> col_groups{};
};

/// Default tile-grid resolution. The paper fixes K=2048 for matrices of
/// 2^20..2^26 rows, i.e. 512..32768 rows per tile. For the smaller matrices
/// this repository evaluates, a fixed 2048 would leave most tiles empty and
/// wash out the statistics, so K scales to keep ~512 rows per tile, clamped
/// to [4, 2048] and floored to a power of two.
index_t default_tile_grid(index_t nrows, index_t ncols);

/// Runs the fused single-pass tiling analysis (parallel, transpose-free).
/// k == 0 selects default_tile_grid.
TilingResult analyze_tiling(const CsrMatrix& m, index_t k = 0);

/// Serial reference implementation: the original forward sweep plus an
/// explicit transpose and backward sweep. Kept as the oracle for the
/// cross-thread-count determinism tests and the before/after benchmarks.
/// Does not fill TilingResult::col_counts.
TilingResult analyze_tiling_reference(const CsrMatrix& m, index_t k = 0);

}  // namespace wise
