#pragma once
// Summary statistics over nonzero-count distributions (paper §4.2).
//
// Every matrix feature in WISE is a summary statistic of one of five
// distributions (nonzeros per row / column / tile / row-block / column-
// block): mean, standard deviation, variance, min, max, Gini coefficient,
// p-ratio, and the number of nonempty buckets.
//
// Gini coefficient G: standard inequality measure; 0 for a perfectly
// balanced distribution, approaching 1 when all mass sits in one bucket.
//
// p-ratio P (Kunegis & Preusse): the p such that the top p fraction of
// buckets holds the (1-p) fraction of the mass; 0.5 when balanced,
// approaching 0 under extreme skew.

#include <vector>

#include "util/types.hpp"

namespace wise {

/// The eight summary statistics of one distribution.
struct DistStats {
  double mean = 0;
  double stddev = 0;
  double variance = 0;
  double min = 0;
  double max = 0;
  double gini = 0;
  double pratio = 0.5;
  double nonempty = 0;  ///< number of buckets with nonzero count ("ne")
};

/// Statistics of a dense distribution: counts[b] is bucket b's mass.
/// An empty vector yields all-zero stats with pratio 0.5.
///
/// Implementation contract: all aggregates are accumulated in exact integer
/// arithmetic (128-bit where products may overflow), so the result is a pure
/// function of the count multiset — bit-identical at every OpenMP thread
/// count. Moments are parallel reductions; the ordered statistics (Gini,
/// p-ratio, min/max) come from a counting sort when the masses are small
/// integers (rows/columns/tiles in practice) and from a comparison sort of
/// the nonempty masses otherwise.
DistStats compute_dist_stats(const std::vector<nnz_t>& counts);

/// Statistics of a sparsely-represented distribution: `nonempty_counts`
/// lists the positive bucket masses (any order); `total_buckets` includes
/// the implicit zero buckets. Used for the tile (T) distribution where the
/// K^2 bucket space is far larger than the number of occupied tiles.
DistStats compute_dist_stats_sparse(std::vector<nnz_t> nonempty_counts,
                                    nnz_t total_buckets);

/// Gini coefficient of a distribution given in any order. Exposed for tests.
double gini_coefficient(std::vector<nnz_t> counts);

/// p-ratio of a distribution given in any order. Exposed for tests.
double p_ratio(std::vector<nnz_t> counts);

}  // namespace wise
