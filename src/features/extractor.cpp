#include "features/extractor.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace wise {

namespace {

const std::array<const char*, 5> kDistNames = {"R", "C", "T", "RB", "CB"};
const std::array<const char*, 8> kStatNames = {"mean", "std", "var",  "gini",
                                               "pratio", "min", "max", "ne"};

void append_dist(std::vector<double>& out, const DistStats& s) {
  out.push_back(s.mean);
  out.push_back(s.stddev);
  out.push_back(s.variance);
  out.push_back(s.gini);
  out.push_back(s.pratio);
  out.push_back(s.min);
  out.push_back(s.max);
  out.push_back(s.nonempty);
}

std::vector<std::string> build_names() {
  std::vector<std::string> names = {"n_rows", "n_cols", "n_nnz"};
  for (const char* dist : kDistNames) {
    for (const char* stat : kStatNames) {
      names.push_back(std::string(stat) + "_" + dist);
    }
  }
  // uniq features: X=1 is the ungrouped uniqR/uniqC; larger X prefixed GrX_.
  for (const char* side : {"R", "C"}) {
    for (int x : kGroupFactors) {
      names.push_back(x == 1 ? std::string("uniq") + side
                             : "Gr" + std::to_string(x) + "_uniq" + side);
    }
  }
  for (const char* side : {"R", "C"}) {
    for (int x : kGroupFactors) {
      names.push_back(x == 1
                          ? std::string("potReuse") + side
                          : "Gr" + std::to_string(x) + "_potReuse" + side);
    }
  }
  return names;
}

/// Assembles the fixed-order vector from the per-distribution stats and the
/// tiling counters. Shared by the fused and reference paths so the two can
/// only differ if their counters differ — which the tiling tests rule out.
FeatureVector assemble_features(const CsrMatrix& m, const DistStats& row_stats,
                                const DistStats& col_stats,
                                const TilingResult& tiling) {
  FeatureVector fv;
  fv.values.reserve(feature_count());

  // (1) Size properties.
  fv.values.push_back(static_cast<double>(m.nrows()));
  fv.values.push_back(static_cast<double>(m.ncols()));
  fv.values.push_back(static_cast<double>(m.nnz()));

  // (2) Skew properties: R and C distributions.
  append_dist(fv.values, row_stats);
  append_dist(fv.values, col_stats);

  // (3) Locality properties: T, RB, CB distributions plus presence sums.
  append_dist(fv.values, compute_dist_stats_sparse(tiling.tile_counts,
                                                   tiling.total_tiles));
  append_dist(fv.values, compute_dist_stats(tiling.rowblock_counts));
  append_dist(fv.values, compute_dist_stats(tiling.colblock_counts));

  const auto dnnz = static_cast<double>(std::max<nnz_t>(1, m.nnz()));
  // uniq*: presence pairs normalized by the nonzero count (§4.2).
  for (auto p : tiling.row_presence) {
    fv.values.push_back(static_cast<double>(p) / dnnz);
  }
  for (auto p : tiling.col_presence) {
    fv.values.push_back(static_cast<double>(p) / dnnz);
  }
  // potReuse*: the same presence pairs averaged over row/column groups.
  for (std::size_t xi = 0; xi < kGroupFactors.size(); ++xi) {
    fv.values.push_back(
        static_cast<double>(tiling.row_presence[xi]) /
        static_cast<double>(std::max<nnz_t>(1, tiling.row_groups[xi])));
  }
  for (std::size_t xi = 0; xi < kGroupFactors.size(); ++xi) {
    fv.values.push_back(
        static_cast<double>(tiling.col_presence[xi]) /
        static_cast<double>(std::max<nnz_t>(1, tiling.col_groups[xi])));
  }

  if (fv.values.size() != feature_count()) {
    throw std::logic_error("extract_features: feature count drift");
  }
  return fv;
}

}  // namespace

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = build_names();
  return names;
}

std::size_t feature_count() { return feature_names().size(); }

DistStats row_dist_stats(const CsrMatrix& m) {
  // Direct adjacent difference of row_ptr: contiguous loads and stores with
  // no per-row indirection, so the loop vectorizes.
  return compute_dist_stats(m.row_counts());
}

DistStats col_dist_stats(const CsrMatrix& m) {
  return compute_dist_stats(m.col_counts());
}

FeatureVector extract_features(const CsrMatrix& m,
                               const FeatureParams& params) {
  // Fused path: one parallel sweep produces tiles, blocks, presence sums,
  // and the column histogram; rows come from the row_ptr difference.
  obs::ScopedTimer total("features.extract");
  const TilingResult tiling = [&] {
    obs::ScopedTimer span("features.extract.tiling");
    return analyze_tiling(m, params.tile_grid);
  }();
  obs::ScopedTimer span("features.extract.stats");
  const DistStats row_stats = row_dist_stats(m);
  const DistStats col_stats = compute_dist_stats(tiling.col_counts);
  return assemble_features(m, row_stats, col_stats, tiling);
}

FeatureVector extract_features_reference(const CsrMatrix& m,
                                         const FeatureParams& params) {
  const TilingResult tiling = analyze_tiling_reference(m, params.tile_grid);
  const DistStats row_stats = row_dist_stats(m);
  const DistStats col_stats = col_dist_stats(m);
  return assemble_features(m, row_stats, col_stats, tiling);
}

}  // namespace wise
