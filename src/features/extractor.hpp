#pragma once
// WISE matrix feature extraction (paper §4.2, Table 2).
//
// Produces the 67-dimensional feature vector the performance-prediction
// models consume: 3 size features, 8 summary statistics for each of the
// five nonzero distributions (rows, columns, tiles, row blocks, column
// blocks), and 24 uniq/potReuse locality features.
//
// extract_features runs the fused pipeline: one OpenMP row-partitioned
// sweep over the nonzeros yields the tile/row-block/column-block masses,
// both presence families, and the column histogram; the row distribution
// comes from a vectorized row_ptr adjacent difference. No transpose is
// materialized and every intermediate counter is an exact integer, so the
// output is bit-identical to the serial reference at any thread count.

#include <string>
#include <vector>

#include "features/stats.hpp"
#include "features/tiling.hpp"
#include "sparse/csr.hpp"

namespace wise {

/// Extraction parameters. The defaults reproduce the paper's setup scaled
/// to this repository's matrix sizes (see default_tile_grid).
struct FeatureParams {
  index_t tile_grid = 0;  ///< K; 0 = choose automatically from matrix size

  friend bool operator==(const FeatureParams&, const FeatureParams&) = default;
};

/// A named, fixed-order feature vector.
struct FeatureVector {
  std::vector<double> values;

  double operator[](std::size_t i) const { return values[i]; }
  std::size_t size() const { return values.size(); }
};

/// Names of the features, in vector order. The order is part of the model
/// serialization format and must stay stable.
const std::vector<std::string>& feature_names();

/// Number of features (67).
std::size_t feature_count();

/// Extracts all features of `m` with the fused parallel single-pass
/// pipeline. Honors the ambient OpenMP thread count; the result is a pure
/// function of `m` and `params` regardless of it.
FeatureVector extract_features(const CsrMatrix& m,
                               const FeatureParams& params = {});

/// Serial reference extractor: separate sweeps plus an explicit transpose,
/// the original algorithm. The oracle for the cross-thread-count
/// determinism tests and the decision-cost benchmarks; bit-identical to
/// extract_features by construction.
FeatureVector extract_features_reference(const CsrMatrix& m,
                                         const FeatureParams& params = {});

/// Per-distribution stats used by extract_features; exposed so analyses
/// (e.g. the p-ratio histogram benches) can reuse single distributions.
DistStats row_dist_stats(const CsrMatrix& m);
DistStats col_dist_stats(const CsrMatrix& m);

}  // namespace wise
