#include "features/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <omp.h>

namespace wise {

namespace {

// All aggregates are carried in exact integer arithmetic (128-bit where
// products can exceed 64 bits) and converted to double exactly once at the
// end. This makes every statistic independent of summation order, so the
// parallel reductions below produce bit-identical results at any thread
// count, and the histogram and sort fallback paths agree exactly.
using uint128 = unsigned __int128;

/// Below this element count the OpenMP parallel regions are pure overhead.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 15;

/// Histogram (counting-sort) path limits: the value range must be modest
/// both absolutely and relative to the bucket count, otherwise fall back to
/// a comparison sort of the nonempty masses.
constexpr nnz_t kHistAbsoluteMax = nnz_t{1} << 26;

struct BasicAgg {
  uint128 total = 0;     ///< sum of masses
  uint128 total_sq = 0;  ///< sum of squared masses
  nnz_t max_value = 0;
  nnz_t min_positive = std::numeric_limits<nnz_t>::max();
  nnz_t n_nonempty = 0;

  void add(nnz_t v) {
    if (v == 0) return;
    total += static_cast<uint128>(v);
    total_sq += static_cast<uint128>(v) * static_cast<uint128>(v);
    max_value = std::max(max_value, v);
    min_positive = std::min(min_positive, v);
    ++n_nonempty;
  }
  void merge(const BasicAgg& o) {
    total += o.total;
    total_sq += o.total_sq;
    max_value = std::max(max_value, o.max_value);
    min_positive = std::min(min_positive, o.min_positive);
    n_nonempty += o.n_nonempty;
  }
};

/// Order-independent moment accumulation (the "parallel moments" half of
/// the stats pipeline). Integer merges commute, so the critical-section
/// merge order cannot change the result.
BasicAgg accumulate_basic(const std::vector<nnz_t>& counts) {
  BasicAgg g;
  const auto n = static_cast<std::int64_t>(counts.size());
#pragma omp parallel if (counts.size() >= kParallelThreshold)
  {
    BasicAgg local;
#pragma omp for nowait schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      local.add(counts[static_cast<std::size_t>(i)]);
    }
#pragma omp critical(wise_stats_basic_merge)
    g.merge(local);
  }
  return g;
}

/// Gini numerator: W = sum over ascending ranks 1..n of rank * mass, where
/// the n_zero empty buckets occupy the lowest ranks and contribute nothing.
/// Consumed as runs of equal values: a run of h copies of v occupying ranks
/// r0+1 .. r0+h contributes v * (h*(r0+1) + h*(h-1)/2).
struct GiniAcc {
  uint128 weighted = 0;
  nnz_t ranks_used = 0;  ///< initialize to n_zero

  void add_run(nnz_t v, nnz_t h) {
    const auto uv = static_cast<uint128>(v);
    const auto uh = static_cast<uint128>(h);
    const auto r1 = static_cast<uint128>(ranks_used) + 1;
    weighted += uv * (uh * r1 + uh * (uh - 1) / 2);
    ranks_used += h;
  }
};

/// p-ratio in exact arithmetic: the smallest k >= 1 with
///   cum_k * n >= total * (n - k)
/// where cum_k is the sum of the k largest masses. Visited as descending
/// runs; within a run of h copies of v starting after rank k0 with prefix
/// cum0, the condition linearizes to k * (v*n + total) >= total*n - cum0*n
/// + k0*v*n, solved by one ceiling division.
double exact_pratio_from_desc_runs(
    const std::vector<std::pair<nnz_t, nnz_t>>& desc_runs, uint128 total,
    nnz_t n) {
  const auto un = static_cast<uint128>(n);
  uint128 cum0 = 0;
  nnz_t k0 = 0;
  for (const auto& [v, h] : desc_runs) {
    const auto uv = static_cast<uint128>(v);
    const uint128 den = uv * un + total;
    const uint128 num =
        total * un - cum0 * un + static_cast<uint128>(k0) * uv * un;
    uint128 kmin = den == 0 ? 1 : (num + den - 1) / den;
    if (kmin <= static_cast<uint128>(k0)) kmin = static_cast<uint128>(k0) + 1;
    if (kmin <= static_cast<uint128>(k0) + static_cast<uint128>(h)) {
      return static_cast<double>(static_cast<nnz_t>(kmin)) /
             static_cast<double>(n);
    }
    cum0 += uv * static_cast<uint128>(h);
    k0 += h;
  }
  // Unreachable for total > 0: at k = n_nonempty, cum == total and the
  // condition holds. Kept as the balanced-distribution default.
  return 0.5;
}

/// Shared finalization from ascending runs of (value, multiplicity).
DistStats stats_from_runs(const std::vector<std::pair<nnz_t, nnz_t>>& asc_runs,
                          const BasicAgg& agg, nnz_t n) {
  DistStats s;
  if (n <= 0) return s;

  const nnz_t n_zero = n - agg.n_nonempty;
  const auto dn = static_cast<double>(n);
  const auto dtotal = static_cast<double>(agg.total);
  s.mean = dtotal / dn;
  s.variance = std::max(0.0, static_cast<double>(agg.total_sq) / dn -
                                 s.mean * s.mean);
  s.stddev = std::sqrt(s.variance);
  s.min = n_zero > 0 ? 0.0
                     : (agg.n_nonempty > 0
                            ? static_cast<double>(agg.min_positive)
                            : 0.0);
  s.max = static_cast<double>(agg.max_value);
  s.nonempty = static_cast<double>(agg.n_nonempty);

  if (agg.total == 0) {
    // No mass at all: define G=0, P=0.5 (perfectly balanced emptiness).
    s.gini = 0.0;
    s.pratio = 0.5;
    return s;
  }

  // Gini over the full distribution (zeros included): with ascending order
  // x_1..x_n, G = (2 * sum(i * x_i)) / (n * sum(x)) - (n + 1) / n.
  GiniAcc gini;
  gini.ranks_used = n_zero;
  for (const auto& [v, h] : asc_runs) gini.add_run(v, h);
  s.gini = std::clamp(2.0 * static_cast<double>(gini.weighted) / (dn * dtotal) -
                          (dn + 1.0) / dn,
                      0.0, 1.0);

  std::vector<std::pair<nnz_t, nnz_t>> desc_runs(asc_runs.rbegin(),
                                                 asc_runs.rend());
  s.pratio = exact_pratio_from_desc_runs(desc_runs, agg.total, n);
  return s;
}

/// Counting-sort path: build a mass histogram in parallel (per-thread
/// histograms merged with order-independent integer sums), then read the
/// ascending runs straight off it. O(n + max_value) work, no sort.
std::vector<std::pair<nnz_t, nnz_t>> runs_from_histogram(
    const std::vector<nnz_t>& counts, nnz_t max_value) {
  const auto range = static_cast<std::size_t>(max_value) + 1;
  std::vector<nnz_t> hist(range, 0);
  const auto n = static_cast<std::int64_t>(counts.size());
  if (counts.size() >= kParallelThreshold && omp_get_max_threads() > 1) {
#pragma omp parallel
    {
      std::vector<nnz_t> local(range, 0);
#pragma omp for nowait schedule(static)
      for (std::int64_t i = 0; i < n; ++i) {
        ++local[static_cast<std::size_t>(counts[static_cast<std::size_t>(i)])];
      }
#pragma omp critical(wise_stats_hist_merge)
      for (std::size_t v = 0; v < range; ++v) hist[v] += local[v];
    }
  } else {
    for (nnz_t c : counts) ++hist[static_cast<std::size_t>(c)];
  }

  std::vector<std::pair<nnz_t, nnz_t>> runs;
  for (std::size_t v = 1; v < range; ++v) {
    if (hist[v] != 0) runs.emplace_back(static_cast<nnz_t>(v), hist[v]);
  }
  return runs;
}

/// Comparison-sort fallback for distributions whose masses are large
/// relative to the bucket count (e.g. the K row/column block sums).
std::vector<std::pair<nnz_t, nnz_t>> runs_from_sort(
    const std::vector<nnz_t>& counts) {
  std::vector<nnz_t> positive;
  positive.reserve(counts.size());
  for (nnz_t v : counts) {
    if (v != 0) positive.push_back(v);
  }
  std::sort(positive.begin(), positive.end());

  std::vector<std::pair<nnz_t, nnz_t>> runs;
  for (std::size_t i = 0; i < positive.size();) {
    std::size_t j = i;
    while (j < positive.size() && positive[j] == positive[i]) ++j;
    runs.emplace_back(positive[i], static_cast<nnz_t>(j - i));
    i = j;
  }
  return runs;
}

DistStats dist_stats_impl(const std::vector<nnz_t>& counts, nnz_t n) {
  DistStats s;
  if (n <= 0) return s;

  const BasicAgg agg = accumulate_basic(counts);
  if (agg.n_nonempty == 0) {
    s.pratio = 0.5;
    return s;
  }

  const auto hist_limit = std::min<nnz_t>(
      kHistAbsoluteMax,
      std::max<nnz_t>(nnz_t{1} << 16, 4 * static_cast<nnz_t>(counts.size())));
  const auto runs = agg.max_value <= hist_limit
                        ? runs_from_histogram(counts, agg.max_value)
                        : runs_from_sort(counts);
  return stats_from_runs(runs, agg, n);
}

}  // namespace

DistStats compute_dist_stats(const std::vector<nnz_t>& counts) {
  return dist_stats_impl(counts, static_cast<nnz_t>(counts.size()));
}

DistStats compute_dist_stats_sparse(std::vector<nnz_t> nonempty_counts,
                                    nnz_t total_buckets) {
  // Zeros slipping into the "nonempty" list are tolerated: the aggregates
  // and both run builders skip them.
  return dist_stats_impl(nonempty_counts, total_buckets);
}

double gini_coefficient(std::vector<nnz_t> counts) {
  return compute_dist_stats(counts).gini;
}

double p_ratio(std::vector<nnz_t> counts) {
  return compute_dist_stats(counts).pratio;
}

}  // namespace wise
