#include "features/stats.hpp"

#include <algorithm>
#include <cmath>

namespace wise {

namespace {

/// Shared implementation: `sorted` must be ascending and contain only the
/// positive masses; `n` is the total bucket count (zeros implicit).
DistStats stats_from_sorted_nonempty(const std::vector<nnz_t>& sorted,
                                     nnz_t n) {
  DistStats s;
  if (n <= 0) return s;

  const auto n_nonempty = static_cast<nnz_t>(sorted.size());
  const nnz_t n_zero = n - n_nonempty;

  double total = 0, total_sq = 0;
  for (nnz_t v : sorted) {
    const auto d = static_cast<double>(v);
    total += d;
    total_sq += d * d;
  }

  const auto dn = static_cast<double>(n);
  s.mean = total / dn;
  s.variance = std::max(0.0, total_sq / dn - s.mean * s.mean);
  s.stddev = std::sqrt(s.variance);
  s.min = n_zero > 0 ? 0.0 : static_cast<double>(sorted.front());
  s.max = sorted.empty() ? 0.0 : static_cast<double>(sorted.back());
  s.nonempty = static_cast<double>(n_nonempty);

  if (total <= 0) {
    // No mass at all: define G=0, P=0.5 (perfectly balanced emptiness).
    s.gini = 0.0;
    s.pratio = 0.5;
    return s;
  }

  // Gini over the full distribution (zeros included): with ascending order
  // x_1..x_n, G = (2 * sum(i * x_i)) / (n * sum(x)) - (n + 1) / n.
  // Implicit zeros occupy ranks 1..n_zero and contribute nothing to the
  // weighted sum.
  double weighted = 0;
  for (nnz_t k = 0; k < n_nonempty; ++k) {
    const auto rank = static_cast<double>(n_zero + k + 1);
    weighted += rank * static_cast<double>(sorted[static_cast<std::size_t>(k)]);
  }
  s.gini = std::clamp(2.0 * weighted / (dn * total) - (dn + 1.0) / dn, 0.0, 1.0);

  // p-ratio: walk the buckets in descending order; the first k where the
  // top-k share reaches 1 - k/n gives p = k/n. The crossing always happens
  // by k = n_nonempty because the remaining buckets are empty.
  double cum = 0;
  s.pratio = 0.5;
  for (nnz_t k = 1; k <= n_nonempty; ++k) {
    cum += static_cast<double>(
        sorted[static_cast<std::size_t>(n_nonempty - k)]);
    const double share_needed = 1.0 - static_cast<double>(k) / dn;
    if (cum / total >= share_needed) {
      s.pratio = static_cast<double>(k) / dn;
      break;
    }
  }
  return s;
}

}  // namespace

DistStats compute_dist_stats(const std::vector<nnz_t>& counts) {
  std::vector<nnz_t> nonempty;
  nonempty.reserve(counts.size());
  for (nnz_t v : counts) {
    if (v != 0) nonempty.push_back(v);
  }
  std::sort(nonempty.begin(), nonempty.end());
  return stats_from_sorted_nonempty(nonempty,
                                    static_cast<nnz_t>(counts.size()));
}

DistStats compute_dist_stats_sparse(std::vector<nnz_t> nonempty_counts,
                                    nnz_t total_buckets) {
  std::sort(nonempty_counts.begin(), nonempty_counts.end());
  // Tolerate zeros slipping into the "nonempty" list.
  auto first_positive = std::upper_bound(nonempty_counts.begin(),
                                         nonempty_counts.end(), nnz_t{0});
  nonempty_counts.erase(nonempty_counts.begin(), first_positive);
  return stats_from_sorted_nonempty(nonempty_counts, total_buckets);
}

double gini_coefficient(std::vector<nnz_t> counts) {
  return compute_dist_stats(counts).gini;
}

double p_ratio(std::vector<nnz_t> counts) {
  return compute_dist_stats(counts).pratio;
}

}  // namespace wise
