#include "features/tiling.hpp"

#include <algorithm>
#include <bit>
#include <omp.h>

namespace wise {

namespace {

constexpr std::size_t kNumFactors = kGroupFactors.size();

/// log2 of each grouping factor; i / kGroupFactors[x] == i >> kGroupShifts[x].
constexpr std::array<int, kNumFactors> kGroupShifts = {0, 2, 3, 4, 5, 6};
static_assert([] {
  for (std::size_t x = 0; x < kNumFactors; ++x) {
    if (kGroupFactors[x] != 1 << kGroupShifts[x]) return false;
  }
  return true;
}());

// ---------------------------------------------------------------------------
// Fused transpose-free sweep.
//
// One row-major pass over a contiguous range of tile rows computes, for that
// range: the occupied-tile masses (flushed per tile row in first-touch
// order, exactly like the serial algorithm), the row-side presence sums, the
// column-side presence sums, and a column histogram.
//
// All presence counters are computed from bitmaps rather than per-nonzero
// marker probes, so the hot loop touches exactly four small arrays per
// nonzero (column histogram, column bitmap, tile mass, row bitmap):
//
// Row side: each row ORs its touched tile columns into a k-bit bitmap.
// Per-row popcount gives the X=1 presence (a row determines its tile row).
// For coarser factors the row bitmap cascades through nested accumulators —
// acc[x] holds the union of tile columns touched by the currently open
// (group-of-X, tile-row) window. Because the factors are nested powers of
// two, a boundary at factor X is a boundary at every finer factor, so a
// flush pops fine accumulators into presence sums while ORing their bits
// into the next-coarser accumulator that remains open.
//
// Column side (this replaces the explicit transpose): the presence triple is
// (column group j/X, tile row tr, tile column tc). Within one stripe of
// rows sharing tr, a column bitmap marks every touched j. At the stripe
// boundary one scan counts, per tile-column segment, the nonempty X-wide
// bit groups via OR-fold + masked popcount. Groups are power-of-two sized
// and aligned, so they never straddle a 64-bit word; a group split by a
// tile-column boundary is counted once per side, which is exactly the
// (group, tc) refinement the triple demands.
//
// Chunks are aligned to tile-row boundaries, so each (.., tr, ..) triple is
// seen by exactly one chunk and fresh per-chunk bitmaps are correct. Every
// counter is an exact integer derived from set membership — no traversal
// order or thread count can change the result.
// ---------------------------------------------------------------------------

struct ChunkResult {
  std::vector<nnz_t> tile_counts;
  std::array<nnz_t, kNumFactors> row_presence{};
  std::array<nnz_t, kNumFactors> col_presence{};
};

void fused_chunk_sweep(const CsrMatrix& m, index_t k, index_t rows_per_tile,
                       index_t cols_per_tile, index_t row_begin,
                       index_t row_end, std::vector<nnz_t>& colhist,
                       std::vector<std::uint64_t>& colbits, ChunkResult& out) {
  const auto uk = static_cast<std::size_t>(k);
  const index_t ncols = m.ncols();
  const nnz_t* row_ptr = m.row_ptr().data();
  const index_t* col_idx = m.col_idx().data();
  nnz_t* hist = colhist.data();
  std::uint64_t* cb = colbits.data();
  const std::size_t nwc = colbits.size();

  std::vector<nnz_t> block_count(uk, 0);
  std::vector<index_t> occupied;
  occupied.reserve(uk);

  // Tile-column bitmaps: one word per 64 tile columns (k <= 2048 → <= 32
  // words, L1-resident). acc[0] is unused; acc[x] covers factor x.
  const std::size_t nwr = (uk + 63) / 64;
  std::vector<std::uint64_t> row_bits(nwr, 0);
  std::array<std::vector<std::uint64_t>, kNumFactors> acc;
  for (std::size_t x = 1; x < kNumFactors; ++x) acc[x].assign(nwr, 0);

  auto flush_block = [&] {
    for (index_t tc : occupied) {
      out.tile_counts.push_back(block_count[static_cast<std::size_t>(tc)]);
      block_count[static_cast<std::size_t>(tc)] = 0;
    }
    occupied.clear();
  };

  // Pops accumulators 1..xmax (fine to coarse). Bits always propagate to the
  // next-coarser accumulator: either it is flushed right after (its group
  // boundary coincides) or it stays open and now owns those tile columns.
  auto flush_rows = [&](std::size_t xmax) {
    for (std::size_t x = 1; x <= xmax; ++x) {
      std::uint64_t* a = acc[x].data();
      std::uint64_t* up = (x + 1 < kNumFactors) ? acc[x + 1].data() : nullptr;
      nnz_t pop = 0;
      for (std::size_t w = 0; w < nwr; ++w) {
        const std::uint64_t v = a[w];
        if (v == 0) continue;
        pop += std::popcount(v);
        if (up != nullptr) up[w] |= v;
        a[w] = 0;
      }
      out.row_presence[x] += pop;
    }
  };

  // Stripe-end column scan: count nonempty X-wide groups per tile-column
  // segment by OR-folding each word so bit 4m (8m, ...) records whether any
  // bit of its group is set, then popcounting under a stride mask.
  const index_t n_tile_cols = (ncols + cols_per_tile - 1) / cols_per_tile;
  auto flush_stripe_cols = [&] {
    std::array<nnz_t, kNumFactors> add{};
    for (index_t tc = 0; tc < n_tile_cols; ++tc) {
      const std::int64_t c0 = static_cast<std::int64_t>(tc) * cols_per_tile;
      const std::int64_t c1 = std::min<std::int64_t>(ncols, c0 + cols_per_tile);
      const std::size_t w0 = static_cast<std::size_t>(c0 >> 6);
      const std::size_t w1 = static_cast<std::size_t>((c1 - 1) >> 6);
      for (std::size_t w = w0; w <= w1; ++w) {
        std::uint64_t v = cb[w];
        if (v == 0) continue;
        // Mask the word down to this tile-column segment. A word shared by
        // two segments is visited once per segment with complementary masks.
        if (w == w0) {
          v &= ~std::uint64_t{0} << (c0 & 63);
        }
        if (w == w1) {
          const std::int64_t hi = c1 - static_cast<std::int64_t>(w) * 64;
          if (hi < 64) v &= (std::uint64_t{1} << hi) - 1;
        }
        if (v == 0) continue;
        add[0] += std::popcount(v);
        std::uint64_t f = v | (v >> 1);
        f |= f >> 2;  // bit 4m == any of bits [4m, 4m+3]
        add[1] += std::popcount(f & 0x1111111111111111ull);
        f |= f >> 4;
        add[2] += std::popcount(f & 0x0101010101010101ull);
        f |= f >> 8;
        add[3] += std::popcount(f & 0x0001000100010001ull);
        f |= f >> 16;
        add[4] += std::popcount(f & 0x0000000100000001ull);
        add[5] += 1;  // 64-wide groups align with words
      }
    }
    for (std::size_t w = 0; w < nwc; ++w) {
      if (cb[w] != 0) cb[w] = 0;
    }
    for (std::size_t x = 0; x < kNumFactors; ++x) out.col_presence[x] += add[x];
  };

  index_t current_tr = row_begin / rows_per_tile;
  std::int64_t tr_limit =
      (static_cast<std::int64_t>(current_tr) + 1) * rows_per_tile;
  for (index_t i = row_begin; i < row_end; ++i) {
    if (i >= tr_limit) {
      // New tile row: every (.., tr, ..) window closes at once.
      flush_block();
      flush_rows(kNumFactors - 1);
      flush_stripe_cols();
      current_tr = i / rows_per_tile;
      tr_limit = (static_cast<std::int64_t>(current_tr) + 1) * rows_per_tile;
    } else if ((i & 3) == 0 && i != row_begin) {
      // Group boundary: factor 1<<s closes when i is a multiple of 1<<s, so
      // the trailing-zero count of i picks the coarsest factor that closes.
      const auto tz =
          static_cast<std::size_t>(std::countr_zero(static_cast<std::uint32_t>(i)));
      flush_rows(std::min(kNumFactors - 1, tz - 1));
    }
    // Columns are sorted within the row, so the tile column advances
    // monotonically; divide only when crossing a tile-column boundary.
    index_t tc = 0;
    std::int64_t tc_limit = 0;
    const nnz_t pend = row_ptr[i + 1];
    for (nnz_t p = row_ptr[i]; p < pend; ++p) {
      const index_t j = col_idx[p];
      if (j >= tc_limit) {
        tc = j / cols_per_tile;
        tc_limit = (static_cast<std::int64_t>(tc) + 1) * cols_per_tile;
      }
      ++hist[j];
      cb[static_cast<std::size_t>(j) >> 6] |= std::uint64_t{1} << (j & 63);
      if (block_count[static_cast<std::size_t>(tc)]++ == 0) {
        occupied.push_back(tc);
      }
      row_bits[static_cast<std::size_t>(tc) >> 6] |= std::uint64_t{1}
                                                     << (tc & 63);
    }
    if (row_ptr[i] != pend) {
      // End of row == X=1 boundary: pop the row bitmap and cascade it.
      nnz_t pop = 0;
      for (std::size_t w = 0; w < nwr; ++w) {
        const std::uint64_t v = row_bits[w];
        if (v == 0) continue;
        pop += std::popcount(v);
        acc[1][w] |= v;
        row_bits[w] = 0;
      }
      out.row_presence[0] += pop;
    }
  }
  flush_block();
  flush_rows(kNumFactors - 1);
  flush_stripe_cols();
}

// ---------------------------------------------------------------------------
// Serial reference: the original forward sweep + explicit transpose +
// backward sweep. Kept verbatim as the determinism/benchmark oracle.
// ---------------------------------------------------------------------------

struct RowSweep {
  std::vector<nnz_t> tile_counts;
  std::vector<nnz_t> rowblock;
  std::vector<nnz_t> colblock;
  std::array<nnz_t, kNumFactors> presence{};
};

RowSweep reference_row_sweep(const CsrMatrix& m, index_t k) {
  const index_t nrows = m.nrows();
  const index_t ncols = m.ncols();
  const index_t tile_rows = (nrows + k - 1) / k;
  const index_t tile_cols = (ncols + k - 1) / k;

  RowSweep out;
  out.rowblock.assign(static_cast<std::size_t>(k), 0);
  out.colblock.assign(static_cast<std::size_t>(k), 0);

  std::vector<nnz_t> block_count(static_cast<std::size_t>(k), 0);
  std::vector<index_t> occupied;

  std::array<std::vector<std::int64_t>, kNumFactors> marker;
  for (auto& v : marker) v.assign(static_cast<std::size_t>(k), -1);

  auto flush_block = [&] {
    for (index_t tc : occupied) {
      out.tile_counts.push_back(block_count[static_cast<std::size_t>(tc)]);
      block_count[static_cast<std::size_t>(tc)] = 0;
    }
    occupied.clear();
  };

  index_t current_tr = 0;
  for (index_t i = 0; i < nrows; ++i) {
    const index_t tr = i / tile_rows;
    if (tr != current_tr) {
      flush_block();
      current_tr = tr;
    }
    for (index_t j : m.row_cols(i)) {
      const index_t tc = j / tile_cols;
      if (block_count[static_cast<std::size_t>(tc)] == 0) {
        occupied.push_back(tc);
      }
      ++block_count[static_cast<std::size_t>(tc)];
      ++out.rowblock[static_cast<std::size_t>(tr)];
      ++out.colblock[static_cast<std::size_t>(tc)];

      for (std::size_t xi = 0; xi < kNumFactors; ++xi) {
        const index_t g = i / kGroupFactors[xi];
        const std::int64_t key = static_cast<std::int64_t>(g) * k + tr;
        if (marker[xi][static_cast<std::size_t>(tc)] != key) {
          marker[xi][static_cast<std::size_t>(tc)] = key;
          ++out.presence[xi];
        }
      }
    }
  }
  flush_block();
  return out;
}

/// Clamps the requested grid exactly like the original implementation and
/// fills the size/group metadata shared by both analysis paths.
index_t prepare_result_header(const CsrMatrix& m, index_t k,
                              TilingResult& res) {
  if (k <= 0) k = default_tile_grid(m.nrows(), m.ncols());
  k = std::max<index_t>(1, std::min({k, m.nrows(), m.ncols()}));

  res.k = k;
  res.tile_rows = (m.nrows() + k - 1) / k;
  res.tile_cols = (m.ncols() + k - 1) / k;
  res.total_tiles = static_cast<nnz_t>(k) * k;

  for (std::size_t xi = 0; xi < kNumFactors; ++xi) {
    const auto x = static_cast<index_t>(kGroupFactors[xi]);
    res.row_groups[xi] = (m.nrows() + x - 1) / x;
    res.col_groups[xi] = (m.ncols() + x - 1) / x;
  }
  return k;
}

}  // namespace

index_t default_tile_grid(index_t nrows, index_t ncols) {
  // Keep ~512 rows per tile (the paper's smallest-matrix ratio: K=2048 for
  // 2^20 rows), clamped to [4, 2048] and floored to a power of two.
  const index_t base = std::min(nrows, ncols) / 512;
  const index_t clamped = std::clamp<index_t>(base, 4, 2048);
  return static_cast<index_t>(
      std::bit_floor(static_cast<std::uint64_t>(clamped)));
}

TilingResult analyze_tiling(const CsrMatrix& m, index_t k) {
  TilingResult res;
  k = prepare_result_header(m, k, res);

  const index_t nrows = m.nrows();
  const index_t ncols = m.ncols();
  res.rowblock_counts.assign(static_cast<std::size_t>(k), 0);
  res.colblock_counts.assign(static_cast<std::size_t>(k), 0);
  res.col_counts.assign(static_cast<std::size_t>(std::max<index_t>(0, ncols)),
                        0);
  if (nrows <= 0 || ncols <= 0 || m.nnz() == 0) return res;

  const index_t rows_per_tile = res.tile_rows;
  const index_t cols_per_tile = res.tile_cols;
  const index_t n_tile_rows = (nrows + rows_per_tile - 1) / rows_per_tile;
  const auto rp = m.row_ptr();

  // RB masses come straight from row_ptr prefix differences — no per-nonzero
  // work and no reduction needed.
  for (index_t tr = 0; tr < n_tile_rows; ++tr) {
    const auto lo = static_cast<std::size_t>(tr) *
                    static_cast<std::size_t>(rows_per_tile);
    const auto hi = std::min<std::size_t>(static_cast<std::size_t>(nrows),
                                          lo + rows_per_tile);
    res.rowblock_counts[static_cast<std::size_t>(tr)] = rp[hi] - rp[lo];
  }

  // Contiguous chunks of whole tile rows, balanced by nonzero count. The
  // per-chunk results are invariant to the chunking (each tile row's
  // contribution depends only on its own rows), so any thread count yields
  // identical output.
  const int nchunks = static_cast<int>(std::min<index_t>(
      n_tile_rows, std::max(1, omp_get_max_threads())));
  std::vector<index_t> bounds(static_cast<std::size_t>(nchunks) + 1, 0);
  bounds[static_cast<std::size_t>(nchunks)] = n_tile_rows;
  for (int c = 1; c < nchunks; ++c) {
    const auto target =
        static_cast<double>(m.nnz()) * c / static_cast<double>(nchunks);
    index_t tr = bounds[static_cast<std::size_t>(c) - 1];
    while (tr < n_tile_rows &&
           static_cast<double>(
               rp[std::min<std::size_t>(
                   static_cast<std::size_t>(nrows),
                   static_cast<std::size_t>(tr + 1) *
                       static_cast<std::size_t>(rows_per_tile))]) < target) {
      ++tr;
    }
    bounds[static_cast<std::size_t>(c)] = tr;
  }

  const std::size_t nwc = (static_cast<std::size_t>(ncols) + 63) / 64;
  std::vector<ChunkResult> chunk(static_cast<std::size_t>(nchunks));
  std::vector<std::vector<nnz_t>> colhists(static_cast<std::size_t>(nchunks));
  std::vector<std::vector<std::uint64_t>> colbits(
      static_cast<std::size_t>(nchunks));
#pragma omp parallel for schedule(static, 1) if (nchunks > 1)
  for (int c = 0; c < nchunks; ++c) {
    const auto uc = static_cast<std::size_t>(c);
    const index_t row_begin = static_cast<index_t>(std::min<std::int64_t>(
        nrows, static_cast<std::int64_t>(bounds[uc]) * rows_per_tile));
    const index_t row_end = static_cast<index_t>(std::min<std::int64_t>(
        nrows, static_cast<std::int64_t>(bounds[uc + 1]) * rows_per_tile));
    if (row_begin >= row_end) continue;
    colhists[uc].assign(static_cast<std::size_t>(ncols), 0);
    colbits[uc].assign(nwc, 0);
    fused_chunk_sweep(m, k, rows_per_tile, cols_per_tile, row_begin, row_end,
                      colhists[uc], colbits[uc], chunk[uc]);
  }

  // Merge the per-chunk column histograms (ordered integer sums → exact and
  // thread-count independent), then derive the CB masses from them.
  auto& cc = res.col_counts;
#pragma omp parallel for schedule(static) if (ncols > (1 << 15))
  for (index_t j = 0; j < ncols; ++j) {
    nnz_t sum = 0;
    for (const auto& h : colhists) {
      if (!h.empty()) sum += h[static_cast<std::size_t>(j)];
    }
    cc[static_cast<std::size_t>(j)] = sum;
  }
  for (index_t tc = 0; tc < k; ++tc) {
    const auto lo = static_cast<std::size_t>(tc) *
                    static_cast<std::size_t>(cols_per_tile);
    const auto hi = std::min<std::size_t>(static_cast<std::size_t>(ncols),
                                          lo + cols_per_tile);
    nnz_t sum = 0;
    for (std::size_t j = lo; j < hi; ++j) sum += cc[j];
    res.colblock_counts[static_cast<std::size_t>(tc)] = sum;
  }

  // Concatenate in chunk order: chunks own disjoint, ascending tile-row
  // ranges, so this reproduces the serial flush order exactly.
  std::size_t total_occupied = 0;
  for (const auto& c : chunk) total_occupied += c.tile_counts.size();
  res.tile_counts.reserve(total_occupied);
  for (const auto& c : chunk) {
    res.tile_counts.insert(res.tile_counts.end(), c.tile_counts.begin(),
                           c.tile_counts.end());
    for (std::size_t x = 0; x < kNumFactors; ++x) {
      res.row_presence[x] += c.row_presence[x];
      res.col_presence[x] += c.col_presence[x];
    }
  }
  return res;
}

TilingResult analyze_tiling_reference(const CsrMatrix& m, index_t k) {
  TilingResult res;
  k = prepare_result_header(m, k, res);

  RowSweep fwd = reference_row_sweep(m, k);
  res.tile_counts = std::move(fwd.tile_counts);
  res.rowblock_counts = std::move(fwd.rowblock);
  res.colblock_counts = std::move(fwd.colblock);
  res.row_presence = fwd.presence;

  const CsrMatrix mt = m.transpose();
  RowSweep bwd = reference_row_sweep(mt, k);
  res.col_presence = bwd.presence;
  return res;
}

}  // namespace wise
