#include "features/tiling.hpp"

#include <algorithm>
#include <bit>

namespace wise {

namespace {

/// One row-major sweep computing tile/row-block/column-block counts and the
/// row-group presence sums. Column-group presence is obtained by running
/// this same pass on the transpose (a column group of A is a row group of
/// A^T and tile (tr,tc) of A is tile (tc,tr) of A^T), which keeps every
/// counter exact with O(K) memory.
struct RowSweep {
  std::vector<nnz_t> tile_counts;
  std::vector<nnz_t> rowblock;
  std::vector<nnz_t> colblock;
  std::array<nnz_t, kGroupFactors.size()> presence{};
};

RowSweep row_sweep(const CsrMatrix& m, index_t k) {
  const index_t nrows = m.nrows();
  const index_t ncols = m.ncols();
  const index_t tile_rows = (nrows + k - 1) / k;
  const index_t tile_cols = (ncols + k - 1) / k;

  RowSweep out;
  out.rowblock.assign(static_cast<std::size_t>(k), 0);
  out.colblock.assign(static_cast<std::size_t>(k), 0);

  // Per-tile-column state for the current tile-row block.
  std::vector<nnz_t> block_count(static_cast<std::size_t>(k), 0);
  std::vector<index_t> occupied;

  // marker[x][tc] remembers the last (row group, tile row) whose nonzeros
  // hit tile column tc. Row-major traversal makes that key non-decreasing
  // per tc, so "changed" == "first visit of this (group, tile) pair".
  std::array<std::vector<std::int64_t>, kGroupFactors.size()> marker;
  for (auto& v : marker) v.assign(static_cast<std::size_t>(k), -1);

  auto flush_block = [&] {
    for (index_t tc : occupied) {
      out.tile_counts.push_back(block_count[static_cast<std::size_t>(tc)]);
      block_count[static_cast<std::size_t>(tc)] = 0;
    }
    occupied.clear();
  };

  index_t current_tr = 0;
  for (index_t i = 0; i < nrows; ++i) {
    const index_t tr = i / tile_rows;
    if (tr != current_tr) {
      flush_block();
      current_tr = tr;
    }
    for (index_t j : m.row_cols(i)) {
      const index_t tc = j / tile_cols;
      if (block_count[static_cast<std::size_t>(tc)] == 0) {
        occupied.push_back(tc);
      }
      ++block_count[static_cast<std::size_t>(tc)];
      ++out.rowblock[static_cast<std::size_t>(tr)];
      ++out.colblock[static_cast<std::size_t>(tc)];

      for (std::size_t xi = 0; xi < kGroupFactors.size(); ++xi) {
        const index_t g = i / kGroupFactors[xi];
        const std::int64_t key =
            static_cast<std::int64_t>(g) * k + tr;
        if (marker[xi][static_cast<std::size_t>(tc)] != key) {
          marker[xi][static_cast<std::size_t>(tc)] = key;
          ++out.presence[xi];
        }
      }
    }
  }
  flush_block();
  return out;
}

}  // namespace

index_t default_tile_grid(index_t nrows, index_t ncols) {
  // Keep ~512 rows per tile (the paper's smallest-matrix ratio: K=2048 for
  // 2^20 rows), clamped to [4, 2048] and floored to a power of two.
  const index_t base = std::min(nrows, ncols) / 512;
  const index_t clamped = std::clamp<index_t>(base, 4, 2048);
  return static_cast<index_t>(
      std::bit_floor(static_cast<std::uint64_t>(clamped)));
}

TilingResult analyze_tiling(const CsrMatrix& m, index_t k) {
  if (k <= 0) k = default_tile_grid(m.nrows(), m.ncols());
  k = std::max<index_t>(1, std::min({k, m.nrows(), m.ncols()}));

  TilingResult res;
  res.k = k;
  res.tile_rows = (m.nrows() + k - 1) / k;
  res.tile_cols = (m.ncols() + k - 1) / k;
  res.total_tiles = static_cast<nnz_t>(k) * k;

  RowSweep fwd = row_sweep(m, k);
  res.tile_counts = std::move(fwd.tile_counts);
  res.rowblock_counts = std::move(fwd.rowblock);
  res.colblock_counts = std::move(fwd.colblock);
  res.row_presence = fwd.presence;

  const CsrMatrix mt = m.transpose();
  RowSweep bwd = row_sweep(mt, k);
  res.col_presence = bwd.presence;

  for (std::size_t xi = 0; xi < kGroupFactors.size(); ++xi) {
    const auto x = static_cast<index_t>(kGroupFactors[xi]);
    res.row_groups[xi] = (m.nrows() + x - 1) / x;
    res.col_groups[xi] = (m.ncols() + x - 1) / x;
  }
  return res;
}

}  // namespace wise
