#pragma once
// Small CSR utilities shared by solvers, graph algorithms and examples.

#include <vector>

#include "sparse/csr.hpp"

namespace wise {

/// Main diagonal of a (possibly rectangular) matrix; absent entries are 0.
std::vector<value_t> extract_diagonal(const CsrMatrix& m);

/// True when the matrix equals its transpose (structure and values).
bool is_symmetric(const CsrMatrix& m);

/// A + A^T with duplicate entries summed. Square matrices only.
CsrMatrix symmetrize(const CsrMatrix& m);

/// Row scaling: returns diag(s) * A (row i multiplied by s[i]).
CsrMatrix scale_rows(const CsrMatrix& m, std::span<const value_t> s);

/// Column scaling: returns A * diag(s).
CsrMatrix scale_cols(const CsrMatrix& m, std::span<const value_t> s);

/// Makes a strictly diagonally dominant system out of `m`: every diagonal
/// entry is set to `factor` * (sum of |off-diagonal| in its row) + 1.
/// Missing diagonal entries are inserted. Used to build guaranteed-
/// convergent Jacobi/BiCGSTAB test systems. Square matrices only.
CsrMatrix make_diagonally_dominant(const CsrMatrix& m, double factor = 2.0);

}  // namespace wise
