#pragma once
// DIA (diagonal) — offset-indexed diagonals, stored diagonal-major.
//
// A diagonal is the set of cells (i, i + off) for one offset off in
// [-(nrows-1), ncols-1]. DIA keeps the sorted list of offsets that carry at
// least one nonzero and one dense value lane per offset: cell (d, i) of the
// flat array is vals[d * nrows + i] = A(i, i + offsets[d]). Lanes are dense
// over *rows*, so two kinds of cells hold 0.0: out-of-band cells (i + off
// outside [0, ncols), never touched by the kernel — the per-row valid
// diagonal range is computed from the sorted offsets) and fill cells
// (in-band but absent from the source matrix — skipped by a value!=0 test).
//
// Why diagonal-major: the SpMV inner loop for one diagonal is
// y[i] += vals[d*nrows + i] * x[i + off] — every access unit-stride, no
// index loads, no gathers. That pure-triad loop is what makes DIA beat
// CSR on banded matrices (the formats perf_smoke stage gates it at 1.3x),
// and because ascending offsets mean ascending columns, accumulating the
// diagonals in offset order reproduces CSR's per-row accumulation order
// exactly.
//
// DIA only works when the nonzeros concentrate on few, well-filled
// diagonals. analyze() measures both failure axes — the distinct-diagonal
// count (an RMAT graph touches O(n) diagonals) and the in-band fill ratio
// (nnz / in-band cells) — and from_csr() rejects matrices outside the
// thresholds below. Explicit stored zeros are also rejected: a stored 0.0
// is indistinguishable from a fill cell once the lanes are materialized.

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace wise {

/// Hard cap on the number of populated diagonals; beyond it the per-row
/// offset scan and the lane storage (ndiags x nrows cells) both blow up.
inline constexpr index_t kDiaMaxDiagonals = 256;

/// Minimum nnz / in-band-cells ratio: at least this fraction of the stored
/// in-band lane cells must be real nonzeros, or the fill (and the wasted
/// 0.0 multiply-adds it implies) outweighs the unit-stride advantage.
inline constexpr double kDiaMinFillRatio = 0.25;

/// The rejection analysis behind DiaMatrix::accepts, exposed so tests and
/// the selection mask can see *why* a matrix was rejected.
struct DiaAnalysis {
  index_t ndiags = 0;       ///< distinct populated diagonals
  double fill = 0.0;        ///< nnz / in-band lane cells (1.0 = no fill)
  bool accepted = false;
  const char* reason = "";  ///< empty when accepted
};

/// Diagonal-major DIA matrix.
class DiaMatrix {
 public:
  DiaMatrix() = default;

  /// O(nnz) applicability scan: diagonal count, fill ratio, and the
  /// explicit-zero check, with the accept/reject verdict.
  static DiaAnalysis analyze(const CsrMatrix& m);
  static bool accepts(const CsrMatrix& m) { return analyze(m).accepted; }

  /// Converts from CSR. Throws std::invalid_argument when analyze()
  /// rejects the matrix.
  static DiaMatrix from_csr(const CsrMatrix& m);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  nnz_t nnz() const { return nnz_; }
  index_t num_diagonals() const {
    return static_cast<index_t>(offsets_.size());
  }

  /// Strictly ascending populated diagonal offsets (col - row).
  std::span<const std::int64_t> offsets() const { return offsets_; }

  /// Flat diagonal-major lanes: cell (d, i) at d * nrows + i holds
  /// A(i, i + offsets()[d]); out-of-band and fill cells hold 0.0.
  std::span<const value_t> vals() const { return vals_; }

  /// lane_dense()[d] != 0 iff every in-band cell of diagonal d is a real
  /// nonzero. Dense lanes let the kernel drop the fill guard and run the
  /// pure unit-stride triad loop — on a fully-banded matrix every lane is
  /// dense, which is exactly where DIA's perf gate is measured.
  std::span<const char> lane_dense() const { return lane_dense_; }

  /// Stored lane cells (ndiags x nrows); stored/nnz - 1 is DIA's fill
  /// overhead (the analogue of ELL's padding ratio).
  nnz_t stored_entries() const {
    return static_cast<nnz_t>(offsets_.size()) * static_cast<nnz_t>(nrows_);
  }
  double fill_ratio() const {
    return nnz_ == 0 ? 0.0
                     : static_cast<double>(stored_entries()) /
                               static_cast<double>(nnz_) -
                           1.0;
  }

  std::size_t memory_bytes() const;

  /// Expands back to canonical COO (round-trip test support).
  CooMatrix to_coo() const;

  /// Throws wise::Error (kValidation) on violated invariants: ascending
  /// in-range offsets, lane array size, zeroed out-of-band cells, finite
  /// values, nnz matching the non-zero in-band cells.
  void validate() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  nnz_t nnz_ = 0;
  std::vector<std::int64_t> offsets_;  ///< ascending, populated diagonals
  std::vector<char> lane_dense_;       ///< per diagonal: no fill cells
  aligned_vector<value_t> vals_;       ///< ndiags * nrows, diagonal-major
};

}  // namespace wise
