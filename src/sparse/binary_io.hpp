#pragma once
// Binary CSR serialization.
//
// Matrix Market is the interchange format, but parsing text for a
// many-million-nonzero matrix costs seconds; iterative experiments want a
// load measured in milliseconds. This is a small versioned little-endian
// container:
//
//   magic "WISECSR1" | nrows i64 | ncols i64 | nnz i64 |
//   row_ptr (nrows+1) i64 | col_idx (nnz) i32 | vals (nnz) f64
//
// Integrity: a FNV-1a checksum over the payload trails the file; load
// verifies it and the structural invariants (via CsrMatrix's constructor).

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace wise {

/// Writes the matrix; throws wise::Error (kResource) on I/O failure.
void write_csr_binary(std::ostream& out, const CsrMatrix& m);
void write_csr_binary_file(const std::string& path, const CsrMatrix& m);

/// Reads a matrix back. Throws wise::Error with the failing byte offset in
/// the error context: kParse on bad magic or short reads, kValidation on
/// negative/overflowing header dimensions, payload-size-vs-header mismatch
/// (checked before any allocation on seekable streams), or checksum
/// mismatch. Never returns partially-filled arrays.
CsrMatrix read_csr_binary(std::istream& in);
CsrMatrix read_csr_binary_file(const std::string& path);

}  // namespace wise
