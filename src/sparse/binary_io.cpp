#include "sparse/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace wise {

namespace {

constexpr char kMagic[8] = {'W', 'I', 'S', 'E', 'C', 'S', 'R', '1'};

/// Running FNV-1a over raw bytes.
class Checksum {
 public:
  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

void write_raw(std::ostream& out, Checksum& sum, const void* data,
               std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  sum.update(data, bytes);
}

void read_raw(std::istream& in, Checksum& sum, void* data,
              std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("read_csr_binary: truncated file");
  }
  sum.update(data, bytes);
}

}  // namespace

void write_csr_binary(std::ostream& out, const CsrMatrix& m) {
  Checksum sum;
  out.write(kMagic, sizeof kMagic);

  const std::int64_t dims[3] = {m.nrows(), m.ncols(), m.nnz()};
  write_raw(out, sum, dims, sizeof dims);
  write_raw(out, sum, m.row_ptr().data(),
            m.row_ptr().size() * sizeof(nnz_t));
  write_raw(out, sum, m.col_idx().data(),
            m.col_idx().size() * sizeof(index_t));
  write_raw(out, sum, m.vals().data(), m.vals().size() * sizeof(value_t));

  const std::uint64_t checksum = sum.value();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  if (!out) throw std::runtime_error("write_csr_binary: write failed");
}

CsrMatrix read_csr_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (static_cast<std::size_t>(in.gcount()) != sizeof magic ||
      std::memcmp(magic, kMagic, sizeof magic) != 0) {
    throw std::runtime_error("read_csr_binary: bad magic");
  }

  Checksum sum;
  std::int64_t dims[3];
  read_raw(in, sum, dims, sizeof dims);
  const auto nrows = static_cast<index_t>(dims[0]);
  const auto ncols = static_cast<index_t>(dims[1]);
  const auto nnz = dims[2];
  if (nrows < 0 || ncols < 0 || nnz < 0) {
    throw std::runtime_error("read_csr_binary: negative dimensions");
  }

  std::vector<nnz_t> row_ptr(static_cast<std::size_t>(nrows) + 1);
  aligned_vector<index_t> col_idx(static_cast<std::size_t>(nnz));
  aligned_vector<value_t> vals(static_cast<std::size_t>(nnz));
  read_raw(in, sum, row_ptr.data(), row_ptr.size() * sizeof(nnz_t));
  read_raw(in, sum, col_idx.data(), col_idx.size() * sizeof(index_t));
  read_raw(in, sum, vals.data(), vals.size() * sizeof(value_t));

  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (static_cast<std::size_t>(in.gcount()) != sizeof stored ||
      stored != sum.value()) {
    throw std::runtime_error("read_csr_binary: checksum mismatch");
  }
  // The CsrMatrix constructor validates structure (monotone row_ptr, sorted
  // in-range columns), so a corrupted-but-checksum-colliding file still
  // cannot produce an invalid matrix.
  return CsrMatrix(nrows, ncols, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

void write_csr_binary_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot create: " + path);
  write_csr_binary(out, m);
}

CsrMatrix read_csr_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_csr_binary(in);
}

}  // namespace wise
