#include "sparse/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace wise {

namespace {

constexpr char kMagic[8] = {'W', 'I', 'S', 'E', 'C', 'S', 'R', '1'};

/// Running FNV-1a over raw bytes.
class Checksum {
 public:
  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

[[noreturn]] void fail(ErrorCategory cat, const std::string& path,
                       std::size_t offset, const std::string& what) {
  ErrorContext ctx;
  ctx.file = path;
  ctx.offset = offset;
  ctx.stage = stage::kParse;
  throw Error(cat, "read_csr_binary: " + what, std::move(ctx));
}

/// Tracks the byte offset so truncation errors can say where the stream
/// ended relative to what the header promised.
struct Reader {
  std::istream& in;
  const std::string& path;
  Checksum sum;
  std::size_t offset = 0;

  void read(void* data, std::size_t bytes, const char* what) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got != bytes) {
      fail(ErrorCategory::kParse, path, offset + got,
           std::string("truncated ") + what + ": expected " +
               std::to_string(bytes) + " bytes, got " + std::to_string(got));
    }
    sum.update(data, bytes);
    offset += bytes;
  }
};

/// Bytes left in a seekable stream, or -1 when the stream cannot tell.
std::int64_t bytes_remaining(std::istream& in) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1)) return -1;
  return static_cast<std::int64_t>(end - pos);
}

void write_raw(std::ostream& out, Checksum& sum, const void* data,
               std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  sum.update(data, bytes);
}

CsrMatrix read_impl(std::istream& in, const std::string& path) {
  FaultInjector::global().maybe_throw(stage::kParse, ErrorCategory::kParse);

  char magic[8];
  in.read(magic, sizeof magic);
  if (static_cast<std::size_t>(in.gcount()) != sizeof magic ||
      std::memcmp(magic, kMagic, sizeof magic) != 0) {
    fail(ErrorCategory::kParse, path, 0, "bad magic");
  }

  Reader r{in, path};
  r.offset = sizeof magic;
  std::int64_t dims[3];
  r.read(dims, sizeof dims, "header");
  constexpr auto kMaxIndex =
      static_cast<std::int64_t>(std::numeric_limits<index_t>::max());
  if (dims[0] < 0 || dims[1] < 0 || dims[2] < 0) {
    fail(ErrorCategory::kValidation, path, r.offset, "negative dimensions");
  }
  if (dims[0] > kMaxIndex || dims[1] > kMaxIndex) {
    fail(ErrorCategory::kValidation, path, r.offset,
         "dimension overflow: " + std::to_string(dims[0]) + " x " +
             std::to_string(dims[1]) + " exceeds 32-bit index range");
  }
  const auto nrows = static_cast<index_t>(dims[0]);
  const auto ncols = static_cast<index_t>(dims[1]);
  const auto nnz = dims[2];
  if (nnz > dims[0] * dims[1]) {
    fail(ErrorCategory::kValidation, path, r.offset,
         "nnz " + std::to_string(nnz) + " exceeds rows*cols");
  }

  // Compare the header's implied payload size against the stream before
  // allocating: a corrupt header cannot trigger a multi-gigabyte allocation
  // or return partially-filled arrays.
  const std::int64_t expected =
      static_cast<std::int64_t>(dims[0] + 1) * sizeof(nnz_t) +
      nnz * static_cast<std::int64_t>(sizeof(index_t) + sizeof(value_t)) +
      static_cast<std::int64_t>(sizeof(std::uint64_t));
  const std::int64_t remaining = bytes_remaining(in);
  if (remaining >= 0 && remaining != expected) {
    fail(ErrorCategory::kValidation, path, r.offset,
         "payload size mismatch: header implies " + std::to_string(expected) +
             " bytes, stream has " + std::to_string(remaining));
  }

  std::vector<nnz_t> row_ptr(static_cast<std::size_t>(nrows) + 1);
  aligned_vector<index_t> col_idx(static_cast<std::size_t>(nnz));
  aligned_vector<value_t> vals(static_cast<std::size_t>(nnz));
  r.read(row_ptr.data(), row_ptr.size() * sizeof(nnz_t), "row_ptr");
  r.read(col_idx.data(), col_idx.size() * sizeof(index_t), "col_idx");
  r.read(vals.data(), vals.size() * sizeof(value_t), "vals");

  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (static_cast<std::size_t>(in.gcount()) != sizeof stored) {
    fail(ErrorCategory::kParse, path, r.offset, "truncated checksum");
  }
  if (stored != r.sum.value()) {
    fail(ErrorCategory::kValidation, path, r.offset, "checksum mismatch");
  }
  // The CsrMatrix constructor validates structure (monotone row_ptr, sorted
  // in-range columns, finite values), so a corrupted-but-checksum-colliding
  // file still cannot produce an invalid matrix.
  return CsrMatrix(nrows, ncols, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

}  // namespace

void write_csr_binary(std::ostream& out, const CsrMatrix& m) {
  Checksum sum;
  out.write(kMagic, sizeof kMagic);

  const std::int64_t dims[3] = {m.nrows(), m.ncols(), m.nnz()};
  write_raw(out, sum, dims, sizeof dims);
  write_raw(out, sum, m.row_ptr().data(),
            m.row_ptr().size() * sizeof(nnz_t));
  write_raw(out, sum, m.col_idx().data(),
            m.col_idx().size() * sizeof(index_t));
  write_raw(out, sum, m.vals().data(), m.vals().size() * sizeof(value_t));

  const std::uint64_t checksum = sum.value();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  if (!out) {
    throw Error(ErrorCategory::kResource, "write_csr_binary: write failed");
  }
}

CsrMatrix read_csr_binary(std::istream& in) { return read_impl(in, ""); }

void write_csr_binary_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error(ErrorCategory::kResource, "cannot create: " + path,
                {.file = path});
  }
  write_csr_binary(out, m);
}

CsrMatrix read_csr_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorCategory::kResource, "cannot open: " + path,
                {.file = path});
  }
  return read_impl(in, path);
}

}  // namespace wise
