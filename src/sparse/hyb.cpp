#include "sparse/hyb.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace wise {

HybMatrix HybMatrix::from_csr(const CsrMatrix& m, index_t cutoff) {
  if (cutoff < 0) {
    throw std::invalid_argument("HybMatrix: negative cutoff " +
                                std::to_string(cutoff));
  }

  HybMatrix h;
  h.nrows_ = m.nrows();
  h.ncols_ = m.ncols();
  h.nnz_ = m.nnz();
  h.cutoff_ = cutoff;

  const auto rp = m.row_ptr();
  nnz_t widest = 0;
  for (std::size_t i = 1; i < rp.size(); ++i) {
    widest = std::max(widest, rp[i] - rp[i - 1]);
  }
  h.ell_slots_ = std::min(cutoff, static_cast<index_t>(widest));

  const std::size_t n = static_cast<std::size_t>(h.nrows_);
  const std::size_t stored =
      static_cast<std::size_t>(h.ell_slots_) * n;
  h.ell_len_.resize(n);
  h.ell_cols_.assign(stored, 0);
  h.ell_vals_.assign(stored, 0.0);
  h.tail_row_ptr_.assign(n + 1, 0);

  for (index_t i = 0; i < h.nrows_; ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    const std::size_t split =
        std::min(cols.size(), static_cast<std::size_t>(h.ell_slots_));
    h.ell_len_[static_cast<std::size_t>(i)] = static_cast<index_t>(split);
    h.ell_nnz_ += static_cast<nnz_t>(split);
    for (std::size_t s = 0; s < split; ++s) {
      h.ell_cols_[s * n + static_cast<std::size_t>(i)] = cols[s];
      h.ell_vals_[s * n + static_cast<std::size_t>(i)] = vals[s];
    }
    h.tail_row_ptr_[static_cast<std::size_t>(i) + 1] =
        h.tail_row_ptr_[static_cast<std::size_t>(i)] +
        static_cast<nnz_t>(cols.size() - split);
  }

  h.tail_cols_.resize(static_cast<std::size_t>(h.tail_nnz()));
  h.tail_vals_.resize(static_cast<std::size_t>(h.tail_nnz()));
  for (index_t i = 0; i < h.nrows_; ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    const std::size_t split =
        std::min(cols.size(), static_cast<std::size_t>(h.ell_slots_));
    std::size_t at =
        static_cast<std::size_t>(h.tail_row_ptr_[static_cast<std::size_t>(i)]);
    for (std::size_t s = split; s < cols.size(); ++s, ++at) {
      h.tail_cols_[at] = cols[s];
      h.tail_vals_[at] = vals[s];
    }
  }
  return h;
}

CooMatrix HybMatrix::to_coo() const {
  CooMatrix coo(nrows_, ncols_);
  coo.entries().reserve(static_cast<std::size_t>(nnz_));
  const std::size_t n = static_cast<std::size_t>(nrows_);
  for (index_t i = 0; i < nrows_; ++i) {
    const auto len = static_cast<std::size_t>(ell_len(i));
    for (std::size_t s = 0; s < len; ++s) {
      coo.add(i, ell_cols_[s * n + static_cast<std::size_t>(i)],
              ell_vals_[s * n + static_cast<std::size_t>(i)]);
    }
    for (auto k = tail_row_ptr_[static_cast<std::size_t>(i)];
         k < tail_row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      coo.add(i, tail_cols_[static_cast<std::size_t>(k)],
              tail_vals_[static_cast<std::size_t>(k)]);
    }
  }
  return coo;
}

void HybMatrix::validate() const {
  if (nrows_ < 0 || ncols_ < 0 || cutoff_ < 0 || ell_slots_ < 0 ||
      ell_slots_ > cutoff_) {
    throw Error(ErrorCategory::kValidation,
                "HybMatrix: bad dimensions or cutoff");
  }
  const std::size_t n = static_cast<std::size_t>(nrows_);
  const std::size_t stored = static_cast<std::size_t>(ell_slots_) * n;
  if (ell_len_.size() != n || ell_cols_.size() != stored ||
      ell_vals_.size() != stored || tail_row_ptr_.size() != n + 1 ||
      tail_row_ptr_.front() != 0 ||
      tail_cols_.size() != static_cast<std::size_t>(tail_row_ptr_.back()) ||
      tail_vals_.size() != tail_cols_.size()) {
    throw Error(ErrorCategory::kValidation,
                "HybMatrix: array length mismatch");
  }
  nnz_t counted = 0;
  nnz_t counted_ell = 0;
  for (index_t i = 0; i < nrows_; ++i) {
    const index_t len = ell_len(i);
    if (len < 0 || len > ell_slots_) {
      throw Error(ErrorCategory::kValidation,
                  "HybMatrix: ell_len out of range in row " +
                      std::to_string(i));
    }
    const nnz_t tail_lo = tail_row_ptr_[static_cast<std::size_t>(i)];
    const nnz_t tail_hi = tail_row_ptr_[static_cast<std::size_t>(i) + 1];
    if (tail_hi < tail_lo) {
      throw Error(ErrorCategory::kValidation,
                  "HybMatrix: tail_row_ptr not monotone at row " +
                      std::to_string(i));
    }
    // The split rule: a row only spills into the tail when its ELL part
    // is completely full.
    if (tail_hi > tail_lo && len != ell_slots_) {
      throw Error(ErrorCategory::kValidation,
                  "HybMatrix: row " + std::to_string(i) +
                      " spills with unused ELL slots");
    }
    counted += len + (tail_hi - tail_lo);
    counted_ell += len;

    index_t prev = -1;
    for (index_t s = 0; s < ell_slots_; ++s) {
      const std::size_t at =
          static_cast<std::size_t>(s) * n + static_cast<std::size_t>(i);
      const index_t c = ell_cols_[at];
      const value_t v = ell_vals_[at];
      if (s < len) {
        if (c < 0 || c >= ncols_ || c <= prev) {
          throw Error(ErrorCategory::kValidation,
                      "HybMatrix: bad ELL column order in row " +
                          std::to_string(i));
        }
        prev = c;
        if (!std::isfinite(v)) {
          throw Error(ErrorCategory::kValidation,
                      "HybMatrix: non-finite ELL value in row " +
                          std::to_string(i));
        }
      } else if (c != 0 || v != 0.0) {
        throw Error(ErrorCategory::kValidation,
                    "HybMatrix: dirty padding cell in row " +
                        std::to_string(i));
      }
    }
    for (nnz_t k = tail_lo; k < tail_hi; ++k) {
      const index_t c = tail_cols_[static_cast<std::size_t>(k)];
      if (c < 0 || c >= ncols_ || c <= prev) {
        throw Error(ErrorCategory::kValidation,
                    "HybMatrix: bad tail column order in row " +
                        std::to_string(i));
      }
      prev = c;
      if (!std::isfinite(tail_vals_[static_cast<std::size_t>(k)])) {
        throw Error(ErrorCategory::kValidation,
                    "HybMatrix: non-finite tail value in row " +
                        std::to_string(i));
      }
    }
  }
  if (counted != nnz_ || counted_ell != ell_nnz_) {
    throw Error(ErrorCategory::kValidation,
                "HybMatrix: nnz does not match stored entries");
  }
}

std::size_t HybMatrix::memory_bytes() const {
  return ell_len_.size() * sizeof(index_t) +
         ell_cols_.size() * sizeof(index_t) +
         ell_vals_.size() * sizeof(value_t) +
         tail_row_ptr_.size() * sizeof(nnz_t) +
         tail_cols_.size() * sizeof(index_t) +
         tail_vals_.size() * sizeof(value_t);
}

}  // namespace wise
