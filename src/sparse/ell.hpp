#pragma once
// ELLPACK (ELL) — fixed-width padded rows, stored column-major (slot-major).
//
// Every row gets the same number of slots (the maximum row length); rows
// shorter than that are padded with (col 0, value 0) cells that the kernel
// never reads — a per-row length array guards them, so padding can never
// perturb the result, not even for non-finite x. Slot s of row i lives at
// flat index s * nrows + i: all rows' s-th entries are contiguous, which is
// what lets the SpMV kernel stream one slot across a block of rows with
// unit-stride loads (see spmv/format_kernels.cpp).
//
// ELL's failure mode is padding blow-up: one hub row widens every row.
// from_csr() rejects matrices whose padded storage would exceed
// kEllMaxPaddingFactor x nnz, and accepts() exposes the same predicate
// cheaply (O(nrows)) for the selection-time applicability mask.

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace wise {

/// A matrix is ELL-convertible only while slots * nrows stays within this
/// factor of nnz; beyond it the padding dominates the stored bytes and ELL
/// cannot win. The bound is deliberately loose — the model bank, not the
/// predicate, decides whether ELL is *fast*; the predicate only rules out
/// pathological blow-up (a single hub row on an RMAT graph can push the
/// factor into the thousands).
inline constexpr double kEllMaxPaddingFactor = 4.0;

/// Column-major padded ELLPACK matrix.
class EllMatrix {
 public:
  EllMatrix() = default;

  /// Converts from CSR. Throws std::invalid_argument when the padding
  /// predicate (accepts()) fails.
  static EllMatrix from_csr(const CsrMatrix& m);

  /// The conversion-applicability predicate: padded storage within
  /// kEllMaxPaddingFactor x nnz. O(nrows); shared by from_csr() and the
  /// selection-time mask (spmv/applicability.cpp).
  static bool accepts(const CsrMatrix& m);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  nnz_t nnz() const { return nnz_; }

  /// Slots per row (the maximum row length).
  index_t slots() const { return slots_; }

  /// Occupied slots of row i (<= slots()).
  index_t row_len(index_t i) const {
    return row_len_[static_cast<std::size_t>(i)];
  }
  std::span<const index_t> row_lens() const { return row_len_; }

  /// Flat slot-major arrays of size slots() * nrows(); cell (s, i) is at
  /// s * nrows + i. Padding cells hold (0, 0.0).
  std::span<const index_t> cols() const { return cols_; }
  std::span<const value_t> vals() const { return vals_; }

  /// Stored cells including padding; stored/nnz - 1 is the padding
  /// overhead (the analogue of SRVPack's padding_ratio and BSR's fill).
  nnz_t stored_entries() const {
    return static_cast<nnz_t>(slots_) * static_cast<nnz_t>(nrows_);
  }
  double fill_ratio() const {
    return nnz_ == 0 ? 0.0
                     : static_cast<double>(stored_entries()) /
                               static_cast<double>(nnz_) -
                           1.0;
  }

  std::size_t memory_bytes() const;

  /// Expands back to canonical COO (round-trip test support).
  CooMatrix to_coo() const;

  /// Throws wise::Error (kValidation) if internal invariants are violated:
  /// array sizes, row_len bounds, in-bounds strictly ascending columns in
  /// occupied slots, zeroed padding cells, finite values.
  void validate() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  nnz_t nnz_ = 0;
  index_t slots_ = 0;
  std::vector<index_t> row_len_;
  aligned_vector<index_t> cols_;  ///< slots * nrows, slot-major
  aligned_vector<value_t> vals_;  ///< slots * nrows, slot-major
};

}  // namespace wise
