#include "sparse/ell.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace wise {

namespace {

index_t max_row_len(const CsrMatrix& m) {
  const auto rp = m.row_ptr();
  nnz_t widest = 0;
  for (std::size_t i = 1; i < rp.size(); ++i) {
    widest = std::max(widest, rp[i] - rp[i - 1]);
  }
  return static_cast<index_t>(widest);
}

}  // namespace

bool EllMatrix::accepts(const CsrMatrix& m) {
  if (m.nnz() == 0) return true;
  const double stored = static_cast<double>(max_row_len(m)) *
                        static_cast<double>(m.nrows());
  return stored <= kEllMaxPaddingFactor * static_cast<double>(m.nnz());
}

EllMatrix EllMatrix::from_csr(const CsrMatrix& m) {
  if (!accepts(m)) {
    throw std::invalid_argument(
        "EllMatrix: padded storage " +
        std::to_string(static_cast<nnz_t>(max_row_len(m)) *
                       static_cast<nnz_t>(m.nrows())) +
        " exceeds " + std::to_string(kEllMaxPaddingFactor) + " x nnz (" +
        std::to_string(m.nnz()) + ")");
  }

  EllMatrix e;
  e.nrows_ = m.nrows();
  e.ncols_ = m.ncols();
  e.nnz_ = m.nnz();
  e.slots_ = max_row_len(m);
  e.row_len_.resize(static_cast<std::size_t>(e.nrows_));
  const std::size_t stored = static_cast<std::size_t>(e.slots_) *
                             static_cast<std::size_t>(e.nrows_);
  e.cols_.assign(stored, 0);
  e.vals_.assign(stored, 0.0);

  const std::size_t n = static_cast<std::size_t>(e.nrows_);
  for (index_t i = 0; i < e.nrows_; ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    e.row_len_[static_cast<std::size_t>(i)] =
        static_cast<index_t>(cols.size());
    for (std::size_t s = 0; s < cols.size(); ++s) {
      e.cols_[s * n + static_cast<std::size_t>(i)] = cols[s];
      e.vals_[s * n + static_cast<std::size_t>(i)] = vals[s];
    }
  }
  return e;
}

CooMatrix EllMatrix::to_coo() const {
  CooMatrix coo(nrows_, ncols_);
  coo.entries().reserve(static_cast<std::size_t>(nnz_));
  const std::size_t n = static_cast<std::size_t>(nrows_);
  for (index_t i = 0; i < nrows_; ++i) {
    const auto len = static_cast<std::size_t>(row_len(i));
    for (std::size_t s = 0; s < len; ++s) {
      coo.add(i, cols_[s * n + static_cast<std::size_t>(i)],
              vals_[s * n + static_cast<std::size_t>(i)]);
    }
  }
  return coo;
}

void EllMatrix::validate() const {
  if (nrows_ < 0 || ncols_ < 0 || slots_ < 0) {
    throw Error(ErrorCategory::kValidation, "EllMatrix: negative dimensions");
  }
  const std::size_t stored = static_cast<std::size_t>(slots_) *
                             static_cast<std::size_t>(nrows_);
  if (row_len_.size() != static_cast<std::size_t>(nrows_) ||
      cols_.size() != stored || vals_.size() != stored) {
    throw Error(ErrorCategory::kValidation,
                "EllMatrix: array length mismatch");
  }
  const std::size_t n = static_cast<std::size_t>(nrows_);
  nnz_t counted = 0;
  for (index_t i = 0; i < nrows_; ++i) {
    const index_t len = row_len(i);
    if (len < 0 || len > slots_) {
      throw Error(ErrorCategory::kValidation,
                  "EllMatrix: row_len out of range in row " +
                      std::to_string(i));
    }
    counted += len;
    index_t prev = -1;
    for (index_t s = 0; s < slots_; ++s) {
      const std::size_t at =
          static_cast<std::size_t>(s) * n + static_cast<std::size_t>(i);
      const index_t c = cols_[at];
      const value_t v = vals_[at];
      if (s < len) {
        if (c < 0 || c >= ncols_) {
          throw Error(ErrorCategory::kValidation,
                      "EllMatrix: column index out of range in row " +
                          std::to_string(i));
        }
        if (c <= prev) {
          throw Error(ErrorCategory::kValidation,
                      "EllMatrix: columns not strictly sorted in row " +
                          std::to_string(i));
        }
        prev = c;
        if (!std::isfinite(v)) {
          throw Error(ErrorCategory::kValidation,
                      "EllMatrix: non-finite value in row " +
                          std::to_string(i));
        }
      } else if (c != 0 || v != 0.0) {
        throw Error(ErrorCategory::kValidation,
                    "EllMatrix: dirty padding cell in row " +
                        std::to_string(i));
      }
    }
  }
  if (counted != nnz_) {
    throw Error(ErrorCategory::kValidation,
                "EllMatrix: nnz " + std::to_string(nnz_) +
                    " does not match row lengths (" + std::to_string(counted) +
                    ")");
  }
}

std::size_t EllMatrix::memory_bytes() const {
  return row_len_.size() * sizeof(index_t) + cols_.size() * sizeof(index_t) +
         vals_.size() * sizeof(value_t);
}

}  // namespace wise
