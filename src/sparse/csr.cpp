#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include <omp.h>

#include "util/error.hpp"

namespace wise {

CsrMatrix::CsrMatrix(index_t nrows, index_t ncols, std::vector<nnz_t> row_ptr,
                     aligned_vector<index_t> col_idx,
                     aligned_vector<value_t> vals)
    : nrows_(nrows),
      ncols_(ncols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      vals_(std::move(vals)) {
  validate();
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  coo.validate();
  CooMatrix canon = coo;
  if (!canon.is_canonical()) canon.canonicalize();
  const auto& es = canon.entries();

  CsrMatrix m;
  m.nrows_ = canon.nrows();
  m.ncols_ = canon.ncols();
  m.row_ptr_.assign(static_cast<std::size_t>(m.nrows_) + 1, 0);
  m.col_idx_.resize(es.size());
  m.vals_.resize(es.size());

  for (const auto& e : es) {
    ++m.row_ptr_[static_cast<std::size_t>(e.row) + 1];
  }
  for (std::size_t i = 1; i < m.row_ptr_.size(); ++i) {
    m.row_ptr_[i] += m.row_ptr_[i - 1];
  }
  for (std::size_t k = 0; k < es.size(); ++k) {
    m.col_idx_[k] = es[k].col;
    m.vals_[k] = es[k].val;
  }
  return m;
}

CooMatrix CsrMatrix::to_coo() const {
  CooMatrix coo(nrows_, ncols_);
  coo.entries().reserve(static_cast<std::size_t>(nnz()));
  for (index_t i = 0; i < nrows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(i, cols[k], vals[k]);
    }
  }
  return coo;
}

CsrMatrix CsrMatrix::transpose() const {
  CsrMatrix t;
  t.nrows_ = ncols_;
  t.ncols_ = nrows_;
  t.row_ptr_.assign(static_cast<std::size_t>(ncols_) + 1, 0);
  t.col_idx_.resize(static_cast<std::size_t>(nnz()));
  t.vals_.resize(static_cast<std::size_t>(nnz()));

  for (nnz_t k = 0; k < nnz(); ++k) {
    ++t.row_ptr_[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)]) + 1];
  }
  for (std::size_t i = 1; i < t.row_ptr_.size(); ++i) {
    t.row_ptr_[i] += t.row_ptr_[i - 1];
  }
  std::vector<nnz_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (index_t i = 0; i < nrows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto pos = static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(cols[k])]++);
      t.col_idx_[pos] = i;
      t.vals_[pos] = vals[k];
    }
  }
  return t;
}

std::vector<nnz_t> CsrMatrix::col_counts() const {
  std::vector<nnz_t> counts(static_cast<std::size_t>(ncols_), 0);
  const auto n = static_cast<std::int64_t>(col_idx_.size());
  if (n < (1 << 16) || omp_get_max_threads() <= 1) {
    for (auto c : col_idx_) ++counts[static_cast<std::size_t>(c)];
    return counts;
  }
  // Per-thread histograms merged with ordered integer sums: exact and
  // bit-identical at any thread count.
#pragma omp parallel
  {
    std::vector<nnz_t> local(static_cast<std::size_t>(ncols_), 0);
#pragma omp for nowait schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      ++local[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(i)])];
    }
#pragma omp critical(wise_csr_col_counts_merge)
    for (std::size_t j = 0; j < counts.size(); ++j) counts[j] += local[j];
  }
  return counts;
}

std::vector<nnz_t> CsrMatrix::row_counts() const {
  std::vector<nnz_t> counts(static_cast<std::size_t>(nrows_));
  const nnz_t* rp = row_ptr_.data();
  const auto n = static_cast<std::int64_t>(counts.size());
#pragma omp parallel for schedule(static) if (n > (1 << 16))
  for (std::int64_t i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(i)] = rp[i + 1] - rp[i];
  }
  return counts;
}

void CsrMatrix::validate() const {
  if (nrows_ < 0 || ncols_ < 0) {
    throw Error(ErrorCategory::kValidation, "CsrMatrix: negative dimensions");
  }
  if (row_ptr_.size() != static_cast<std::size_t>(nrows_) + 1 ||
      row_ptr_.front() != 0) {
    throw Error(ErrorCategory::kValidation, "CsrMatrix: malformed row_ptr");
  }
  for (std::size_t i = 1; i < row_ptr_.size(); ++i) {
    if (row_ptr_[i] < row_ptr_[i - 1]) {
      throw Error(ErrorCategory::kValidation,
                  "CsrMatrix: row_ptr not monotone at row " +
                      std::to_string(i - 1));
    }
  }
  if (row_ptr_.back() < 0 ||
      row_ptr_.back() >
          static_cast<nnz_t>(nrows_) * static_cast<nnz_t>(ncols_)) {
    throw Error(ErrorCategory::kValidation,
                "CsrMatrix: nnz " + std::to_string(row_ptr_.back()) +
                    " overflows rows*cols");
  }
  if (col_idx_.size() != static_cast<std::size_t>(row_ptr_.back()) ||
      vals_.size() != col_idx_.size()) {
    throw Error(ErrorCategory::kValidation,
                "CsrMatrix: array length mismatch");
  }
  for (index_t i = 0; i < nrows_; ++i) {
    const auto cols = row_cols(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] < 0 || cols[k] >= ncols_) {
        throw Error(ErrorCategory::kValidation,
                    "CsrMatrix: column index out of range in row " +
                        std::to_string(i));
      }
      if (k > 0 && cols[k] <= cols[k - 1]) {
        throw Error(ErrorCategory::kValidation,
                    "CsrMatrix: columns not strictly sorted in row " +
                        std::to_string(i));
      }
    }
  }
  for (std::size_t k = 0; k < vals_.size(); ++k) {
    if (!std::isfinite(vals_[k])) {
      throw Error(ErrorCategory::kValidation,
                  "CsrMatrix: non-finite value at nonzero " +
                      std::to_string(k));
    }
  }
}

std::size_t CsrMatrix::memory_bytes() const {
  return row_ptr_.size() * sizeof(nnz_t) + col_idx_.size() * sizeof(index_t) +
         vals_.size() * sizeof(value_t);
}

void spmv_reference(const CsrMatrix& a, std::span<const value_t> x,
                    std::span<value_t> y) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument("spmv_reference: dimension mismatch");
  }
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    value_t acc = 0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      acc += vals[k] * x[static_cast<std::size_t>(cols[k])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

}  // namespace wise
