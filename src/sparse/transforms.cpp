#include "sparse/transforms.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace wise {

void validate_permutation(const std::vector<index_t>& perm, index_t n) {
  if (perm.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("permutation: wrong length");
  }
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t p : perm) {
    if (p < 0 || p >= n || seen[static_cast<std::size_t>(p)]) {
      throw std::invalid_argument("permutation: not a bijection on [0,n)");
    }
    seen[static_cast<std::size_t>(p)] = true;
  }
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  for (std::size_t p = 0; p < perm.size(); ++p) {
    inv[static_cast<std::size_t>(perm[p])] = static_cast<index_t>(p);
  }
  return inv;
}

std::vector<index_t> sigma_sorted_row_order(const CsrMatrix& m,
                                            index_t sigma) {
  const index_t n = m.nrows();
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  if (sigma <= 1 || n == 0) return order;

  const index_t window = std::min(sigma, n);
  for (index_t begin = 0; begin < n; begin += window) {
    const index_t end = std::min<index_t>(begin + window, n);
    std::stable_sort(order.begin() + begin, order.begin() + end,
                     [&m](index_t a, index_t b) {
                       return m.row_nnz(a) > m.row_nnz(b);
                     });
  }
  return order;
}

std::vector<index_t> rfs_row_order(const CsrMatrix& m) {
  return sigma_sorted_row_order(m, m.nrows());
}

std::vector<index_t> cfs_col_order(const CsrMatrix& m) {
  const auto counts = m.col_counts();
  std::vector<index_t> order(counts.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&counts](index_t a, index_t b) {
                     return counts[static_cast<std::size_t>(a)] >
                            counts[static_cast<std::size_t>(b)];
                   });
  return order;
}

CsrMatrix permute_columns(const CsrMatrix& m,
                          const std::vector<index_t>& col_order) {
  validate_permutation(col_order, m.ncols());
  const auto inv = invert_permutation(col_order);

  std::vector<nnz_t> row_ptr(m.row_ptr().begin(), m.row_ptr().end());
  aligned_vector<index_t> col_idx(static_cast<std::size_t>(m.nnz()));
  aligned_vector<value_t> vals(static_cast<std::size_t>(m.nnz()));

  for (index_t i = 0; i < m.nrows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto rvals = m.row_vals(i);
    // Renumber, then re-sort the row by the new column ids.
    std::vector<std::pair<index_t, value_t>> entries(cols.size());
    for (std::size_t k = 0; k < cols.size(); ++k) {
      entries[k] = {inv[static_cast<std::size_t>(cols[k])], rvals[k]};
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const auto base = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    for (std::size_t k = 0; k < entries.size(); ++k) {
      col_idx[base + k] = entries[k].first;
      vals[base + k] = entries[k].second;
    }
  }
  return CsrMatrix(m.nrows(), m.ncols(), std::move(row_ptr),
                   std::move(col_idx), std::move(vals));
}

CsrMatrix permute_rows(const CsrMatrix& m,
                       const std::vector<index_t>& row_order) {
  validate_permutation(row_order, m.nrows());

  std::vector<nnz_t> row_ptr(static_cast<std::size_t>(m.nrows()) + 1, 0);
  for (std::size_t p = 0; p < row_order.size(); ++p) {
    row_ptr[p + 1] = row_ptr[p] + m.row_nnz(row_order[p]);
  }
  aligned_vector<index_t> col_idx(static_cast<std::size_t>(m.nnz()));
  aligned_vector<value_t> vals(static_cast<std::size_t>(m.nnz()));
  for (std::size_t p = 0; p < row_order.size(); ++p) {
    const auto cols = m.row_cols(row_order[p]);
    const auto rvals = m.row_vals(row_order[p]);
    const auto base = static_cast<std::size_t>(row_ptr[p]);
    std::copy(cols.begin(), cols.end(), col_idx.begin() + base);
    std::copy(rvals.begin(), rvals.end(), vals.begin() + base);
  }
  return CsrMatrix(m.nrows(), m.ncols(), std::move(row_ptr),
                   std::move(col_idx), std::move(vals));
}

std::vector<index_t> segment_boundaries(const std::vector<nnz_t>& col_counts,
                                        const std::vector<double>& fractions) {
  for (std::size_t k = 0; k < fractions.size(); ++k) {
    if (fractions[k] <= 0.0 || fractions[k] >= 1.0 ||
        (k > 0 && fractions[k] <= fractions[k - 1])) {
      throw std::invalid_argument(
          "segment_boundaries: fractions must be strictly increasing in (0,1)");
    }
  }
  nnz_t total = 0;
  for (auto c : col_counts) total += c;

  std::vector<index_t> boundaries;
  boundaries.reserve(fractions.size());
  const auto ncols = static_cast<index_t>(col_counts.size());
  nnz_t running = 0;
  index_t col = 0;
  for (double f : fractions) {
    const auto target = static_cast<nnz_t>(static_cast<double>(total) * f);
    while (col < ncols && running < target) {
      running += col_counts[static_cast<std::size_t>(col)];
      ++col;
    }
    // Keep at least one column in every remaining segment when possible.
    const auto max_boundary =
        std::max<index_t>(1, ncols - static_cast<index_t>(fractions.size() -
                                                          boundaries.size()));
    boundaries.push_back(std::clamp<index_t>(col, 1, max_boundary));
  }
  return boundaries;
}

}  // namespace wise
