#pragma once
// HYB (hybrid ELL + COO) — the NVIDIA cusp-style compromise format.
//
// The first min(row length, cutoff) entries of every row go into a padded
// slot-major ELL part (same layout as EllMatrix, but the width is capped at
// the cutoff instead of the maximum row length); whatever spills past the
// cutoff lands in an overflow tail kept in canonical COO order and
// compressed by row (a row_ptr over the tail entries, so the kernel can
// accumulate a row's tail right after its ELL slots and preserve the exact
// CSR accumulation order).
//
// The cutoff k is the method parameter (HYB/k8, HYB/k32 in the extended
// registry): small k keeps padding near zero but pushes more entries
// through the irregular tail; large k approaches plain ELL. Degenerate
// cutoffs are valid and exercised by tests: k >= max row length makes the
// tail empty (all-ELL), k == 0 puts every entry in the tail (all-COO).

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace wise {

/// Hybrid ELL + overflow-tail matrix with row-length cutoff.
class HybMatrix {
 public:
  HybMatrix() = default;

  /// Converts from CSR splitting each row at `cutoff` entries. Throws
  /// std::invalid_argument for a negative cutoff.
  static HybMatrix from_csr(const CsrMatrix& m, index_t cutoff);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  nnz_t nnz() const { return nnz_; }

  /// The row-length cutoff this matrix was built with.
  index_t cutoff() const { return cutoff_; }

  /// ELL-part width: min(cutoff, max row length).
  index_t ell_slots() const { return ell_slots_; }

  /// Occupied ELL slots of row i (<= ell_slots()).
  index_t ell_len(index_t i) const {
    return ell_len_[static_cast<std::size_t>(i)];
  }
  std::span<const index_t> ell_lens() const { return ell_len_; }

  nnz_t ell_nnz() const { return ell_nnz_; }
  nnz_t tail_nnz() const { return nnz_ - ell_nnz_; }

  /// Slot-major ELL arrays of size ell_slots() * nrows(); padding cells
  /// hold (0, 0.0).
  std::span<const index_t> ell_cols() const { return ell_cols_; }
  std::span<const value_t> ell_vals() const { return ell_vals_; }

  /// Row-compressed overflow tail: row i's spill entries are
  /// tail_cols()/tail_vals() in [tail_row_ptr()[i], tail_row_ptr()[i+1]),
  /// column-ascending (canonical COO order).
  std::span<const nnz_t> tail_row_ptr() const { return tail_row_ptr_; }
  std::span<const index_t> tail_cols() const { return tail_cols_; }
  std::span<const value_t> tail_vals() const { return tail_vals_; }

  /// Stored cells (ELL slots incl. padding + tail entries).
  nnz_t stored_entries() const {
    return static_cast<nnz_t>(ell_slots_) * static_cast<nnz_t>(nrows_) +
           tail_nnz();
  }
  double fill_ratio() const {
    return nnz_ == 0 ? 0.0
                     : static_cast<double>(stored_entries()) /
                               static_cast<double>(nnz_) -
                           1.0;
  }

  std::size_t memory_bytes() const;

  /// Expands back to canonical COO (round-trip test support).
  CooMatrix to_coo() const;

  /// Throws wise::Error (kValidation) on violated invariants: array sizes,
  /// the split rule (a row spills iff its ELL part is full), column order
  /// across the ELL/tail boundary, zeroed padding, finite values.
  void validate() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  nnz_t nnz_ = 0;
  index_t cutoff_ = 0;
  index_t ell_slots_ = 0;
  nnz_t ell_nnz_ = 0;
  std::vector<index_t> ell_len_;
  aligned_vector<index_t> ell_cols_;  ///< ell_slots * nrows, slot-major
  aligned_vector<value_t> ell_vals_;  ///< ell_slots * nrows, slot-major
  std::vector<nnz_t> tail_row_ptr_;   ///< nrows + 1
  aligned_vector<index_t> tail_cols_;
  aligned_vector<value_t> tail_vals_;
};

}  // namespace wise
