#include "sparse/coo.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace wise {

namespace {
bool coord_less(const Triplet& a, const Triplet& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}
}  // namespace

void CooMatrix::canonicalize() {
  std::sort(entries_.begin(), entries_.end(), coord_less);
  // Merge duplicates by summation (standard COO assembly semantics).
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    Triplet merged = entries_[i];
    std::size_t j = i + 1;
    while (j < entries_.size() && entries_[j].row == merged.row &&
           entries_[j].col == merged.col) {
      merged.val += entries_[j].val;
      ++j;
    }
    entries_[out++] = merged;
    i = j;
  }
  entries_.resize(out);
}

bool CooMatrix::is_canonical() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const auto& a = entries_[i - 1];
    const auto& b = entries_[i];
    if (!coord_less(a, b)) return false;
  }
  return true;
}

void CooMatrix::validate() const {
  if (nrows_ < 0 || ncols_ < 0) {
    throw Error(ErrorCategory::kValidation, "CooMatrix: negative dimensions");
  }
  for (const auto& e : entries_) {
    if (e.row < 0 || e.row >= nrows_ || e.col < 0 || e.col >= ncols_) {
      throw Error(ErrorCategory::kValidation,
                  "CooMatrix: entry out of range at (" +
                      std::to_string(e.row) + "," + std::to_string(e.col) +
                      ") for " + std::to_string(nrows_) + "x" +
                      std::to_string(ncols_));
    }
    if (!std::isfinite(e.val)) {
      throw Error(ErrorCategory::kValidation,
                  "CooMatrix: non-finite value at (" + std::to_string(e.row) +
                      "," + std::to_string(e.col) + ")");
    }
  }
}

}  // namespace wise
