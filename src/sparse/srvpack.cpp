#include "sparse/srvpack.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "sparse/transforms.hpp"
#include "util/error.hpp"

namespace wise {

namespace {

/// Builds one column segment [col_begin, col_end) of `src` with the chunked,
/// slot-major SRVPack layout.
SrvSegment build_segment(const CsrMatrix& src, index_t col_begin,
                         index_t col_end, const SrvBuildOptions& opts) {
  const index_t n = src.nrows();
  const int c = opts.c;

  SrvSegment seg;
  seg.col_begin = col_begin;
  seg.col_end = col_end;

  // Per-row sub-range of nonzeros falling inside the column window. Rows
  // are column-sorted, so binary search gives the window in O(log nnz_row).
  std::vector<nnz_t> lo_off(static_cast<std::size_t>(n));
  std::vector<nnz_t> seg_nnz(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    const auto cols = src.row_cols(i);
    const auto lo = std::lower_bound(cols.begin(), cols.end(), col_begin);
    const auto hi = std::lower_bound(lo, cols.end(), col_end);
    lo_off[static_cast<std::size_t>(i)] =
        src.row_ptr()[static_cast<std::size_t>(i)] + (lo - cols.begin());
    seg_nnz[static_cast<std::size_t>(i)] = hi - lo;
  }

  // Row ordering: natural, σ-windowed, or full RFS on the *segment* counts.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  const bool full_sort = opts.sigma == kSigmaAll || opts.sigma >= n;
  auto by_desc_nnz = [&seg_nnz](index_t a, index_t b) {
    return seg_nnz[static_cast<std::size_t>(a)] >
           seg_nnz[static_cast<std::size_t>(b)];
  };
  if (full_sort) {
    std::stable_sort(order.begin(), order.end(), by_desc_nnz);
    // Empty rows sorted to the tail contribute nothing; drop them so the
    // kernel skips them entirely (y is zero-initialized by the kernel).
    while (!order.empty() && seg_nnz[static_cast<std::size_t>(order.back())] == 0) {
      order.pop_back();
    }
  } else if (opts.sigma > 1) {
    for (index_t begin = 0; begin < n; begin += opts.sigma) {
      const index_t end = std::min<index_t>(begin + opts.sigma, n);
      std::stable_sort(order.begin() + begin, order.begin() + end,
                       by_desc_nnz);
    }
  }
  seg.row_order = std::move(order);

  // Chunk offsets: each chunk of c rows is as long as its longest row.
  const auto nrows_seg = static_cast<index_t>(seg.row_order.size());
  const index_t num_chunks = (nrows_seg + c - 1) / c;
  seg.chunk_offset.assign(static_cast<std::size_t>(num_chunks) + 1, 0);
  for (index_t k = 0; k < num_chunks; ++k) {
    nnz_t len = 0;
    for (int l = 0; l < c; ++l) {
      const index_t pos = k * c + l;
      if (pos >= nrows_seg) break;
      len = std::max(len,
                     seg_nnz[static_cast<std::size_t>(seg.row_order[pos])]);
    }
    seg.chunk_offset[static_cast<std::size_t>(k) + 1] =
        seg.chunk_offset[static_cast<std::size_t>(k)] + len;
  }

  // Fill slot-major planes; pad short lanes with (pad_col, 0). The padding
  // column is the window's first column: after CFS that is the hottest
  // column, so padded gathers hit cache.
  const index_t pad_col = col_begin < src.ncols() ? col_begin : 0;
  const auto total_slots =
      static_cast<std::size_t>(seg.chunk_offset.back()) * c;
  seg.vals.assign(total_slots, value_t{0});
  seg.col_ids.assign(total_slots, pad_col);

  const auto* src_cols = src.col_idx().data();
  const auto* src_vals = src.vals().data();
#pragma omp parallel for schedule(static)
  for (index_t k = 0; k < num_chunks; ++k) {
    const nnz_t base = seg.chunk_offset[static_cast<std::size_t>(k)];
    for (int l = 0; l < c; ++l) {
      const index_t pos = k * c + l;
      if (pos >= nrows_seg) break;
      const index_t row = seg.row_order[static_cast<std::size_t>(pos)];
      const nnz_t row_lo = lo_off[static_cast<std::size_t>(row)];
      const nnz_t len = seg_nnz[static_cast<std::size_t>(row)];
      for (nnz_t j = 0; j < len; ++j) {
        const auto slot = static_cast<std::size_t>((base + j) * c + l);
        seg.col_ids[slot] = src_cols[row_lo + j];
        seg.vals[slot] = src_vals[row_lo + j];
      }
    }
  }
  return seg;
}

}  // namespace

SrvPackMatrix SrvPackMatrix::build(const CsrMatrix& m,
                                   const SrvBuildOptions& opts) {
  if (opts.c < 1 || opts.c > 64) {
    throw std::invalid_argument("SrvPack: c must be in [1, 64]");
  }
  if (opts.sigma < 1) {
    throw std::invalid_argument("SrvPack: sigma must be >= 1");
  }

  SrvPackMatrix out;
  out.nrows_ = m.nrows();
  out.ncols_ = m.ncols();
  out.nnz_ = m.nnz();
  out.opts_ = opts;

  // CFS physically renumbers columns; the permuted matrix is the working
  // representation (this cost is part of the measured preprocessing).
  const CsrMatrix* src = &m;
  CsrMatrix permuted;
  if (opts.cfs) {
    out.col_order_ = cfs_col_order(m);
    permuted = permute_columns(m, out.col_order_);
    src = &permuted;
  }

  std::vector<index_t> bounds;
  if (!opts.segment_fractions.empty()) {
    bounds = segment_boundaries(src->col_counts(), opts.segment_fractions);
  }
  index_t lo = 0;
  for (index_t b : bounds) {
    out.segments_.push_back(build_segment(*src, lo, b, opts));
    lo = b;
  }
  out.segments_.push_back(build_segment(*src, lo, src->ncols(), opts));
  return out;
}

nnz_t SrvPackMatrix::stored_entries() const {
  nnz_t total = 0;
  for (const auto& s : segments_) total += s.stored_entries(opts_.c);
  return total;
}

std::size_t SrvPackMatrix::memory_bytes() const {
  std::size_t bytes = col_order_.size() * sizeof(index_t);
  for (const auto& s : segments_) {
    bytes += s.row_order.size() * sizeof(index_t) +
             s.chunk_offset.size() * sizeof(nnz_t) +
             s.vals.size() * sizeof(value_t) +
             s.col_ids.size() * sizeof(index_t);
  }
  return bytes;
}

void SrvPackMatrix::validate() const {
  auto bad = [](const std::string& what) -> void {
    throw Error(ErrorCategory::kValidation, "SrvPackMatrix: " + what);
  };
  if (nrows_ < 0 || ncols_ < 0 || nnz_ < 0) bad("negative dimensions");
  if (opts_.c < 1 || opts_.c > 64) bad("c out of range");
  if (segments_.empty()) bad("no segments");
  if (opts_.cfs) {
    if (col_order_.size() != static_cast<std::size_t>(ncols_)) {
      bad("CFS column order has wrong length");
    }
    std::vector<char> seen(static_cast<std::size_t>(ncols_), 0);
    for (index_t c : col_order_) {
      if (c < 0 || c >= ncols_ || seen[static_cast<std::size_t>(c)]) {
        bad("CFS column order is not a permutation");
      }
      seen[static_cast<std::size_t>(c)] = 1;
    }
  } else if (!col_order_.empty()) {
    bad("column order present without CFS");
  }

  index_t expect_begin = 0;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const auto& seg = segments_[s];
    const std::string where = "segment " + std::to_string(s) + ": ";
    if (seg.col_begin != expect_begin || seg.col_end < seg.col_begin ||
        seg.col_end > ncols_) {
      bad(where + "column window does not tile the matrix");
    }
    expect_begin = seg.col_end;

    if (seg.row_order.size() > static_cast<std::size_t>(nrows_)) {
      bad(where + "more rows than the matrix has");
    }
    std::vector<char> seen_row(static_cast<std::size_t>(nrows_), 0);
    for (index_t r : seg.row_order) {
      if (r < 0 || r >= nrows_ || seen_row[static_cast<std::size_t>(r)]) {
        bad(where + "row order entry out of range or duplicated");
      }
      seen_row[static_cast<std::size_t>(r)] = 1;
    }

    const auto expected_chunks = static_cast<std::size_t>(
        (seg.num_rows() + opts_.c - 1) / opts_.c);
    if (seg.chunk_offset.size() != expected_chunks + 1 ||
        seg.chunk_offset.front() != 0) {
      bad(where + "malformed chunk offsets");
    }
    for (std::size_t k = 1; k < seg.chunk_offset.size(); ++k) {
      if (seg.chunk_offset[k] < seg.chunk_offset[k - 1]) {
        bad(where + "chunk offsets not monotone");
      }
    }
    const auto slots =
        static_cast<std::size_t>(seg.chunk_offset.back()) *
        static_cast<std::size_t>(opts_.c);
    if (seg.vals.size() != slots || seg.col_ids.size() != slots) {
      bad(where + "value/column array length mismatch");
    }
    // Padding uses the window's first column, so every stored id — real or
    // padding — must stay inside the window.
    const index_t lo = seg.col_begin;
    const index_t hi = seg.col_end > seg.col_begin ? seg.col_end
                                                   : seg.col_begin + 1;
    for (index_t c : seg.col_ids) {
      if (c < lo || c >= hi) bad(where + "column id outside segment window");
    }
    for (value_t v : seg.vals) {
      if (!std::isfinite(v)) bad(where + "non-finite value");
    }
  }
  if (expect_begin != ncols_) bad("segments do not cover all columns");
}

CooMatrix SrvPackMatrix::to_coo() const {
  CooMatrix coo(nrows_, ncols_);
  coo.entries().reserve(static_cast<std::size_t>(nnz_));
  const int c = opts_.c;
  for (const auto& seg : segments_) {
    for (index_t k = 0; k < seg.num_chunks(); ++k) {
      const nnz_t base = seg.chunk_offset[static_cast<std::size_t>(k)];
      const nnz_t len = seg.chunk_offset[static_cast<std::size_t>(k) + 1] - base;
      for (int l = 0; l < c; ++l) {
        const index_t pos = k * c + l;
        if (pos >= seg.num_rows()) break;
        const index_t row = seg.row_order[static_cast<std::size_t>(pos)];
        for (nnz_t j = 0; j < len; ++j) {
          const auto slot = static_cast<std::size_t>((base + j) * c + l);
          const value_t v = seg.vals[slot];
          index_t col = seg.col_ids[slot];
          // Padding entries carry value exactly 0 at the pad column; real
          // stored zeros are preserved by generators as nonzero values, so
          // dropping v==0 here recovers the logical matrix.
          if (v == value_t{0}) continue;
          if (opts_.cfs) col = col_order_[static_cast<std::size_t>(col)];
          coo.add(row, col, v);
        }
      }
    }
  }
  coo.canonicalize();
  return coo;
}

}  // namespace wise
