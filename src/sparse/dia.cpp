#include "sparse/dia.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace wise {

namespace {

/// Number of in-band cells on diagonal `off` of an nrows x ncols matrix:
/// rows i with 0 <= i + off < ncols.
nnz_t diagonal_length(index_t nrows, index_t ncols, std::int64_t off) {
  const std::int64_t lo = std::max<std::int64_t>(0, -off);
  const std::int64_t hi =
      std::min<std::int64_t>(nrows, static_cast<std::int64_t>(ncols) - off);
  return hi > lo ? static_cast<nnz_t>(hi - lo) : 0;
}

}  // namespace

DiaAnalysis DiaMatrix::analyze(const CsrMatrix& m) {
  DiaAnalysis a;
  if (m.nnz() == 0) {
    a.accepted = true;
    a.fill = 0.0;
    return a;
  }

  // One bit per possible offset, shifted by nrows-1 to make it an index.
  std::vector<char> seen(
      static_cast<std::size_t>(m.nrows()) + static_cast<std::size_t>(m.ncols()),
      0);
  const auto vals = m.vals();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    if (vals[k] == 0.0) {
      a.reason = "explicit stored zero (indistinguishable from fill)";
      return a;
    }
  }
  for (index_t i = 0; i < m.nrows(); ++i) {
    for (const index_t c : m.row_cols(i)) {
      seen[static_cast<std::size_t>(
          static_cast<std::int64_t>(c) - i + m.nrows() - 1)] = 1;
    }
  }

  nnz_t in_band = 0;
  for (std::size_t s = 0; s < seen.size(); ++s) {
    if (!seen[s]) continue;
    ++a.ndiags;
    in_band += diagonal_length(
        m.nrows(), m.ncols(),
        static_cast<std::int64_t>(s) - (m.nrows() - 1));
  }
  a.fill = static_cast<double>(m.nnz()) / static_cast<double>(in_band);

  if (a.ndiags > kDiaMaxDiagonals) {
    a.reason = "too many populated diagonals";
    return a;
  }
  if (a.fill < kDiaMinFillRatio) {
    a.reason = "diagonal fill ratio below threshold";
    return a;
  }
  a.accepted = true;
  return a;
}

DiaMatrix DiaMatrix::from_csr(const CsrMatrix& m) {
  const DiaAnalysis a = analyze(m);
  if (!a.accepted) {
    throw std::invalid_argument(
        std::string("DiaMatrix: ") + a.reason + " (diagonals " +
        std::to_string(a.ndiags) + ", fill " + std::to_string(a.fill) + ")");
  }

  DiaMatrix d;
  d.nrows_ = m.nrows();
  d.ncols_ = m.ncols();
  d.nnz_ = m.nnz();

  std::vector<char> seen(
      static_cast<std::size_t>(m.nrows()) + static_cast<std::size_t>(m.ncols()),
      0);
  for (index_t i = 0; i < m.nrows(); ++i) {
    for (const index_t c : m.row_cols(i)) {
      seen[static_cast<std::size_t>(
          static_cast<std::int64_t>(c) - i + m.nrows() - 1)] = 1;
    }
  }
  for (std::size_t s = 0; s < seen.size(); ++s) {
    if (seen[s]) {
      d.offsets_.push_back(static_cast<std::int64_t>(s) - (m.nrows() - 1));
    }
  }

  const std::size_t n = static_cast<std::size_t>(d.nrows_);
  d.vals_.assign(d.offsets_.size() * n, 0.0);
  for (index_t i = 0; i < m.nrows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const std::int64_t off = static_cast<std::int64_t>(cols[k]) - i;
      const auto di = static_cast<std::size_t>(
          std::lower_bound(d.offsets_.begin(), d.offsets_.end(), off) -
          d.offsets_.begin());
      d.vals_[di * n + static_cast<std::size_t>(i)] = vals[k];
    }
  }

  d.lane_dense_.assign(d.offsets_.size(), 0);
  for (std::size_t di = 0; di < d.offsets_.size(); ++di) {
    const std::int64_t off = d.offsets_[di];
    nnz_t filled = 0;
    const std::int64_t lo = std::max<std::int64_t>(0, -off);
    const std::int64_t hi = std::min<std::int64_t>(
        d.nrows_, static_cast<std::int64_t>(d.ncols_) - off);
    for (std::int64_t i = lo; i < hi; ++i) {
      if (d.vals_[di * n + static_cast<std::size_t>(i)] != 0.0) ++filled;
    }
    d.lane_dense_[di] =
        filled == diagonal_length(d.nrows_, d.ncols_, off) ? 1 : 0;
  }
  return d;
}

CooMatrix DiaMatrix::to_coo() const {
  CooMatrix coo(nrows_, ncols_);
  coo.entries().reserve(static_cast<std::size_t>(nnz_));
  const std::size_t n = static_cast<std::size_t>(nrows_);
  for (index_t i = 0; i < nrows_; ++i) {
    for (std::size_t di = 0; di < offsets_.size(); ++di) {
      const std::int64_t col = i + offsets_[di];
      if (col < 0 || col >= ncols_) continue;
      const value_t v = vals_[di * n + static_cast<std::size_t>(i)];
      if (v != 0.0) coo.add(i, static_cast<index_t>(col), v);
    }
  }
  return coo;
}

void DiaMatrix::validate() const {
  if (nrows_ < 0 || ncols_ < 0) {
    throw Error(ErrorCategory::kValidation, "DiaMatrix: negative dimensions");
  }
  const std::size_t n = static_cast<std::size_t>(nrows_);
  if (vals_.size() != offsets_.size() * n ||
      lane_dense_.size() != offsets_.size()) {
    throw Error(ErrorCategory::kValidation,
                "DiaMatrix: lane array length mismatch");
  }
  for (std::size_t di = 0; di < offsets_.size(); ++di) {
    const std::int64_t off = offsets_[di];
    if (off <= -static_cast<std::int64_t>(nrows_) ||
        off >= static_cast<std::int64_t>(ncols_)) {
      throw Error(ErrorCategory::kValidation,
                  "DiaMatrix: offset " + std::to_string(off) +
                      " outside the band");
    }
    if (di > 0 && off <= offsets_[di - 1]) {
      throw Error(ErrorCategory::kValidation,
                  "DiaMatrix: offsets not strictly ascending");
    }
  }
  nnz_t counted = 0;
  for (std::size_t di = 0; di < offsets_.size(); ++di) {
    const std::int64_t off = offsets_[di];
    nnz_t filled = 0;
    for (index_t i = 0; i < nrows_; ++i) {
      const value_t v = vals_[di * n + static_cast<std::size_t>(i)];
      const std::int64_t col = i + off;
      if (col < 0 || col >= ncols_) {
        if (v != 0.0) {
          throw Error(ErrorCategory::kValidation,
                      "DiaMatrix: dirty out-of-band cell on diagonal " +
                          std::to_string(off));
        }
        continue;
      }
      if (!std::isfinite(v)) {
        throw Error(ErrorCategory::kValidation,
                    "DiaMatrix: non-finite value on diagonal " +
                        std::to_string(off));
      }
      if (v != 0.0) {
        ++counted;
        ++filled;
      }
    }
    const bool dense = filled == diagonal_length(nrows_, ncols_, off);
    if (dense != (lane_dense_[di] != 0)) {
      throw Error(ErrorCategory::kValidation,
                  "DiaMatrix: stale lane_dense flag on diagonal " +
                      std::to_string(off));
    }
  }
  if (counted != nnz_) {
    throw Error(ErrorCategory::kValidation,
                "DiaMatrix: nnz " + std::to_string(nnz_) +
                    " does not match populated cells (" +
                    std::to_string(counted) + ")");
  }
}

std::size_t DiaMatrix::memory_bytes() const {
  return offsets_.size() * sizeof(std::int64_t) +
         lane_dense_.size() * sizeof(char) + vals_.size() * sizeof(value_t);
}

}  // namespace wise
