#pragma once
// Matrix Market (.mtx) I/O.
//
// SuiteSparse — the paper's real-matrix corpus — distributes matrices in the
// Matrix Market exchange format. This reader/writer supports the subset that
// covers all SuiteSparse sparse matrices: `matrix coordinate` with
// real/integer/pattern fields and general/symmetric/skew-symmetric symmetry.
// Complex matrices are rejected explicitly (SpMV here is real-valued).
//
// The reader is strict: it rejects out-of-range 1-based indices, negative
// or overflowing dimensions, nnz counts exceeding rows*cols, duplicate
// coordinate entries (including mirrored duplicates in symmetric files),
// diagonal entries of skew-symmetric files, and non-finite values. All
// failures throw wise::Error — kParse for syntactic problems, kValidation
// for semantic ones — with the offending file and 1-based line number in
// the error context.

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "util/error.hpp"

namespace wise {

enum class MmField { kReal, kInteger, kPattern };
enum class MmSymmetry { kGeneral, kSymmetric, kSkewSymmetric };

/// Parsed (or to-be-written) banner-line options.
struct MmHeader {
  MmField field = MmField::kReal;
  MmSymmetry symmetry = MmSymmetry::kGeneral;

  friend bool operator==(const MmHeader&, const MmHeader&) = default;
};

/// Parses Matrix Market text from a stream. Symmetric (and skew-symmetric)
/// storage is expanded to general form; pattern matrices get value 1.0 for
/// every stored entry. When `header_out` is non-null the banner options are
/// reported through it.
CooMatrix read_matrix_market(std::istream& in, MmHeader* header_out = nullptr);

/// Convenience file wrapper; the path appears in any error context.
CooMatrix read_matrix_market_file(const std::string& path,
                                  MmHeader* header_out = nullptr);

/// Writes `coo` with the given banner options and 1-based indices in
/// canonical entry order. Symmetric kinds store only the lower triangle, so
/// write → read round-trips exactly. Throws wise::Error (kValidation) when
/// the matrix does not satisfy the requested header: symmetric requires a
/// square matrix with matching mirrored values, skew-symmetric additionally
/// negated mirrors and an empty diagonal, and the integer field requires
/// integral values.
void write_matrix_market(std::ostream& out, const CooMatrix& coo,
                         const MmHeader& header = {});

void write_matrix_market_file(const std::string& path, const CooMatrix& coo,
                              const MmHeader& header = {});

}  // namespace wise
