#pragma once
// Matrix Market (.mtx) I/O.
//
// SuiteSparse — the paper's real-matrix corpus — distributes matrices in the
// Matrix Market exchange format. This reader/writer supports the subset that
// covers all SuiteSparse sparse matrices: `matrix coordinate` with
// real/integer/pattern fields and general/symmetric/skew-symmetric symmetry.
// Complex matrices are rejected explicitly (SpMV here is real-valued).

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace wise {

/// Parses Matrix Market text from a stream. Throws std::runtime_error with
/// a line-numbered message on malformed input. Symmetric (and
/// skew-symmetric) storage is expanded to general form; pattern matrices get
/// value 1.0 for every stored entry.
CooMatrix read_matrix_market(std::istream& in);

/// Convenience file wrapper around the stream overload.
CooMatrix read_matrix_market_file(const std::string& path);

/// Writes `coo` as `matrix coordinate real general` with 1-based indices.
void write_matrix_market(std::ostream& out, const CooMatrix& coo);
void write_matrix_market_file(const std::string& path, const CooMatrix& coo);

}  // namespace wise
