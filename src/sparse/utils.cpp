#include "sparse/utils.hpp"

#include <cmath>
#include <stdexcept>

namespace wise {

std::vector<value_t> extract_diagonal(const CsrMatrix& m) {
  const index_t n = std::min(m.nrows(), m.ncols());
  std::vector<value_t> diag(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    // Columns are sorted; binary search for i.
    const auto it = std::lower_bound(cols.begin(), cols.end(), i);
    if (it != cols.end() && *it == i) {
      diag[static_cast<std::size_t>(i)] =
          vals[static_cast<std::size_t>(it - cols.begin())];
    }
  }
  return diag;
}

bool is_symmetric(const CsrMatrix& m) {
  if (m.nrows() != m.ncols()) return false;
  return m == m.transpose();
}

CsrMatrix symmetrize(const CsrMatrix& m) {
  if (m.nrows() != m.ncols()) {
    throw std::invalid_argument("symmetrize: matrix must be square");
  }
  CooMatrix coo = m.to_coo();
  const CooMatrix t = m.transpose().to_coo();
  coo.entries().insert(coo.entries().end(), t.entries().begin(),
                       t.entries().end());
  coo.canonicalize();
  return CsrMatrix::from_coo(coo);
}

namespace {

CsrMatrix scaled_copy(const CsrMatrix& m, std::span<const value_t> s,
                      bool by_row) {
  const auto expected = static_cast<std::size_t>(by_row ? m.nrows() : m.ncols());
  if (s.size() != expected) {
    throw std::invalid_argument("scale: scaling vector has wrong length");
  }
  std::vector<nnz_t> row_ptr(m.row_ptr().begin(), m.row_ptr().end());
  aligned_vector<index_t> col_idx(m.col_idx().begin(), m.col_idx().end());
  aligned_vector<value_t> vals(m.vals().begin(), m.vals().end());
  for (index_t i = 0; i < m.nrows(); ++i) {
    for (nnz_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      vals[ks] *= by_row ? s[static_cast<std::size_t>(i)]
                         : s[static_cast<std::size_t>(col_idx[ks])];
    }
  }
  return CsrMatrix(m.nrows(), m.ncols(), std::move(row_ptr),
                   std::move(col_idx), std::move(vals));
}

}  // namespace

CsrMatrix scale_rows(const CsrMatrix& m, std::span<const value_t> s) {
  return scaled_copy(m, s, /*by_row=*/true);
}

CsrMatrix scale_cols(const CsrMatrix& m, std::span<const value_t> s) {
  return scaled_copy(m, s, /*by_row=*/false);
}

CsrMatrix make_diagonally_dominant(const CsrMatrix& m, double factor) {
  if (m.nrows() != m.ncols()) {
    throw std::invalid_argument(
        "make_diagonally_dominant: matrix must be square");
  }
  CooMatrix coo = m.to_coo();
  std::vector<double> off(static_cast<std::size_t>(m.nrows()), 0.0);
  for (const auto& e : coo.entries()) {
    if (e.row != e.col) off[static_cast<std::size_t>(e.row)] += std::abs(e.val);
  }
  std::vector<bool> has_diag(static_cast<std::size_t>(m.nrows()), false);
  for (auto& e : coo.entries()) {
    if (e.row == e.col) {
      e.val = static_cast<value_t>(
          factor * off[static_cast<std::size_t>(e.row)] + 1.0);
      has_diag[static_cast<std::size_t>(e.row)] = true;
    }
  }
  for (index_t i = 0; i < m.nrows(); ++i) {
    if (!has_diag[static_cast<std::size_t>(i)]) {
      coo.add(i, i,
              static_cast<value_t>(factor * off[static_cast<std::size_t>(i)] +
                                   1.0));
    }
  }
  coo.canonicalize();
  return CsrMatrix::from_coo(coo);
}

}  // namespace wise
