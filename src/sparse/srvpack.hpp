#pragma once
// SRVPack — Segmented Reordered Vector Packing (paper Appendix A).
//
// A single unified representation from which all five vectorized SpMV
// methods of the paper are obtained by choosing build options:
//
//   method      | c     | sigma         | cfs   | segment_fractions
//   ------------+-------+---------------+-------+------------------
//   SELLPACK    | 4/8   | 1 (natural)   | no    | none (1 segment)
//   Sell-c-σ    | 4/8   | σ             | no    | none
//   Sell-c-R    | 4/8   | all rows      | no    | none
//   LAV-1Seg    | 4/8   | all rows      | yes   | none
//   LAV         | 4/8   | all rows      | yes   | {T}  (dense+sparse)
//
// Layout: rows are grouped into chunks of `c` consecutive rows (after the
// σ-window reordering). Within a chunk the nonzeros are stored slot-major:
// slot j holds the j-th nonzero of each of the c rows, contiguously, so one
// vector instruction processes one slot across all c lanes. Rows shorter
// than the chunk's longest row are padded with (column 0, value 0).
// With segmentation, each segment stores the nonzeros of its column range
// with the same chunked layout and its own row order (per-segment RFS).

#include <limits>
#include <vector>

#include "sparse/csr.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace wise {

/// Sentinel: sort rows globally (σ = number of rows), i.e. full RFS.
inline constexpr index_t kSigmaAll = std::numeric_limits<index_t>::max();

/// Build-time parameters selecting which paper method SRVPack realizes.
struct SrvBuildOptions {
  int c = 8;                 ///< chunk height == SIMD lanes (4 or 8 here)
  index_t sigma = 1;         ///< row-sorting window (1 = keep natural order)
  bool cfs = false;          ///< apply Column Frequency Sorting first
  std::vector<double> segment_fractions;  ///< cumulative nnz splits, e.g. {0.7}

  friend bool operator==(const SrvBuildOptions&,
                         const SrvBuildOptions&) = default;
};

/// One column segment in the SRVPack layout.
struct SrvSegment {
  index_t col_begin = 0;  ///< first column (in the matrix's column space)
  index_t col_end = 0;    ///< one past last column

  /// Chunk-ordered original row ids; lane l of chunk k computes row
  /// row_order[k*c + l]. Rows with no nonzeros in this segment are dropped
  /// when the segment was RFS-sorted (they would sort to the end anyway).
  std::vector<index_t> row_order;

  /// chunk_offset[k] .. chunk_offset[k+1] is chunk k's slot range; sizes are
  /// in slots (one slot = c values). Length = num_chunks()+1.
  std::vector<nnz_t> chunk_offset;

  aligned_vector<value_t> vals;     ///< chunk_offset.back()*c entries
  aligned_vector<index_t> col_ids;  ///< parallel to vals

  index_t num_rows() const { return static_cast<index_t>(row_order.size()); }
  index_t num_chunks() const {
    return static_cast<index_t>(chunk_offset.size()) - 1;
  }
  /// Stored entries including padding.
  nnz_t stored_entries(int c) const { return chunk_offset.back() * c; }
};

/// The unified matrix format. Immutable after build().
class SrvPackMatrix {
 public:
  /// Converts a CSR matrix. Throws std::invalid_argument on bad options
  /// (c not in {1..64}, sigma < 1, malformed fractions).
  static SrvPackMatrix build(const CsrMatrix& m, const SrvBuildOptions& opts);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  nnz_t nnz() const { return nnz_; }
  int c() const { return opts_.c; }
  const SrvBuildOptions& options() const { return opts_; }

  bool has_cfs() const { return opts_.cfs; }
  /// CFS permutation (new position → original column); empty when !has_cfs.
  const std::vector<index_t>& col_order() const { return col_order_; }

  const std::vector<SrvSegment>& segments() const { return segments_; }

  /// Total stored entries including padding; stored/nnz-1 is the padding
  /// overhead the σ parameter is tuned to minimize.
  nnz_t stored_entries() const;
  double padding_ratio() const {
    return nnz_ == 0 ? 0.0
                     : static_cast<double>(stored_entries()) /
                               static_cast<double>(nnz_) -
                           1.0;
  }

  std::size_t memory_bytes() const;

  /// Expands back to canonical COO (test support: must round-trip).
  CooMatrix to_coo() const;

  /// Throws wise::Error (kValidation) when the packed layout violates its
  /// invariants: segments must tile [0, ncols), chunk offsets must be
  /// monotone from 0 with matching array lengths, row ids must be in-range
  /// and unique per segment, column ids must stay inside their segment's
  /// window, values must be finite, and the CFS permutation (when present)
  /// must be a permutation of the columns. The pipeline validates every
  /// freshly-converted matrix before running SpMV with it.
  void validate() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  nnz_t nnz_ = 0;
  SrvBuildOptions opts_;
  std::vector<index_t> col_order_;
  std::vector<SrvSegment> segments_;
};

}  // namespace wise
