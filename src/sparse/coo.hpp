#pragma once
// Coordinate-format (COO) sparse matrix.
//
// COO is the library's construction and interchange format: generators emit
// edge lists as COO, Matrix Market files parse into COO, and CSR (the
// computational baseline format) is built from a canonicalized COO.

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace wise {

/// A single nonzero entry.
struct Triplet {
  index_t row;
  index_t col;
  value_t val;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Sparse matrix as an unordered list of (row, col, value) triplets.
class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {}
  CooMatrix(index_t nrows, index_t ncols, std::vector<Triplet> entries)
      : nrows_(nrows), ncols_(ncols), entries_(std::move(entries)) {}

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  nnz_t nnz() const { return static_cast<nnz_t>(entries_.size()); }

  const std::vector<Triplet>& entries() const { return entries_; }
  std::vector<Triplet>& entries() { return entries_; }

  /// Appends one nonzero; indices are validated in debug builds and by
  /// validate().
  void add(index_t row, index_t col, value_t val) {
    entries_.push_back(Triplet{row, col, val});
  }

  /// Sorts entries by (row, col) and sums duplicates in place. After this
  /// call the matrix is in canonical form: strictly increasing (row, col).
  /// Entries whose merged value is exactly zero are kept (a stored zero is a
  /// structural nonzero, matching Matrix Market semantics).
  void canonicalize();

  /// True when entries are sorted by (row, col) with no duplicates.
  bool is_canonical() const;

  /// Throws wise::Error (kValidation) when any index is out of range, any
  /// value is non-finite, or the dimensions are negative.
  void validate() const;

  friend bool operator==(const CooMatrix&, const CooMatrix&) = default;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace wise
