#pragma once
// Compressed Sparse Row (CSR) matrix — the baseline computational format
// (paper §2.1) and the input representation WISE assumes for every matrix.

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace wise {

/// CSR sparse matrix. Column indices within each row are sorted ascending.
class CsrMatrix {
 public:
  CsrMatrix() : row_ptr_(1, 0) {}

  /// Builds from a COO matrix; the COO need not be canonical (it is sorted
  /// and duplicates merged internally without modifying the argument).
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Builds directly from raw arrays (takes ownership). `row_ptr` must have
  /// nrows+1 monotonically non-decreasing entries starting at 0.
  CsrMatrix(index_t nrows, index_t ncols, std::vector<nnz_t> row_ptr,
            aligned_vector<index_t> col_idx, aligned_vector<value_t> vals);

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  nnz_t nnz() const { return row_ptr_.back(); }

  std::span<const nnz_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const value_t> vals() const { return vals_; }

  /// Number of nonzeros in row i.
  nnz_t row_nnz(index_t i) const {
    return row_ptr_[static_cast<std::size_t>(i) + 1] -
           row_ptr_[static_cast<std::size_t>(i)];
  }

  /// Column indices / values of row i.
  std::span<const index_t> row_cols(index_t i) const {
    return {col_idx_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_nnz(i))};
  }
  std::span<const value_t> row_vals(index_t i) const {
    return {vals_.data() + row_ptr_[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(row_nnz(i))};
  }

  /// Converts back to canonical COO.
  CooMatrix to_coo() const;

  /// Returns the transpose (equivalently, this matrix in CSC viewed as CSR).
  CsrMatrix transpose() const;

  /// Per-column nonzero counts (the C distribution of §4.2). Parallelized
  /// with per-thread histograms merged by integer sums, so the result is
  /// identical at any thread count.
  std::vector<nnz_t> col_counts() const;

  /// Per-row nonzero counts (the R distribution of §4.2): the adjacent
  /// difference of row_ptr, computed with a branch-free vectorizable loop.
  std::vector<nnz_t> row_counts() const;

  /// Structural and numerical equality.
  friend bool operator==(const CsrMatrix&, const CsrMatrix&) = default;

  /// Throws wise::Error (kValidation) if internal invariants are violated:
  /// row_ptr monotonicity, nnz/index-arithmetic overflow, in-bounds strictly
  /// sorted columns, finite values.
  void validate() const;

  /// Approximate heap footprint in bytes; used by benches to report
  /// format sizes.
  std::size_t memory_bytes() const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<nnz_t> row_ptr_;
  aligned_vector<index_t> col_idx_;
  aligned_vector<value_t> vals_;
};

/// Reference (serial, obviously-correct) SpMV used as the test oracle:
/// y = A*x computed with simple per-row dot products.
void spmv_reference(const CsrMatrix& a, std::span<const value_t> x,
                    std::span<value_t> y);

}  // namespace wise
