#pragma once
// Matrix reordering and partitioning transforms (paper §2.2).
//
// These are the building blocks the optimized SpMV formats are assembled
// from:
//   * RFS  — Row Frequency Sorting: order rows by descending nonzero count.
//   * CFS  — Column Frequency Sorting: order columns by descending count.
//   * σ-windowed row sorting — RFS restricted to windows of σ consecutive
//     rows (Sell-c-σ); σ=1 keeps the natural order, σ=nrows is full RFS.
//   * Column segmentation — split the (CFS-ordered) columns into segments
//     holding given cumulative fractions of the nonzeros (LAV's dense /
//     sparse split, parameter T).
//
// A permutation `perm` is always stored as new-position → old-index:
// perm[p] = original index of the element now at position p.

#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace wise {

/// Validates that `perm` is a permutation of [0, n). Throws otherwise.
void validate_permutation(const std::vector<index_t>& perm, index_t n);

/// Returns the inverse permutation: inv[old] = new position.
std::vector<index_t> invert_permutation(const std::vector<index_t>& perm);

/// Row ordering by descending nonzero count within each window of `sigma`
/// consecutive rows. The sort is stable, so rows with equal counts keep
/// their relative (locality-preserving) order — paper §2.2.
/// sigma <= 1 returns the identity; sigma >= nrows is full RFS.
std::vector<index_t> sigma_sorted_row_order(const CsrMatrix& m, index_t sigma);

/// Full Row Frequency Sorting: descending row nonzero count, stable.
std::vector<index_t> rfs_row_order(const CsrMatrix& m);

/// Column Frequency Sorting order: descending column nonzero count, stable.
std::vector<index_t> cfs_col_order(const CsrMatrix& m);

/// Applies a column permutation: returns a matrix whose column p holds the
/// original column col_order[p] (column indices are renumbered and each
/// row's indices re-sorted). Multiplying the result by a permuted input
/// vector xp, where xp[p] = x[col_order[p]], reproduces A*x.
CsrMatrix permute_columns(const CsrMatrix& m,
                          const std::vector<index_t>& col_order);

/// Applies a row permutation: row p of the result is original row
/// row_order[p].
CsrMatrix permute_rows(const CsrMatrix& m,
                       const std::vector<index_t>& row_order);

/// Given per-column nonzero counts listed in processing order, returns the
/// split points that partition columns into segments where segment k covers
/// cumulative nonzero fraction (fractions[k-1], fractions[k]]. The returned
/// vector has one entry per segment boundary: boundaries[k] = first column
/// of segment k+1. `fractions` must be strictly increasing in (0, 1); e.g.
/// LAV with T=0.7 passes {0.7} and gets one boundary.
/// The boundary is placed at the first column where the running fraction
/// reaches the target, and always leaves at least one column per segment
/// when possible.
std::vector<index_t> segment_boundaries(const std::vector<nnz_t>& col_counts,
                                        const std::vector<double>& fractions);

}  // namespace wise
