#include "sparse/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wise {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(std::size_t lineno, const std::string& what) {
  throw std::runtime_error("matrix market line " + std::to_string(lineno) +
                           ": " + what);
}

enum class Field { kReal, kInteger, kPattern };
enum class Symmetry { kGeneral, kSymmetric, kSkewSymmetric };

}  // namespace

CooMatrix read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  if (!std::getline(in, line)) fail(1, "missing header");
  ++lineno;
  std::istringstream header(lower(line));
  std::string banner, object, format, field_s, symmetry_s;
  header >> banner >> object >> format >> field_s >> symmetry_s;
  if (banner != "%%matrixmarket") fail(lineno, "not a MatrixMarket file");
  if (object != "matrix") fail(lineno, "unsupported object: " + object);
  if (format != "coordinate") {
    fail(lineno, "only coordinate format is supported, got: " + format);
  }

  Field field;
  if (field_s == "real" || field_s == "double") {
    field = Field::kReal;
  } else if (field_s == "integer") {
    field = Field::kInteger;
  } else if (field_s == "pattern") {
    field = Field::kPattern;
  } else {
    fail(lineno, "unsupported field type: " + field_s);
  }

  Symmetry symmetry;
  if (symmetry_s == "general") {
    symmetry = Symmetry::kGeneral;
  } else if (symmetry_s == "symmetric") {
    symmetry = Symmetry::kSymmetric;
  } else if (symmetry_s == "skew-symmetric") {
    symmetry = Symmetry::kSkewSymmetric;
  } else {
    fail(lineno, "unsupported symmetry: " + symmetry_s);
  }

  // Skip comments and blank lines until the size line.
  std::int64_t nrows = -1, ncols = -1, nstored = -1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream size_line(line);
    if (!(size_line >> nrows >> ncols >> nstored)) {
      fail(lineno, "malformed size line");
    }
    break;
  }
  if (nstored < 0) fail(lineno, "missing size line");
  if (nrows < 0 || ncols < 0) fail(lineno, "negative dimensions");

  CooMatrix coo(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  coo.entries().reserve(static_cast<std::size_t>(
      symmetry == Symmetry::kGeneral ? nstored : 2 * nstored));

  std::int64_t seen = 0;
  while (seen < nstored) {
    if (!std::getline(in, line)) fail(lineno, "unexpected end of file");
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    std::int64_t r, c;
    double v = 1.0;
    if (!(entry >> r >> c)) fail(lineno, "malformed entry");
    if (field != Field::kPattern && !(entry >> v)) {
      fail(lineno, "missing value");
    }
    if (r < 1 || r > nrows || c < 1 || c > ncols) {
      fail(lineno, "index out of range");
    }
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    coo.add(ri, ci, static_cast<value_t>(v));
    if (symmetry != Symmetry::kGeneral && ri != ci) {
      const double mirrored = symmetry == Symmetry::kSkewSymmetric ? -v : v;
      coo.add(ci, ri, static_cast<value_t>(mirrored));
    }
    ++seen;
  }
  coo.canonicalize();
  return coo;
}

CooMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CooMatrix& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.nrows() << ' ' << coo.ncols() << ' ' << coo.nnz() << '\n';
  out.precision(17);
  for (const auto& e : coo.entries()) {
    out << (e.row + 1) << ' ' << (e.col + 1) << ' ' << e.val << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const CooMatrix& coo) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create: " + path);
  write_matrix_market(out, coo);
}

}  // namespace wise
