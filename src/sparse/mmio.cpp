#include "sparse/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "util/fault.hpp"

namespace wise {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(ErrorCategory cat, const std::string& path,
                       std::size_t lineno, const std::string& what) {
  ErrorContext ctx;
  ctx.file = path;
  ctx.line = lineno;
  ctx.stage = stage::kParse;
  throw Error(cat, what, std::move(ctx));
}

/// Key for duplicate detection: (row, col) packed into 64 bits (indices are
/// 31-bit after range checking).
std::uint64_t coord_key(std::int64_t r, std::int64_t c) {
  return (static_cast<std::uint64_t>(r) << 32) | static_cast<std::uint64_t>(c);
}

const char* field_name(MmField f) {
  switch (f) {
    case MmField::kReal: return "real";
    case MmField::kInteger: return "integer";
    case MmField::kPattern: return "pattern";
  }
  return "real";
}

const char* symmetry_name(MmSymmetry s) {
  switch (s) {
    case MmSymmetry::kGeneral: return "general";
    case MmSymmetry::kSymmetric: return "symmetric";
    case MmSymmetry::kSkewSymmetric: return "skew-symmetric";
  }
  return "general";
}

CooMatrix read_impl(std::istream& in, const std::string& path,
                    MmHeader* header_out) {
  FaultInjector::global().maybe_throw(stage::kParse, ErrorCategory::kParse);

  std::string line;
  std::size_t lineno = 0;

  if (!std::getline(in, line)) {
    fail(ErrorCategory::kParse, path, 1, "missing header");
  }
  ++lineno;
  std::istringstream header(lower(line));
  std::string banner, object, format, field_s, symmetry_s;
  header >> banner >> object >> format >> field_s >> symmetry_s;
  if (banner != "%%matrixmarket") {
    fail(ErrorCategory::kParse, path, lineno, "not a MatrixMarket file");
  }
  if (object != "matrix") {
    fail(ErrorCategory::kParse, path, lineno, "unsupported object: " + object);
  }
  if (format != "coordinate") {
    fail(ErrorCategory::kParse, path, lineno,
         "only coordinate format is supported, got: " + format);
  }

  MmHeader hdr;
  if (field_s == "real" || field_s == "double") {
    hdr.field = MmField::kReal;
  } else if (field_s == "integer") {
    hdr.field = MmField::kInteger;
  } else if (field_s == "pattern") {
    hdr.field = MmField::kPattern;
  } else {
    fail(ErrorCategory::kParse, path, lineno,
         "unsupported field type: " + field_s);
  }

  if (symmetry_s == "general") {
    hdr.symmetry = MmSymmetry::kGeneral;
  } else if (symmetry_s == "symmetric") {
    hdr.symmetry = MmSymmetry::kSymmetric;
  } else if (symmetry_s == "skew-symmetric") {
    hdr.symmetry = MmSymmetry::kSkewSymmetric;
  } else {
    fail(ErrorCategory::kParse, path, lineno,
         "unsupported symmetry: " + symmetry_s);
  }

  // Skip comments and blank lines until the size line.
  std::int64_t nrows = -1, ncols = -1, nstored = -1;
  bool have_size = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream size_line(line);
    if (!(size_line >> nrows >> ncols >> nstored)) {
      fail(ErrorCategory::kParse, path, lineno, "malformed size line");
    }
    have_size = true;
    break;
  }
  if (!have_size) {
    fail(ErrorCategory::kParse, path, lineno, "missing size line");
  }
  if (nrows < 0 || ncols < 0) {
    fail(ErrorCategory::kValidation, path, lineno, "negative dimensions");
  }
  constexpr auto kMaxIndex =
      static_cast<std::int64_t>(std::numeric_limits<index_t>::max());
  if (nrows > kMaxIndex || ncols > kMaxIndex) {
    fail(ErrorCategory::kValidation, path, lineno,
         "dimension overflow: " + std::to_string(nrows) + " x " +
             std::to_string(ncols) + " exceeds 32-bit index range");
  }
  if (nstored < 0) {
    fail(ErrorCategory::kValidation, path, lineno, "negative entry count");
  }
  // Duplicates are rejected below, so a valid file stores at most rows*cols
  // entries (products of 31-bit dimensions cannot overflow int64).
  if (nstored > nrows * ncols) {
    fail(ErrorCategory::kValidation, path, lineno,
         "entry count " + std::to_string(nstored) + " exceeds rows*cols = " +
             std::to_string(nrows * ncols));
  }
  if (hdr.symmetry != MmSymmetry::kGeneral && nrows != ncols) {
    fail(ErrorCategory::kValidation, path, lineno,
         std::string(symmetry_name(hdr.symmetry)) +
             " matrix must be square, got " + std::to_string(nrows) + " x " +
             std::to_string(ncols));
  }

  CooMatrix coo(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  coo.entries().reserve(static_cast<std::size_t>(
      hdr.symmetry == MmSymmetry::kGeneral ? nstored : 2 * nstored));

  std::unordered_set<std::uint64_t> seen_coords;
  seen_coords.reserve(static_cast<std::size_t>(nstored));

  std::int64_t seen = 0;
  while (seen < nstored) {
    if (!std::getline(in, line)) {
      fail(ErrorCategory::kParse, path, lineno,
           "unexpected end of file: " + std::to_string(seen) + " of " +
               std::to_string(nstored) + " entries read");
    }
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    std::int64_t r, c;
    double v = 1.0;
    if (!(entry >> r >> c)) {
      fail(ErrorCategory::kParse, path, lineno, "malformed entry");
    }
    if (hdr.field != MmField::kPattern) {
      // strtod, not operator>>: libstdc++'s stream extraction rejects
      // "nan"/"inf" tokens, which must instead reach the non-finite check
      // below and be reported as a validation error.
      std::string tok;
      if (!(entry >> tok)) {
        fail(ErrorCategory::kParse, path, lineno, "missing value");
      }
      char* end = nullptr;
      v = std::strtod(tok.c_str(), &end);
      if (end == tok.c_str() || *end != '\0') {
        fail(ErrorCategory::kParse, path, lineno,
             "malformed value '" + tok + "'");
      }
    }
    if (r < 1 || r > nrows || c < 1 || c > ncols) {
      fail(ErrorCategory::kValidation, path, lineno,
           "index (" + std::to_string(r) + ", " + std::to_string(c) +
               ") out of range for " + std::to_string(nrows) + " x " +
               std::to_string(ncols) + " (1-based)");
    }
    if (!std::isfinite(v)) {
      fail(ErrorCategory::kValidation, path, lineno, "non-finite value");
    }
    if (hdr.field == MmField::kInteger && v != std::nearbyint(v)) {
      fail(ErrorCategory::kValidation, path, lineno,
           "non-integral value in integer matrix");
    }
    if (hdr.symmetry == MmSymmetry::kSkewSymmetric && r == c) {
      fail(ErrorCategory::kValidation, path, lineno,
           "skew-symmetric matrix stores diagonal entry (" +
               std::to_string(r) + ", " + std::to_string(c) + ")");
    }
    if (!seen_coords.insert(coord_key(r - 1, c - 1)).second) {
      fail(ErrorCategory::kValidation, path, lineno,
           "duplicate entry (" + std::to_string(r) + ", " + std::to_string(c) +
               ")");
    }
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    coo.add(ri, ci, static_cast<value_t>(v));
    if (hdr.symmetry != MmSymmetry::kGeneral && ri != ci) {
      // The mirrored coordinate also claims its slot: a symmetric file that
      // stores both (r, c) and (c, r) is a duplicate, not two entries.
      if (!seen_coords.insert(coord_key(c - 1, r - 1)).second) {
        fail(ErrorCategory::kValidation, path, lineno,
             "duplicate entry (" + std::to_string(r) + ", " +
                 std::to_string(c) + ") mirrors an earlier entry");
      }
      const double mirrored =
          hdr.symmetry == MmSymmetry::kSkewSymmetric ? -v : v;
      coo.add(ci, ri, static_cast<value_t>(mirrored));
    }
    ++seen;
  }

  // Anything but trailing comments/blank lines means the size line lied.
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    fail(ErrorCategory::kParse, path, lineno,
         "more entries than the declared " + std::to_string(nstored));
  }

  coo.canonicalize();
  if (header_out != nullptr) *header_out = hdr;
  return coo;
}

/// Locates (row, col) in canonical (sorted, duplicate-free) entries.
const Triplet* find_entry(const std::vector<Triplet>& entries, index_t row,
                          index_t col) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), std::pair<index_t, index_t>{row, col},
      [](const Triplet& t, const std::pair<index_t, index_t>& key) {
        return t.row != key.first ? t.row < key.first : t.col < key.second;
      });
  if (it == entries.end() || it->row != row || it->col != col) return nullptr;
  return &*it;
}

}  // namespace

CooMatrix read_matrix_market(std::istream& in, MmHeader* header_out) {
  return read_impl(in, "", header_out);
}

CooMatrix read_matrix_market_file(const std::string& path,
                                  MmHeader* header_out) {
  std::ifstream in(path);
  if (!in) {
    throw Error(ErrorCategory::kResource, "cannot open: " + path,
                {.file = path});
  }
  return read_impl(in, path, header_out);
}

void write_matrix_market(std::ostream& out, const CooMatrix& coo,
                         const MmHeader& header) {
  coo.validate();
  CooMatrix canon = coo;
  if (!canon.is_canonical()) canon.canonicalize();
  const auto& entries = canon.entries();

  const bool sym = header.symmetry != MmSymmetry::kGeneral;
  const bool skew = header.symmetry == MmSymmetry::kSkewSymmetric;
  if (sym && canon.nrows() != canon.ncols()) {
    throw Error(ErrorCategory::kValidation,
                std::string(symmetry_name(header.symmetry)) +
                    " output requires a square matrix");
  }

  nnz_t stored = 0;
  for (const auto& e : entries) {
    if (header.field != MmField::kPattern && !std::isfinite(e.val)) {
      throw Error(ErrorCategory::kValidation,
                  "non-finite value at (" + std::to_string(e.row) + ", " +
                      std::to_string(e.col) + ")");
    }
    if (header.field == MmField::kInteger && e.val != std::nearbyint(e.val)) {
      throw Error(ErrorCategory::kValidation,
                  "non-integral value at (" + std::to_string(e.row) + ", " +
                      std::to_string(e.col) + ") in integer output");
    }
    if (!sym) {
      ++stored;
      continue;
    }
    if (e.row == e.col) {
      if (skew) {
        throw Error(ErrorCategory::kValidation,
                    "skew-symmetric output forbids diagonal entry (" +
                        std::to_string(e.row) + ", " + std::to_string(e.col) +
                        ")");
      }
      ++stored;
      continue;
    }
    const Triplet* mirror = find_entry(entries, e.col, e.row);
    const value_t expect = skew ? -e.val : e.val;
    if (mirror == nullptr || mirror->val != expect) {
      throw Error(ErrorCategory::kValidation,
                  "matrix is not " + std::string(symmetry_name(header.symmetry)) +
                      ": entry (" + std::to_string(e.row) + ", " +
                      std::to_string(e.col) + ") has no matching mirror");
    }
    if (e.row > e.col) ++stored;  // lower triangle is what gets written
  }

  out << "%%MatrixMarket matrix coordinate " << field_name(header.field) << ' '
      << symmetry_name(header.symmetry) << '\n';
  out << canon.nrows() << ' ' << canon.ncols() << ' ' << stored << '\n';
  out.precision(17);
  for (const auto& e : entries) {
    if (sym && e.row < e.col) continue;
    out << (e.row + 1) << ' ' << (e.col + 1);
    if (header.field == MmField::kReal) {
      out << ' ' << e.val;
    } else if (header.field == MmField::kInteger) {
      out << ' ' << static_cast<long long>(e.val);
    }
    out << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const CooMatrix& coo,
                              const MmHeader& header) {
  std::ofstream out(path);
  if (!out) {
    throw Error(ErrorCategory::kResource, "cannot create: " + path,
                {.file = path});
  }
  write_matrix_market(out, coo, header);
  if (!out) {
    throw Error(ErrorCategory::kResource, "write failed: " + path,
                {.file = path});
  }
}

}  // namespace wise
