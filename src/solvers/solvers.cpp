#include "solvers/solvers.hpp"

#include <cmath>
#include <stdexcept>

#include "util/prng.hpp"

namespace wise {

namespace {

void check_sizes(std::size_t a, std::size_t b, const char* what) {
  if (a != b) throw std::invalid_argument(std::string(what) + ": size mismatch");
}

}  // namespace

SolverResult solve_jacobi(const SpmvOperator& spmv,
                          std::span<const value_t> diagonal,
                          std::span<const value_t> b,
                          const SolverOptions& opts) {
  check_sizes(diagonal.size(), b.size(), "solve_jacobi");
  const std::size_t n = b.size();
  for (value_t d : diagonal) {
    if (d == value_t{0}) {
      throw std::invalid_argument("solve_jacobi: zero diagonal entry");
    }
  }

  SolverResult res;
  res.x.assign(n, 0);
  std::vector<value_t> ax(n);

  for (res.iterations = 1; res.iterations <= opts.max_iterations;
       ++res.iterations) {
    spmv(res.x, ax);
    double norm = 0;
#pragma omp parallel for schedule(static) reduction(+ : norm)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const value_t r = b[idx] - ax[idx];
      norm += static_cast<double>(r) * r;
      res.x[idx] += r / diagonal[idx];
    }
    res.residual_norm = std::sqrt(norm);
    if (res.residual_norm < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  return res;
}

SolverResult solve_cg(const SpmvOperator& spmv, std::span<const value_t> b,
                      const SolverOptions& opts) {
  const std::size_t n = b.size();
  SolverResult res;
  res.x.assign(n, 0);

  // r = b - A*0 = b; p = r.
  std::vector<value_t> r(b.begin(), b.end());
  std::vector<value_t> p(r);
  std::vector<value_t> ap(n);

  double rr = blas::dot(r, r);
  res.residual_norm = std::sqrt(rr);
  if (res.residual_norm < opts.tolerance) {
    res.converged = true;
    return res;
  }

  for (res.iterations = 1; res.iterations <= opts.max_iterations;
       ++res.iterations) {
    spmv(p, ap);
    const double p_ap = blas::dot(p, ap);
    if (p_ap <= 0) break;  // not SPD (or numerical breakdown)
    const auto alpha = static_cast<value_t>(rr / p_ap);
    blas::axpy(alpha, p, res.x);
    blas::axpy(-alpha, ap, r);
    const double rr_next = blas::dot(r, r);
    res.residual_norm = std::sqrt(rr_next);
    if (res.residual_norm < opts.tolerance) {
      res.converged = true;
      break;
    }
    blas::xpby(r, static_cast<value_t>(rr_next / rr), p);
    rr = rr_next;
  }
  return res;
}

SolverResult solve_bicgstab(const SpmvOperator& spmv,
                            std::span<const value_t> b,
                            const SolverOptions& opts) {
  const std::size_t n = b.size();
  SolverResult res;
  res.x.assign(n, 0);

  std::vector<value_t> r(b.begin(), b.end());
  const std::vector<value_t> r0(r);  // shadow residual
  std::vector<value_t> p(n, 0), v(n, 0), s(n), t(n);

  double rho = 1, alpha = 1, omega = 1;
  res.residual_norm = blas::norm2(r);
  if (res.residual_norm < opts.tolerance) {
    res.converged = true;
    return res;
  }

  for (res.iterations = 1; res.iterations <= opts.max_iterations;
       ++res.iterations) {
    const double rho_next = blas::dot(r0, r);
    if (rho_next == 0) break;  // breakdown
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    // p = r + beta * (p - omega * v)
    blas::axpy(static_cast<value_t>(-omega), v, p);
    blas::xpby(r, static_cast<value_t>(beta), p);

    spmv(p, v);
    const double r0v = blas::dot(r0, v);
    if (r0v == 0) break;
    alpha = rho / r0v;

    blas::copy(r, s);
    blas::axpy(static_cast<value_t>(-alpha), v, s);
    if (blas::norm2(s) < opts.tolerance) {
      blas::axpy(static_cast<value_t>(alpha), p, res.x);
      res.residual_norm = blas::norm2(s);
      res.converged = true;
      break;
    }

    spmv(s, t);
    const double tt = blas::dot(t, t);
    if (tt == 0) break;
    omega = blas::dot(t, s) / tt;

    blas::axpy(static_cast<value_t>(alpha), p, res.x);
    blas::axpy(static_cast<value_t>(omega), s, res.x);
    blas::copy(s, r);
    blas::axpy(static_cast<value_t>(-omega), t, r);

    res.residual_norm = blas::norm2(r);
    if (res.residual_norm < opts.tolerance) {
      res.converged = true;
      break;
    }
    if (omega == 0) break;
  }
  return res;
}

SolverResult power_iteration(const SpmvOperator& spmv, index_t n,
                             const SolverOptions& opts, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("power_iteration: n must be > 0");
  SolverResult res;
  res.x.assign(static_cast<std::size_t>(n), 0);
  Xoshiro256 rng(seed);
  for (auto& v : res.x) v = static_cast<value_t>(rng.next_double() + 0.1);
  blas::scale(res.x, static_cast<value_t>(1.0 / blas::norm2(res.x)));

  std::vector<value_t> av(static_cast<std::size_t>(n));
  for (res.iterations = 1; res.iterations <= opts.max_iterations;
       ++res.iterations) {
    spmv(res.x, av);
    res.eigenvalue = blas::dot(res.x, av);  // Rayleigh quotient
    // residual = ||A v - lambda v||
    double norm = 0;
    for (std::size_t i = 0; i < av.size(); ++i) {
      const double r = static_cast<double>(av[i]) -
                       res.eigenvalue * static_cast<double>(res.x[i]);
      norm += r * r;
    }
    res.residual_norm = std::sqrt(norm);
    if (res.residual_norm < opts.tolerance) {
      res.converged = true;
      break;
    }
    const double av_norm = blas::norm2(av);
    if (av_norm == 0) break;  // A annihilated the iterate
    blas::copy(av, res.x);
    blas::scale(res.x, static_cast<value_t>(1.0 / av_norm));
  }
  return res;
}

}  // namespace wise
