#pragma once
// Common scaffolding for the iterative solvers built on WISE-accelerated
// SpMV. The paper motivates WISE with iterative workloads that "execute
// SpMV many times with the same sparse input matrix" (§1); this library is
// that workload: Jacobi, Conjugate Gradient, BiCGSTAB, and power iteration,
// each parameterized over an SpMV operator so callers can plug in a plain
// CSR kernel or a WISE-prepared matrix interchangeably.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace wise {

/// y = A x. Both plain kernels and PreparedMatrix::run bind to this.
using SpmvOperator =
    std::function<void(std::span<const value_t>, std::span<value_t>)>;

/// Wraps a CSR matrix with the reference-quality parallel kernel.
SpmvOperator make_csr_operator(const CsrMatrix& m);

struct SolverOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< on the 2-norm of the residual
};

struct SolverResult {
  std::vector<value_t> x;       ///< solution (or eigenvector)
  int iterations = 0;
  double residual_norm = 0;     ///< final ||b - Ax||_2 (or eigen-residual)
  bool converged = false;
  double eigenvalue = 0;        ///< power iteration only
};

/// Dense-vector helpers shared by the solvers (all OpenMP-parallel).
namespace blas {

double dot(std::span<const value_t> a, std::span<const value_t> b);
double norm2(std::span<const value_t> a);
/// y += alpha * x
void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y);
/// y = x + beta * y
void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y);
void scale(std::span<value_t> x, value_t alpha);
void copy(std::span<const value_t> src, std::span<value_t> dst);

}  // namespace blas

}  // namespace wise
