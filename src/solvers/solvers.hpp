#pragma once
// Iterative solvers on top of a pluggable SpMV operator.
//
// All solvers accept any SpmvOperator, so the SpMV each iteration performs
// can be the plain CSR kernel or a WISE-selected fast format — the classic
// "one-time selection, many iterations" amortization of the paper.

#include "solvers/solver_common.hpp"

namespace wise {

/// Jacobi iteration x' = x + D^-1 (b - A x). Requires the diagonal of A to
/// be nonzero; converges for (weakly) diagonally dominant systems.
SolverResult solve_jacobi(const SpmvOperator& spmv,
                          std::span<const value_t> diagonal,
                          std::span<const value_t> b,
                          const SolverOptions& opts = {});

/// Conjugate Gradient for symmetric positive-definite systems.
SolverResult solve_cg(const SpmvOperator& spmv, std::span<const value_t> b,
                      const SolverOptions& opts = {});

/// BiCGSTAB for general (nonsymmetric) systems.
SolverResult solve_bicgstab(const SpmvOperator& spmv,
                            std::span<const value_t> b,
                            const SolverOptions& opts = {});

/// Power iteration: dominant eigenvalue/eigenvector of A. The residual is
/// ||A v - lambda v||_2. The eigenvector is normalized to unit 2-norm.
SolverResult power_iteration(const SpmvOperator& spmv, index_t n,
                             const SolverOptions& opts = {},
                             std::uint64_t seed = 0x91f);

}  // namespace wise
