#include "solvers/solver_common.hpp"

#include <cmath>
#include <stdexcept>

#include "spmv/csr_kernels.hpp"

namespace wise {

SpmvOperator make_csr_operator(const CsrMatrix& m) {
  return [&m](std::span<const value_t> x, std::span<value_t> y) {
    spmv_csr(m, x, y, Schedule::kStCont);
  };
}

namespace blas {

double dot(std::span<const value_t> a, std::span<const value_t> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double sum = 0;
  const auto n = static_cast<std::int64_t>(a.size());
#pragma omp parallel for schedule(static) reduction(+ : sum)
  for (std::int64_t i = 0; i < n; ++i) {
    sum += static_cast<double>(a[static_cast<std::size_t>(i)]) *
           static_cast<double>(b[static_cast<std::size_t>(i)]);
  }
  return sum;
}

double norm2(std::span<const value_t> a) { return std::sqrt(dot(a, a)); }

void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] += alpha * x[static_cast<std::size_t>(i)];
  }
}

void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y) {
  if (x.size() != y.size()) throw std::invalid_argument("xpby: size mismatch");
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] =
        x[static_cast<std::size_t>(i)] + beta * y[static_cast<std::size_t>(i)];
  }
}

void scale(std::span<value_t> x, value_t alpha) {
  const auto n = static_cast<std::int64_t>(x.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] *= alpha;
  }
}

void copy(std::span<const value_t> src, std::span<value_t> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("copy: size mismatch");
  }
  const auto n = static_cast<std::int64_t>(src.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    dst[static_cast<std::size_t>(i)] = src[static_cast<std::size_t>(i)];
  }
}

}  // namespace blas
}  // namespace wise
