#pragma once
// The SpMM model bank: per-configuration speedup-class trees, trained and
// persisted independently of the SpMV ModelBank.
//
// This is the paper's §7 add-a-method claim exercised end-to-end with a
// different operation class: SpMM configurations get their own decision
// trees over the same 67-feature vector (features/extractor.hpp), their
// own training run, and their own file (<dir>/spmm_models.txt) — adding
// SpMM prediction to a deployment never touches, retrains, or re-validates
// the SpMV bank's models.txt. Classes are the same C0..C6 relative-time
// buckets (wise/speedup_class.hpp), normalized against the kb=1/Dyn
// repeated-SpMV baseline instead of best-CSR.
//
// Persistence format (<dir>/spmm_models.txt), version 1 — the ModelBank v2
// framing with an SpMM header:
//
//   wise-spmm-bank v1
//   <#configs>
//   <config name>
//   tree <payload bytes> <fnv1a checksum, hex>
//   <payload>
//   ...
//
// Corrupt individual trees are skipped with a warning (degrade, don't
// die); a bank in which no tree survives throws wise::Error (kModelBank).

#include <span>
#include <string>
#include <vector>

#include "ml/decision_tree.hpp"
#include "spmm/spmm.hpp"

namespace wise::spmm {

struct SpmmChoice {
  SpmmConfig config;
  int predicted_class = 0;  ///< C0..C6 vs the kb=1/Dyn baseline
};

class SpmmBank {
 public:
  /// Trains one tree per configuration.
  ///   features[i]     — 67-feature vector of training matrix i
  ///   rel_times[i][c] — t_config / t_baseline of matrix i, configuration
  ///                     configs[c] (baseline = configs()[0], kb=1/Dyn)
  /// Throws std::invalid_argument on shape mismatches.
  void train(const std::vector<SpmmConfig>& configs,
             const std::vector<std::vector<double>>& features,
             const std::vector<std::vector<double>>& rel_times,
             const TreeParams& params = {});

  /// Picks the configuration with the best predicted speedup class; ties
  /// break toward SpmmConfig::selection_rank() (smaller register block).
  SpmmChoice choose(std::span<const double> features) const;

  /// Predicted class of one configuration (validation / spot checks).
  int predict_class(std::size_t config_index,
                    std::span<const double> features) const;

  const std::vector<SpmmConfig>& configs() const { return configs_; }
  bool trained() const { return !trees_.empty(); }

  /// Persists as <dir>/spmm_models.txt. The SpMV bank's models.txt in the
  /// same directory is never touched.
  void save(const std::string& dir) const;

  /// Loads a bank saved by save(). Corrupt trees are skipped with a
  /// warning; throws wise::Error (kModelBank) when the file is missing,
  /// the header is unreadable, or no tree survives.
  static SpmmBank load(const std::string& dir);

  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  std::vector<SpmmConfig> configs_;
  std::vector<DecisionTree> trees_;
  std::vector<std::string> warnings_;
};

/// Per-configuration SpMM seconds (per iteration, min over `repeats`
/// passes) on one matrix with a k-column RHS, in spmm_method_configs()
/// order. Used by training and the perf_smoke spmm stage.
std::vector<double> measure_spmm_seconds(const CsrMatrix& m, index_t k,
                                         int iters, int repeats = 1);

struct SpmmTrainOptions {
  index_t k = 8;    ///< RHS width measured during training
  int iters = 2;    ///< SpMM iterations per timing pass
  int repeats = 1;  ///< timing passes (minimum taken)
  TreeParams tree_params{.max_depth = 8, .ccp_alpha = 0.0};
};

/// Measures every configuration on each matrix and trains a bank on the
/// results — the quick path examples, tests, and the daemon's untrained
/// fallback use (mirrors examples' make_mini_wise()).
SpmmBank train_spmm_bank(std::span<const CsrMatrix> mats,
                         const SpmmTrainOptions& opts = {});

}  // namespace wise::spmm
