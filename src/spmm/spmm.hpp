#pragma once
// Sparse × dense-block multiplication (SpMM): Y = A · X with a row-major
// dense right-hand side of k columns (ROADMAP item 3).
//
// Iterative multi-vector workloads — block Krylov methods, graph neural
// network layers, the genomics-style `Y = X · W` traffic — run the same
// sparse matrix against many dense vectors at once. Doing that as k
// independent SpMVs streams A's index/value arrays k times; the blocked
// kernels here stream A once per *register block* of kb ∈ {1, 2, 4, 8}
// columns, turning the extra columns into contiguous kb-wide loads of X
// that ride along with each gathered row. At kb = k the matrix is read
// once, which is where the memory-bound win lives (the perf_smoke `spmm`
// stage gates ≥1.3× over repeated SpMV at k = 8).
//
// Parallelism reuses the nnz-balanced `SpmvPlan` block structure from
// spmv/plan.hpp: every output row is produced by exactly one plan block,
// and every (row, column) accumulation runs in ascending nonzero order no
// matter the register blocking, so results are bit-identical to the serial
// reference at any thread count and any kb (tests/spmm_test.cpp pins this
// at OMP_NUM_THREADS ∈ {1, 2, 8}).
//
// SpMM has its own configuration space (`spmm_method_configs()`) and its
// own separately trained model bank (spmm/model.hpp) — the paper's §7
// add-a-method claim exercised with a genuinely different operation class:
// nothing here touches the SpMV ModelBank or its persisted models.txt.

#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "spmv/plan.hpp"
#include "spmv/schedule.hpp"
#include "util/types.hpp"

namespace wise::spmm {

/// Register block widths the kernels are compiled for.
inline constexpr int kSpmmBlockWidths[] = {1, 2, 4, 8};

/// One SpMM configuration: the register block width over RHS columns and
/// the block scheduling policy. kb = 1 with Dyn is the repeated-SpMV
/// baseline every relative time is normalized against.
struct SpmmConfig {
  int kb = 1;                       ///< register block width ∈ {1,2,4,8}
  Schedule sched = Schedule::kDyn;  ///< plan-block scheduling policy

  /// Stable name, e.g. "SpMM/b4/Dyn". Distinct from every SpMV
  /// MethodConfig name so samples and model files can never collide.
  std::string name() const;

  /// Deterministic tie-break order (ascending = preferred): smaller
  /// register blocks first (less register pressure), then schedule.
  std::vector<double> selection_rank() const;

  friend bool operator==(const SpmmConfig&, const SpmmConfig&) = default;
};

/// The SpMM method space: kb ∈ {1,2,4,8} × {Dyn, StCont}. Index 0 is the
/// kb=1/Dyn baseline.
const std::vector<SpmmConfig>& spmm_method_configs();

/// Inverse of SpmmConfig::name(). Throws std::invalid_argument on any
/// string name() cannot produce.
SpmmConfig parse_spmm_config(const std::string& name);

/// Serial reference: for each row i and column j, accumulates
/// vals[p] * X[col_idx[p]*k + j] in ascending-p order. The bit-identity
/// oracle for every blocked kernel. X is ncols×k row-major, Y nrows×k.
/// Throws std::invalid_argument on dimension mismatch or k <= 0.
void spmm_reference(const CsrMatrix& a, std::span<const value_t> x,
                    std::span<value_t> y, index_t k);

/// Blocked parallel SpMM over a precomputed nnz-balanced row plan. Each
/// plan block is one task (dynamic for kDyn, static otherwise); within a
/// row, columns are processed kb at a time with per-column accumulators
/// updated in the reference's exact order, so the result is bit-identical
/// to spmm_reference at any thread count. Throws std::invalid_argument on
/// dimension mismatch, k <= 0, an unsupported cfg.kb, or a plan that does
/// not cover the matrix's rows.
void spmm_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, index_t k, const SpmmConfig& cfg,
              const SpmvPlan& plan);

/// Convenience overload: builds a balanced row plan for the ambient
/// OpenMP thread count, then runs the plan overload.
void spmm_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, index_t k, const SpmmConfig& cfg);

}  // namespace wise::spmm
