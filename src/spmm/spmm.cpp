#include "spmm/spmm.hpp"

#include <stdexcept>

namespace wise::spmm {

std::string SpmmConfig::name() const {
  return std::string("SpMM/b") + std::to_string(kb) + "/" +
         schedule_name(sched);
}

std::vector<double> SpmmConfig::selection_rank() const {
  return {static_cast<double>(kb), static_cast<double>(sched)};
}

const std::vector<SpmmConfig>& spmm_method_configs() {
  static const std::vector<SpmmConfig> configs = [] {
    std::vector<SpmmConfig> out;
    // Baseline (kb=1/Dyn) must stay at index 0: relative times are
    // normalized against it and the daemon reports it when untrained.
    for (int kb : kSpmmBlockWidths) {
      out.push_back({.kb = kb, .sched = Schedule::kDyn});
    }
    for (int kb : kSpmmBlockWidths) {
      out.push_back({.kb = kb, .sched = Schedule::kStCont});
    }
    return out;
  }();
  return configs;
}

SpmmConfig parse_spmm_config(const std::string& name) {
  const auto bad = [&] {
    return std::invalid_argument("parse_spmm_config: bad name '" + name +
                                 "'");
  };
  const std::string head = "SpMM/b";
  if (name.rfind(head, 0) != 0) throw bad();
  const auto slash = name.find('/', head.size());
  if (slash == std::string::npos) throw bad();
  const std::string kb_str = name.substr(head.size(), slash - head.size());
  int kb = 0;
  try {
    std::size_t used = 0;
    kb = std::stoi(kb_str, &used);
    if (used != kb_str.size()) throw bad();
  } catch (const std::logic_error&) {
    throw bad();
  }
  bool supported = false;
  for (int w : kSpmmBlockWidths) supported = supported || w == kb;
  if (!supported) throw bad();
  const std::string sched_str = name.substr(slash + 1);
  for (Schedule s : {Schedule::kDyn, Schedule::kSt, Schedule::kStCont}) {
    if (sched_str == schedule_name(s)) return {.kb = kb, .sched = s};
  }
  throw bad();
}

}  // namespace wise::spmm
