#include <omp.h>

#include <cstddef>
#include <stdexcept>

#include "spmm/spmm.hpp"

namespace wise::spmm {

namespace {

void check_dims(const CsrMatrix& a, std::span<const value_t> x,
                std::span<value_t> y, index_t k) {
  if (k <= 0) throw std::invalid_argument("spmm: k must be positive");
  if (x.size() != static_cast<std::size_t>(a.ncols()) *
                      static_cast<std::size_t>(k) ||
      y.size() != static_cast<std::size_t>(a.nrows()) *
                      static_cast<std::size_t>(k)) {
    throw std::invalid_argument("spmm: dimension mismatch");
  }
}

/// One row × one register block of KB columns. Per output column the
/// accumulation is the reference's exact += chain in ascending nonzero
/// order — the simd pragma vectorizes *across* the KB independent
/// accumulators, never within one reduction, so no reassociation can
/// occur and the result is bit-identical to spmm_reference for any KB.
template <int KB>
inline void row_block_dot(const nnz_t* rp, const index_t* ci,
                          const value_t* va, const value_t* x, value_t* y,
                          index_t i, index_t k, index_t j0) {
  value_t acc[KB] = {};
  const nnz_t hi = rp[i + 1];
  for (nnz_t p = rp[i]; p < hi; ++p) {
    const value_t v = va[p];
    const value_t* xr =
        x + static_cast<std::size_t>(ci[p]) * static_cast<std::size_t>(k) +
        static_cast<std::size_t>(j0);
#pragma omp simd
    for (int jj = 0; jj < KB; ++jj) acc[jj] += v * xr[jj];
  }
  value_t* yr =
      y + static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
      static_cast<std::size_t>(j0);
  for (int jj = 0; jj < KB; ++jj) yr[jj] = acc[jj];
}

/// All k columns of one row: full KB-wide blocks, then a remainder swept
/// with progressively narrower blocks (4 → 2 → 1). Every path updates each
/// column with the same ascending-nonzero order, so the column split is
/// invisible in the bits.
template <int KB>
inline void row_all_columns(const nnz_t* rp, const index_t* ci,
                            const value_t* va, const value_t* x, value_t* y,
                            index_t i, index_t k) {
  index_t j0 = 0;
  for (; j0 + KB <= k; j0 += KB) {
    row_block_dot<KB>(rp, ci, va, x, y, i, k, j0);
  }
  if constexpr (KB > 4) {
    if (j0 + 4 <= k) {
      row_block_dot<4>(rp, ci, va, x, y, i, k, j0);
      j0 += 4;
    }
  }
  if constexpr (KB > 2) {
    if (j0 + 2 <= k) {
      row_block_dot<2>(rp, ci, va, x, y, i, k, j0);
      j0 += 2;
    }
  }
  if (j0 < k) row_block_dot<1>(rp, ci, va, x, y, i, k, j0);
}

template <int KB>
inline void run_rows(const nnz_t* rp, const index_t* ci, const value_t* va,
                     const value_t* x, value_t* y, index_t lo, index_t hi,
                     index_t k) {
  for (index_t i = lo; i < hi; ++i) {
    row_all_columns<KB>(rp, ci, va, x, y, i, k);
  }
}

template <int KB>
void spmm_plan_exec(const CsrMatrix& a, std::span<const value_t> x,
                    std::span<value_t> y, index_t k, Schedule sched,
                    const SpmvPlan& plan) {
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  const index_t nb = plan.num_blocks();
  const index_t* bd = plan.bounds.data();

  // Mirrors the plan-driven spmv_csr dispatch: blocks carry ~equal nonzero
  // counts, so the static policies hand each thread one contiguous run of
  // blocks and Dyn work-steals over the oversubscribed block list.
  if (sched == Schedule::kDyn) {
#pragma omp parallel for schedule(dynamic, 1)
    for (index_t b = 0; b < nb; ++b) {
      run_rows<KB>(rp, ci, va, xp, yp, bd[b], bd[b + 1], k);
    }
  } else {
#pragma omp parallel for schedule(static)
    for (index_t b = 0; b < nb; ++b) {
      run_rows<KB>(rp, ci, va, xp, yp, bd[b], bd[b + 1], k);
    }
  }
}

}  // namespace

void spmm_reference(const CsrMatrix& a, std::span<const value_t> x,
                    std::span<value_t> y, index_t k) {
  check_dims(a, x, y, k);
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const value_t* va = a.vals().data();
  const index_t n = a.nrows();
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < k; ++j) {
      value_t acc = 0;
      for (nnz_t p = rp[i]; p < rp[i + 1]; ++p) {
        acc += va[p] * x[static_cast<std::size_t>(ci[p]) *
                             static_cast<std::size_t>(k) +
                         static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
        static_cast<std::size_t>(j)] = acc;
    }
  }
}

void spmm_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, index_t k, const SpmmConfig& cfg,
              const SpmvPlan& plan) {
  check_dims(a, x, y, k);
  if (!plan.covers(a.nrows())) {
    throw std::invalid_argument("spmm_csr: plan does not cover the matrix");
  }
  switch (cfg.kb) {
    case 1:
      spmm_plan_exec<1>(a, x, y, k, cfg.sched, plan);
      break;
    case 2:
      spmm_plan_exec<2>(a, x, y, k, cfg.sched, plan);
      break;
    case 4:
      spmm_plan_exec<4>(a, x, y, k, cfg.sched, plan);
      break;
    case 8:
      spmm_plan_exec<8>(a, x, y, k, cfg.sched, plan);
      break;
    default:
      throw std::invalid_argument("spmm_csr: unsupported register block " +
                                  std::to_string(cfg.kb));
  }
}

void spmm_csr(const CsrMatrix& a, std::span<const value_t> x,
              std::span<value_t> y, index_t k, const SpmmConfig& cfg) {
  // The variant table is SpMV-shape-specific; SpMM only needs the
  // nnz-balanced bounds, so build an unspecialized plan.
  const SpmvPlan plan =
      build_csr_plan(a, cfg.sched, omp_get_max_threads(), false);
  spmm_csr(a, x, y, k, cfg, plan);
}

}  // namespace wise::spmm
