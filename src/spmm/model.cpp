#include "spmm/model.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "features/extractor.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "wise/speedup_class.hpp"

namespace wise::spmm {

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw Error(ErrorCategory::kModelBank, "SpmmBank::load: " + what,
              {.file = path, .stage = stage::kModelBank});
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void SpmmBank::train(const std::vector<SpmmConfig>& configs,
                     const std::vector<std::vector<double>>& features,
                     const std::vector<std::vector<double>>& rel_times,
                     const TreeParams& params) {
  if (configs.empty()) {
    throw std::invalid_argument("SpmmBank::train: no configurations");
  }
  if (features.size() != rel_times.size() || features.empty()) {
    throw std::invalid_argument("SpmmBank::train: shape mismatch");
  }
  for (const auto& row : rel_times) {
    if (row.size() != configs.size()) {
      throw std::invalid_argument(
          "SpmmBank::train: rel_times width != #configs");
    }
  }

  configs_ = configs;
  warnings_.clear();
  trees_.clear();
  trees_.resize(configs.size());

  const auto& names = feature_names();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    Dataset ds(names, kNumSpeedupClasses);
    for (std::size_t i = 0; i < features.size(); ++i) {
      ds.add(features[i], classify_relative_time(rel_times[i][c]));
    }
    trees_[c].fit(ds, params);
  }
}

SpmmChoice SpmmBank::choose(std::span<const double> features) const {
  if (!trained()) {
    throw std::logic_error("SpmmBank::choose: not trained");
  }
  SpmmChoice best;
  int best_class = -1;
  std::vector<double> best_rank;
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    const int cls = trees_[c].predict(features);
    auto rank = configs_[c].selection_rank();
    const bool better =
        cls > best_class ||
        (cls == best_class && (best_rank.empty() || rank < best_rank));
    if (better) {
      best_class = cls;
      best_rank = std::move(rank);
      best = {configs_[c], cls};
    }
  }
  return best;
}

int SpmmBank::predict_class(std::size_t config_index,
                            std::span<const double> features) const {
  if (config_index >= trees_.size()) {
    throw std::out_of_range("SpmmBank::predict_class: bad config index");
  }
  return trees_[config_index].predict(features);
}

void SpmmBank::save(const std::string& dir) const {
  if (!trained()) throw std::logic_error("SpmmBank::save: not trained");
  std::filesystem::create_directories(dir);
  const auto path =
      (std::filesystem::path(dir) / "spmm_models.txt").string();
  std::ofstream out(path);
  if (!out) {
    throw Error(ErrorCategory::kResource,
                "SpmmBank::save: cannot write to " + dir, {.file = path});
  }
  out << "wise-spmm-bank v1\n" << configs_.size() << '\n';
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    std::ostringstream payload;
    trees_[c].save(payload);
    const std::string bytes = payload.str();
    out << configs_[c].name() << '\n';
    out << "tree " << bytes.size() << ' ' << hex64(fnv1a(bytes)) << '\n';
    out << bytes;
  }
  if (!out) {
    throw Error(ErrorCategory::kResource,
                "SpmmBank::save: write failed for " + path, {.file = path});
  }
}

SpmmBank SpmmBank::load(const std::string& dir) {
  const auto path =
      (std::filesystem::path(dir) / "spmm_models.txt").string();
  std::ifstream in(path);
  if (!in) fail(path, "cannot open spmm models in " + dir);

  std::string magic, version;
  in >> magic >> version;
  if (magic != "wise-spmm-bank" || version != "v1") {
    fail(path, "bad header");
  }
  std::size_t n = 0;
  in >> n;
  if (!in || n == 0 || n > 100000) {
    fail(path, "implausible configuration count");
  }
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');

  SpmmBank bank;
  bank.configs_.reserve(n);
  bank.trees_.reserve(n);
  constexpr std::size_t kMaxTreeBytes = std::size_t{1} << 30;
  for (std::size_t c = 0; c < n; ++c) {
    std::string name;
    if (!std::getline(in, name)) {
      fail(path, "truncated at configuration " + std::to_string(c));
    }
    std::string tag;
    std::size_t len = 0;
    std::string checksum_hex;
    in >> tag >> len >> checksum_hex;
    if (!in || tag != "tree" || len == 0 || len > kMaxTreeBytes) {
      // The length field frames the payload; without it the stream cannot
      // be resynchronized, so this is fatal rather than skippable.
      fail(path, "malformed tree record for '" + name + "'");
    }
    in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    std::string payload(len, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::size_t>(in.gcount()) != len) {
      fail(path, "truncated tree payload for '" + name + "'");
    }

    std::string why;
    if (hex64(fnv1a(payload)) != checksum_hex) {
      why = "checksum mismatch";
    } else {
      try {
        std::istringstream tree_in(payload);
        DecisionTree tree = DecisionTree::load(tree_in);
        bank.configs_.push_back(parse_spmm_config(name));
        bank.trees_.push_back(std::move(tree));
        continue;
      } catch (const std::exception& e) {
        why = e.what();
      }
    }
    const std::string warning = "skipping model for '" + name + "': " + why;
    std::fprintf(stderr, "SpmmBank::load: %s\n", warning.c_str());
    bank.warnings_.push_back(warning);
  }

  if (bank.trees_.empty()) {
    fail(path, "no usable trees (" + std::to_string(bank.warnings_.size()) +
                   " skipped)");
  }
  return bank;
}

std::vector<double> measure_spmm_seconds(const CsrMatrix& m, index_t k,
                                         int iters, int repeats) {
  if (iters < 1 || repeats < 1) {
    throw std::invalid_argument("measure_spmm_seconds: bad iteration count");
  }
  const auto& configs = spmm_method_configs();
  const std::size_t xn = static_cast<std::size_t>(m.ncols()) *
                         static_cast<std::size_t>(k);
  const std::size_t yn = static_cast<std::size_t>(m.nrows()) *
                         static_cast<std::size_t>(k);
  std::vector<value_t> x(xn), y(yn);
  for (std::size_t i = 0; i < xn; ++i) {
    x[i] = 1.0 + 0.001 * static_cast<double>(i % 1024);
  }

  std::vector<double> seconds(configs.size(), 0.0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      const double t0 = now_seconds();
      for (int it = 0; it < iters; ++it) {
        spmm_csr(m, x, y, k, configs[c]);
      }
      best = std::min(best, (now_seconds() - t0) / iters);
    }
    // Clamp to the timer's resolution so a tiny matrix can never produce
    // a zero time (classify_relative_time rejects non-positive ratios).
    seconds[c] = std::max(best, 1e-9);
  }
  return seconds;
}

SpmmBank train_spmm_bank(std::span<const CsrMatrix> mats,
                         const SpmmTrainOptions& opts) {
  if (mats.empty()) {
    throw std::invalid_argument("train_spmm_bank: no matrices");
  }
  const auto& configs = spmm_method_configs();
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> rel_times;
  features.reserve(mats.size());
  rel_times.reserve(mats.size());
  for (const CsrMatrix& m : mats) {
    const auto seconds =
        measure_spmm_seconds(m, opts.k, opts.iters, opts.repeats);
    std::vector<double> rel(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      rel[c] = seconds[c] / seconds[0];
    }
    features.push_back(extract_features(m).values);
    rel_times.push_back(std::move(rel));
  }
  SpmmBank bank;
  bank.train(configs, features, rel_times, opts.tree_params);
  return bank;
}

}  // namespace wise::spmm
