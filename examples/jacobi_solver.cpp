// Jacobi iterative solver for a diagonally-dominant banded system —
// representative of the sparse-linear-system workloads (the other half of
// the paper's motivation, next to graph analytics). Each Jacobi sweep is
// x' = D^-1 (b - R x), where R = A - D: one SpMV per iteration, so WISE's
// per-matrix method choice directly accelerates the solver.

#include <cmath>
#include <cstdio>

#include "example_common.hpp"
#include "gen/generators.hpp"
#include "sparse/utils.hpp"
#include "spmv/csr_kernels.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace wise;

namespace {

/// Diagonally dominant banded system (guarantees Jacobi converges).
CsrMatrix dominant_banded(index_t n, index_t half_bw, std::uint64_t seed) {
  return make_diagonally_dominant(
      CsrMatrix::from_coo(generate_banded(n, half_bw, 0.6, seed)));
}

struct JacobiResult {
  std::vector<value_t> x;
  int iterations = 0;
  double seconds = 0;
  double residual = 0;
};

/// Jacobi with a caller-supplied SpMV for the full matrix A: computes
/// x' = x + D^-1 (b - A x).
template <typename SpmvFn>
JacobiResult jacobi(const CsrMatrix& a, const std::vector<value_t>& b,
                    const std::vector<value_t>& diag, SpmvFn&& spmv,
                    double tol = 1e-10, int max_iters = 500) {
  const auto n = static_cast<std::size_t>(a.nrows());
  JacobiResult res;
  res.x.assign(n, 0.0);
  std::vector<value_t> ax(n);

  Timer t;
  for (res.iterations = 1; res.iterations <= max_iters; ++res.iterations) {
    spmv(res.x, ax);
    double norm = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const value_t r = b[i] - ax[i];
      norm += static_cast<double>(r) * r;
      res.x[i] += r / diag[i];
    }
    res.residual = std::sqrt(norm);
    if (res.residual < tol) break;
  }
  res.seconds = t.seconds();
  return res;
}

}  // namespace

int run() {
  const index_t n = 32768;
  const CsrMatrix a = dominant_banded(n, 24, /*seed=*/9);
  std::printf("banded system: %d unknowns, %lld nonzeros, half-bandwidth 24\n",
              n, static_cast<long long>(a.nnz()));

  // Right-hand side and the diagonal (needed by Jacobi).
  std::vector<value_t> b(static_cast<std::size_t>(n));
  Xoshiro256 rng(4);
  for (auto& v : b) v = static_cast<value_t>(rng.next_double());
  const std::vector<value_t> diag = extract_diagonal(a);

  const Wise predictor = examples::make_mini_wise();
  const WiseChoice choice = predictor.choose(a);
  PreparedMatrix prepared = PreparedMatrix::prepare(a, choice.config);
  std::printf("WISE selected %s\n", choice.config.name().c_str());

  const auto baseline =
      jacobi(a, b, diag,
             [&a](const std::vector<value_t>& x, std::vector<value_t>& y) {
               spmv_csr_mkl_like(a, x, y);
             });
  const auto tuned =
      jacobi(a, b, diag,
             [&prepared](const std::vector<value_t>& x,
                         std::vector<value_t>& y) { prepared.run(x, y); });

  std::printf("\nJacobi solve to ||r|| < 1e-10:\n");
  std::printf("  CSR baseline: %4d iters, %7.1f ms (residual %.2e)\n",
              baseline.iterations, baseline.seconds * 1e3, baseline.residual);
  std::printf("  WISE method:  %4d iters, %7.1f ms (residual %.2e), "
              "+%.1f ms selection\n",
              tuned.iterations, tuned.seconds * 1e3, tuned.residual,
              (choice.feature_seconds + prepared.prep_seconds()) * 1e3);

  double max_diff = 0;
  for (std::size_t i = 0; i < baseline.x.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(static_cast<double>(
                                      baseline.x[i] - tuned.x[i])));
  }
  std::printf("  max |solution difference| = %.2e\n", max_diff);
  return (baseline.residual < 1e-9 && max_diff < 1e-6) ? 0 : 1;
}

int main() { return examples::run_guarded(run); }
