// Spectral graph bisection via SpMV — a classic scientific-computing
// pipeline composed entirely from this library: build a graph Laplacian,
// find its Fiedler vector with deflated power iteration (every step is one
// SpMV), and split the graph by the vector's sign. Demonstrates the
// solvers/graph substrates on the kind of locality-rich mesh problem the
// sci corpus models.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "example_common.hpp"
#include "gen/generators.hpp"
#include "solvers/solver_common.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace wise;

namespace {

/// Combinatorial Laplacian L = D - A of an undirected graph.
CsrMatrix laplacian(const CsrMatrix& adjacency) {
  CooMatrix coo(adjacency.nrows(), adjacency.ncols());
  for (index_t i = 0; i < adjacency.nrows(); ++i) {
    const auto cols = adjacency.row_cols(i);
    coo.add(i, i, static_cast<value_t>(cols.size()));
    for (index_t j : cols) {
      if (j != i) coo.add(i, j, value_t{-1});
    }
  }
  return CsrMatrix::from_coo(coo);
}

/// Fiedler vector: eigenvector of L's second-smallest eigenvalue, computed
/// as the dominant eigenvector of B = cI - L after deflating the constant
/// vector (L's kernel). c = max degree * 2 + 1 keeps B positive.
std::vector<value_t> fiedler_vector(const CsrMatrix& lap, int iterations) {
  const auto n = static_cast<std::size_t>(lap.nrows());
  double max_diag = 0;
  for (index_t i = 0; i < lap.nrows(); ++i) {
    const auto cols = lap.row_cols(i);
    const auto vals = lap.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) max_diag = std::max(max_diag, static_cast<double>(vals[k]));
    }
  }
  const auto c = static_cast<value_t>(2 * max_diag + 1);

  Xoshiro256 rng(17);
  std::vector<value_t> v(n), lv(n);
  for (auto& x : v) x = static_cast<value_t>(rng.next_double() - 0.5);

  auto deflate_and_normalize = [&](std::vector<value_t>& x) {
    // Remove the constant component (L's kernel), then unit-normalize.
    double mean = 0;
    for (value_t e : x) mean += e;
    mean /= static_cast<double>(n);
    for (auto& e : x) e -= static_cast<value_t>(mean);
    const double norm = blas::norm2(x);
    if (norm > 0) blas::scale(x, static_cast<value_t>(1.0 / norm));
  };
  deflate_and_normalize(v);

  for (int it = 0; it < iterations; ++it) {
    spmv_reference(lap, v, lv);  // L v
    for (std::size_t i = 0; i < n; ++i) v[i] = c * v[i] - lv[i];  // (cI-L) v
    deflate_and_normalize(v);
  }
  return v;
}

/// Edges crossing the sign partition.
nnz_t cut_size(const CsrMatrix& adjacency, const std::vector<value_t>& f) {
  nnz_t cut = 0;
  for (index_t i = 0; i < adjacency.nrows(); ++i) {
    for (index_t j : adjacency.row_cols(i)) {
      if (j > i &&
          (f[static_cast<std::size_t>(i)] >= 0) !=
              (f[static_cast<std::size_t>(j)] >= 0)) {
        ++cut;
      }
    }
  }
  return cut;
}

}  // namespace

int run() {
  // A road-network-like planar mesh: spectral bisection should find a
  // near-geometric cut far below a random split.
  const CsrMatrix graph = CsrMatrix::from_coo(generate_road_like(16384, 21));
  const nnz_t undirected_edges = graph.nnz() / 2;
  std::printf("mesh: %d vertices, %lld undirected edges\n", graph.nrows(),
              static_cast<long long>(undirected_edges));

  const CsrMatrix lap = laplacian(graph);
  Timer t;
  const auto fiedler = fiedler_vector(lap, 300);
  std::printf("Fiedler vector via 300 deflated power iterations: %.1f ms\n",
              t.milliseconds());

  const nnz_t spectral_cut = cut_size(graph, fiedler);
  // Random bisection baseline.
  Xoshiro256 rng(4);
  std::vector<value_t> random_sides(static_cast<std::size_t>(graph.nrows()));
  for (auto& s : random_sides) {
    s = rng.next_double() < 0.5 ? value_t{-1} : value_t{1};
  }
  const nnz_t random_cut = cut_size(graph, random_sides);

  index_t positive = 0;
  for (value_t v : fiedler) positive += (v >= 0);
  std::printf("\npartition sizes: %d / %d\n", positive,
              graph.nrows() - positive);
  std::printf("spectral cut:  %lld edges (%.1f%% of all)\n",
              static_cast<long long>(spectral_cut),
              100.0 * static_cast<double>(spectral_cut) /
                  static_cast<double>(undirected_edges));
  std::printf("random cut:    %lld edges (%.1f%%)\n",
              static_cast<long long>(random_cut),
              100.0 * static_cast<double>(random_cut) /
                  static_cast<double>(undirected_edges));
  std::printf("improvement:   %.1fx fewer cut edges\n",
              static_cast<double>(random_cut) /
                  static_cast<double>(std::max<nnz_t>(1, spectral_cut)));
  return spectral_cut < random_cut ? 0 : 1;
}

int main() { return examples::run_guarded(run); }
