// Production training flow: measure the full corpus (through the shared
// cache), train one decision tree per configuration, report training
// quality, and save the model bank to disk so applications can load a
// ready-to-use WISE without ever measuring anything:
//
//   wise::Wise predictor(wise::ModelBank::load("data/models"));
//
// This is the "WISE ships inside a math library" deployment the paper
// envisions (§4: "an effective extension to an existing math library").

#include <cstdio>

#include "example_common.hpp"
#include "exp/cache.hpp"
#include "exp/corpus.hpp"
#include "exp/train.hpp"
#include "util/env.hpp"
#include "wise/speedup_class.hpp"

using namespace wise;

int run() {
  std::printf("== WISE model training ==\n");
  MeasurementCache cache;
  const auto records = cache.get_or_measure(full_corpus());
  std::printf("corpus: %zu matrices measured (cache: %s)\n", records.size(),
              cache.path().c_str());

  const TreeParams params{.max_depth = 15, .ccp_alpha = 0.005};  // paper §6.5
  const ModelBank bank = train_model_bank(records, params);

  // Training-set accuracy per model family (optimistic by construction;
  // cross-validated numbers come from the fig10 bench).
  const auto& configs = bank.configs();
  std::printf("\n%-28s %8s %8s %8s\n", "model", "nodes", "depth", "trainAcc");
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const auto& tree = bank.trees()[c];
    int correct = 0;
    for (const auto& rec : records) {
      const int truth = classify_relative_time(rec.rel_time(c));
      correct += tree.predict(rec.features) == truth;
    }
    std::printf("%-28s %8d %8d %7.1f%%\n", configs[c].name().c_str(),
                tree.num_nodes(), tree.depth(),
                100.0 * correct / static_cast<double>(records.size()));
  }

  const std::string dir = data_dir() + "/models";
  bank.save(dir);
  std::printf("\nmodel bank saved to %s\n", dir.c_str());
  std::printf("load it with: wise::ModelBank::load(\"%s\")\n", dir.c_str());
  return 0;
}

int main() { return examples::run_guarded(run); }
