#pragma once
// Shared helpers for the example programs.
//
// Examples that demonstrate the full WISE pipeline need a trained model
// bank. To keep them fast and self-contained they train on a small "mini
// corpus" of quickly-measurable matrices; measurements go through the
// shared cache, so repeated example runs start instantly. Real deployments
// would instead load a bank trained on the full corpus (see
// train_models.cpp).

#include <cstdio>
#include <exception>
#include <vector>

#include "exp/cache.hpp"
#include "exp/corpus.hpp"
#include "exp/train.hpp"
#include "util/error.hpp"
#include "wise/pipeline.hpp"

namespace wise::examples {

/// Runs an example body and maps failures to process exit codes: a
/// wise::Error exits with its category code (parse=3, validation=4,
/// model-bank=5, conversion=6, resource=7; see util/error.hpp), any other
/// exception exits 1. Errors go to stderr, prefixed with the category so
/// scripted callers can branch without parsing the message.
template <typename Fn>
int run_guarded(Fn&& body) {
  try {
    return body();
  } catch (const Error& e) {
    std::fprintf(stderr, "error [%s]: %s\n",
                 error_category_name(e.category()), e.what());
    return error_exit_code(e.category());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

/// A ~40-matrix corpus of small matrices covering all generator classes.
inline std::vector<MatrixSpec> mini_corpus() {
  std::vector<MatrixSpec> specs;
  std::uint64_t seed = 1000;
  for (RmatClass cls : {RmatClass::kHighSkew, RmatClass::kMedSkew,
                        RmatClass::kLowSkew, RmatClass::kLowLoc,
                        RmatClass::kMedLoc, RmatClass::kHighLoc}) {
    for (index_t n : {1024, 4096}) {
      for (double deg : {8.0, 32.0}) {
        auto s = rmat_spec(cls, n, deg, seed++);
        s.id = "mini-" + s.id;
        specs.push_back(std::move(s));
      }
    }
  }
  for (index_t n : {1024, 4096}) {
    for (double deg : {8.0, 32.0}) {
      auto s = rgg_spec(n, deg, seed++);
      s.id = "mini-" + s.id;
      specs.push_back(std::move(s));
    }
  }
  return specs;  // 6*4 + 4 = 28 specs
}

/// Measures (cached) the mini corpus and trains a WISE predictor on it.
inline Wise make_mini_wise() {
  std::printf("[example] preparing WISE (measuring the mini corpus on first "
              "run; cached afterwards)...\n");
  MeasurementCache cache;
  const auto records =
      cache.get_or_measure(mini_corpus(), {.iters = 2, .repeats = 1});
  return Wise(train_model_bank(records));
}

}  // namespace wise::examples
