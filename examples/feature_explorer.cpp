// Feature explorer: prints the full WISE feature vector (paper Table 2)
// for a matrix, alongside the measured fastest method — a debugging and
// teaching tool for understanding what the models see.
//
// Usage:
//   feature_explorer                  # demo on three contrasting matrices
//   feature_explorer matrix.mtx      # analyze a Matrix Market file

#include <cstdio>

#include "example_common.hpp"
#include "exp/measure.hpp"
#include "features/extractor.hpp"
#include "gen/generators.hpp"
#include "sparse/mmio.hpp"
#include "spmv/method.hpp"

using namespace wise;

namespace {

void explore(const std::string& title, const CsrMatrix& m) {
  std::printf("\n===== %s =====\n", title.c_str());
  std::printf("shape %d x %d, %lld nonzeros\n", m.nrows(), m.ncols(),
              static_cast<long long>(m.nnz()));

  const FeatureVector fv = extract_features(m);
  const auto& names = feature_names();
  std::printf("\n%-20s %14s    %-20s %14s\n", "feature", "value", "feature",
              "value");
  for (std::size_t i = 0; i < names.size(); i += 2) {
    std::printf("%-20s %14.5g", names[i].c_str(), fv[i]);
    if (i + 1 < names.size()) {
      std::printf("    %-20s %14.5g", names[i + 1].c_str(), fv[i + 1]);
    }
    std::printf("\n");
  }

  // Quick measured ground truth (1 iteration per config).
  const MatrixRecord rec =
      measure_matrix(m, title, "explore", {.iters = 1, .repeats = 1});
  const auto configs = all_method_configs();
  const std::size_t best = rec.best_config_index();
  std::printf("\nmeasured fastest configuration: %s (%.3fx over best CSR)\n",
              configs[best].name().c_str(), 1.0 / rec.rel_time(best));
}

}  // namespace

int run(int argc, char** argv) {
  if (argc > 1) {
    explore(argv[1], CsrMatrix::from_coo(read_matrix_market_file(argv[1])));
    return 0;
  }
  explore("banded scientific matrix",
          CsrMatrix::from_coo(generate_banded(8192, 16, 0.5, 1)));
  explore("power-law graph (HighSkew RMAT)",
          CsrMatrix::from_coo(generate_rmat(
              rmat_class_params(RmatClass::kHighSkew, 8192, 16), 2)));
  explore("uniform random (LowLoc RMAT)",
          CsrMatrix::from_coo(generate_rmat(
              rmat_class_params(RmatClass::kLowLoc, 8192, 16), 3)));
  return 0;
}

int main(int argc, char** argv) {
  return examples::run_guarded([&] { return run(argc, argv); });
}
