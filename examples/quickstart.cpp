// Quickstart: the five-line WISE user experience.
//
//   1. Have a sparse matrix in CSR.
//   2. Ask WISE to pick and prepare the best SpMV method for it.
//   3. Run SpMV — no format knowledge needed.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "example_common.hpp"
#include "gen/generators.hpp"
#include "spmv/csr_kernels.hpp"
#include "wise/speedup_class.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace wise;

int run() {
  // A power-law graph matrix — the kind plain CSR handles poorly.
  const CsrMatrix matrix = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kHighSkew, 8192, 32), /*seed=*/7));
  std::printf("matrix: %d x %d, %lld nonzeros\n", matrix.nrows(),
              matrix.ncols(), static_cast<long long>(matrix.nnz()));

  // Train (or load from cache) a WISE predictor, then let it choose.
  const Wise predictor = examples::make_mini_wise();
  const WiseChoice choice = predictor.choose(matrix);
  std::printf("WISE selected: %s (predicted class %s)\n",
              choice.config.name().c_str(),
              class_name(choice.predicted_class).c_str());
  std::printf("decision cost: %.2f ms features + %.3f ms inference\n",
              choice.feature_seconds * 1e3, choice.inference_seconds * 1e3);

  PreparedMatrix prepared = PreparedMatrix::prepare(matrix, choice.config);
  std::printf("layout conversion: %.2f ms\n", prepared.prep_seconds() * 1e3);

  // Run SpMV with the chosen method and compare against the CSR baseline.
  aligned_vector<value_t> x(static_cast<std::size_t>(matrix.ncols()));
  aligned_vector<value_t> y(static_cast<std::size_t>(matrix.nrows()));
  Xoshiro256 rng(1);
  for (auto& v : x) v = static_cast<value_t>(rng.next_double());

  constexpr int kIters = 50;
  prepared.run(x, y);  // warm-up
  Timer t;
  for (int i = 0; i < kIters; ++i) prepared.run(x, y);
  const double wise_ms = t.milliseconds() / kIters;

  spmv_csr_mkl_like(matrix, x, y);  // warm-up
  t.reset();
  for (int i = 0; i < kIters; ++i) spmv_csr_mkl_like(matrix, x, y);
  const double mkl_ms = t.milliseconds() / kIters;

  std::printf("\nSpMV time per iteration:\n");
  std::printf("  MKL-style CSR baseline: %.3f ms\n", mkl_ms);
  std::printf("  WISE-selected method:   %.3f ms  (%.2fx)\n", wise_ms,
              mkl_ms / wise_ms);
  return 0;
}

int main() { return examples::run_guarded(run); }
