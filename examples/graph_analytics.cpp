// Graph analytics tour: BFS, single-source shortest paths, PageRank and
// HITS on one generated web-like graph, all expressed as (semiring) SpMV —
// demonstrating the GraphBLAS-style workloads the paper targets (§1, §8).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "example_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/semiring.hpp"
#include "gen/generators.hpp"
#include "util/timer.hpp"

using namespace wise;

int run() {
  const CsrMatrix graph = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kHighSkew, 32768, 16), /*seed=*/11));
  std::printf("graph: %d vertices, %lld edges (HighSkew RMAT)\n\n",
              graph.nrows(), static_cast<long long>(graph.nnz()));

  // --- BFS (OrAnd semiring) ---
  Timer t;
  const auto levels = bfs_levels(graph, 0);
  index_t reached = 0, max_level = 0;
  for (index_t l : levels) {
    if (l >= 0) {
      ++reached;
      max_level = std::max(max_level, l);
    }
  }
  std::printf("BFS from vertex 0:   %d reached (%.0f%%), eccentricity %d "
              "[%.1f ms]\n",
              reached, 100.0 * reached / graph.nrows(), max_level,
              t.milliseconds());

  // --- SSSP (MinPlus semiring, Bellman-Ford) ---
  t.reset();
  const auto dist = sssp(graph, 0);
  double max_finite = 0;
  for (value_t d : dist) {
    if (!std::isinf(d)) max_finite = std::max(max_finite, static_cast<double>(d));
  }
  std::printf("SSSP from vertex 0:  longest finite distance %.3f [%.1f ms]\n",
              max_finite, t.milliseconds());

  // --- PageRank (PlusTimes) ---
  const CsrMatrix m = pagerank_transition(graph);
  t.reset();
  const auto pr = pagerank(make_csr_operator(m), m.nrows());
  std::printf("PageRank:            %d iterations, converged=%d [%.1f ms]\n",
              pr.iterations, pr.converged, t.milliseconds());

  // --- HITS ---
  const CsrMatrix gt = graph.transpose();
  t.reset();
  const auto h = hits(make_csr_operator(graph), make_csr_operator(gt),
                      graph.nrows());
  std::printf("HITS:                %d iterations, converged=%d [%.1f ms]\n",
              h.iterations, h.converged, t.milliseconds());

  // Rankings: in a power-law RMAT graph, low-id vertices dominate.
  auto top5 = [](const std::vector<value_t>& score) {
    std::vector<index_t> order(score.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&score](index_t a, index_t b) {
                        return score[static_cast<std::size_t>(a)] >
                               score[static_cast<std::size_t>(b)];
                      });
    order.resize(5);
    return order;
  };
  std::printf("\ntop-5 by PageRank:  ");
  for (index_t v : top5(pr.rank)) std::printf(" %d", v);
  std::printf("\ntop-5 by authority: ");
  for (index_t v : top5(h.authority)) std::printf(" %d", v);
  std::printf("\ntop-5 by hub score: ");
  for (index_t v : top5(h.hub)) std::printf(" %d", v);
  std::printf("\n");
  return 0;
}

int main() { return examples::run_guarded(run); }
