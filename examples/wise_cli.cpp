// wise_cli — command-line front end to the library, for working with
// Matrix Market files without writing C++:
//
//   wise_cli analyze  <matrix.mtx>            print the 67 WISE features
//   wise_cli bench    <matrix.mtx>            time all 29 configurations
//   wise_cli predict  <matrix.mtx> <models>   WISE selection from a saved
//                                             model bank (train_models)
//   wise_cli convert  <in.mtx> <out.mtx>      parse + canonicalize + write
//   wise_cli generate <class> <rows> <deg> <out.mtx>
//                                             emit an RMAT/RGG matrix
//                                             (class: HS MS LS LL ML HL rgg)
//
// Observability: --verbose (any command) prints the per-stage metrics table
// at exit — after a fallback it shows which stage timings led there. The
// WISE_METRICS env var (off|table|json[:file]|csv:file) additionally routes
// the same metrics to a machine-readable sink; see docs/OBSERVABILITY.md.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "example_common.hpp"
#include "exp/measure.hpp"
#include "features/extractor.hpp"
#include "gen/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "sparse/mmio.hpp"
#include "spmv/executor.hpp"
#include "spmv/method.hpp"
#include "util/timer.hpp"
#include "wise/model_bank.hpp"
#include "wise/pipeline.hpp"
#include "wise/speedup_class.hpp"

using namespace wise;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: wise_cli [--verbose] analyze|bench|predict|convert|"
               "generate ...\n"
               "  analyze  <matrix.mtx>\n"
               "  bench    <matrix.mtx>\n"
               "  predict  <matrix.mtx> <model-dir>\n"
               "  convert  <in.mtx> <out.mtx>\n"
               "  generate <HS|MS|LS|LL|ML|HL|rgg> <rows> <degree> <out.mtx>\n"
               "  --verbose     print the per-stage metrics table at exit\n"
               "  WISE_METRICS  off|table|json[:file]|csv:file metrics sink\n");
  return 2;
}

CsrMatrix load(const std::string& path) {
  std::fprintf(stderr, "loading %s...\n", path.c_str());
  return CsrMatrix::from_coo(read_matrix_market_file(path));
}

int cmd_analyze(const std::string& path) {
  const CsrMatrix m = load(path);
  std::printf("%d x %d, %lld nonzeros\n", m.nrows(), m.ncols(),
              static_cast<long long>(m.nnz()));
  const FeatureVector fv = extract_features(m);
  const auto& names = feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("%-20s %.6g\n", names[i].c_str(), fv[i]);
  }
  return 0;
}

int cmd_bench(const std::string& path) {
  const CsrMatrix m = load(path);
  const MatrixRecord rec = measure_matrix(m, path, "cli");
  const auto configs = all_method_configs();
  std::printf("%-28s %12s %12s %10s\n", "configuration", "time/iter", "prep",
              "vs bestCSR");
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::printf("%-28s %10.3f us %10.3f ms %9.3fx\n",
                configs[c].name().c_str(), rec.config_seconds[c] * 1e6,
                rec.config_prep_seconds[c] * 1e3, 1.0 / rec.rel_time(c));
  }
  std::printf("\nfastest: %s\n",
              configs[rec.best_config_index()].name().c_str());
  return 0;
}

int cmd_predict(const std::string& path, const std::string& model_dir) {
  const CsrMatrix m = load(path);
  const Wise predictor(ModelBank::load(model_dir));
  WiseChoice choice;
  PreparedMatrix pm = predictor.prepare(m, choice);
  std::printf("selected: %s\n", choice.config.name().c_str());
  if (choice.fell_back()) {
    std::printf("fallback: %s\n", choice.fallback_reason.c_str());
  }
  std::printf("predicted class: %s (relative time %s %.2f)\n",
              class_name(choice.predicted_class).c_str(),
              choice.predicted_class == 0 ? ">" : "<=",
              choice.predicted_class == 0
                  ? 1.05
                  : class_upper_rel(choice.predicted_class));
  std::printf("decision cost: %.2f ms, conversion: %.2f ms\n",
              (choice.feature_seconds + choice.inference_seconds) * 1e3,
              pm.prep_seconds() * 1e3);
  // A few SpMV iterations so the selected kernel's cost shows up in the
  // metrics (spmv.run.<config>) next to the decision-stage spans.
  std::vector<value_t> x(static_cast<std::size_t>(m.ncols()), 1.0);
  std::vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  Timer t;
  for (int i = 0; i < 5; ++i) pm.run(x, y);
  std::printf("spmv: %.3f us/iter over 5 iterations\n",
              t.seconds() / 5 * 1e6);
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  CooMatrix coo = read_matrix_market_file(in);
  write_matrix_market_file(out, coo);
  std::printf("wrote %s (%d x %d, %lld nonzeros, canonical order)\n",
              out.c_str(), coo.nrows(), coo.ncols(),
              static_cast<long long>(coo.nnz()));
  return 0;
}

int cmd_generate(const std::string& cls, index_t rows, double degree,
                 const std::string& out) {
  CooMatrix coo;
  if (cls == "rgg") {
    coo = generate_rgg(rows, degree, 42);
  } else {
    RmatClass rmat_cls;
    if (cls == "HS") rmat_cls = RmatClass::kHighSkew;
    else if (cls == "MS") rmat_cls = RmatClass::kMedSkew;
    else if (cls == "LS") rmat_cls = RmatClass::kLowSkew;
    else if (cls == "LL") rmat_cls = RmatClass::kLowLoc;
    else if (cls == "ML") rmat_cls = RmatClass::kMedLoc;
    else if (cls == "HL") rmat_cls = RmatClass::kHighLoc;
    else return usage();
    coo = generate_rmat(rmat_class_params(rmat_cls, rows, degree), 42);
  }
  write_matrix_market_file(out, coo);
  std::printf("wrote %s (%d x %d, %lld nonzeros)\n", out.c_str(), coo.nrows(),
              coo.ncols(), static_cast<long long>(coo.nnz()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0 ||
        std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return usage();

  // WISE_METRICS arms the registry for machine-readable output; --verbose
  // arms it for the human-readable table regardless of the environment.
  obs::configure_metrics_from_env();
  if (verbose) obs::MetricsRegistry::global().set_enabled(true);

  const std::string cmd = args[0];
  const std::size_t n = args.size();
  const int rc = examples::run_guarded([&]() -> int {
    if (cmd == "analyze" && n == 2) return cmd_analyze(args[1]);
    if (cmd == "bench" && n == 2) return cmd_bench(args[1]);
    if (cmd == "predict" && n == 3) return cmd_predict(args[1], args[2]);
    if (cmd == "convert" && n == 3) return cmd_convert(args[1], args[2]);
    if (cmd == "generate" && n == 5) {
      return cmd_generate(args[1], static_cast<index_t>(std::stoll(args[2])),
                          std::stod(args[3]), args[4]);
    }
    return usage();
  });

  if (verbose) {
    const auto snap = obs::MetricsRegistry::global().snapshot();
    std::printf("\n-- per-stage metrics --\n%s",
                obs::render_metrics_table(snap).c_str());
  }
  obs::emit_metrics_from_env();
  return rc;
}
