// wise_served — long-lived WISE prediction daemon over the serving layer
// (src/serve/). Speaks a line-oriented request/response protocol on stdin
// (default) or a unix-domain socket, so any language with "open a socket,
// write a line" can use WISE without linking C++:
//
//   wise_served [--models DIR] [--socket PATH] [--verbose]
//
//   PREDICT <matrix.mtx>         selection only (feature + inference)
//   PREPARE <matrix.mtx>         selection + layout conversion (cached)
//   RUN <matrix.mtx> <iters>     PREPARE + <iters> SpMV iterations
//   SPMM <matrix.mtx> [k] [iters]
//                                multi-vector run Y = A·X with a k-column
//                                RHS (default 8), config chosen by the
//                                SpMM bank (its own models, never the
//                                SpMV bank's)
//   SOLVE <matrix.mtx> [solver] [max_iters]
//                                iterative-solve session (cg | jacobi |
//                                bicgstab, default cg/200): one amortized
//                                choose+prepare serves every iteration;
//                                a warm session reuses the cached layout
//   STATS                        one-line JSON: server/cache counters plus
//                                the obs metrics snapshot for the batch of
//                                requests since the previous STATS
//   QUIT                         graceful drain-and-exit (EOF works too)
//
// Responses are single lines:
//   OK id=<path> config=<name> class=<n> cached=<none|choice|prepared>
//      queue_us=<..> service_us=<..> [spmv_us=<..> checksum=<..>]
//      [iters=<..> residual=<..> converged=<0|1>] [fallback=<reason>]
//   ERR <category> <message>
//
// Concurrency: every request goes through the shared serve::Server (worker
// pool + fingerprint caches). In socket mode each client connection gets a
// reader thread, so N clients exercise the pool concurrently; per
// connection, responses come back in request order. Parsed matrices are
// memoized by path in a small LRU so repeated requests for the same file
// measure the serve cache, not the Matrix Market parser.
//
// Configuration: all WISE_SERVE_* knobs (see docs/SERVING.md) plus
// WISE_METRICS for the metrics sink at exit.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <array>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "example_common.hpp"
#include "hw/probe.hpp"
#include "learn/online.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "serve/server.hpp"
#include "sparse/mmio.hpp"
#include "spmm/model.hpp"
#include "spmv/plan.hpp"
#include "util/lru.hpp"
#include "wise/amortized.hpp"
#include "wise/model_bank.hpp"

using namespace wise;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: wise_served [--models DIR] [--socket PATH] "
               "[--verbose]\n"
               "  protocol (one request per line):\n"
               "    PREDICT <matrix.mtx>\n"
               "    PREPARE <matrix.mtx>\n"
               "    RUN <matrix.mtx> <iters>\n"
               "    SPMM <matrix.mtx> [k] [iters]\n"
               "    SOLVE <matrix.mtx> [cg|jacobi|bicgstab] [max_iters]\n"
               "    STATS\n"
               "    QUIT\n"
               "  knobs: WISE_SERVE_WORKERS, WISE_SERVE_QUEUE, "
               "WISE_SERVE_OVERFLOW,\n"
               "         WISE_SERVE_CACHE_BYTES, WISE_SERVE_CHOICE_ENTRIES,\n"
               "         WISE_SERVE_HASH_VALUES, WISE_SERVE_DEADLINE_MS,\n"
               "         WISE_SERVE_SHARDS (docs/SERVING.md)\n"
               "         WISE_LEARN + WISE_LEARN_* for the online-learning "
               "loop (docs/LEARNING.md)\n");
  return 2;
}

/// Path-keyed memo of parsed matrices, shared by every connection. The
/// fingerprint is computed once at parse time and reused by every request
/// against the same file, so steady-state requests skip the O(nnz) hash.
class MatrixLoader {
 public:
  struct Loaded {
    std::shared_ptr<const CsrMatrix> matrix;
    serve::Fingerprint fingerprint;
  };

  explicit MatrixLoader(bool hash_values) : hash_values_(hash_values) {}

  Loaded load(const std::string& path) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (auto* hit = cache_.get(path)) return *hit;
    }
    Loaded loaded;
    loaded.matrix = std::make_shared<const CsrMatrix>(
        CsrMatrix::from_coo(read_matrix_market_file(path)));
    loaded.fingerprint = serve::fingerprint_matrix(*loaded.matrix, hash_values_);
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.put(path, loaded, 1);
    return loaded;
  }

 private:
  const bool hash_values_;
  std::mutex mutex_;
  LruMap<std::string, Loaded> cache_{32};
};

std::string stats_line(serve::Server& server) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", "wise-serve-stats");
  doc.set("version", 5);  // v5: adds `hw` (machine probe); v4 added
                          // `sessions` (SOLVE) + `spmm`; v3 added `plan`;
                          // v2 added sampled/bank_version+learn
  const serve::ServerStats st = server.stats();
  obs::JsonValue sv = obs::JsonValue::object();
  sv.set("accepted", st.accepted);
  sv.set("completed", st.completed);
  sv.set("rejected", st.rejected);
  sv.set("expired", st.expired);
  sv.set("failed", st.failed);
  sv.set("degraded", st.degraded);
  sv.set("coalesced", st.coalesced);
  sv.set("prepares", st.prepares);
  sv.set("sampled", st.sampled);
  sv.set("bank_version", server.bank_version());
  sv.set("shards", static_cast<std::uint64_t>(server.shard_count()));
  sv.set("queue_depth", static_cast<std::uint64_t>(server.queue_depth()));
  doc.set("server", std::move(sv));
  // v4: SOLVE-session and SpMM counters, their own groups so dashboards
  // (and tools/bench_compare.py) can track the workload mix.
  obs::JsonValue sessions = obs::JsonValue::object();
  sessions.set("active", st.sessions_active);
  sessions.set("completed", st.sessions_completed);
  sessions.set("iters", st.session_iters);
  doc.set("sessions", std::move(sessions));
  obs::JsonValue spmm_v = obs::JsonValue::object();
  spmm_v.set("requests", st.spmm_requests);
  spmm_v.set("bank_installed", server.spmm_bank() != nullptr);
  doc.set("spmm", std::move(spmm_v));
  // v5: the machine probe conditioning inference (src/hw/probe.hpp), so
  // operators can confirm which hardware the serving bank is seeing.
  const hw::MachineProbe& probe = hw::machine_probe();
  obs::JsonValue hw_v = obs::JsonValue::object();
  hw_v.set("source", probe.source);
  hw_v.set("measured", probe.measured);
  hw_v.set("threads", static_cast<std::uint64_t>(probe.hardware_threads));
  hw_v.set("l1d_kib", static_cast<std::uint64_t>(probe.l1d_bytes / 1024));
  hw_v.set("l2_kib", static_cast<std::uint64_t>(probe.l2_bytes / 1024));
  hw_v.set("llc_kib", static_cast<std::uint64_t>(probe.llc_bytes / 1024));
  hw_v.set("stream_gbs", probe.stream_triad_gbs);
  doc.set("hw", std::move(hw_v));
  if (auto lr = server.learner()) {
    const learn::LearnStats ls = lr->stats();
    obs::JsonValue lv = obs::JsonValue::object();
    lv.set("samples_logged", ls.samples_logged);
    lv.set("samples_recovered", ls.samples_recovered);
    lv.set("wal_bytes", ls.wal_bytes);
    lv.set("wal_corrupt_skipped", ls.wal_corrupt_skipped);
    lv.set("wal_torn_bytes", ls.wal_torn_bytes);
    lv.set("wal_errors", ls.wal_errors);
    lv.set("wal_rotations", ls.wal_rotations);
    lv.set("mispredict_rate", ls.mispredict_rate);
    lv.set("window_samples", static_cast<std::uint64_t>(ls.window_samples));
    lv.set("baseline_mispredict_rate", ls.baseline_mispredict_rate);
    // Online accuracy drift: how much worse (positive) or better (negative)
    // the live bank predicts now vs. the moment it was published.
    lv.set("accuracy_drift",
           ls.mispredict_rate - ls.baseline_mispredict_rate);
    lv.set("bank_version", ls.bank_version);
    lv.set("drift_events", ls.drift_events);
    lv.set("retrains", ls.retrains);
    lv.set("retrain_failures", ls.retrain_failures);
    lv.set("candidates_rejected", ls.candidates_rejected);
    lv.set("swaps", ls.swaps);
    lv.set("swap_failures", ls.swap_failures);
    lv.set("rollbacks", ls.rollbacks);
    lv.set("last_candidate_accuracy", ls.last_candidate_accuracy);
    lv.set("last_live_accuracy", ls.last_live_accuracy);
    doc.set("learn", std::move(lv));
  }
  const serve::CacheStats cs = server.cache_stats();
  obs::JsonValue cv = obs::JsonValue::object();
  cv.set("choice_hits", cs.choice_hits);
  cv.set("choice_misses", cs.choice_misses);
  cv.set("prepared_hits", cs.prepared_hits);
  cv.set("prepared_misses", cs.prepared_misses);
  cv.set("evictions", cs.evictions);
  cv.set("prepared_bytes", static_cast<std::uint64_t>(cs.prepared_bytes));
  cv.set("prepared_entries", static_cast<std::uint64_t>(cs.prepared_entries));
  doc.set("cache", std::move(cv));
  // Per-batch metrics: snapshot-then-reset, so each STATS line covers the
  // requests since the previous one.
  auto& metrics = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot snap = metrics.snapshot();
  // Kernel-variant histogram (spmv.plan.variant.<name>, emitted once per
  // prepare). Unlike the per-batch `metrics` block this accumulates across
  // the daemon's lifetime — the mix of specialized plans in play is a
  // fleet-level property, not a batch-level one — so the counters are
  // folded into process-wide totals before the registry resets.
  {
    static std::mutex plan_mutex;
    static std::array<std::uint64_t, kNumKernelVariants> plan_totals{};
    std::lock_guard<std::mutex> lock(plan_mutex);
    for (const auto& c : snap.counters) {
      constexpr std::string_view kPrefix = "spmv.plan.variant.";
      if (c.name.size() <= kPrefix.size() ||
          c.name.compare(0, kPrefix.size(), kPrefix) != 0) {
        continue;
      }
      const std::string_view suffix(c.name.c_str() + kPrefix.size());
      for (std::size_t v = 0; v < kNumKernelVariants; ++v) {
        if (suffix == kernel_variant_name(static_cast<KernelVariant>(v))) {
          plan_totals[v] += c.value;
          break;
        }
      }
    }
    obs::JsonValue pv = obs::JsonValue::object();
    std::uint64_t total = 0;
    for (std::size_t v = 0; v < kNumKernelVariants; ++v) {
      pv.set(kernel_variant_name(static_cast<KernelVariant>(v)),
             plan_totals[v]);
      total += plan_totals[v];
    }
    pv.set("blocks_total", total);
    pv.set("specialize_enabled", plan_specialization_enabled());
    doc.set("plan", std::move(pv));
  }
  doc.set("metrics", obs::metrics_to_json(snap));
  metrics.reset();
  return doc.dump(0);
}

std::string render_response(const serve::Response& rsp, bool with_spmv,
                            bool with_solve = false) {
  if (!rsp.ok) {
    return std::string("ERR ") + error_category_name(rsp.category) + " " +
           rsp.error;
  }
  std::ostringstream out;
  out << "OK id=" << rsp.id << " config=" << rsp.config_name
      << " class=" << rsp.choice.predicted_class << " cached="
      << (rsp.prepared_cache_hit ? "prepared"
                                 : (rsp.choice_cache_hit ? "choice" : "none"))
      << " fingerprint=" << rsp.fingerprint.hex()
      << " queue_us=" << rsp.queue_seconds * 1e6
      << " service_us=" << rsp.service_seconds * 1e6;
  if (with_spmv) {
    out << " spmv_us=" << rsp.spmv_seconds * 1e6
        << " checksum=" << rsp.checksum;
  }
  if (with_solve) {
    out << " iters=" << rsp.solve_iterations
        << " residual=" << rsp.residual_norm
        << " converged=" << (rsp.converged ? 1 : 0);
  }
  if (rsp.choice.fell_back()) {
    out << " fallback=\"" << rsp.choice.fallback_reason << '"';
  }
  return out.str();
}

/// Executes one protocol line. Returns false when the connection should
/// close (QUIT). Never throws: failures render as ERR lines.
bool handle_line(const std::string& line, serve::Server& server,
                 MatrixLoader& loader, std::string& reply) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) {
    reply.clear();
    return true;
  }
  if (cmd == "QUIT") {
    reply = "OK bye";
    return false;
  }
  if (cmd == "STATS") {
    reply = stats_line(server);
    return true;
  }

  serve::Request req;
  if (cmd == "PREDICT") {
    req.kind = serve::RequestKind::kPredict;
  } else if (cmd == "PREPARE") {
    req.kind = serve::RequestKind::kPrepare;
  } else if (cmd == "RUN") {
    req.kind = serve::RequestKind::kRun;
  } else if (cmd == "SPMM") {
    req.kind = serve::RequestKind::kSpmm;
  } else if (cmd == "SOLVE") {
    req.kind = serve::RequestKind::kSolve;
  } else {
    reply = "ERR validation unknown command '" + cmd + "'";
    return true;
  }
  std::string path;
  in >> path;
  if (path.empty()) {
    reply = "ERR validation " + cmd + " needs a matrix path";
    return true;
  }
  if (req.kind == serve::RequestKind::kRun) {
    req.iters = 10;
    in >> req.iters;
  } else if (req.kind == serve::RequestKind::kSpmm) {
    req.rhs_cols = 8;
    req.iters = 10;
    in >> req.rhs_cols >> req.iters;
  } else if (req.kind == serve::RequestKind::kSolve) {
    req.solver = "cg";
    req.iters = 200;  // max solver iterations == the selector's expected N
    in >> req.solver >> req.iters;
  }
  req.id = path;
  try {
    MatrixLoader::Loaded loaded = loader.load(path);
    req.matrix = std::move(loaded.matrix);
    req.fingerprint = loaded.fingerprint;
  } catch (const Error& e) {
    reply = std::string("ERR ") + error_category_name(e.category()) + " " +
            e.what();
    return true;
  } catch (const std::exception& e) {
    reply = std::string("ERR parse ") + e.what();
    return true;
  }
  const serve::Response rsp = server.call(std::move(req));
  reply = render_response(rsp, rsp.ok && (cmd == "RUN" || cmd == "SPMM"),
                          rsp.ok && cmd == "SOLVE");
  return true;
}

/// Reads protocol lines from `in_fd`, writes replies to `out_fd`.
void serve_stream(int in_fd, int out_fd, serve::Server& server,
                  MatrixLoader& loader) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !g_stop.load()) {
    const ssize_t n = ::read(in_fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && open;
         start = nl + 1, nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::string reply;
      open = handle_line(line, server, loader, reply);
      if (!reply.empty()) {
        reply.push_back('\n');
        std::size_t off = 0;
        while (off < reply.size()) {
          const ssize_t w =
              ::write(out_fd, reply.data() + off, reply.size() - off);
          if (w <= 0) {
            open = false;
            break;
          }
          off += static_cast<std::size_t>(w);
        }
      }
    }
    buffer.erase(0, start);
  }
}

int serve_socket(const std::string& path, serve::Server& server,
                 MatrixLoader& loader) {
  ::unlink(path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    ::close(listen_fd);
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    std::perror("bind/listen");
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr, "[wise_served] listening on %s\n", path.c_str());

  std::vector<std::thread> clients;
  while (!g_stop.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop.load()) break;
      continue;
    }
    clients.emplace_back([fd, &server, &loader] {
      serve_stream(fd, fd, server, loader);
      ::close(fd);
    });
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  for (auto& t : clients) {
    if (t.joinable()) t.join();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_dir;
  std::string socket_path;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--models") == 0 && i + 1 < argc) {
      model_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0 ||
               std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      return usage();
    }
  }

  obs::configure_metrics_from_env();
  // The serve metrics (and STATS batches) need the registry on.
  obs::MetricsRegistry::global().set_enabled(true);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  return examples::run_guarded([&]() -> int {
    auto predictor = std::make_shared<const Wise>(
        model_dir.empty() ? examples::make_mini_wise()
                          : Wise(ModelBank::load(model_dir)));
    const auto options = serve::ServerOptions::from_env();
    serve::Server server(predictor, options);
    std::fprintf(stderr,
                 "[wise_served] %d workers / %zu shards, queue %zu (%s), "
                 "cache budget %zu bytes\n",
                 server.options().workers, server.shard_count(),
                 server.options().queue_capacity,
                 server.options().overflow == serve::OverflowPolicy::kBlock
                     ? "block"
                     : "reject",
                 server.options().cache_bytes);

    // SpMM bank: loaded from the same --models directory when present
    // (spmm_models.txt, trained/saved independently of models.txt), else
    // trained quickly on small generated matrices. Either way the SpMV
    // bank is never touched — the §7 add-a-method separation.
    std::shared_ptr<const spmm::SpmmBank> spmm_bank;
    if (!model_dir.empty()) {
      try {
        spmm_bank = std::make_shared<const spmm::SpmmBank>(
            spmm::SpmmBank::load(model_dir));
        for (const auto& w : spmm_bank->warnings()) {
          std::fprintf(stderr, "[wise_served] spmm bank: %s\n", w.c_str());
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "[wise_served] no usable SpMM bank in %s (%s); "
                     "training a mini one\n",
                     model_dir.c_str(), e.what());
      }
    }
    if (spmm_bank == nullptr) {
      std::vector<CsrMatrix> spmm_corpus;
      for (const auto& spec : examples::mini_corpus()) {
        if (spec.n <= 1024) spmm_corpus.push_back(spec.materialize());
      }
      spmm_bank = std::make_shared<const spmm::SpmmBank>(
          spmm::train_spmm_bank(spmm_corpus, {.k = 8, .iters = 1}));
    }
    server.set_spmm_bank(spmm_bank);

    // Amortized dual-model selector for SOLVE sessions, trained from the
    // cached mini-corpus measurements (per-config prep times ride along
    // with the speed labels, so this is free once the cache is warm).
    try {
      MeasurementCache amortized_cache;
      const auto records = amortized_cache.get_or_measure(
          examples::mini_corpus(), {.iters = 2, .repeats = 1});
      server.set_amortized(
          std::make_shared<const AmortizedWise>(train_amortized(records)));
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "[wise_served] amortized selector unavailable (%s); "
                   "SOLVE degrades to the bank's N-agnostic choice\n",
                   e.what());
    }

    const auto learn_opts = learn::LearnOptions::from_env();
    if (learn_opts.enabled) {
      server.attach_learner(
          std::make_shared<learn::OnlineLearner>(learn_opts));
      const auto& lo = server.learner()->options();
      std::fprintf(stderr,
                   "[wise_served] online learning on: wal=%s "
                   "sample_rate=%.2f window=%zu threshold=%.2f\n",
                   lo.log_path.c_str(), lo.sample_rate, lo.window,
                   lo.drift_threshold);
    }

    MatrixLoader loader(options.fingerprint_values);
    int rc = 0;
    if (!socket_path.empty()) {
      rc = serve_socket(socket_path, server, loader);
    } else {
      serve_stream(STDIN_FILENO, STDOUT_FILENO, server, loader);
    }
    server.shutdown(true);

    if (verbose) {
      const auto snap = obs::MetricsRegistry::global().snapshot();
      std::fprintf(stderr, "\n-- serve metrics --\n%s",
                   obs::render_metrics_table(snap).c_str());
    }
    obs::emit_metrics_from_env();
    return rc;
  });
}
