// PageRank on a power-law web-like graph — the iterative-SpMV workload the
// paper's introduction motivates (PageRank/HITS run SpMV many times on one
// matrix, so WISE's one-time method selection amortizes across the solve).
//
// The transition matrix M = A^T D^-1 is built once; WISE picks the fastest
// SpMV method for it; the same library PageRank runs with the baseline CSR
// operator and the WISE-prepared operator, and must produce identical
// rankings.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "example_common.hpp"
#include "gen/generators.hpp"
#include "graph/algorithms.hpp"
#include "spmv/csr_kernels.hpp"
#include "util/timer.hpp"

using namespace wise;

int run() {
  const CsrMatrix graph = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kHighSkew, 32768, 24), /*seed=*/3));
  const CsrMatrix m = pagerank_transition(graph);
  std::printf("web-like graph: %d nodes, %lld edges\n", graph.nrows(),
              static_cast<long long>(graph.nnz()));

  const Wise predictor = examples::make_mini_wise();
  const WiseChoice choice = predictor.choose(m);
  PreparedMatrix prepared = PreparedMatrix::prepare(m, choice.config);
  std::printf("WISE selected %s for the transition matrix\n",
              choice.config.name().c_str());

  // Tight tolerance → a realistic iteration count for ranking stability.
  const PageRankOptions opts{.damping = 0.85,
                             .tolerance = 1e-14,
                             .max_iterations = 500};

  Timer t;
  const auto baseline = pagerank(make_csr_operator(m), m.nrows(), opts);
  const double baseline_seconds = t.seconds();

  t.reset();
  const auto tuned = pagerank(
      [&prepared](std::span<const value_t> x, std::span<value_t> y) {
        prepared.run(x, y);
      },
      m.nrows(), opts);
  const double tuned_seconds = t.seconds();

  const double selection_seconds =
      prepared.prep_seconds() + choice.feature_seconds;
  std::printf("\nPageRank to 1e-14 (%d iterations):\n", tuned.iterations);
  std::printf("  CSR baseline: %.1f ms\n", baseline_seconds * 1e3);
  std::printf("  WISE method:  %.1f ms solve + %.1f ms one-time selection "
              "= %.1f ms (%.2fx end-to-end)\n",
              tuned_seconds * 1e3, selection_seconds * 1e3,
              (tuned_seconds + selection_seconds) * 1e3,
              baseline_seconds / (tuned_seconds + selection_seconds));

  // Both runs must agree on the ranking.
  double max_diff = 0;
  for (std::size_t i = 0; i < baseline.rank.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(baseline.rank[i]) -
                                 static_cast<double>(tuned.rank[i])));
  }
  std::printf("  max |rank difference| = %.2e (must be ~0)\n", max_diff);

  std::vector<index_t> order(static_cast<std::size_t>(m.nrows()));
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&tuned](index_t a, index_t b) {
                      return tuned.rank[static_cast<std::size_t>(a)] >
                             tuned.rank[static_cast<std::size_t>(b)];
                    });
  std::printf("\ntop-5 nodes by PageRank:");
  for (int i = 0; i < 5; ++i) {
    std::printf(" %d", order[static_cast<std::size_t>(i)]);
  }
  std::printf("\n");
  return max_diff < 1e-6 ? 0 : 1;
}

int main() { return examples::run_guarded(run); }
