// Exhaustive property sweep over the SRVPack option space: every
// combination of chunk height, sort window, CFS, and segmentation must
// (a) round-trip the matrix exactly, (b) compute SpMV correctly under all
// three scheduling policies, and (c) respect structural invariants
// (chunk offsets monotone, stored >= logical nonzeros, row_order a
// sub-permutation).
//
// This is the product-space safety net behind the per-method unit tests:
// a regression in any transform/layout interaction fails here even if the
// five named methods still happen to work.

#include <gtest/gtest.h>

#include <numeric>

#include "spmv/srvpack_kernels.hpp"
#include "test_util.hpp"

namespace wise {
namespace {

using testing::expect_vectors_near;
using testing::random_csr;
using testing::random_vector;

struct OptionCase {
  SrvBuildOptions opts;
  std::string name;
};

std::vector<OptionCase> option_grid() {
  std::vector<OptionCase> cases;
  const std::vector<std::pair<index_t, const char*>> sigmas = {
      {1, "s1"}, {4, "s4"}, {64, "s64"}, {kSigmaAll, "sAll"}};
  const std::vector<std::pair<std::vector<double>, const char*>> segments = {
      {{}, "seg1"}, {{0.7}, "seg2"}, {{0.5, 0.8}, "seg3"}};
  for (int c : {1, 3, 4, 8}) {
    for (const auto& [sigma, sname] : sigmas) {
      for (bool cfs : {false, true}) {
        for (const auto& [fractions, gname] : segments) {
          // Multi-segment without CFS is legal too — include it.
          SrvBuildOptions opts;
          opts.c = c;
          opts.sigma = sigma;
          opts.cfs = cfs;
          opts.segment_fractions = fractions;
          std::string name = "c" + std::to_string(c) + "_" + sname + "_" +
                             (cfs ? "cfs" : "nocfs") + "_" + gname;
          cases.push_back({opts, std::move(name)});
        }
      }
    }
  }
  return cases;  // 4 * 4 * 2 * 3 = 96 combinations
}

class SrvPackOptionSpace : public ::testing::TestWithParam<OptionCase> {};

TEST_P(SrvPackOptionSpace, RoundTripsAndComputesCorrectly) {
  const auto& opts = GetParam().opts;
  for (std::uint64_t seed : {101u, 202u}) {
    const CsrMatrix m = random_csr(93, 71, 4.0, seed);
    const SrvPackMatrix p = SrvPackMatrix::build(m, opts);

    // (a) lossless round trip
    EXPECT_EQ(CsrMatrix::from_coo(p.to_coo()), m) << "seed " << seed;

    // (b) SpMV vs reference, all schedules
    const auto x = random_vector(71, seed + 7);
    std::vector<value_t> y_ref(93), y(93);
    spmv_reference(m, x, y_ref);
    SrvWorkspace ws;
    for (Schedule s : {Schedule::kDyn, Schedule::kSt, Schedule::kStCont}) {
      std::fill(y.begin(), y.end(), -1.0);
      spmv_srvpack(p, x, y, s, ws);
      expect_vectors_near(y_ref, y);
    }
  }
}

TEST_P(SrvPackOptionSpace, StructuralInvariantsHold) {
  const auto& opts = GetParam().opts;
  const CsrMatrix m = random_csr(120, 80, 5.0, 303);
  const SrvPackMatrix p = SrvPackMatrix::build(m, opts);

  EXPECT_EQ(p.segments().size(), opts.segment_fractions.size() + 1);
  EXPECT_GE(p.stored_entries(), p.nnz());
  EXPECT_GE(p.padding_ratio(), 0.0);

  index_t col_cursor = 0;
  for (const auto& seg : p.segments()) {
    // Segments tile the column range in order.
    EXPECT_EQ(seg.col_begin, col_cursor);
    EXPECT_GT(seg.col_end, seg.col_begin);
    col_cursor = seg.col_end;

    // Chunk offsets monotone; chunk count covers the rows.
    EXPECT_EQ(seg.chunk_offset.front(), 0);
    for (std::size_t k = 1; k < seg.chunk_offset.size(); ++k) {
      EXPECT_GE(seg.chunk_offset[k], seg.chunk_offset[k - 1]);
    }
    EXPECT_EQ(seg.num_chunks(),
              (seg.num_rows() + opts.c - 1) / opts.c);
    EXPECT_EQ(seg.vals.size(),
              static_cast<std::size_t>(seg.chunk_offset.back()) *
                  static_cast<std::size_t>(opts.c));
    EXPECT_EQ(seg.col_ids.size(), seg.vals.size());

    // row_order is a duplicate-free subset of [0, nrows).
    std::vector<bool> seen(static_cast<std::size_t>(m.nrows()), false);
    for (index_t r : seg.row_order) {
      ASSERT_GE(r, 0);
      ASSERT_LT(r, m.nrows());
      EXPECT_FALSE(seen[static_cast<std::size_t>(r)]) << "duplicate row " << r;
      seen[static_cast<std::size_t>(r)] = true;
    }

    // Stored column ids stay inside the segment's range (they are padding
    // or real entries; padding uses col_begin).
    for (index_t id : seg.col_ids) {
      EXPECT_GE(id, seg.col_begin);
      EXPECT_LT(id, seg.col_end);
    }
  }
  EXPECT_EQ(col_cursor, m.ncols());
}

INSTANTIATE_TEST_SUITE_P(OptionGrid, SrvPackOptionSpace,
                         ::testing::ValuesIn(option_grid()),
                         [](const auto& info) { return info.param.name; });

// Shape edge cases crossed with a representative option subset.
struct ShapeCase {
  index_t rows, cols;
  double degree;
  std::string name;
};

class SrvPackShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(SrvPackShapes, AllMethodsHandleExtremeShapes) {
  const auto& sc = GetParam();
  const CsrMatrix m = random_csr(sc.rows, sc.cols, sc.degree, 404);
  const auto x = random_vector(static_cast<std::size_t>(sc.cols), 405);
  std::vector<value_t> y_ref(static_cast<std::size_t>(sc.rows));
  std::vector<value_t> y(y_ref.size());
  spmv_reference(m, x, y_ref);

  for (const SrvBuildOptions& opts :
       {SrvBuildOptions{.c = 8},
        SrvBuildOptions{.c = 8, .sigma = 64},
        SrvBuildOptions{.c = 4, .sigma = kSigmaAll, .cfs = true},
        SrvBuildOptions{.c = 8,
                        .sigma = kSigmaAll,
                        .cfs = true,
                        .segment_fractions = {0.7}}}) {
    const SrvPackMatrix p = SrvPackMatrix::build(m, opts);
    SrvWorkspace ws;
    spmv_srvpack(p, x, y, Schedule::kDyn, ws);
    expect_vectors_near(y_ref, y);
    EXPECT_EQ(CsrMatrix::from_coo(p.to_coo()), m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SrvPackShapes,
    ::testing::Values(ShapeCase{1, 50, 20, "single_row"},
                      ShapeCase{50, 1, 0.5, "single_col"},
                      ShapeCase{7, 7, 1.0, "tiny_square"},
                      ShapeCase{5, 300, 40, "wide"},
                      ShapeCase{300, 5, 2, "tall"},
                      ShapeCase{64, 64, 32, "dense_half"},
                      ShapeCase{1000, 1000, 0.05, "ultra_sparse"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace wise
