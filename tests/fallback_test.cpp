// End-to-end degradation tests: with a fault injected at any pipeline stage
// (parse, feature, inference, conversion), Wise::prepare must still return a
// runnable CSR PreparedMatrix whose SpMV matches the reference, with the
// failing stage recorded in WiseChoice::fallback_reason.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/prng.hpp"
#include "wise/model_bank.hpp"
#include "wise/pipeline.hpp"

namespace wise {
namespace {

using testing::expect_vectors_near;
using testing::random_csr;
using testing::random_vector;

/// Disarms the global injector on scope exit, so a failing assertion cannot
/// leak an armed stage into later tests.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::global().disarm_all(); }
};

/// A bank in which one SELLPACK configuration always beats CSR, so the
/// normal path exercises layout conversion and the fallback paths visibly
/// demote away from it.
ModelBank sellpack_wins_bank() {
  std::vector<MethodConfig> configs = csr_configs();
  const std::size_t n_csr = configs.size();
  configs.push_back({.kind = MethodKind::kSellpack,
                     .sched = Schedule::kStCont,
                     .c = 8});
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> rel;
  Xoshiro256 rng(17);
  for (int i = 0; i < 30; ++i) {
    std::vector<double> f(feature_count());
    for (auto& v : f) v = rng.next_double();
    features.push_back(std::move(f));
    std::vector<double> r(configs.size(), 1.0);
    r[n_csr] = 0.5;  // SELLPACK at a 2x speedup, CSR variants neutral
    rel.push_back(std::move(r));
  }
  ModelBank bank;
  bank.train(configs, features, rel, {.max_depth = 3});
  return bank;
}

void expect_matches_reference(PreparedMatrix& pm, const CsrMatrix& m) {
  const auto x = random_vector(m.ncols(), 23);
  std::vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  std::vector<value_t> y_ref(static_cast<std::size_t>(m.nrows()));
  pm.run(x, y);
  spmv_reference(m, x, y_ref);
  expect_vectors_near(y_ref, y);
}

TEST(Fallback, NormalPathSelectsSellpack) {
  const Wise predictor(sellpack_wins_bank());
  const CsrMatrix m = random_csr(300, 300, 6.0, 1);
  WiseChoice choice;
  PreparedMatrix pm = predictor.prepare(m, choice);
  EXPECT_EQ(choice.config.kind, MethodKind::kSellpack);
  EXPECT_FALSE(choice.fell_back());
  EXPECT_TRUE(choice.fallback_reason.empty());
  expect_matches_reference(pm, m);
}

TEST(Fallback, EveryFaultedStageStillYieldsRunnableCsr) {
  const Wise predictor(sellpack_wins_bank());
  const CsrMatrix m = random_csr(300, 300, 6.0, 2);
  for (const char* stg : {stage::kParse, stage::kFeature, stage::kInference,
                          stage::kConversion}) {
    FaultGuard guard;
    FaultInjector::global().arm(stg);
    WiseChoice choice;
    PreparedMatrix pm = predictor.prepare(m, choice);
    FaultInjector::global().disarm_all();

    EXPECT_EQ(choice.config.kind, MethodKind::kCsr) << "stage " << stg;
    ASSERT_TRUE(choice.fell_back()) << "stage " << stg;
    EXPECT_EQ(choice.fallback_reason.rfind(std::string(stg) + ": ", 0), 0u)
        << "stage " << stg << ": got \"" << choice.fallback_reason << "\"";
    expect_matches_reference(pm, m);
  }
}

TEST(Fallback, ChooseDemotesOnFeatureFault) {
  const Wise predictor(sellpack_wins_bank());
  const CsrMatrix m = random_csr(200, 200, 5.0, 3);
  FaultGuard guard;
  FaultInjector::global().arm(stage::kFeature);
  const WiseChoice choice = predictor.choose(m);
  EXPECT_EQ(choice.config.kind, MethodKind::kCsr);
  EXPECT_TRUE(choice.fell_back());
}

TEST(Fallback, InvalidInputDemotesToParseFallback) {
  const Wise predictor(sellpack_wins_bank());
  // Corrupt a valid matrix after construction: NaN slips past the ctor-time
  // check only via direct span mutation, so build it through from_coo and
  // poke the value array.
  CsrMatrix m = random_csr(100, 100, 4.0, 4);
  const_cast<value_t&>(m.vals()[0]) =
      std::numeric_limits<value_t>::quiet_NaN();
  WiseChoice choice;
  PreparedMatrix pm = predictor.prepare(m, choice);
  EXPECT_EQ(choice.config.kind, MethodKind::kCsr);
  ASSERT_TRUE(choice.fell_back());
  EXPECT_EQ(choice.fallback_reason.rfind("parse: ", 0), 0u)
      << choice.fallback_reason;
  (void)pm;  // runnable, though y will contain the NaN — by design
}

TEST(Fallback, MemoryBudgetDemotesConversion) {
  Wise predictor(sellpack_wins_bank());
  predictor.memory_budget_bytes = 16;  // absurdly small: every layout exceeds
  const CsrMatrix m = random_csr(200, 200, 5.0, 5);
  WiseChoice choice;
  PreparedMatrix pm = predictor.prepare(m, choice);
  EXPECT_EQ(choice.config.kind, MethodKind::kCsr);
  ASSERT_TRUE(choice.fell_back());
  EXPECT_EQ(choice.fallback_reason.rfind("conversion: ", 0), 0u);
  EXPECT_NE(choice.fallback_reason.find("memory budget"), std::string::npos)
      << choice.fallback_reason;
  expect_matches_reference(pm, m);
}

// ------------------------------------------------- model bank skipping ----

TEST(Fallback, CorruptTreeIsSkippedWithWarning) {
  ModelBank bank = sellpack_wins_bank();
  const auto dir =
      (std::filesystem::temp_directory_path() / "wise_fallback_bank").string();
  bank.save(dir);

  // Flip one hex digit of the *first* tree's checksum so exactly one
  // configuration fails verification.
  const std::string path = dir + "/models.txt";
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  const auto pos = text.find("tree ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = text.find('\n', pos);
  // Last character of the "tree <len> <checksum>" line is a hex digit.
  text[eol - 1] = text[eol - 1] == '0' ? '1' : '0';
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }

  const ModelBank loaded = ModelBank::load(dir);
  EXPECT_EQ(loaded.configs().size(), bank.configs().size() - 1);
  ASSERT_EQ(loaded.warnings().size(), 1u);
  EXPECT_NE(loaded.warnings()[0].find("checksum"), std::string::npos)
      << loaded.warnings()[0];

  // The degraded bank still drives the pipeline.
  const Wise predictor(loaded);
  const CsrMatrix m = random_csr(150, 150, 4.0, 6);
  WiseChoice choice;
  PreparedMatrix pm = predictor.prepare(m, choice);
  expect_matches_reference(pm, m);

  std::filesystem::remove_all(dir);
}

TEST(Fallback, FullyCorruptBankThrowsModelBankError) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "wise_corrupt_bank").string();
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/models.txt", std::ios::binary);
    out << "wise-model-bank v9\nnot a bank\n";
  }
  try {
    ModelBank::load(dir);
    FAIL() << "expected wise::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kModelBank);
  }
  std::filesystem::remove_all(dir);
}

TEST(Fallback, ModelBankFaultInjectionDemotesLoad) {
  // The model_bank stage guards ModelBank::load itself: load throws (the
  // caller has no bank to fall back onto), and the error is typed.
  ModelBank bank = sellpack_wins_bank();
  const auto dir =
      (std::filesystem::temp_directory_path() / "wise_faulted_bank").string();
  bank.save(dir);
  FaultGuard guard;
  FaultInjector::global().arm(stage::kModelBank);
  EXPECT_THROW(ModelBank::load(dir), Error);
  FaultInjector::global().disarm_all();
  EXPECT_NO_THROW(ModelBank::load(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wise
