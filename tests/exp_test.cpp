// Tests for the experiment harness: specs, corpora, measurement, cache.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>

#include <fstream>

#include "exp/cache.hpp"
#include "exp/corpus.hpp"
#include "exp/measure.hpp"
#include "features/extractor.hpp"
#include "test_util.hpp"

namespace wise {
namespace {

using testing::random_csr;

TEST(Spec, RmatSpecMaterializesDeterministically) {
  const MatrixSpec spec = rmat_spec(RmatClass::kHighSkew, 256, 8, 42);
  const CsrMatrix a = spec.materialize();
  const CsrMatrix b = spec.materialize();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.nrows(), 256);
}

TEST(Spec, RggSpecMaterializes) {
  const MatrixSpec spec = rgg_spec(200, 6, 7);
  const CsrMatrix m = spec.materialize();
  EXPECT_EQ(m.nrows(), 200);
  EXPECT_GT(m.nnz(), 0);
}

TEST(Spec, IdsEncodeClassAndShape) {
  const MatrixSpec spec = rmat_spec(RmatClass::kMedSkew, 1024, 16, 1);
  EXPECT_EQ(spec.id, "rmat-MS-r1024-d16");
  EXPECT_EQ(spec.family, "MS");
}

TEST(Corpus, SciCorpusHas136UniqueSpecs) {
  const auto specs = sci_corpus();
  EXPECT_EQ(specs.size(), 136u);  // paper §5: 136 SuiteSparse matrices
  std::set<std::string> ids;
  for (const auto& s : specs) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate id " << s.id;
    EXPECT_EQ(s.family, "sci");
  }
}

TEST(Corpus, RandomCorpusCoversAllClasses) {
  const auto specs = random_corpus();
  EXPECT_EQ(specs.size(), 350u);
  std::set<std::string> families;
  for (const auto& s : specs) families.insert(s.family);
  EXPECT_EQ(families,
            (std::set<std::string>{"HS", "MS", "LS", "LL", "ML", "HL", "rgg"}));
}

TEST(Corpus, FullCorpusIdsAreGloballyUnique) {
  const auto specs = full_corpus();
  std::set<std::string> ids;
  for (const auto& s : specs) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate id " << s.id;
  }
  EXPECT_EQ(specs.size(), 486u);
}

TEST(Corpus, SweepGridHasOneSpecPerCell) {
  const auto grid = sweep_grid(RmatClass::kLowSkew);
  EXPECT_EQ(grid.size(), sweep_rows().size() * sweep_degrees().size());
  for (const auto& s : grid) {
    EXPECT_EQ(s.family, "LS");
    EXPECT_EQ(s.id.substr(0, 6), "sweep-");
  }
}

TEST(Corpus, SampleSpecsMaterialize) {
  // Materialize one spec of each kind to catch parameter bugs.
  const auto specs = sci_corpus();
  std::set<MatrixSpec::Kind> done;
  for (const auto& s : specs) {
    if (done.contains(s.kind)) continue;
    if (s.n > 20000) continue;  // keep the test fast
    const CsrMatrix m = s.materialize();
    EXPECT_GT(m.nnz(), 0) << s.id;
    done.insert(s.kind);
  }
  EXPECT_GE(done.size(), 5u);
}

TEST(Measure, RecordsAllConfigurations) {
  const CsrMatrix m = random_csr(128, 128, 4.0, 1);
  const MatrixRecord rec =
      measure_matrix(m, "test-matrix", "test", {.iters = 1, .repeats = 1});
  EXPECT_EQ(rec.config_seconds.size(), all_method_configs().size());
  EXPECT_EQ(rec.config_prep_seconds.size(), all_method_configs().size());
  EXPECT_EQ(rec.features.size(), feature_count());
  EXPECT_GT(rec.mkl_seconds, 0.0);
  for (double t : rec.config_seconds) EXPECT_GT(t, 0.0);
  EXPECT_GT(rec.best_csr_seconds(), 0.0);
  EXPECT_LE(rec.best_csr_seconds(), rec.config_seconds[0]);
}

TEST(Measure, RelTimeNormalizesByBestCsr) {
  const CsrMatrix m = random_csr(64, 64, 3.0, 2);
  const MatrixRecord rec =
      measure_matrix(m, "t2", "test", {.iters = 1, .repeats = 1});
  // At least one CSR config has rel_time exactly 1.
  const auto configs = all_method_configs();
  bool unit_found = false;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (configs[c].kind == MethodKind::kCsr && rec.rel_time(c) == 1.0) {
      unit_found = true;
    }
  }
  EXPECT_TRUE(unit_found);
  EXPECT_LT(rec.best_config_index(), configs.size());
}

TEST(Cache, CsvRowRoundTrip) {
  const CsrMatrix m = random_csr(64, 64, 3.0, 3);
  const MatrixRecord rec =
      measure_matrix(m, "rt", "fam", {.iters = 1, .repeats = 1});
  const auto row = measurement_csv_row(rec);
  EXPECT_EQ(row.size(), measurement_csv_header().size());
  const MatrixRecord back = measurement_from_csv_row(row);
  EXPECT_EQ(back.id, rec.id);
  EXPECT_EQ(back.family, rec.family);
  EXPECT_EQ(back.nnz, rec.nnz);
  EXPECT_EQ(back.features, rec.features);
  EXPECT_EQ(back.config_seconds, rec.config_seconds);
  EXPECT_EQ(back.config_prep_seconds, rec.config_prep_seconds);
}

TEST(Cache, PersistsAndReloadsMeasurements) {
  const auto dir = std::filesystem::temp_directory_path() / "wise_cache_test";
  std::filesystem::remove_all(dir);
  const auto path = (dir / "m.csv").string();

  std::vector<MatrixSpec> specs = {rmat_spec(RmatClass::kLowSkew, 128, 4, 1),
                                   rgg_spec(128, 4, 2)};
  const MeasureOptions opts{.iters = 1, .repeats = 1};

  MeasurementCache cache1(path);
  const auto first = cache1.get_or_measure(specs, opts);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_TRUE(std::filesystem::exists(path));

  // A fresh cache object must serve from disk (identical values, no
  // remeasurement — timings are noisy, so equality proves the cache hit).
  MeasurementCache cache2(path);
  const auto second = cache2.get_or_measure(specs, opts);
  ASSERT_EQ(second.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(second[i].id, first[i].id);
    EXPECT_EQ(second[i].config_seconds, first[i].config_seconds);
  }
  std::filesystem::remove_all(dir);
}

TEST(Cache, MeasuresOnlyMissingSpecs) {
  const auto dir = std::filesystem::temp_directory_path() / "wise_cache_test2";
  std::filesystem::remove_all(dir);
  const auto path = (dir / "m.csv").string();
  const MeasureOptions opts{.iters = 1, .repeats = 1};

  MeasurementCache cache(path);
  const auto a =
      cache.get_or_measure({rmat_spec(RmatClass::kLowSkew, 128, 4, 1)}, opts);
  const auto b = cache.get_or_measure(
      {rmat_spec(RmatClass::kLowSkew, 128, 4, 1),
       rmat_spec(RmatClass::kHighSkew, 128, 4, 2)},
      opts);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].config_seconds, a[0].config_seconds);  // served from cache
  std::filesystem::remove_all(dir);
}

TEST(Cache, SchemaMismatchTriggersRemeasure) {
  const auto dir = std::filesystem::temp_directory_path() / "wise_cache_test3";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto path = (dir / "m.csv").string();
  {
    std::ofstream out(path);
    out << "bogus,header\n1,2\n";
  }
  MeasurementCache cache(path);
  const auto recs = cache.get_or_measure(
      {rmat_spec(RmatClass::kLowSkew, 128, 4, 1)}, {.iters = 1, .repeats = 1});
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_GT(recs[0].nnz, 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wise
