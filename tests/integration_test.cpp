// End-to-end integration tests: the full WISE lifecycle (measure → train →
// save → load → select → convert → run) plus cross-module interactions
// that unit tests cannot see.

#include <gtest/gtest.h>

#include <filesystem>

#include "exp/cache.hpp"
#include "exp/corpus.hpp"
#include "exp/train.hpp"
#include "gen/generators.hpp"
#include "graph/algorithms.hpp"
#include "solvers/solvers.hpp"
#include "sparse/utils.hpp"
#include "test_util.hpp"
#include "wise/amortized.hpp"
#include "wise/pipeline.hpp"
#include "wise/selector.hpp"
#include "wise/speedup_class.hpp"
#include "wise/baselines.hpp"

namespace wise {
namespace {

using testing::expect_vectors_near;
using testing::random_vector;

/// Tiny corpus measured once per test binary run (fast: ~1 s).
class WiseLifecycle : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<MatrixSpec> specs;
    std::uint64_t seed = 77;
    for (RmatClass cls :
         {RmatClass::kHighSkew, RmatClass::kLowSkew, RmatClass::kHighLoc}) {
      for (index_t n : {512, 2048}) {
        for (double deg : {4.0, 16.0}) {
          auto s = rmat_spec(cls, n, deg, seed++);
          s.id = "itest-" + s.id;
          specs.push_back(std::move(s));
        }
      }
    }
    records_ = new std::vector<MatrixRecord>();
    for (const auto& spec : specs) {
      records_->push_back(measure_matrix(spec, {.iters = 1, .repeats = 1}));
    }
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }

  static std::vector<MatrixRecord>* records_;
};

std::vector<MatrixRecord>* WiseLifecycle::records_ = nullptr;

TEST_F(WiseLifecycle, TrainSaveLoadPredictRun) {
  const ModelBank bank = train_model_bank(*records_, {.max_depth = 8});

  const auto dir =
      (std::filesystem::temp_directory_path() / "wise_itest_models").string();
  bank.save(dir);
  const Wise predictor{ModelBank::load(dir)};
  std::filesystem::remove_all(dir);

  // Fresh matrix the models never saw.
  const CsrMatrix m = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kMedSkew, 1024, 8), 123));
  const WiseChoice choice = predictor.choose(m);
  EXPECT_GE(choice.predicted_class, 0);
  EXPECT_LT(choice.predicted_class, kNumSpeedupClasses);

  PreparedMatrix pm = predictor.prepare(m);
  const auto x = random_vector(static_cast<std::size_t>(m.ncols()), 5);
  std::vector<value_t> y(static_cast<std::size_t>(m.nrows()));
  std::vector<value_t> y_ref(y.size());
  pm.run(x, y);
  spmv_reference(m, x, y_ref);
  expect_vectors_near(y_ref, y);
}

TEST_F(WiseLifecycle, TrainedModelsBeatRandomSelectionOnTrainingSet) {
  const ModelBank bank = train_model_bank(*records_, {.max_depth = 10});
  const auto configs = all_method_configs();

  // WISE's training-set selections must, in aggregate, be at least as fast
  // as always-CSR (a sanity floor well below the oracle).
  double wise_total = 0, csr_total = 0;
  for (const auto& rec : *records_) {
    const auto classes = bank.predict_classes(rec.features);
    const std::size_t sel = select_best_config(configs, classes);
    wise_total += rec.config_seconds[sel];
    csr_total += rec.best_csr_seconds();
  }
  EXPECT_LE(wise_total, csr_total * 1.05);
}

TEST_F(WiseLifecycle, AmortizedSelectorConvergesToPaperHeuristicAtLargeN) {
  const auto configs = all_method_configs();
  std::vector<std::vector<double>> features, rel_times, prep_iters;
  for (const auto& rec : *records_) {
    features.push_back(rec.features);
    std::vector<double> rel(configs.size()), prep(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      rel[c] = rec.rel_time(c);
      prep[c] = rec.config_prep_seconds[c] / rec.best_csr_seconds();
    }
    rel_times.push_back(std::move(rel));
    prep_iters.push_back(std::move(prep));
  }
  AmortizedWise amortized;
  amortized.train(configs, features, rel_times, prep_iters,
                  {.max_depth = 8});

  ModelBank paper_bank;
  paper_bank.train(configs, features, rel_times, {.max_depth = 8});

  // At N = 1e9 the prep term vanishes; when the paper heuristic picks a
  // config whose predicted class is unique-best, both must agree on class.
  int agreements = 0;
  for (const auto& rec : *records_) {
    const auto am = amortized.choose(rec.features, 1e9);
    const auto classes = paper_bank.predict_classes(rec.features);
    const std::size_t sel = select_best_config(configs, classes);
    agreements += (am.speed_class == classes[sel]);
  }
  EXPECT_GE(agreements, static_cast<int>(records_->size() * 0.9));
}

TEST(Integration, SolverOnWisePreparedMatrixMatchesCsr) {
  // Jacobi through a LAV-prepared operator: format conversion must be
  // numerically transparent for an iterative solver.
  const CsrMatrix a = make_diagonally_dominant(
      CsrMatrix::from_coo(generate_banded(2048, 8, 0.5, 3)));
  const std::vector<value_t> diag = extract_diagonal(a);
  const auto b = random_vector(2048, 9);

  PreparedMatrix pm = PreparedMatrix::prepare(
      a, {.kind = MethodKind::kLav,
          .sched = Schedule::kDyn,
          .c = 8,
          .sigma = kSigmaAll,
          .T = 0.8});
  const auto via_lav = solve_jacobi(
      [&pm](std::span<const value_t> x, std::span<value_t> y) {
        pm.run(x, y);
      },
      diag, b, {.max_iterations = 200, .tolerance = 1e-11});
  const auto via_csr = solve_jacobi(make_csr_operator(a), diag, b,
                                    {.max_iterations = 200,
                                     .tolerance = 1e-11});
  ASSERT_TRUE(via_lav.converged);
  EXPECT_EQ(via_lav.iterations, via_csr.iterations);
  for (std::size_t i = 0; i < via_lav.x.size(); ++i) {
    EXPECT_NEAR(via_lav.x[i], via_csr.x[i], 1e-9);
  }
}

TEST(Integration, PagerankThroughEveryMethodFamilyAgrees) {
  const CsrMatrix g = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kHighSkew, 1024, 8), 4));
  const CsrMatrix m = pagerank_transition(g);

  const auto reference = pagerank(make_csr_operator(m), m.nrows());
  for (const auto& cfg : inspector_executor_candidates()) {
    PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
    const auto res = pagerank(
        [&pm](std::span<const value_t> x, std::span<value_t> y) {
          pm.run(x, y);
        },
        m.nrows());
    ASSERT_TRUE(res.converged) << cfg.name();
    for (std::size_t i = 0; i < res.rank.size(); ++i) {
      EXPECT_NEAR(res.rank[i], reference.rank[i], 1e-9) << cfg.name();
    }
  }
}

TEST(Integration, MeasurementCacheServesTrainedPipeline) {
  // The exact flow the benches use: cache → records → bank → selection.
  const auto dir =
      std::filesystem::temp_directory_path() / "wise_itest_cache";
  std::filesystem::remove_all(dir);
  MeasurementCache cache((dir / "m.csv").string());
  std::vector<MatrixSpec> specs;
  std::uint64_t seed = 500;
  for (index_t n : {256, 512}) {
    for (RmatClass cls : {RmatClass::kHighSkew, RmatClass::kLowLoc}) {
      auto s = rmat_spec(cls, n, 8, seed++);
      s.id = "cacheflow-" + s.id;
      specs.push_back(std::move(s));
    }
  }
  const auto records = cache.get_or_measure(specs, {.iters = 1, .repeats = 1});
  const ModelBank bank = train_model_bank(records, {.max_depth = 5});
  EXPECT_TRUE(bank.trained());
  const auto classes = bank.predict_classes(records[0].features);
  EXPECT_EQ(classes.size(), all_method_configs().size());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wise
