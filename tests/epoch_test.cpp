// Tests for epoch-based reclamation (util/epoch.hpp) and the read-lock-free
// LRU map built on it (util/epoch_lru.hpp) — the primitives behind the
// serving layer's zero-lock warm-hit path. The concurrent cases here are
// also the TSan probes for that path (the CI tsan job runs this binary).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/epoch.hpp"
#include "util/epoch_lru.hpp"

namespace wise {
namespace {

// ------------------------------------------------------------ EpochDomain ----

TEST(EpochDomain, PinTracksTheGlobalEpoch) {
  EpochDomain dom;
  EXPECT_EQ(dom.min_active(), EpochDomain::kIdle) << "no reader pinned";
  const std::uint64_t before = dom.current();
  {
    EpochDomain::Pin pin(dom);
    EXPECT_EQ(dom.min_active(), before)
        << "a pinned reader holds the epoch it entered at";
    {
      EpochDomain::Pin inner(dom);  // nesting is free and changes nothing
      EXPECT_EQ(dom.min_active(), before);
    }
    EXPECT_EQ(dom.min_active(), before);
  }
  EXPECT_EQ(dom.min_active(), EpochDomain::kIdle);
}

TEST(EpochDomain, RetireAdvancesPastActiveReaders) {
  EpochDomain dom;
  {
    EpochDomain::Pin pin(dom);
    const std::uint64_t e = dom.retire_epoch();
    // The pinned reader entered before the retirement, so the grace period
    // cannot have elapsed while it lives.
    EXPECT_LT(dom.min_active(), e);
  }
  const std::uint64_t e2 = dom.retire_epoch();
  EXPECT_GE(dom.min_active(), e2) << "no readers: immediately reclaimable";
}

TEST(EpochDomain, OverflowPinsStallReclamationInsteadOfFreeingEarly) {
  // With every slot claimed, the next pin falls back to the overflow
  // counter, which blocks reclamation entirely — safe, just conservative.
  EpochDomain dom;
  std::vector<std::unique_ptr<EpochDomain::Pin>> pins;
  for (int i = 0; i < EpochDomain::kSlots; ++i) {
    pins.push_back(std::make_unique<EpochDomain::Pin>(dom));
  }
  EXPECT_NE(dom.min_active(), EpochDomain::kIdle);
  {
    EpochDomain::Pin extra(dom);  // slot array exhausted
    EXPECT_EQ(dom.min_active(), 0u) << "overflow pin stalls reclamation";
  }
  EXPECT_NE(dom.min_active(), 0u);
  pins.clear();
  EXPECT_EQ(dom.min_active(), EpochDomain::kIdle);
}

TEST(EpochDomain, StackLocalDomainsComeAndGoSafely) {
  // Regression: pins hold no thread-persistent pointer into the domain, so
  // short-lived domains whose stack addresses get reused (plus a pin in an
  // unrelated concurrent domain) must not cross-talk.
  EpochDomain outer;
  EpochDomain::Pin keep(outer);
  for (int i = 0; i < 3; ++i) {
    EpochDomain dom;
    EXPECT_EQ(dom.min_active(), EpochDomain::kIdle);
    EpochDomain::Pin pin(dom);
    EXPECT_EQ(dom.min_active(), dom.current());
  }
}

// ------------------------------------------------------------ EpochLruMap ----

TEST(EpochLruMap, GetPutRoundTripAndReplacement) {
  EpochDomain dom;
  EpochLruMap<int, std::string> map(0, &dom);
  std::string out;
  EXPECT_FALSE(map.get(1, out));
  map.put(1, "one", 1);
  map.put(2, "two", 1);
  ASSERT_TRUE(map.get(1, out));
  EXPECT_EQ(out, "one");
  map.put(1, "uno", 1);  // replacement, not duplication
  ASSERT_TRUE(map.get(1, out));
  EXPECT_EQ(out, "uno");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.total_cost(), 2u);
}

TEST(EpochLruMap, SequentialAccessEvictsInStrictLruOrder) {
  EpochDomain dom;
  EpochLruMap<int, int> map(3, &dom);
  map.put(1, 10, 1);
  map.put(2, 20, 1);
  map.put(3, 30, 1);
  int out = 0;
  ASSERT_TRUE(map.get(1, out));        // 1 becomes most recent; 2 is oldest
  EXPECT_EQ(map.put(4, 40, 1), 1u);    // evicts exactly one: key 2
  EXPECT_FALSE(map.get(2, out)) << "least-recently-used entry must go first";
  EXPECT_TRUE(map.get(1, out));
  EXPECT_TRUE(map.get(3, out));
  EXPECT_TRUE(map.get(4, out));
}

TEST(EpochLruMap, OversizedEntryStaysUntilDisplaced) {
  // Same contract as util/lru.hpp: the entry just inserted is never the
  // eviction victim, even when it alone exceeds the budget.
  EpochDomain dom;
  EpochLruMap<int, int> map(5, &dom);
  map.put(1, 10, 9);  // over budget but resident
  int out = 0;
  EXPECT_TRUE(map.get(1, out));
  EXPECT_EQ(map.put(2, 20, 9), 1u);  // displacing insert evicts it
  EXPECT_FALSE(map.get(1, out));
  EXPECT_TRUE(map.get(2, out));
}

TEST(EpochLruMap, RetiredTablesAreReclaimedOnceReadersLeave) {
  EpochDomain dom;
  EpochLruMap<int, int> map(0, &dom);
  for (int i = 0; i < 8; ++i) map.put(i, i, 1);
  // No reader is pinned, so each put's reclaim pass frees every table the
  // previous puts retired: at most the most recent retirement survives.
  EXPECT_LE(map.retired_count(), 1u);
  {
    EpochDomain::Pin pin(dom);
    map.put(100, 100, 1);
    map.put(101, 101, 1);
    EXPECT_GE(map.retired_count(), 2u)
        << "tables retired while a reader is pinned must not be freed";
  }
  map.put(102, 102, 1);  // first put after unpin reclaims the backlog
  EXPECT_LE(map.retired_count(), 1u);
}

TEST(EpochLruMap, ConcurrentReadersSeeConsistentValuesDuringWrites) {
  // The TSan probe for the lock-free read path: readers hammer get() while
  // a writer churns the table through puts and evictions. Every observed
  // value must equal the pure function of its key that the writer inserts —
  // a torn read, stale-table free, or reused node would break that.
  EpochDomain dom;
  EpochLruMap<int, std::uint64_t> map(64, &dom);
  constexpr int kKeys = 16;
  const auto value_of = [](int key) {
    return 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(key + 1);
  };
  for (int k = 0; k < kKeys; ++k) map.put(k, value_of(k), 1);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t out = 0;
      int key = t;
      while (!stop.load(std::memory_order_relaxed)) {
        if (map.get(key, out) && out != value_of(key)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
        key = (key + 1) % kKeys;
      }
    });
  }
  for (int round = 0; round < 400; ++round) {
    // Overwrites keep the working set; the out-of-range keys force steady
    // eviction churn so readers race table swaps, not just tick bumps.
    map.put(round % kKeys, value_of(round % kKeys), 1);
    map.put(kKeys + (round % 8), value_of(kKeys + (round % 8)), 1);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad.load(), 0) << "reader observed a value not written for its key";
}

}  // namespace
}  // namespace wise
