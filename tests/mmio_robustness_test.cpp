// Robustness tests for the Matrix Market reader/writer: the malformed-input
// corpus under tests/data/malformed/ must be rejected with a typed
// wise::Error of the category encoded in the file name, and write→read must
// round-trip exactly across every supported field × symmetry combination.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/mmio.hpp"
#include "util/error.hpp"

namespace wise {
namespace {

namespace fs = std::filesystem;

// File names are "<category>__<what>.mtx"; the prefix is the expected
// wise::Error category.
ErrorCategory expected_category(const std::string& name) {
  const auto sep = name.find("__");
  EXPECT_NE(sep, std::string::npos) << "bad corpus file name: " << name;
  const std::string prefix = name.substr(0, sep);
  if (prefix == "parse") return ErrorCategory::kParse;
  if (prefix == "validation") return ErrorCategory::kValidation;
  ADD_FAILURE() << "unknown corpus category prefix: " << prefix;
  return ErrorCategory::kParse;
}

TEST(MmioRobustness, RejectsEveryMalformedCorpusFile) {
  const fs::path dir = fs::path(WISE_TEST_DATA_DIR) / "malformed";
  ASSERT_TRUE(fs::exists(dir)) << dir;
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".mtx") continue;
    const std::string name = entry.path().filename().string();
    ++checked;
    try {
      read_matrix_market_file(entry.path().string());
      ADD_FAILURE() << name << ": expected wise::Error, parsed successfully";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), expected_category(name))
          << name << ": " << e.what();
      EXPECT_EQ(e.context().file, entry.path().string()) << name;
    } catch (const std::exception& e) {
      ADD_FAILURE() << name << ": expected wise::Error, got " << e.what();
    }
  }
  EXPECT_GE(checked, 20u) << "corpus unexpectedly small in " << dir;
}

TEST(MmioRobustness, ErrorsCarryLineNumbers) {
  const fs::path path =
      fs::path(WISE_TEST_DATA_DIR) / "malformed" / "parse__malformed_entry.mtx";
  try {
    read_matrix_market_file(path.string());
    FAIL() << "expected wise::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.context().line, 3u) << e.what();  // entry is on line 3
  }
}

// ----------------------------------------------------------- round trip ----

// One exactly-representable matrix per header combination. Values are
// integral so the integer field round-trips; symmetric kinds get consistent
// mirrors; skew gets an empty diagonal; pattern entries are all 1.0 (the
// value the reader synthesizes).
CooMatrix sample_matrix(const MmHeader& h) {
  CooMatrix coo(4, 4);
  auto add_sym = [&](index_t r, index_t c, double v) {
    coo.add(r, c, v);
    const double mirror = h.symmetry == MmSymmetry::kSkewSymmetric ? -v : v;
    if (r != c) coo.add(c, r, mirror);
  };
  const bool pattern = h.field == MmField::kPattern;
  switch (h.symmetry) {
    case MmSymmetry::kGeneral:
      coo.add(0, 0, pattern ? 1.0 : 2.0);
      coo.add(0, 3, 1.0);
      coo.add(2, 1, pattern ? 1.0 : -5.0);
      break;
    case MmSymmetry::kSymmetric:
      add_sym(0, 0, pattern ? 1.0 : 3.0);
      add_sym(2, 0, 1.0);
      add_sym(3, 1, pattern ? 1.0 : -4.0);
      break;
    case MmSymmetry::kSkewSymmetric:
      add_sym(2, 0, pattern ? 1.0 : 6.0);
      add_sym(3, 1, 1.0);
      break;
  }
  coo.canonicalize();
  return coo;
}

TEST(MmioRobustness, RoundTripsAllFieldSymmetryCombos) {
  for (MmField field : {MmField::kReal, MmField::kInteger, MmField::kPattern}) {
    for (MmSymmetry sym :
         {MmSymmetry::kGeneral, MmSymmetry::kSymmetric,
          MmSymmetry::kSkewSymmetric}) {
      if (field == MmField::kPattern && sym == MmSymmetry::kSkewSymmetric) {
        // Pattern entries are all +1.0, which cannot satisfy v(c,r) =
        // -v(r,c); the writer rejects the combination by design.
        continue;
      }
      const MmHeader header{field, sym};
      const CooMatrix coo = sample_matrix(header);
      std::stringstream buf;
      write_matrix_market(buf, coo, header);

      MmHeader parsed;
      const CooMatrix back = read_matrix_market(buf, &parsed);
      EXPECT_EQ(parsed, header) << static_cast<int>(field) << "/"
                                << static_cast<int>(sym);
      EXPECT_EQ(CsrMatrix::from_coo(back), CsrMatrix::from_coo(coo))
          << static_cast<int>(field) << "/" << static_cast<int>(sym);
    }
  }
}

TEST(MmioRobustness, SymmetricStorageKeepsOnlyLowerTriangle) {
  const MmHeader header{MmField::kReal, MmSymmetry::kSymmetric};
  std::stringstream buf;
  write_matrix_market(buf, sample_matrix(header), header);
  // 3 logical entry pairs → 3 stored entries (1 diagonal + 2 lower).
  std::string line;
  std::getline(buf, line);  // banner
  std::getline(buf, line);  // size line
  std::istringstream size(line);
  int rows = 0, cols = 0, stored = 0;
  size >> rows >> cols >> stored;
  EXPECT_EQ(stored, 3);
}

TEST(MmioRobustness, WriterRejectsHeaderMatrixMismatch) {
  // Asymmetric matrix under a symmetric header.
  CooMatrix coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.canonicalize();
  std::stringstream buf;
  try {
    write_matrix_market(buf, coo, {MmField::kReal, MmSymmetry::kSymmetric});
    FAIL() << "expected wise::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kValidation);
  }

  // Non-integral value under an integer header.
  CooMatrix frac(1, 1);
  frac.add(0, 0, 2.5);
  frac.canonicalize();
  std::stringstream buf2;
  EXPECT_THROW(
      write_matrix_market(buf2, frac, {MmField::kInteger, MmSymmetry::kGeneral}),
      Error);

  // Skew-symmetric header with a diagonal entry.
  CooMatrix diag(2, 2);
  diag.add(0, 0, 1.0);
  diag.canonicalize();
  std::stringstream buf3;
  EXPECT_THROW(write_matrix_market(
                   buf3, diag, {MmField::kReal, MmSymmetry::kSkewSymmetric}),
               Error);
}

}  // namespace
}  // namespace wise
