// Tests for the semiring SpMV and graph algorithms.

#include <gtest/gtest.h>

#include <cmath>
#include <queue>

#include "graph/algorithms.hpp"
#include "graph/semiring.hpp"
#include "test_util.hpp"

namespace wise {
namespace {

using testing::expect_vectors_near;
using testing::random_csr;
using testing::random_vector;

/// Small directed test graph:
///   0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 -> 2   (vertex 4 isolated)
CsrMatrix small_digraph() {
  CooMatrix coo(5, 5);
  coo.add(0, 1, 1.0);
  coo.add(0, 2, 1.0);
  coo.add(1, 2, 1.0);
  coo.add(2, 0, 1.0);
  coo.add(3, 2, 1.0);
  return CsrMatrix::from_coo(coo);
}

/// Reference BFS with an explicit queue.
std::vector<index_t> reference_bfs(const CsrMatrix& g, index_t source) {
  std::vector<index_t> level(static_cast<std::size_t>(g.nrows()), -1);
  std::queue<index_t> q;
  level[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const index_t u = q.front();
    q.pop();
    for (index_t v : g.row_cols(u)) {
      if (level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] =
            level[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

/// Reference Dijkstra (non-negative weights).
std::vector<value_t> reference_sssp(const CsrMatrix& g, index_t source) {
  using Entry = std::pair<double, index_t>;
  std::vector<value_t> dist(static_cast<std::size_t>(g.nrows()),
                            std::numeric_limits<value_t>::infinity());
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    const auto cols = g.row_cols(u);
    const auto vals = g.row_vals(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double nd = d + vals[k];
      if (nd < dist[static_cast<std::size_t>(cols[k])]) {
        dist[static_cast<std::size_t>(cols[k])] = static_cast<value_t>(nd);
        pq.push({nd, cols[k]});
      }
    }
  }
  return dist;
}

TEST(Semiring, PlusTimesMatchesOrdinarySpmv) {
  const CsrMatrix m = random_csr(60, 40, 4.0, 1);
  const auto x = random_vector(40, 2);
  std::vector<value_t> y_ref(60), y(60);
  spmv_reference(m, x, y_ref);
  spmv_semiring<PlusTimes>(m, x, y);
  expect_vectors_near(y_ref, y);
}

TEST(Semiring, MinPlusComputesRelaxation) {
  // One row [3, 10] over x = [2, 1]: min(3+2, 10+1) = 5.
  CooMatrix coo(1, 2);
  coo.add(0, 0, 3.0);
  coo.add(0, 1, 10.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const std::vector<value_t> x = {2.0, 1.0};
  std::vector<value_t> y(1);
  spmv_semiring<MinPlus>(m, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(Semiring, MinPlusEmptyRowGivesIdentity) {
  const CsrMatrix m = CsrMatrix::from_coo(CooMatrix(2, 2));
  const std::vector<value_t> x = {1.0, 2.0};
  std::vector<value_t> y(2);
  spmv_semiring<MinPlus>(m, x, y);
  EXPECT_TRUE(std::isinf(y[0]));
  EXPECT_TRUE(std::isinf(y[1]));
}

TEST(Semiring, OrAndComputesReachabilityStep) {
  const CsrMatrix g = small_digraph();
  // Frontier {0} over A^T: reaches 1 and 2.
  const CsrMatrix gt = g.transpose();
  std::vector<value_t> frontier(5, 0), next(5);
  frontier[0] = 1;
  spmv_semiring<OrAnd>(gt, frontier, next);
  EXPECT_EQ(next[1], 1.0);
  EXPECT_EQ(next[2], 1.0);
  EXPECT_EQ(next[3], 0.0);
  EXPECT_EQ(next[4], 0.0);
}

TEST(Semiring, RejectsDimensionMismatch) {
  const CsrMatrix m = random_csr(4, 4, 2.0, 3);
  std::vector<value_t> x(4), y(3);
  EXPECT_THROW(spmv_semiring<PlusTimes>(m, x, y), std::invalid_argument);
}

TEST(Bfs, MatchesReferenceOnSmallGraph) {
  const CsrMatrix g = small_digraph();
  EXPECT_EQ(bfs_levels(g, 0), reference_bfs(g, 0));
  EXPECT_EQ(bfs_levels(g, 3), reference_bfs(g, 3));
}

TEST(Bfs, MatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed : {4u, 5u, 6u}) {
    const CsrMatrix g = CsrMatrix::from_coo(generate_rmat(
        rmat_class_params(RmatClass::kMedSkew, 256, 4), seed));
    EXPECT_EQ(bfs_levels(g, 0), reference_bfs(g, 0)) << "seed " << seed;
  }
}

TEST(Bfs, IsolatedVerticesStayUnreached) {
  const CsrMatrix g = small_digraph();
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[4], -1);
  EXPECT_EQ(levels[3], -1);  // 3 has only an out-edge
}

TEST(Bfs, RejectsBadSource) {
  const CsrMatrix g = small_digraph();
  EXPECT_THROW(bfs_levels(g, -1), std::invalid_argument);
  EXPECT_THROW(bfs_levels(g, 5), std::invalid_argument);
}

TEST(Sssp, MatchesDijkstraOnSmallGraph) {
  CooMatrix coo(4, 4);
  coo.add(0, 1, 1.0);
  coo.add(0, 2, 4.0);
  coo.add(1, 2, 2.0);
  coo.add(2, 3, 1.0);
  const CsrMatrix g = CsrMatrix::from_coo(coo);
  const auto dist = sssp(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 3.0);  // via vertex 1
  EXPECT_DOUBLE_EQ(dist[3], 4.0);
}

TEST(Sssp, MatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed : {7u, 8u}) {
    const CsrMatrix g = CsrMatrix::from_coo(generate_rmat(
        rmat_class_params(RmatClass::kLowSkew, 128, 6), seed));
    const auto bf = sssp(g, 0);
    const auto dj = reference_sssp(g, 0);
    ASSERT_EQ(bf.size(), dj.size());
    for (std::size_t i = 0; i < bf.size(); ++i) {
      if (std::isinf(dj[i])) {
        EXPECT_TRUE(std::isinf(bf[i])) << i;
      } else {
        EXPECT_NEAR(bf[i], dj[i], 1e-9) << i;
      }
    }
  }
}

TEST(PagerankTransition, ColumnsAreStochastic) {
  const CsrMatrix g = small_digraph();
  const CsrMatrix m = pagerank_transition(g);
  // Column u sums to 1 for non-dangling u; sums live in M^T rows.
  const CsrMatrix mt = m.transpose();
  for (index_t u = 0; u < g.nrows(); ++u) {
    double sum = 0;
    for (value_t v : mt.row_vals(u)) sum += v;
    if (g.row_nnz(u) > 0) {
      EXPECT_NEAR(sum, 1.0, 1e-12) << "column " << u;
    } else {
      EXPECT_EQ(sum, 0.0);
    }
  }
}

TEST(Pagerank, SumsToOneAndConverges) {
  const CsrMatrix g = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kHighSkew, 512, 8), 9));
  const CsrMatrix m = pagerank_transition(g);
  const auto res = pagerank(make_csr_operator(m), m.nrows());
  EXPECT_TRUE(res.converged);
  double sum = 0;
  for (value_t v : res.rank) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Pagerank, UniformOnSymmetricCycle) {
  // A directed cycle: perfectly symmetric, so PageRank must be uniform.
  CooMatrix coo(6, 6);
  for (index_t i = 0; i < 6; ++i) coo.add(i, (i + 1) % 6, 1.0);
  const CsrMatrix m = pagerank_transition(CsrMatrix::from_coo(coo));
  const auto res = pagerank(make_csr_operator(m), 6);
  for (value_t v : res.rank) EXPECT_NEAR(v, 1.0 / 6.0, 1e-10);
}

TEST(Pagerank, HubGetsHigherRank) {
  // Everyone links to vertex 0; vertex 0 links back to 1.
  CooMatrix coo(5, 5);
  for (index_t i = 1; i < 5; ++i) coo.add(i, 0, 1.0);
  coo.add(0, 1, 1.0);
  const CsrMatrix m = pagerank_transition(CsrMatrix::from_coo(coo));
  const auto res = pagerank(make_csr_operator(m), 5);
  for (index_t i = 2; i < 5; ++i) {
    EXPECT_GT(res.rank[0], res.rank[static_cast<std::size_t>(i)]);
  }
}

TEST(Hits, IdentifiesHubAndAuthority) {
  // Vertices 0,1,2 all point at 3 and 4. 0-2 are hubs, 3-4 authorities.
  CooMatrix coo(5, 5);
  for (index_t h = 0; h < 3; ++h) {
    coo.add(h, 3, 1.0);
    coo.add(h, 4, 1.0);
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const CsrMatrix at = a.transpose();
  const auto res = hits(make_csr_operator(a), make_csr_operator(at),
                        a.nrows());
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.hub[0], res.hub[3]);
  EXPECT_GT(res.authority[3], res.authority[0]);
  EXPECT_NEAR(res.authority[3], res.authority[4], 1e-9);
}

TEST(Hits, VectorsAreUnitNorm) {
  const CsrMatrix g = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kMedSkew, 256, 6), 10));
  const CsrMatrix gt = g.transpose();
  const auto res = hits(make_csr_operator(g), make_csr_operator(gt),
                        g.nrows());
  EXPECT_NEAR(blas::norm2(res.hub), 1.0, 1e-9);
  EXPECT_NEAR(blas::norm2(res.authority), 1.0, 1e-9);
}

}  // namespace
}  // namespace wise
