// Tests for the observability layer: the metrics registry (thread-merged
// counters/timers, disabled-mode zero-allocation contract), the JSON
// document model, and the WISE_METRICS config parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"

using namespace wise;
using obs::JsonValue;
using obs::MetricsRegistry;
using obs::ScopedTimer;

// ---------------------------------------------------------------------------
// Global allocation counter for the zero-allocation contract. Replacing
// operator new program-wide is safe here: the counter is only *read* inside
// one single-threaded test region, everywhere else it just ticks.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

TEST(MetricsRegistry, CountersAccumulateAndMerge) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("test.counter");
  reg.add("test.counter", 4);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "test.counter");
  EXPECT_EQ(snap.counters[0].value, 5u);
}

TEST(MetricsRegistry, DisabledRecordsNothing) {
  MetricsRegistry reg;
  ASSERT_FALSE(reg.enabled());
  reg.add("test.counter");
  reg.record_ns("test.timer", 100);
  reg.set_gauge("test.gauge", 1.0);
  { ScopedTimer t("test.span", reg); }
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(MetricsRegistry, DisabledModeDoesNotAllocate) {
  MetricsRegistry reg;
  // Pre-intern so the id paths are exercised too; interning itself may
  // allocate (it is a one-time setup cost, not a hot-path cost).
  const obs::MetricId cid = reg.counter_id("test.alloc.counter");
  const obs::MetricId tid = reg.timer_id("test.alloc.timer");
  reg.set_enabled(false);

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    reg.add("test.alloc.counter");
    reg.record_ns("test.alloc.timer", 42);
    reg.set_gauge("test.alloc.gauge", 1.0);
    reg.add(cid);
    reg.record_ns(tid, 42);
    ScopedTimer span("test.alloc.span", reg);
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "disabled-mode metric calls must not touch the heap";
}

TEST(MetricsRegistry, TimerStatsAreExactForCountTotalMinMax) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::MetricId id = reg.timer_id("test.timer");
  std::uint64_t total = 0;
  for (std::uint64_t ns = 1; ns <= 1000; ++ns) {
    reg.record_ns(id, ns);
    total += ns;
  }
  const auto snap = reg.snapshot();
  const auto* t = snap.find_timer("test.timer");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->stats.count, 1000u);
  EXPECT_EQ(t->stats.total_ns, total);
  EXPECT_EQ(t->stats.min_ns, 1u);
  EXPECT_EQ(t->stats.max_ns, 1000u);
  EXPECT_DOUBLE_EQ(t->stats.mean_ns, static_cast<double>(total) / 1000.0);
  // Percentiles come from the decimated reservoir: approximate, but must
  // land near the true quantiles of the uniform 1..1000 stream.
  EXPECT_NEAR(t->stats.p50_ns, 500.0, 50.0);
  EXPECT_NEAR(t->stats.p95_ns, 950.0, 50.0);
}

TEST(MetricsRegistry, ReservoirBoundedUnderManySamples) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::MetricId id = reg.timer_id("test.timer");
  for (int i = 0; i < 20000; ++i) reg.record_ns(id, 7);
  const auto snap = reg.snapshot();
  const auto* t = snap.find_timer("test.timer");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->stats.count, 20000u);
  EXPECT_EQ(t->stats.total_ns, 140000u);
  EXPECT_DOUBLE_EQ(t->stats.p50_ns, 7.0);
  EXPECT_DOUBLE_EQ(t->stats.p95_ns, 7.0);
}

TEST(MetricsRegistry, MergesAcrossThreads) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::MetricId counter = reg.counter_id("test.mt.counter");
  const obs::MetricId timer = reg.timer_id("test.mt.timer");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, counter, timer] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(counter);
        reg.record_ns(timer, 3);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto snap = reg.snapshot();
  const auto* c = snap.find_counter("test.mt.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto* t = snap.find_timer("test.mt.timer");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->stats.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(t->stats.total_ns,
            static_cast<std::uint64_t>(kThreads) * kPerThread * 3);
}

TEST(MetricsRegistry, GaugeKeepsLastValue) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.set_gauge("test.gauge", 1.5);
  reg.set_gauge("test.gauge", 8.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 8.0);
}

TEST(MetricsRegistry, InternKindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter_id("test.name");
  EXPECT_THROW(reg.timer_id("test.name"), std::logic_error);
}

TEST(MetricsRegistry, ResetClearsValuesButKeepsIds) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::MetricId id = reg.counter_id("test.counter");
  reg.add(id, 3);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_EQ(reg.counter_id("test.counter"), id);
  reg.add(id);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("test.counter")->value, 1u);
}

TEST(MetricsRegistry, SnapshotRowsSortedByName) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("zz.last");
  reg.add("aa.first");
  reg.add("mm.middle");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aa.first");
  EXPECT_EQ(snap.counters[1].name, "mm.middle");
  EXPECT_EQ(snap.counters[2].name, "zz.last");
}

TEST(ScopedTimer, RecordsOnDestruction) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  { ScopedTimer span("test.span", reg); }
  const auto snap = reg.snapshot();
  const auto* t = snap.find_timer("test.span");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->stats.count, 1u);
}

// ---------------------------------------------------------------------------
// JSON schema round-trip: registry -> metrics_to_json -> dump -> parse.

TEST(MetricsJson, SchemaRoundTrips) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("test.counter", 7);
  reg.set_gauge("test.gauge", 2.25);
  reg.record_ns("test.timer", 100);
  reg.record_ns("test.timer", 300);

  const JsonValue doc = obs::metrics_to_json(reg.snapshot());
  const auto parsed = JsonValue::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->find("schema")->as_string(), "wise-metrics");
  EXPECT_EQ(parsed->find("version")->as_int(), obs::kMetricsSchemaVersion);

  const JsonValue* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->size(), 1u);
  EXPECT_EQ(counters->at(0).find("name")->as_string(), "test.counter");
  EXPECT_EQ(counters->at(0).find("value")->as_uint(), 7u);

  const JsonValue* gauges = parsed->find("gauges");
  ASSERT_EQ(gauges->size(), 1u);
  EXPECT_DOUBLE_EQ(gauges->at(0).find("value")->as_double(), 2.25);

  const JsonValue* timers = parsed->find("timers");
  ASSERT_EQ(timers->size(), 1u);
  const JsonValue& row = timers->at(0);
  EXPECT_EQ(row.find("count")->as_uint(), 2u);
  EXPECT_EQ(row.find("total_ns")->as_uint(), 400u);
  EXPECT_EQ(row.find("min_ns")->as_uint(), 100u);
  EXPECT_EQ(row.find("max_ns")->as_uint(), 300u);
  EXPECT_DOUBLE_EQ(row.find("mean_ns")->as_double(), 200.0);
}

// ---------------------------------------------------------------------------
// JsonValue model and parser.

TEST(Json, WriterStableKeyOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("z", 1);
  obj.set("a", 2);
  obj.set("z", 3);  // overwrite keeps first-insertion position
  EXPECT_EQ(obj.dump(0), "{\"z\": 3,\"a\": 2}");
}

TEST(Json, ParserPreservesIntegerness) {
  const auto doc = JsonValue::parse("[1, -2, 18446744073709551615, 2.5]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at(0).as_int(), 1);
  EXPECT_EQ(doc->at(1).as_int(), -2);
  EXPECT_EQ(doc->at(2).as_uint(), 18446744073709551615ull);
  EXPECT_EQ(doc->at(3).type(), JsonValue::Type::kDouble);
  EXPECT_DOUBLE_EQ(doc->at(3).as_double(), 2.5);
}

TEST(Json, ParserHandlesEscapesAndSurrogatePairs) {
  const auto doc =
      JsonValue::parse(R"({"s": "a\"b\\c\né 😀"})");
  ASSERT_TRUE(doc.has_value());
  const std::string& s = doc->find("s")->as_string();
  EXPECT_EQ(s, "a\"b\\c\n\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\": }").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("[1 2]").has_value());
}

TEST(Json, DumpParseFixpoint) {
  const std::string text =
      R"({"a": [1, 2.5, true, null], "b": {"c": "x"}, "d": -7})";
  const auto once = JsonValue::parse(text);
  ASSERT_TRUE(once.has_value());
  const auto twice = JsonValue::parse(once->dump());
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(once->dump(), twice->dump());
}

TEST(Json, SameShapeAcceptsMatchingAndRejectsDivergent) {
  const auto golden =
      JsonValue::parse(R"({"a": 1, "rows": [{"n": "x", "v": 0}]})");
  const auto ok = JsonValue::parse(
      R"({"a": 99.5, "rows": [{"n": "y", "v": 3}, {"n": "z", "v": 4}]})");
  ASSERT_TRUE(golden.has_value() && ok.has_value());
  EXPECT_TRUE(obs::json_same_shape(*golden, *ok));

  std::string why;
  const auto missing = JsonValue::parse(R"({"a": 1, "rows": []})");
  EXPECT_TRUE(obs::json_same_shape(*golden, *missing, &why)) << why;

  const auto wrong_key = JsonValue::parse(
      R"({"a": 1, "rows": [{"n": "x", "wrong": 0}]})");
  EXPECT_FALSE(obs::json_same_shape(*golden, *wrong_key, &why));
  EXPECT_NE(why.find("rows[0]"), std::string::npos) << why;

  const auto wrong_type = JsonValue::parse(R"({"a": "str", "rows": []})");
  EXPECT_FALSE(obs::json_same_shape(*golden, *wrong_type));
}

// ---------------------------------------------------------------------------
// WISE_METRICS parsing.

TEST(MetricsConfig, ParsesAllModes) {
  using Mode = obs::MetricsConfig::Mode;
  EXPECT_EQ(obs::parse_metrics_config("off").mode, Mode::kOff);
  EXPECT_EQ(obs::parse_metrics_config("").mode, Mode::kOff);
  EXPECT_EQ(obs::parse_metrics_config("bogus").mode, Mode::kOff);

  EXPECT_EQ(obs::parse_metrics_config("table").mode, Mode::kTable);
  EXPECT_TRUE(obs::parse_metrics_config("table").path.empty());

  EXPECT_EQ(obs::parse_metrics_config("json").mode, Mode::kJson);
  const auto json_file = obs::parse_metrics_config("json:/tmp/m.json");
  EXPECT_EQ(json_file.mode, Mode::kJson);
  EXPECT_EQ(json_file.path, "/tmp/m.json");

  const auto csv = obs::parse_metrics_config("csv:/tmp/m.csv");
  EXPECT_EQ(csv.mode, Mode::kCsv);
  EXPECT_EQ(csv.path, "/tmp/m.csv");
}

}  // namespace
