// Correctness tests for every SpMV kernel against the serial reference,
// parameterized over the full 29-configuration method space and several
// matrix shapes.

#include <gtest/gtest.h>

#include "spmv/csr_kernels.hpp"
#include "spmv/executor.hpp"
#include "spmv/method.hpp"
#include "spmv/srvpack_kernels.hpp"
#include "test_util.hpp"

namespace wise {
namespace {

using testing::expect_vectors_near;
using testing::random_csr;
using testing::random_vector;

// -------------------------------------------------------- CSR kernels ----

class CsrScheduleTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(CsrScheduleTest, MatchesReferenceOnRandomMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const CsrMatrix m = random_csr(200, 150, 6.0, seed);
    const auto x = random_vector(150, seed + 100);
    std::vector<value_t> y_ref(200), y(200, -1.0);
    spmv_reference(m, x, y_ref);
    spmv_csr(m, x, y, GetParam());
    expect_vectors_near(y_ref, y);
  }
}

TEST_P(CsrScheduleTest, WritesZerosForEmptyRows) {
  CooMatrix coo(6, 6);
  coo.add(2, 3, 5.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const auto x = random_vector(6, 1);
  std::vector<value_t> y(6, -99.0);
  spmv_csr(m, x, y, GetParam());
  for (index_t i = 0; i < 6; ++i) {
    if (i != 2) {
      EXPECT_EQ(y[static_cast<std::size_t>(i)], 0.0);
    }
  }
}

TEST_P(CsrScheduleTest, RejectsDimensionMismatch) {
  const CsrMatrix m = random_csr(4, 5, 2.0, 1);
  std::vector<value_t> x(5), y_small(3);
  EXPECT_THROW(spmv_csr(m, x, y_small, GetParam()), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, CsrScheduleTest,
                         ::testing::Values(Schedule::kDyn, Schedule::kSt,
                                           Schedule::kStCont),
                         [](const auto& info) {
                           return schedule_name(info.param);
                         });

TEST(MklLike, MatchesReference) {
  for (std::uint64_t seed : {4u, 5u}) {
    const CsrMatrix m = random_csr(300, 300, 8.0, seed);
    const auto x = random_vector(300, seed);
    std::vector<value_t> y_ref(300), y(300, -1.0);
    spmv_reference(m, x, y_ref);
    spmv_csr_mkl_like(m, x, y);
    expect_vectors_near(y_ref, y);
  }
}

TEST(MklLike, CoversLeadingAndTrailingEmptyRows) {
  CooMatrix coo(10, 10);
  coo.add(4, 4, 2.0);  // rows 0-3 and 5-9 empty
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const auto x = random_vector(10, 2);
  std::vector<value_t> y(10, -7.0);
  spmv_csr_mkl_like(m, x, y);
  for (index_t i = 0; i < 10; ++i) {
    if (i != 4) {
      EXPECT_EQ(y[static_cast<std::size_t>(i)], 0.0) << "row " << i;
    }
  }
  EXPECT_NEAR(y[4], 2.0 * x[4], 1e-12);
}

TEST(MklLike, HandlesHighlySkewedRowLengths) {
  // One giant row plus many tiny ones exercises the nnz-balanced split.
  CooMatrix coo(100, 100);
  for (index_t j = 0; j < 100; ++j) coo.add(0, j, 1.0);
  for (index_t i = 1; i < 100; ++i) coo.add(i, i, 1.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const auto x = random_vector(100, 3);
  std::vector<value_t> y_ref(100), y(100);
  spmv_reference(m, x, y_ref);
  spmv_csr_mkl_like(m, x, y);
  expect_vectors_near(y_ref, y);
}

// ------------------------------------------------- full method space ----

struct ConfigCase {
  MethodConfig cfg;
  std::string name;
};

std::vector<ConfigCase> all_cases() {
  std::vector<ConfigCase> cases;
  for (const auto& cfg : all_method_configs()) {
    std::string name = cfg.name();
    for (char& ch : name) {
      if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    }
    cases.push_back({cfg, std::move(name)});
  }
  return cases;
}

class MethodSpaceTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(MethodSpaceTest, PreparedRunMatchesReference) {
  const auto& cfg = GetParam().cfg;
  for (std::uint64_t seed : {10u, 20u}) {
    const CsrMatrix m = random_csr(257, 193, 7.0, seed);  // odd, non-square
    const auto x = random_vector(193, seed + 1);
    std::vector<value_t> y_ref(257), y(257, -1.0);
    spmv_reference(m, x, y_ref);
    PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
    pm.run(x, y);
    expect_vectors_near(y_ref, y);
  }
}

TEST_P(MethodSpaceTest, SecondRunIsIdentical) {
  // Workspace reuse across iterations must not corrupt results.
  const auto& cfg = GetParam().cfg;
  const CsrMatrix m = random_csr(100, 100, 5.0, 42);
  const auto x = random_vector(100, 43);
  std::vector<value_t> y1(100), y2(100);
  PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
  pm.run(x, y1);
  pm.run(x, y2);
  EXPECT_EQ(y1, y2);
}

TEST_P(MethodSpaceTest, HandlesSkewedPowerLawMatrix) {
  const auto& cfg = GetParam().cfg;
  const RmatParams params{.n = 256, .avg_degree = 8.0};
  const CsrMatrix m = CsrMatrix::from_coo(generate_rmat(params, 7));
  const auto x = random_vector(static_cast<std::size_t>(m.ncols()), 8);
  std::vector<value_t> y_ref(static_cast<std::size_t>(m.nrows()));
  std::vector<value_t> y(y_ref.size());
  spmv_reference(m, x, y_ref);
  PreparedMatrix pm = PreparedMatrix::prepare(m, cfg);
  pm.run(x, y);
  expect_vectors_near(y_ref, y);
}

INSTANTIATE_TEST_SUITE_P(All29Configs, MethodSpaceTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.name; });

// --------------------------------------------------- SRVPack kernels ----

TEST(SrvPackKernel, GenericWidthFallbackWorks) {
  // c=3 is not an instantiated SIMD width; exercises run_chunks_generic.
  const CsrMatrix m = random_csr(50, 50, 4.0, 9);
  const SrvPackMatrix p = SrvPackMatrix::build(m, {.c = 3, .sigma = 8});
  const auto x = random_vector(50, 10);
  std::vector<value_t> y_ref(50), y(50);
  spmv_reference(m, x, y_ref);
  SrvWorkspace ws;
  spmv_srvpack(p, x, y, Schedule::kDyn, ws);
  expect_vectors_near(y_ref, y);
}

TEST(SrvPackKernel, RejectsDimensionMismatch) {
  const CsrMatrix m = random_csr(10, 10, 2.0, 1);
  const SrvPackMatrix p = SrvPackMatrix::build(m, {.c = 4});
  std::vector<value_t> x(10), y(5);
  SrvWorkspace ws;
  EXPECT_THROW(spmv_srvpack(p, x, y, Schedule::kDyn, ws),
               std::invalid_argument);
}

TEST(SrvPackKernel, EmptyMatrixProducesZeroVector) {
  const CsrMatrix m = CsrMatrix::from_coo(CooMatrix(5, 5));
  const SrvPackMatrix p = SrvPackMatrix::build(m, {.c = 4});
  const auto x = random_vector(5, 2);
  std::vector<value_t> y(5, 1.0);
  SrvWorkspace ws;
  spmv_srvpack(p, x, y, Schedule::kStCont, ws);
  for (value_t v : y) EXPECT_EQ(v, 0.0);
}

TEST(SrvPackKernel, SingleColumnMatrix) {
  CooMatrix coo(8, 1);
  for (index_t i = 0; i < 8; ++i) coo.add(i, 0, static_cast<value_t>(i + 1));
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const SrvPackMatrix p =
      SrvPackMatrix::build(m, {.c = 4, .sigma = kSigmaAll, .cfs = true});
  const std::vector<value_t> x = {2.0};
  std::vector<value_t> y(8);
  SrvWorkspace ws;
  spmv_srvpack(p, x, y, Schedule::kDyn, ws);
  for (index_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], 2.0 * (i + 1));
  }
}

// ------------------------------------------------------------ executor ----

TEST(Executor, CsrPrepareHasZeroPreprocessingTime) {
  const CsrMatrix m = random_csr(50, 50, 3.0, 1);
  PreparedMatrix pm = PreparedMatrix::prepare(
      m, {.kind = MethodKind::kCsr, .sched = Schedule::kDyn});
  EXPECT_EQ(pm.prep_seconds(), 0.0);
  EXPECT_EQ(pm.memory_bytes(), m.memory_bytes());
}

TEST(Executor, PackedPrepareMeasuresTime) {
  const CsrMatrix m = random_csr(500, 500, 8.0, 2);
  PreparedMatrix pm = PreparedMatrix::prepare(
      m, {.kind = MethodKind::kLav,
          .sched = Schedule::kDyn,
          .c = 8,
          .sigma = kSigmaAll,
          .T = 0.8});
  EXPECT_GT(pm.prep_seconds(), 0.0);
  EXPECT_GT(pm.memory_bytes(), 0u);
}

TEST(Executor, TimeSpmvReturnsPositiveSeconds) {
  const CsrMatrix m = random_csr(100, 100, 4.0, 3);
  const auto x = random_vector(100, 4);
  std::vector<value_t> y(100);
  PreparedMatrix pm = PreparedMatrix::prepare(
      m, {.kind = MethodKind::kCsr, .sched = Schedule::kStCont});
  EXPECT_GT(time_spmv(pm, x, y, 2, 2), 0.0);
}

}  // namespace
}  // namespace wise
