// Tests for plan-time kernel specialization (src/spmv/plan.hpp):
// classifier pins on hand-built row-length distributions, specialized-plan
// structure invariants, the WISE_PLAN_SPECIALIZE switch, and bit-identity
// between specialized and generic plan execution across the variant matrix
// (uniform, dense-row, skewed, empty blocks) at OMP_NUM_THREADS in
// {1, 2, 8} for both kernel families.

#include <gtest/gtest.h>

#include <omp.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "gen/generators.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/executor.hpp"
#include "spmv/method.hpp"
#include "spmv/plan.hpp"
#include "spmv/srvpack_kernels.hpp"
#include "test_util.hpp"

namespace wise {
namespace {

using testing::random_csr;
using testing::random_vector;

/// Prefix sum over a list of item lengths (a synthetic row_ptr).
std::vector<nnz_t> offsets_from_lens(const std::vector<nnz_t>& lens) {
  std::vector<nnz_t> off(lens.size() + 1, 0);
  std::partial_sum(lens.begin(), lens.end(), off.begin() + 1);
  return off;
}

KernelVariant classify_lens(const std::vector<nnz_t>& lens) {
  const auto off = offsets_from_lens(lens);
  return classify_block(off, 0, static_cast<index_t>(lens.size()));
}

// ------------------------------------------------------- classifier ----

TEST(VariantClassifier, PinsHandBuiltDistributions) {
  // All-tiny (incl. all-empty) blocks take the scalar merge path.
  EXPECT_EQ(classify_lens({0, 0, 0, 0}), KernelVariant::kMerge);
  EXPECT_EQ(classify_lens({1, 2, 1, 0}), KernelVariant::kMerge);
  // Tiny beats uniform: rule order matters and is part of the contract.
  EXPECT_EQ(classify_lens({2, 2, 2}), KernelVariant::kMerge);
  // Same length everywhere (3+): hoisted-trip-count unrolled loop.
  EXPECT_EQ(classify_lens({17, 17, 17, 17}), KernelVariant::kUniform);
  // Uniform beats wide even for long rows.
  EXPECT_EQ(classify_lens({70, 70}), KernelVariant::kUniform);
  // Long mixed rows: mean >= kWideMeanLen picks the wide interleave.
  EXPECT_EQ(classify_lens({100, 80, 120, 90}), KernelVariant::kWide);
  // Skew: a hub row among tiny rows, mean below the wide bar.
  EXPECT_EQ(classify_lens({1, 1, 1, 1, 1, 1, 1, 40}), KernelVariant::kMerge);
  // Merge beats wide: a tiny tail dominates even when a hub pulls the
  // mean past the wide bar.
  EXPECT_EQ(classify_lens({500, 1, 1, 1}), KernelVariant::kMerge);
  // Moderate non-uniform rows with no tiny tail stay generic.
  EXPECT_EQ(classify_lens({10, 20, 30}), KernelVariant::kGeneric);
  // Degenerate empty range.
  const auto off = offsets_from_lens({5, 5});
  EXPECT_EQ(classify_block(off, 1, 1), KernelVariant::kGeneric);
}

TEST(VariantClassifier, ThresholdBoundaries) {
  // Exactly at the wide mean -> wide; just below -> generic.
  const auto wide_mean = static_cast<nnz_t>(kWideMeanLen);
  EXPECT_EQ(classify_lens({wide_mean, wide_mean + 10, wide_mean - 10}),
            KernelVariant::kWide);
  EXPECT_EQ(classify_lens({wide_mean - 2, wide_mean - 10, wide_mean + 2}),
            KernelVariant::kGeneric);
  // Tiny fraction exactly at kMergeTinyFrac (1/10 >= 0.1) -> merge.
  EXPECT_EQ(classify_lens({1, 10, 10, 10, 10, 10, 10, 10, 10, 10}),
            KernelVariant::kMerge);
  // 1/11 < 0.1 -> generic.
  EXPECT_EQ(classify_lens({1, 10, 10, 10, 10, 10, 10, 10, 10, 10, 11}),
            KernelVariant::kGeneric);
}

// --------------------------------------------- specialized plan shape ----

TEST(SpecializedPlan, SubdividesAndRecordsVariants) {
  const CsrMatrix m = CsrMatrix::from_coo(
      generate_rmat(rmat_class_params(RmatClass::kHighSkew, 2048, 8.0), 7));
  const SpmvPlan generic = build_balanced_plan(m.row_ptr(), 4);
  const SpmvPlan spec = build_specialized_plan(m.row_ptr(), 4);
  EXPECT_TRUE(spec.covers(m.nrows()));
  EXPECT_TRUE(spec.specialized());
  EXPECT_FALSE(generic.specialized());
  EXPECT_GT(spec.num_blocks(), generic.num_blocks())
      << "specialization subdivides the balanced partition";
  ASSERT_EQ(spec.variants.size(),
            static_cast<std::size_t>(spec.num_blocks()));

  const auto hist = spec.variant_histogram();
  std::uint32_t total = 0;
  for (const auto count : hist) total += count;
  EXPECT_EQ(total, static_cast<std::uint32_t>(spec.num_blocks()));
  // A high-skew RMAT matrix is dominated by tiny rows: the merge variant
  // must fire (this is the whole point of the menu).
  EXPECT_GT(hist[static_cast<std::size_t>(KernelVariant::kMerge)], 0u);

  // An unspecialized plan reports all blocks generic.
  const auto ghist = generic.variant_histogram();
  EXPECT_EQ(ghist[static_cast<std::size_t>(KernelVariant::kGeneric)],
            static_cast<std::uint32_t>(generic.num_blocks()));

  // The variant table is charged into plan memory (serve::PreparedCache
  // budgets depend on this).
  EXPECT_GE(spec.memory_bytes(),
            spec.bounds.capacity() * sizeof(index_t) + spec.variants.size());
}

TEST(SpecializedPlan, UniformBandedClassifiesUniform) {
  // density=1.0 banded: interior rows all have exactly 2*hb+1 nonzeros.
  const CsrMatrix m =
      CsrMatrix::from_coo(generate_banded(512, 8, 1.0, 3));
  const SpmvPlan spec = build_specialized_plan(m.row_ptr(), 2);
  EXPECT_TRUE(spec.covers(m.nrows()));
  const auto hist = spec.variant_histogram();
  EXPECT_GT(hist[static_cast<std::size_t>(KernelVariant::kUniform)], 0u);
}

TEST(SpecializedPlan, CoversDegenerateInputs) {
  // Empty matrix and all-empty-rows matrix still produce covering plans.
  const CsrMatrix empty = CsrMatrix::from_coo(CooMatrix(0, 0));
  EXPECT_TRUE(build_specialized_plan(empty.row_ptr(), 8).covers(0));
  const CsrMatrix hollow = CsrMatrix::from_coo(CooMatrix(64, 64));
  const SpmvPlan plan = build_specialized_plan(hollow.row_ptr(), 8);
  EXPECT_TRUE(plan.covers(64));
}

TEST(SpecializedPlan, EnvSwitchControlsDefaultBuilders) {
  const CsrMatrix m = random_csr(256, 256, 6.0, 11);
  ASSERT_EQ(::unsetenv("WISE_PLAN_SPECIALIZE"), 0);
  EXPECT_TRUE(plan_specialization_enabled()) << "default is on";
  EXPECT_TRUE(build_csr_plan(m, Schedule::kStCont, 4).specialized());
  ASSERT_EQ(::setenv("WISE_PLAN_SPECIALIZE", "0", 1), 0);
  EXPECT_FALSE(plan_specialization_enabled());
  EXPECT_FALSE(build_csr_plan(m, Schedule::kStCont, 4).specialized());
  ASSERT_EQ(::unsetenv("WISE_PLAN_SPECIALIZE"), 0);
}

TEST(SpecializedPlan, CoversRejectsMismatchedVariantTable) {
  SpmvPlan plan = build_specialized_plan(
      random_csr(128, 128, 4.0, 13).row_ptr(), 4);
  ASSERT_TRUE(plan.covers(128));
  plan.variants.push_back(0);  // one entry too many
  EXPECT_FALSE(plan.covers(128));
}

// ---------------------------------- bit-identity across variant matrix ----

/// The variant matrix: each fixture is built to steer the classifier into
/// a different specialized loop (plus mixtures). Specialized execution
/// must be bit-identical to the generic plan AND the legacy loop at every
/// thread count and schedule.
std::vector<std::pair<const char*, CsrMatrix>> variant_fixtures() {
  std::vector<std::pair<const char*, CsrMatrix>> fixtures;
  // Uniform short rows (banded, full density).
  fixtures.emplace_back(
      "uniform", CsrMatrix::from_coo(generate_banded(512, 8, 1.0, 3)));
  // Long dense rows: every row holds ~200 of 512 columns.
  fixtures.emplace_back("dense-row", random_csr(96, 512, 200.0, 5));
  // Pathological skew (hub rows + a tail of empties/singletons).
  fixtures.emplace_back(
      "skewed", CsrMatrix::from_coo(generate_rmat(
                    rmat_class_params(RmatClass::kHighSkew, 2048, 8.0), 9)));
  // Empty blocks: sparse diagonal with long runs of empty rows.
  {
    CooMatrix coo(512, 512);
    for (index_t i = 0; i < 512; i += 64) {
      coo.add(i, i, static_cast<value_t>(i + 1));
      coo.add(i, (i + 7) % 512, 2.0);
      coo.add(i, (i + 13) % 512, 3.0);
      coo.add(i, (i + 21) % 512, 4.0);
    }
    fixtures.emplace_back("empty-blocks", CsrMatrix::from_coo(coo));
  }
  return fixtures;
}

TEST(SpecializeBitIdentity, CsrAcrossVariantMatrixAndThreadCounts) {
  const int ambient = omp_get_max_threads();
  for (const auto& [label, m] : variant_fixtures()) {
    const auto x = random_vector(static_cast<std::size_t>(m.ncols()), 17);
    std::vector<value_t> y_legacy(static_cast<std::size_t>(m.nrows()));
    std::vector<value_t> y_generic(y_legacy.size(), -1.0);
    std::vector<value_t> y_spec(y_legacy.size(), -2.0);
    for (const Schedule sched :
         {Schedule::kDyn, Schedule::kSt, Schedule::kStCont}) {
      for (const int threads : {1, 2, 8}) {
        omp_set_num_threads(threads);
        const SpmvPlan generic =
            build_csr_plan(m, sched, threads, /*specialize=*/false);
        const SpmvPlan spec =
            build_csr_plan(m, sched, threads, /*specialize=*/true);
        spmv_csr(m, x, y_legacy, sched);
        spmv_csr(m, x, y_generic, sched, generic);
        spmv_csr(m, x, y_spec, sched, spec);
        EXPECT_EQ(y_legacy, y_generic)
            << label << " generic plan, " << schedule_name(sched) << " @ "
            << threads << " threads";
        EXPECT_EQ(y_legacy, y_spec)
            << label << " specialized plan, " << schedule_name(sched)
            << " @ " << threads << " threads";
      }
    }
  }
  omp_set_num_threads(ambient);
}

TEST(SpecializeBitIdentity, SrvPackAcrossThreadCounts) {
  const int ambient = omp_get_max_threads();
  const CsrMatrix m = CsrMatrix::from_coo(
      generate_rmat(rmat_class_params(RmatClass::kHighSkew, 1024, 8.0), 21));
  const auto x = random_vector(static_cast<std::size_t>(m.ncols()), 23);
  // Cover both compile-time lane widths and the runtime-width fallback.
  const std::vector<SrvBuildOptions> options = {
      {.c = 4, .sigma = 64},
      {.c = 8, .sigma = kSigmaAll, .cfs = true, .segment_fractions = {0.8}},
      {.c = 16, .sigma = 128}};
  for (const auto& opt : options) {
    const SrvPackMatrix p = SrvPackMatrix::build(m, opt);
    std::vector<value_t> y_generic(static_cast<std::size_t>(m.nrows()));
    std::vector<value_t> y_spec(y_generic.size(), -1.0);
    SrvWorkspace ws_generic, ws_spec;
    for (const Schedule sched : {Schedule::kDyn, Schedule::kStCont}) {
      for (const int threads : {1, 2, 8}) {
        omp_set_num_threads(threads);
        const SrvPlan generic =
            build_srv_plan(p, sched, threads, /*specialize=*/false);
        const SrvPlan spec =
            build_srv_plan(p, sched, threads, /*specialize=*/true);
        spmv_srvpack(p, x, y_generic, sched, ws_generic, &generic);
        spmv_srvpack(p, x, y_spec, sched, ws_spec, &spec);
        EXPECT_EQ(y_generic, y_spec)
            << "c=" << opt.c << " " << schedule_name(sched) << " @ "
            << threads << " threads";
      }
    }
  }
  omp_set_num_threads(ambient);
}

/// Signed-zero edge case: a negative value times an exactly-zero x entry
/// produces -0.0; the generic loop's `acc = 0; acc += ...` chain turns it
/// into +0.0, and the scalar fast paths must do exactly the same.
TEST(SpecializeBitIdentity, SignedZeroRowsMatchGenericBits) {
  CooMatrix coo(8, 8);
  coo.add(0, 0, -1.0);  // len-1 row, product -0.0
  coo.add(1, 1, -2.0);  // len-2 row, both products -0.0
  coo.add(1, 2, -3.0);
  coo.add(4, 3, -4.0);  // len-1 row against nonzero x
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  std::vector<value_t> x(8, 0.0);
  x[3] = 5.0;
  std::vector<value_t> y_legacy(8), y_spec(8, -1.0);
  const SpmvPlan spec = build_specialized_plan(m.row_ptr(), 1);
  ASSERT_TRUE(spec.specialized());
  spmv_csr(m, x, y_legacy, Schedule::kStCont);
  spmv_csr(m, x, y_spec, Schedule::kStCont, spec);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(std::signbit(y_legacy[i]), std::signbit(y_spec[i]))
        << "row " << i;
    EXPECT_EQ(y_legacy[i], y_spec[i]) << "row " << i;
  }
}

// --------------------------------------------------- executor wiring ----

TEST(SpecializeExecutor, PreparedMatrixCarriesVariantTable) {
  const CsrMatrix m = CsrMatrix::from_coo(
      generate_rmat(rmat_class_params(RmatClass::kHighSkew, 1024, 8.0), 31));
  PreparedMatrix csr = PreparedMatrix::prepare(
      m, {.kind = MethodKind::kCsr, .sched = Schedule::kStCont});
  ASSERT_TRUE(csr.has_plan());
  EXPECT_GT(csr.plan_bytes(), 0u);

  const auto x = random_vector(static_cast<std::size_t>(m.ncols()), 33);
  std::vector<value_t> y_legacy(static_cast<std::size_t>(m.nrows()));
  std::vector<value_t> y(y_legacy.size(), -1.0);
  spmv_csr(m, x, y_legacy, Schedule::kStCont);
  csr.run(x, y);
  EXPECT_EQ(y_legacy, y) << "prepared specialized run is bit-identical";

  PreparedMatrix packed = PreparedMatrix::prepare(
      m, {.kind = MethodKind::kSellpack, .sched = Schedule::kDyn, .c = 4});
  ASSERT_TRUE(packed.has_plan());
  EXPECT_GT(packed.plan_bytes(), 0u);
  std::vector<value_t> y_ref(y_legacy.size());
  spmv_reference(m, x, y_ref);
  packed.run(x, y);
  testing::expect_vectors_near(y_ref, y);
}

}  // namespace
}  // namespace wise
