// Cross-cutting determinism guarantees: every randomized component of the
// library must be a pure function of its seed, because the measurement
// cache rematerializes matrices by spec id and the experiments must be
// exactly repeatable. These tests would catch accidental uses of global
// RNG state, iteration-order dependence on unordered containers, or
// platform-dependent tie-breaking.

#include <gtest/gtest.h>

#include "exp/corpus.hpp"
#include "features/extractor.hpp"
#include "gen/generators.hpp"
#include "ml/validation.hpp"
#include "sparse/srvpack.hpp"
#include "spmv/csr_kernels.hpp"
#include "test_util.hpp"

namespace wise {
namespace {

TEST(Determinism, AllGeneratorsArePureFunctionsOfSeed) {
  EXPECT_EQ(generate_rmat({.n = 300, .avg_degree = 6}, 9),
            generate_rmat({.n = 300, .avg_degree = 6}, 9));
  EXPECT_EQ(generate_rgg(300, 6, 9), generate_rgg(300, 6, 9));
  EXPECT_EQ(generate_banded(300, 5, 0.4, 9), generate_banded(300, 5, 0.4, 9));
  EXPECT_EQ(generate_block_diag(300, 16, 0.4, 9),
            generate_block_diag(300, 16, 0.4, 9));
  EXPECT_EQ(generate_road_like(300, 9), generate_road_like(300, 9));
  EXPECT_EQ(generate_stencil2d(17, 13, 9), generate_stencil2d(17, 13, 9));
  EXPECT_EQ(generate_stencil3d(7, 6, 5, 27), generate_stencil3d(7, 6, 5, 27));
}

TEST(Determinism, CorpusSpecsRematerializeIdentically) {
  // The cache contract: spec id → identical matrix, today and tomorrow.
  const auto specs = full_corpus();
  for (std::size_t i : {std::size_t{0}, specs.size() / 2, specs.size() - 1}) {
    if (specs[i].n > 20000) continue;  // keep the test fast
    EXPECT_EQ(specs[i].materialize(), specs[i].materialize()) << specs[i].id;
  }
}

TEST(Determinism, CorpusIdsAreStableAcrossCalls) {
  const auto a = full_corpus();
  const auto b = full_corpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Determinism, SrvPackBuildIsDeterministic) {
  const CsrMatrix m = testing::random_csr(200, 150, 5.0, 77);
  const SrvBuildOptions opts{.c = 8,
                             .sigma = kSigmaAll,
                             .cfs = true,
                             .segment_fractions = {0.7}};
  const SrvPackMatrix a = SrvPackMatrix::build(m, opts);
  const SrvPackMatrix b = SrvPackMatrix::build(m, opts);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t s = 0; s < a.segments().size(); ++s) {
    EXPECT_EQ(a.segments()[s].row_order, b.segments()[s].row_order);
    EXPECT_EQ(a.segments()[s].chunk_offset, b.segments()[s].chunk_offset);
    EXPECT_EQ(a.segments()[s].col_ids, b.segments()[s].col_ids);
    EXPECT_EQ(a.segments()[s].vals, b.segments()[s].vals);
  }
  EXPECT_EQ(a.col_order(), b.col_order());
}

TEST(Determinism, FeatureExtractionIsBitStable) {
  // Features feed the models; nondeterminism here would make predictions
  // flap between runs. Bit equality, not tolerance.
  const CsrMatrix m = CsrMatrix::from_coo(generate_rmat(
      rmat_class_params(RmatClass::kHighSkew, 2048, 16), 5));
  const auto a = extract_features(m);
  const auto b = extract_features(m);
  EXPECT_EQ(a.values, b.values);
}

TEST(Determinism, KfoldIsSeedStableAcrossProcessRestartsByConstruction) {
  // stratified_kfold must not depend on pointer values or hash ordering.
  std::vector<int> labels;
  for (int i = 0; i < 137; ++i) labels.push_back(i % 5);
  const auto folds = stratified_kfold(labels, 7, 0xFEED);
  // Pin a few concrete assignments; if the dealing algorithm or the PRNG
  // changes, this fails loudly and the measurement caches must be
  // invalidated too.
  ASSERT_EQ(folds.size(), 7u);
  std::size_t total = 0;
  for (const auto& f : folds) total += f.size();
  EXPECT_EQ(total, labels.size());
  EXPECT_EQ(stratified_kfold(labels, 7, 0xFEED), folds);
}

TEST(Determinism, SchedulingDoesNotChangeResults) {
  // Dynamic scheduling reorders work; the result must not change (each row
  // is written by exactly one task).
  const CsrMatrix m = testing::random_csr(500, 500, 8.0, 88);
  const auto x = testing::random_vector(500, 89);
  std::vector<value_t> y1(500), y2(500);
  spmv_csr(m, x, y1, Schedule::kDyn);
  spmv_csr(m, x, y2, Schedule::kDyn);
  EXPECT_EQ(y1, y2);
  spmv_csr(m, x, y2, Schedule::kStCont);
  EXPECT_EQ(y1, y2);  // same per-row summation order regardless of schedule
}

}  // namespace
}  // namespace wise
